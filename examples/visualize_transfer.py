"""Visualize MAMT mask transfer frame by frame.

Runs edgeIS on a dynamic scene and writes PPM images comparing the
transferred masks (left) with the ground truth (right) every half second,
plus a difference strip showing where the prediction misses.  The output
directory is printed at the end; PPM files open in any image viewer (or
convert with ImageMagick).

Run:  python examples/visualize_transfer.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.eval.experiments import ExperimentSpec, _make_video, build_client
from repro.image import mask_iou, overlay_masks, save_ppm
from repro.model import SimulatedSegmentationModel
from repro.network import make_channel
from repro.runtime import EdgeServer, Pipeline


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results/transfer_viz")
    spec = ExperimentSpec(
        system="edgeis", dataset="davis_like", num_frames=150, dynamic=True
    )
    video = _make_video(spec)
    client = build_client("edgeis", video)

    captured: dict[int, list] = {}
    original = client.process_frame

    def capture(frame, truth, now_ms):
        output = original(frame, truth, now_ms)
        captured[frame.index] = output.masks
        return output

    client.process_frame = capture
    channel = make_channel("wifi_5ghz", np.random.default_rng(7))
    server = EdgeServer(SimulatedSegmentationModel("mask_rcnn_r101", "jetson_tx2"))
    result = Pipeline(video, client, channel, server).run()

    saved = 0
    for frame_index in range(45, spec.num_frames, 15):
        frame, truth = video.frame_at(frame_index)
        predictions = captured.get(frame_index, [])
        left = overlay_masks(frame.image, predictions)
        right = overlay_masks(frame.image, truth.masks)
        # Difference strip: symmetric difference of prediction vs truth.
        diff = np.zeros(frame.shape, dtype=bool)
        truth_by_id = {m.instance_id: m for m in truth.masks}
        for prediction in predictions:
            gt = truth_by_id.get(prediction.instance_id)
            if gt is not None:
                diff |= prediction.mask ^ gt.mask
        middle = frame.image.copy()
        middle[diff] = (255, 40, 40)
        panel = np.concatenate([left, middle, right], axis=1)
        save_ppm(out_dir / f"frame_{frame_index:04d}.ppm", panel)
        saved += 1
        ious = [
            mask_iou(p.mask, truth_by_id[p.instance_id].mask)
            for p in predictions
            if p.instance_id in truth_by_id
        ]
        print(
            f"frame {frame_index}: {len(predictions)} transferred masks, "
            f"mean IoU {np.mean(ious):.3f}" if ious else f"frame {frame_index}: no masks yet"
        )

    print(
        f"\nwrote {saved} panels (prediction | error | ground truth) to {out_dir}/"
        f"\nrun summary: mean IoU {result.mean_iou():.3f}, "
        f"false rate {result.false_rate(0.75):.1%}"
    )


if __name__ == "__main__":
    main()
