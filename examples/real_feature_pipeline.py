"""Run the *real* FAST + BRIEF feature pipeline on rendered frames.

The big experiment grids use the deterministic oracle frontend (see
DESIGN.md section 2); this example exercises the genuine computer-vision
path instead: FAST-9 corners, rotated BRIEF descriptors, Hamming matching,
two-view initialization and PnP tracking on the rendered images
themselves, with no ground-truth geometry in the loop.

Run:  python examples/real_feature_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.features import OrbFeatureExtractor, match_descriptors
from repro.geometry import recover_relative_pose
from repro.synthetic import make_dataset
from repro.vo import FastBriefFrontend, VisualOdometry, VOConfig, VOState


def main() -> None:
    video = make_dataset("ar_indoor", num_frames=90, resolution=(320, 240))
    frontend = FastBriefFrontend(max_features=400)

    # --- Part 1: raw two-view geometry on real features -----------------
    frame_a, truth_a = video.frame_at(0)
    frame_b, truth_b = video.frame_at(30)
    extractor = OrbFeatureExtractor(max_keypoints=400)
    features_a = extractor.extract(frame_a.gray)
    features_b = extractor.extract(frame_b.gray)
    matches = match_descriptors(features_a.descriptors, features_b.descriptors)
    print(
        f"frame 0 vs frame 30: {len(features_a)} / {len(features_b)} FAST-BRIEF "
        f"features, {len(matches)} putative matches"
    )
    if len(matches) >= 8:
        points_a = np.array([features_a.pixels[m.query_index] for m in matches])
        points_b = np.array([features_b.pixels[m.train_index] for m in matches])
        geometry = recover_relative_pose(video.camera, points_a, points_b)
        true_relative = truth_b.pose_cw @ truth_a.pose_cw.inverse()
        rot_err = np.degrees(
            geometry.pose_10.rotation_angle_to(true_relative)
        )
        print(
            f"two-view init: {len(geometry.points_3d)} triangulated points, "
            f"median parallax {geometry.median_parallax_deg:.2f} deg, "
            f"rotation error vs ground truth {rot_err:.2f} deg"
        )

    # --- Part 2: frame-by-frame VO on real features ---------------------
    vo = VisualOdometry(video.camera, VOConfig(min_init_matches=30))
    states = []
    rotation_errors = []
    previous = None
    for frame, truth in video:
        observation = frontend.observe(frame)
        result = vo.process_frame(frame.index, frame.timestamp, observation)
        states.append(result.state)
        if result.is_tracking and previous is not None:
            rel_vo = result.pose_cw @ previous[0].inverse()
            rel_gt = truth.pose_cw @ previous[1].inverse()
            rotation_errors.append(np.degrees(rel_vo.rotation_angle_to(rel_gt)))
        previous = (
            (result.pose_cw, truth.pose_cw) if result.is_tracking else None
        )

    tracked = sum(1 for s in states if s is VOState.TRACKING)
    first = next(
        (i for i, s in enumerate(states) if s is VOState.TRACKING), None
    )
    print(f"\nVO on real features: tracked {tracked}/{len(states)} frames "
          f"(first lock at frame {first})")
    if rotation_errors:
        print(
            f"per-frame rotation-delta error: median "
            f"{np.median(rotation_errors):.3f} deg, p90 "
            f"{np.percentile(rotation_errors, 90):.3f} deg"
        )
    print(f"map size: {len(vo.map)} points")


if __name__ == "__main__":
    main()
