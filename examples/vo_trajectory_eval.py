"""Qualify the visual odometry with standard SLAM metrics.

Runs the VO (oracle frontend) over every dataset and motion grade and
prints ATE / RPE — the numbers a SLAM paper would report — demonstrating
why the mask-transfer module can trust the tracker's geometry.

Run:  python examples/vo_trajectory_eval.py
"""

from __future__ import annotations

import numpy as np

from repro.eval import Table, evaluate_trajectory
from repro.synthetic import DATASET_NAMES, make_dataset
from repro.vo import OracleFrontend, VisualOdometry


def run_vo(dataset: str, motion_grade: str, num_frames: int = 120):
    video = make_dataset(dataset, num_frames=num_frames, motion_grade=motion_grade)
    frontend = OracleFrontend(video.world, video.camera, seed=1)
    vo = VisualOdometry(video.camera)
    estimated, truth = [], []
    for frame, gt in video:
        observation = frontend.observe(frame, gt)
        result = vo.process_frame(frame.index, frame.timestamp, observation)
        estimated.append(result.pose_cw if result.is_tracking else None)
        truth.append(gt.pose_cw)
    return evaluate_trajectory(estimated, truth)


def main() -> None:
    table = Table(
        "VO trajectory quality (ATE in world meters after Sim(3) alignment)",
        ["dataset", "motion", "poses", "ATE rmse", "RPE trans", "RPE rot deg"],
    )
    for dataset in DATASET_NAMES:
        for grade in ("walk", "jog"):
            try:
                errors = run_vo(dataset, grade)
            except ValueError as error:
                table.add_row(dataset, grade, 0, str(error), "-", "-")
                continue
            table.add_row(
                dataset,
                grade,
                errors.num_poses,
                errors.ate_rmse,
                errors.rpe_translation_median,
                errors.rpe_rotation_deg_median,
            )
    table.print()


if __name__ == "__main__":
    main()
