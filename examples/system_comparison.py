"""Compare edgeIS against the related systems on one scene.

Runs edgeIS, EAAR, EdgeDuet, best-effort edge and mobile-only over the
same video and network and prints the Fig. 9/11-style comparison rows.

Run:  python examples/system_comparison.py [dataset] [network]
      e.g. python examples/system_comparison.py kitti_like wifi_2.4ghz
"""

from __future__ import annotations

import sys

from repro.eval import SYSTEM_NAMES, ExperimentSpec, Table, run_experiment


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "xiph_like"
    network = sys.argv[2] if len(sys.argv) > 2 else "wifi_5ghz"

    table = Table(
        f"system comparison on {dataset} over {network}",
        ["system", "mean IoU", "false@0.75", "false@0.5", "latency ms", "offloads"],
    )
    for system in SYSTEM_NAMES:
        spec = ExperimentSpec(
            system=system, dataset=dataset, network=network, num_frames=150
        )
        print(f"running {system} ...")
        result = run_experiment(spec).result
        table.add_row(
            system,
            result.mean_iou(),
            result.false_rate(0.75),
            result.false_rate(0.5),
            result.mean_latency_ms(),
            result.offload_count,
        )
    print()
    table.print()


if __name__ == "__main__":
    main()
