"""AR industrial inspection (the paper's Fig. 1 scenario).

A worker walks through the oil-field scene wearing an AR device; edgeIS
segments the separators, tanks and pipes in real time so the app can
anchor maintenance information to them.  This example runs the pipeline
on the oilfield dataset and renders an ASCII "AR view" every second:
each instance's mask footprint is drawn with its own letter, with the
class label legend the AR overlay would display.

Run:  python examples/ar_inspection.py
"""

from __future__ import annotations

import numpy as np

from repro.eval import ExperimentSpec, run_experiment
from repro.image import InstanceMask


def ascii_view(masks: list[InstanceMask], shape, cols: int = 64, rows: int = 20) -> str:
    """Downsample instance masks into a character grid."""
    canvas = np.full((rows, cols), ".", dtype="<U1")
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    scale_r = shape[0] / rows
    scale_c = shape[1] / cols
    for index, mask in enumerate(masks):
        letter = letters[index % len(letters)]
        for r in range(rows):
            for c in range(cols):
                r0, r1 = int(r * scale_r), int((r + 1) * scale_r)
                c0, c1 = int(c * scale_c), int((c + 1) * scale_c)
                if mask.mask[r0:r1, c0:c1].mean() > 0.35:
                    canvas[r, c] = letter
    return "\n".join("".join(row) for row in canvas)


def main() -> None:
    spec = ExperimentSpec(
        system="edgeis",
        dataset="oilfield",
        network="wifi_5ghz",
        num_frames=150,
        server_device="jetson_xavier",  # the field deployment's edge node
        dynamic=True,
    )
    print("starting AR inspection walkthrough ...\n")
    video_frames: dict[int, list[InstanceMask]] = {}

    # Capture rendered masks by wrapping the client.
    from repro.eval.experiments import _make_video, build_client
    from repro.model import SimulatedSegmentationModel
    from repro.network import make_channel
    from repro.runtime import EdgeServer, Pipeline

    video = _make_video(spec)
    client = build_client(spec.system, video, seed=spec.seed)
    original = client.process_frame

    def capture(frame, truth, now_ms):
        output = original(frame, truth, now_ms)
        video_frames[frame.index] = output.masks
        return output

    client.process_frame = capture
    channel = make_channel(spec.network, np.random.default_rng(17))
    server = EdgeServer(
        SimulatedSegmentationModel("mask_rcnn_r101", spec.server_device)
    )
    result = Pipeline(video, client, channel, server).run()

    shape = (video.camera.height, video.camera.width)
    for frame_index in range(60, spec.num_frames, 45):
        masks = video_frames.get(frame_index, [])
        print(f"--- AR view at t = {frame_index / 30.0:.1f} s ---")
        print(ascii_view(masks, shape))
        legend = ", ".join(
            f"{chr(ord('A') + i)}: {m.class_label} (#{m.instance_id})"
            for i, m in enumerate(masks)
        )
        print("overlay legend:", legend or "(no objects annotated yet)")
        print()

    print(
        f"inspection summary: mean IoU {result.mean_iou():.3f}, "
        f"false rate {result.false_rate(0.75):.1%}, "
        f"mobile latency {result.mean_latency_ms():.0f} ms, "
        f"{result.offload_count} keyframes offloaded"
    )


if __name__ == "__main__":
    main()
