"""Quickstart: run edgeIS end to end on a synthetic scene.

Builds a DAVIS-like scene (two salient objects, handheld camera), runs the
full edgeIS pipeline — visual odometry, mask transfer, CFRS offloading,
CIIA-accelerated edge inference over a WiFi 5 GHz link — and prints the
per-frame accuracy/latency summary the paper reports.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.eval import ExperimentSpec, Table, run_experiment


def main() -> None:
    spec = ExperimentSpec(
        system="edgeis",
        dataset="davis_like",
        network="wifi_5ghz",
        num_frames=150,
        seed=0,
    )
    print(f"running {spec.system} on {spec.dataset} over {spec.network} ...")
    outcome = run_experiment(spec)
    result = outcome.result

    table = Table(
        "edgeIS quickstart (150 frames @ 30 fps)",
        ["metric", "value"],
    )
    table.add_row("mean IoU", result.mean_iou())
    table.add_row("false rate @0.75", result.false_rate(0.75))
    table.add_row("false rate @0.5", result.false_rate(0.5))
    table.add_row("mobile latency (ms, mean)", result.mean_latency_ms())
    table.add_row("frames offloaded", result.offload_count)
    table.add_row("uplink total (kB)", result.bytes_up / 1024)
    table.add_row("edge busy fraction", result.server_utilization())
    table.print()

    # A peek at the per-frame trace (1 row per second).
    trace = Table("per-second trace", ["frame", "mean IoU", "latency ms", "offloaded"])
    for metric in result.frames[::30]:
        trace.add_row(
            metric.frame_index,
            metric.mean_iou,
            metric.latency_ms,
            "yes" if metric.offloaded else "",
        )
    trace.print()


if __name__ == "__main__":
    main()
