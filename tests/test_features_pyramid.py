"""Tests for the ORB scale pyramid and bilinear resize."""

import numpy as np
import pytest

from repro.features import OrbFeatureExtractor, match_descriptors
from repro.image import resize_bilinear


def dot_field(shape=(160, 200), num_dots=80, seed=0):
    rng = np.random.default_rng(seed)
    image = np.full(shape, 128.0, dtype=np.float32)
    rr, cc = np.mgrid[0 : shape[0], 0 : shape[1]]
    for _ in range(num_dots):
        r = rng.integers(8, shape[0] - 8)
        c = rng.integers(8, shape[1] - 8)
        radius = rng.integers(2, 5)
        image[(rr - r) ** 2 + (cc - c) ** 2 <= radius**2] = float(
            rng.choice([15.0, 240.0])
        )
    return image


class TestResize:
    def test_identity(self):
        image = dot_field()
        assert np.allclose(resize_bilinear(image, 1.0), image)

    def test_shapes(self):
        image = dot_field((100, 140))
        assert resize_bilinear(image, 0.5).shape == (50, 70)
        assert resize_bilinear(image, 2.0).shape == (200, 280)

    def test_preserves_mean_roughly(self):
        image = dot_field()
        small = resize_bilinear(image, 0.6)
        assert small.mean() == pytest.approx(image.mean(), rel=0.05)


class TestPyramid:
    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            OrbFeatureExtractor(num_levels=0)

    def test_octaves_populated(self):
        image = dot_field(seed=2)
        features = OrbFeatureExtractor(max_keypoints=300, num_levels=3).extract(image)
        octaves = {k.octave for k in features.keypoints}
        assert 0 in octaves
        assert len(octaves) >= 2  # at least two pyramid levels contributed

    def test_coordinates_in_full_resolution(self):
        image = dot_field(seed=3)
        features = OrbFeatureExtractor(max_keypoints=300, num_levels=3).extract(image)
        pixels = features.pixels
        assert pixels[:, 0].max() < image.shape[1]
        assert pixels[:, 1].max() < image.shape[0]

    def test_single_level_unchanged(self):
        image = dot_field(seed=4)
        single = OrbFeatureExtractor(max_keypoints=100, num_levels=1).extract(image)
        assert all(k.octave == 0 for k in single.keypoints)

    def test_scale_change_matching_improves_with_pyramid(self):
        # Zooming the scene by 1.4x: multi-scale features should match at
        # least as well as single-scale ones.
        image = dot_field(seed=5)
        zoomed = resize_bilinear(image, 1.4)[: image.shape[0], : image.shape[1]]

        def match_count(levels):
            extractor = OrbFeatureExtractor(max_keypoints=250, num_levels=levels)
            features_a = extractor.extract(image)
            features_b = extractor.extract(zoomed)
            return len(
                match_descriptors(features_a.descriptors, features_b.descriptors)
            )

        assert match_count(3) >= match_count(1)
