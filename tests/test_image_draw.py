"""Tests for mask-overlay drawing and PPM/PGM export."""

import numpy as np
import pytest

from repro.image import (
    InstanceMask,
    draw_boxes,
    instance_color,
    overlay_masks,
    save_pgm,
    save_ppm,
)


def base_image(shape=(40, 60)):
    return np.full((*shape, 3), 100, dtype=np.uint8)


class TestOverlay:
    def test_blends_inside_mask_only(self):
        image = base_image()
        mask = np.zeros((40, 60), bool)
        mask[10:20, 10:20] = True
        out = overlay_masks(image, [InstanceMask(1, "x", mask)], alpha=0.5, outline=False)
        assert (out[0, 0] == 100).all()  # untouched outside
        assert not (out[15, 15] == 100).all()  # blended inside
        assert out.dtype == np.uint8

    def test_outline_uses_full_color(self):
        image = base_image()
        mask = np.zeros((40, 60), bool)
        mask[10:20, 10:20] = True
        out = overlay_masks(image, [InstanceMask(1, "x", mask)], outline=True)
        assert np.allclose(out[10, 10], instance_color(1))

    def test_accepts_grayscale_input(self):
        gray = np.full((40, 60), 90, dtype=np.uint8)
        mask = np.zeros((40, 60), bool)
        mask[5:10, 5:10] = True
        out = overlay_masks(gray, [InstanceMask(2, "x", mask)])
        assert out.shape == (40, 60, 3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            overlay_masks(base_image(), [InstanceMask(1, "x", np.zeros((5, 5), bool))])

    def test_stable_colors(self):
        assert np.allclose(instance_color(3), instance_color(3))
        assert not np.allclose(instance_color(3), instance_color(4))


class TestDrawBoxes:
    def test_outline_drawn(self):
        out = draw_boxes(base_image(), [(10, 5, 30, 25)])
        assert not (out[5, 10:30] == 100).all(axis=-1).any()
        assert (out[15, 15] == 100).all()  # interior untouched

    def test_clipped_box(self):
        out = draw_boxes(base_image(), [(-10, -10, 10, 10)])
        assert out.shape == (40, 60, 3)

    def test_degenerate_skipped(self):
        out = draw_boxes(base_image(), [(30, 30, 30, 30)])
        assert (out == base_image()).all()


class TestExport:
    def test_ppm_roundtrip(self, tmp_path):
        image = np.random.default_rng(0).integers(0, 256, (12, 10, 3), dtype=np.uint8)
        path = tmp_path / "sub" / "test.ppm"
        save_ppm(path, image)
        data = path.read_bytes()
        header, pixels = data.split(b"255\n", 1)
        assert header == b"P6\n10 12\n"
        assert np.array_equal(
            np.frombuffer(pixels, dtype=np.uint8).reshape(12, 10, 3), image
        )

    def test_pgm_roundtrip(self, tmp_path):
        gray = np.random.default_rng(1).integers(0, 256, (8, 6)).astype(np.float32)
        path = tmp_path / "g.pgm"
        save_pgm(path, gray)
        data = path.read_bytes()
        assert data.startswith(b"P5\n6 8\n255\n")

    def test_bad_shapes_raise(self, tmp_path):
        with pytest.raises(ValueError):
            save_ppm(tmp_path / "x.ppm", np.zeros((4, 4)))
        with pytest.raises(ValueError):
            save_pgm(tmp_path / "x.pgm", np.zeros((4, 4, 3)))
