"""Tests for contour tracing and rasterization — the core of mask transfer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.image import (
    fill_contour,
    find_contours,
    largest_contour,
    mask_boundary,
    mask_iou,
    resample_contour,
)


def disk_mask(shape, center, radius):
    rr, cc = np.mgrid[0 : shape[0], 0 : shape[1]]
    return (rr - center[0]) ** 2 + (cc - center[1]) ** 2 <= radius**2


class TestFindContours:
    def test_empty_mask(self):
        assert find_contours(np.zeros((10, 10), bool)) == []

    def test_single_pixel(self):
        mask = np.zeros((10, 10), bool)
        mask[4, 4] = True
        contours = find_contours(mask)
        assert len(contours) == 1
        assert (contours[0] == [4, 4]).all()

    def test_rectangle_boundary(self):
        mask = np.zeros((20, 20), bool)
        mask[5:10, 3:12] = True
        contours = find_contours(mask)
        assert len(contours) == 1
        contour = contours[0]
        # Every contour pixel is on the rectangle boundary.
        for r, c in contour:
            assert mask[r, c]
            on_edge = r in (5, 9) or c in (3, 11)
            assert on_edge
        # Perimeter pixel count of a 5x9 rectangle boundary is 2*(5+9)-4=24.
        assert len(np.unique(contour, axis=0)) == 24

    def test_two_components(self):
        mask = np.zeros((20, 20), bool)
        mask[2:6, 2:6] = True
        mask[10:16, 10:18] = True
        contours = find_contours(mask)
        assert len(contours) == 2

    def test_largest_contour(self):
        mask = np.zeros((20, 20), bool)
        mask[2:4, 2:4] = True
        mask[8:18, 8:18] = True
        contour = largest_contour(mask)
        assert contour is not None
        assert contour[:, 0].min() >= 8

    def test_largest_contour_empty(self):
        assert largest_contour(np.zeros((5, 5), bool)) is None

    def test_min_length_filter(self):
        mask = np.zeros((20, 20), bool)
        mask[2, 2] = True  # 1-pixel component
        mask[8:18, 8:18] = True
        contours = find_contours(mask, min_length=5)
        assert len(contours) == 1

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            find_contours(np.zeros(10, bool))


class TestFillContour:
    def test_trace_fill_roundtrip_rectangle(self):
        mask = np.zeros((30, 30), bool)
        mask[5:15, 8:22] = True
        contour = find_contours(mask)[0]
        refilled = fill_contour(contour, mask.shape)
        assert mask_iou(mask, refilled) == 1.0

    def test_trace_fill_roundtrip_disk(self):
        mask = disk_mask((50, 50), (25, 25), 14)
        contour = find_contours(mask)[0]
        refilled = fill_contour(contour, mask.shape)
        assert mask_iou(mask, refilled) > 0.97

    def test_fill_empty_contour(self):
        assert not fill_contour(np.zeros((0, 2)), (10, 10)).any()

    def test_fill_subpixel_contour(self):
        # A square given at sub-pixel coordinates still fills.
        contour = np.array([[4.5, 4.5], [4.5, 15.5], [15.5, 15.5], [15.5, 4.5]])
        filled = fill_contour(contour, (20, 20))
        assert filled[10, 10]
        assert filled.sum() >= 100

    def test_fill_clips_out_of_bounds(self):
        contour = np.array([[-5.0, -5.0], [-5.0, 8.0], [8.0, 8.0], [8.0, -5.0]])
        filled = fill_contour(contour, (10, 10))
        assert filled[0, 0]
        assert filled.shape == (10, 10)

    def test_fill_degenerate_two_points(self):
        filled = fill_contour(np.array([[2.0, 2.0], [2.0, 7.0]]), (10, 10))
        assert filled[2, 2] and filled[2, 7]

    @settings(max_examples=25, deadline=None)
    @given(
        cy=st.integers(10, 20),
        cx=st.integers(10, 20),
        radius=st.integers(3, 9),
    )
    def test_property_roundtrip_iou_high(self, cy, cx, radius):
        mask = disk_mask((32, 32), (cy, cx), radius)
        contour = find_contours(mask)[0]
        refilled = fill_contour(contour, mask.shape)
        assert mask_iou(mask, refilled) > 0.9


class TestMaskBoundary:
    def test_boundary_of_rectangle(self):
        mask = np.zeros((20, 20), bool)
        mask[5:10, 3:12] = True
        boundary = mask_boundary(mask)
        assert boundary.sum() == 24
        assert (boundary & ~mask).sum() == 0

    def test_boundary_of_empty(self):
        assert not mask_boundary(np.zeros((5, 5), bool)).any()


class TestResampleContour:
    def test_count_and_range(self):
        mask = disk_mask((50, 50), (25, 25), 15)
        contour = find_contours(mask)[0]
        resampled = resample_contour(contour, 40)
        assert resampled.shape == (40, 2)
        # Resampled points stay near the original contour.
        from scipy.spatial import cKDTree

        tree = cKDTree(contour)
        distances, _ = tree.query(resampled)
        assert distances.max() < 1.5

    def test_upsampling(self):
        contour = np.array([[0.0, 0.0], [0.0, 10.0], [10.0, 10.0], [10.0, 0.0]])
        resampled = resample_contour(contour, 100)
        assert resampled.shape == (100, 2)

    def test_empty(self):
        assert resample_contour(np.zeros((0, 2)), 10).shape == (0, 2)

    def test_fill_after_resample_preserves_shape(self):
        mask = disk_mask((60, 60), (30, 30), 20)
        contour = find_contours(mask)[0]
        resampled = resample_contour(contour, 64)
        refilled = fill_contour(resampled, mask.shape)
        assert mask_iou(mask, refilled) > 0.9
