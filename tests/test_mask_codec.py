"""Tests for the contour-vertex mask wire format (Section VI-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import decode_masks, encode_masks, encoded_size_bytes
from repro.image import InstanceMask, mask_iou


def disk_mask(shape, center, radius):
    rr, cc = np.mgrid[0 : shape[0], 0 : shape[1]]
    return (rr - center[0]) ** 2 + (cc - center[1]) ** 2 <= radius**2


class TestRoundtrip:
    def test_single_instance(self):
        shape = (120, 160)
        instance = InstanceMask(7, "oil_separator", disk_mask(shape, (60, 80), 25), 0.93)
        decoded = decode_masks(encode_masks([instance]), shape)
        assert len(decoded) == 1
        out = decoded[0]
        assert out.instance_id == 7
        assert out.class_label == "oil_separator"
        assert out.score == pytest.approx(0.93, abs=1e-3)
        assert mask_iou(out.mask, instance.mask) > 0.93

    def test_multiple_instances(self):
        shape = (120, 160)
        masks = [
            InstanceMask(1, "car", disk_mask(shape, (40, 40), 18)),
            InstanceMask(2, "person", disk_mask(shape, (80, 120), 22)),
        ]
        decoded = decode_masks(encode_masks(masks), shape)
        assert [m.instance_id for m in decoded] == [1, 2]
        for original, restored in zip(masks, decoded):
            assert mask_iou(original.mask, restored.mask) > 0.9

    def test_multi_component_instance(self):
        shape = (80, 80)
        raster = disk_mask(shape, (20, 20), 10) | disk_mask(shape, (60, 60), 10)
        instance = InstanceMask(3, "split", raster)
        decoded = decode_masks(encode_masks([instance]), shape)
        assert mask_iou(decoded[0].mask, raster) > 0.88

    def test_empty_list(self):
        assert decode_masks(encode_masks([]), (10, 10)) == []

    def test_empty_mask_instance(self):
        instance = InstanceMask(1, "ghost", np.zeros((20, 20), bool))
        decoded = decode_masks(encode_masks([instance]), (20, 20))
        assert decoded[0].is_empty

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_masks(b"nope" + b"\x00" * 10, (10, 10))


class TestSizes:
    def test_wire_size_scales_with_contour_not_area(self):
        shape = (240, 320)
        small = InstanceMask(1, "a", disk_mask(shape, (120, 160), 12))
        large = InstanceMask(1, "a", disk_mask(shape, (120, 160), 80))
        size_small = encoded_size_bytes([small])
        size_large = encoded_size_bytes([large])
        # Contour coding: the large disk costs more, but nowhere near the
        # 44x its pixel area would suggest.
        assert size_small < size_large < 8 * size_small

    def test_kilobyte_scale(self):
        shape = (240, 320)
        masks = [
            InstanceMask(i, "obj", disk_mask(shape, (60 + 30 * i, 80 + 40 * i), 20))
            for i in range(4)
        ]
        total = encoded_size_bytes(masks)
        assert 200 < total < 6000  # a few kB for a typical result set

    @settings(max_examples=20, deadline=None)
    @given(radius=st.integers(5, 30), cy=st.integers(35, 85), cx=st.integers(35, 125))
    def test_property_roundtrip_quality(self, radius, cy, cx):
        shape = (120, 160)
        raster = disk_mask(shape, (cy, cx), radius)
        instance = InstanceMask(1, "x", raster)
        decoded = decode_masks(encode_masks([instance]), shape)
        assert mask_iou(decoded[0].mask, raster) > 0.85
