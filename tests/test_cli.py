"""Tests for the experiment CLI."""

import json

import pytest

from repro.eval import ExperimentSpec, run_experiment
from repro.eval.cli import build_parser, main
from repro.eval.reporting import SCHEMA_VERSION, result_payload, save_json


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "edgeis" in out and "wifi_5ghz" in out and "kitti_like" in out

    def test_run_requires_known_system(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--system", "magic"])

    def test_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["run"])
        assert args.system == "edgeis"
        assert args.network == "wifi_5ghz"
        assert args.frames == 150


class TestRunCommand:
    def test_run_small_and_save(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.json"
        code = main(
            [
                "run",
                "--system",
                "edge_best_effort",
                "--dataset",
                "davis_like",
                "--frames",
                "30",
                "--json",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["system"] == "edge_best_effort"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert 0.0 <= payload["mean_iou"] <= 1.0
        out = capsys.readouterr().out
        assert "mean_iou" in out


class TestServeCommand:
    def test_serve_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve"])
        assert args.clients == 8
        assert args.policy == "edf"
        assert args.frames == 60
        assert not args.fifo

    def test_unknown_policy_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--policy", "lottery"])

    def test_serve_small_fleet_and_save(self, tmp_path, capsys):
        out_path = tmp_path / "fleet.json"
        code = main(
            [
                "serve",
                "--clients",
                "2",
                "--frames",
                "15",
                "--warmup",
                "5",
                "--json",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert len(payload["sessions"]) == 2
        assert payload["serve"]["policy"] == "edf"
        assert 0.0 <= payload["slo"]["miss_rate"] <= 1.0
        out = capsys.readouterr().out
        assert "fleet SLO" in out and "serve:" in out

    def test_serve_fifo_topology(self, capsys):
        code = main(["serve", "--clients", "2", "--frames", "15", "--fifo"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fifo (no scheduler)" in out


class TestResultPayloadSchema:
    def test_round_trips_through_json(self, tmp_path):
        """The shared payload (used by `repro run`, `repro compare` and
        the BENCH `result` sections) must survive save/load unchanged."""
        result = run_experiment(
            ExperimentSpec(
                system="edge_best_effort",
                dataset="davis_like",
                num_frames=20,
                resolution=(160, 120),
                warmup_frames=5,
            )
        ).result
        payload = result_payload(result)
        assert payload["schema_version"] == SCHEMA_VERSION
        # CDF keys are strings so the payload is losslessly JSON-clean.
        assert all(isinstance(key, str) for key in payload["iou_cdf"])
        path = tmp_path / "payload.json"
        save_json(path, payload)
        assert json.loads(path.read_text()) == payload


class TestCleanErrors:
    """Every verb exits with code 2 and a one-line ``error: ...`` message
    on unknown suite/scenario/fault names — never a traceback."""

    def _run(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.err

    def test_serve_unknown_scenario(self, capsys):
        code, err = self._run(["serve", "--scenario", "meteor-strike"], capsys)
        assert code == 2
        assert err.startswith("error: unknown scenario")
        assert err.count("\n") == 1  # exactly one line

    def test_serve_unknown_fault(self, capsys):
        code, err = self._run(["serve", "--fault", "cosmic-ray"], capsys)
        assert code == 2
        assert err.startswith("error: unknown fault program")

    def test_bench_run_unknown_suite(self, capsys):
        code, err = self._run(["bench", "run", "--suite", "bogus"], capsys)
        assert code == 2
        assert err.startswith("error: unknown suite 'bogus'")
        assert "available:" in err and "Traceback" not in err

    def test_bench_compare_missing_artifact(self, capsys):
        code, err = self._run(
            ["bench", "compare", "/no/such/old.json", "/no/such/new.json"],
            capsys,
        )
        assert code == 2
        assert err.startswith("error: ")
        assert "/no/such/old.json" in err
        assert err.count("\n") == 1

    def test_report_unknown_suite(self, capsys):
        code, err = self._run(["report", "--suite", "bogus"], capsys)
        assert code == 2
        assert err.startswith("error: unknown suite 'bogus'")

    def test_chaos_unknown_scenario(self, capsys):
        code, err = self._run(["chaos", "--scenario", "bogus"], capsys)
        assert code == 2
        assert err.startswith("error: unknown scenario 'bogus'")
        assert "crowded-occlusion" in err

    def test_chaos_unknown_fault(self, capsys):
        code, err = self._run(["chaos", "--fault", "bogus"], capsys)
        assert code == 2
        assert err.startswith("error: unknown fault program 'bogus'")
        assert "replica-outage" in err


class TestListFlags:
    """Every long-running verb exposes ``--list``: a deterministic
    enumeration of the names it accepts, exit 0, nothing executed."""

    def _run(self, argv, capsys):
        code = main(argv)
        return code, capsys.readouterr().out

    def test_serve_list(self, capsys):
        code, out = self._run(["serve", "--list"], capsys)
        assert code == 0
        assert "systems:" in out
        assert "qos:" in out and "premium" in out

    def test_bench_run_list(self, capsys):
        code, out = self._run(["bench", "run", "--list"], capsys)
        assert code == 0
        assert "tenants:" in out and "mixed-saturate" in out
        assert "chaos:" in out

    def test_chaos_list(self, capsys):
        code, out = self._run(["chaos", "--list"], capsys)
        assert code == 0
        assert "scenarios:" in out and "faults:" in out and "cells:" in out

    def test_why_list(self, capsys):
        code, out = self._run(["why", "--list"], capsys)
        assert code == 0
        assert "suites:" in out

    def test_tenants_list(self, capsys):
        code, out = self._run(["tenants", "--list"], capsys)
        assert code == 0
        assert "qos:" in out
        assert "default tenants:" in out and "gold:premium:2" in out
        assert "cells:" in out and "autoscale-burst" in out

    def test_list_output_is_deterministic(self, capsys):
        first = self._run(["tenants", "--list"], capsys)
        second = self._run(["tenants", "--list"], capsys)
        assert first == second


class TestTenantServe:
    def test_serve_with_tenants_prints_per_tenant_rows(self, capsys):
        code = main(
            [
                "serve",
                "--clients", "4",
                "--frames", "12",
                "--warmup", "4",
                "--tenants", "gold:premium:2,bulk:best_effort:2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gold" in out and "bulk" in out

    def test_serve_tenant_count_mismatch_is_clean_error(self, capsys):
        code = main(
            [
                "serve",
                "--clients", "3",
                "--frames", "8",
                "--tenants", "gold:premium:2",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err


class TestChaosCommand:
    def test_filtered_cell_certifies(self, capsys, tmp_path):
        """A single scenario x fault cell runs end to end, prints the
        certification table, and exits 0 without writing an artifact."""
        code = main(
            [
                "chaos",
                "--scenario",
                "lighting-flip",
                "--fault",
                "straggler",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lighting-flip+straggler" in out
        assert "certified: all 1 cells held their error budget" in out
        assert list(tmp_path.iterdir()) == []  # filtered runs write nothing
