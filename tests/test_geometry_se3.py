"""Unit tests for SE(3) transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import SE3, skew, so3_exp, so3_log


def random_pose(rng: np.random.Generator) -> SE3:
    return SE3.exp(rng.normal(scale=0.8, size=6))


class TestSkew:
    def test_skew_matches_cross_product(self):
        a = np.array([1.0, -2.0, 3.0])
        b = np.array([0.5, 4.0, -1.0])
        assert np.allclose(skew(a) @ b, np.cross(a, b))

    def test_skew_is_antisymmetric(self):
        m = skew([3.0, 1.0, 2.0])
        assert np.allclose(m, -m.T)


class TestSO3:
    def test_exp_of_zero_is_identity(self):
        assert np.allclose(so3_exp(np.zeros(3)), np.eye(3))

    def test_exp_log_roundtrip(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            omega = rng.normal(scale=1.0, size=3)
            # log returns the minimal-angle representative, so compare the
            # rotations, not the vectors (|omega| may exceed pi).
            recovered = so3_exp(so3_log(so3_exp(omega)))
            assert np.allclose(recovered, so3_exp(omega), atol=1e-9)

    def test_log_roundtrip_within_pi(self):
        rng = np.random.default_rng(12)
        for _ in range(20):
            omega = rng.normal(size=3)
            omega *= rng.uniform(0.0, 3.0) / max(np.linalg.norm(omega), 1e-9)
            assert np.allclose(so3_log(so3_exp(omega)), omega, atol=1e-8)

    def test_exp_produces_rotation_matrix(self):
        rotation = so3_exp([0.3, -0.2, 0.9])
        assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)
        assert np.isclose(np.linalg.det(rotation), 1.0)

    def test_log_near_pi(self):
        omega = np.array([np.pi - 1e-7, 0.0, 0.0])
        recovered = so3_log(so3_exp(omega))
        assert np.allclose(np.abs(recovered), np.abs(omega), atol=1e-5)

    def test_exp_rotates_by_expected_angle(self):
        rotation = so3_exp([0.0, 0.0, np.pi / 2])
        assert np.allclose(rotation @ [1, 0, 0], [0, 1, 0], atol=1e-12)


class TestSE3:
    def test_identity_fixes_points(self):
        points = np.random.default_rng(0).normal(size=(5, 3))
        assert np.allclose(SE3.identity().transform(points), points)

    def test_compose_inverse_is_identity(self):
        rng = np.random.default_rng(2)
        pose = random_pose(rng)
        assert (pose @ pose.inverse()).allclose(SE3.identity(), atol=1e-9)
        assert (pose.inverse() @ pose).allclose(SE3.identity(), atol=1e-9)

    def test_exp_log_roundtrip(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            xi = rng.normal(scale=0.7, size=6)
            assert np.allclose(SE3.exp(xi).log(), xi, atol=1e-8)

    def test_transform_single_and_batch_agree(self):
        rng = np.random.default_rng(4)
        pose = random_pose(rng)
        points = rng.normal(size=(7, 3))
        batch = pose.transform(points)
        for i, point in enumerate(points):
            assert np.allclose(pose.transform(point), batch[i])

    def test_compose_matches_matrix_product(self):
        rng = np.random.default_rng(5)
        a, b = random_pose(rng), random_pose(rng)
        assert np.allclose((a @ b).matrix(), a.matrix() @ b.matrix())

    def test_center_is_fixed_point_of_projection(self):
        rng = np.random.default_rng(6)
        pose = random_pose(rng)
        assert np.allclose(pose.transform(pose.center), np.zeros(3), atol=1e-9)

    def test_look_at_points_camera_z_at_target(self):
        pose = SE3.look_at(eye=[0, 0, -5], target=[0, 0, 0])
        target_camera = pose.transform(np.array([0.0, 0.0, 0.0]))
        assert target_camera[2] > 0  # target in front of camera
        assert np.allclose(target_camera[:2], 0, atol=1e-12)

    def test_look_at_rejects_coincident_eye_target(self):
        with pytest.raises(ValueError):
            SE3.look_at([1, 2, 3], [1, 2, 3])

    def test_immutability(self):
        pose = SE3.identity()
        with pytest.raises(AttributeError):
            pose.rotation = np.eye(3)
        with pytest.raises(ValueError):
            pose.translation[0] = 5.0

    def test_rotation_angle_metric(self):
        a = SE3(so3_exp([0, 0, 0.0]), [0, 0, 0])
        b = SE3(so3_exp([0, 0, 0.5]), [1, 0, 0])
        assert np.isclose(a.rotation_angle_to(b), 0.5)
        assert np.isclose(a.translation_distance_to(b), np.linalg.norm(b.center))

    def test_from_matrix_roundtrip(self):
        rng = np.random.default_rng(7)
        pose = random_pose(rng)
        assert SE3.from_matrix(pose.matrix()).allclose(pose)


@settings(max_examples=50, deadline=None)
@given(
    xi=st.lists(st.floats(-1.5, 1.5), min_size=6, max_size=6),
    point=st.lists(st.floats(-10, 10), min_size=3, max_size=3),
)
def test_property_inverse_undoes_transform(xi, point):
    pose = SE3.exp(np.array(xi))
    point = np.array(point)
    assert np.allclose(pose.inverse().transform(pose.transform(point)), point, atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(xi=st.lists(st.floats(-1.5, 1.5), min_size=6, max_size=6))
def test_property_rotation_stays_orthonormal(xi):
    pose = SE3.exp(np.array(xi))
    assert np.allclose(pose.rotation @ pose.rotation.T, np.eye(3), atol=1e-9)
    assert np.isclose(np.linalg.det(pose.rotation), 1.0, atol=1e-9)
