"""Extra world tests: ground-truth assembly, site generation policy."""

import numpy as np
import pytest

from repro.geometry import SE3
from repro.synthetic import (
    ProceduralTexture,
    SceneObject,
    StaticMotion,
    World,
    make_box_mesh,
    make_dataset,
    make_plane_mesh,
)


def simple_object(instance_id, z=5.0, size=(1.0, 1.0, 1.0), label="box"):
    return SceneObject(
        instance_id,
        label,
        make_box_mesh(size),
        ProceduralTexture((140, 120, 100), instance_id),
        StaticMotion(SE3(np.eye(3), [0.0, 0.0, z])),
    )


class TestSiteGeneration:
    def test_site_cap_respected(self):
        floor = SceneObject(
            0,
            "background",
            make_plane_mesh(50.0, 50.0),
            ProceduralTexture((120, 120, 120), 0),
        )
        world = World([floor], max_sites_per_object=100)
        assert len(world.feature_sites) == 100

    def test_small_objects_get_minimum_sites(self):
        tiny = simple_object(1, size=(0.05, 0.05, 0.05))
        world = World([tiny])
        assert len(world.feature_sites) >= 8

    def test_site_ids_unique(self):
        world = World([simple_object(1), simple_object(2, z=8.0)])
        ids = [s.site_id for s in world.feature_sites]
        assert len(ids) == len(set(ids))

    def test_owner_index_valid(self):
        world = World([simple_object(1), simple_object(2, z=8.0)])
        for site in world.feature_sites:
            owner = world.objects[site.owner_index]
            assert owner.instance_id == site.instance_id


class TestWorldQueries:
    def test_instance_and_dynamic_ids(self):
        from repro.synthetic import LinearMotion

        static = simple_object(1)
        mover = SceneObject(
            2,
            "cart",
            make_box_mesh((1, 1, 1)),
            ProceduralTexture((90, 90, 90), 2),
            LinearMotion(SE3(np.eye(3), [2, 0, 6]), velocity=[0.5, 0, 0]),
        )
        world = World([static, mover])
        assert world.instance_ids == [1, 2]
        assert world.dynamic_instance_ids == [2]
        assert world.class_of(2) == "cart"

    def test_ground_truth_class_labels(self):
        video = make_dataset("oilfield", num_frames=1, resolution=(160, 120))
        _, truth = video.frame_at(0)
        labels = {m.class_label for m in truth.masks}
        assert "oil_separator" in labels

    def test_ground_truth_depth_within_masks(self):
        video = make_dataset("davis_like", num_frames=1, resolution=(160, 120))
        _, truth = video.frame_at(0)
        for mask in truth.masks:
            depths = truth.depth[mask.mask]
            assert np.isfinite(depths).all()
            assert (depths > 0).all()

    def test_mask_for_missing_instance(self):
        video = make_dataset("davis_like", num_frames=1, resolution=(160, 120))
        _, truth = video.frame_at(0)
        assert truth.mask_for(999) is None
