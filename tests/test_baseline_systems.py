"""Unit tests for the baseline client systems (offload policies, encoding
profiles, result integration)."""

import numpy as np
import pytest

from repro.baselines import (
    BestEffortEdgeClient,
    EAARClient,
    EdgeDuetClient,
    MobileOnlyClient,
)
from repro.encoding.tiles import TileQuality
from repro.image import InstanceMask
from repro.synthetic import make_dataset


@pytest.fixture(scope="module")
def scene():
    video = make_dataset("xiph_like", num_frames=4, resolution=(160, 120))
    frame, truth = video.frame_at(0)
    return video, frame, truth


class TestMobileOnly:
    def test_seconds_per_frame(self, scene):
        _, frame, truth = scene
        client = MobileOnlyClient(np.random.default_rng(0))
        output = client.process_frame(frame, truth, 0.0)
        assert output.compute_ms > 2000  # TFLite-class latency
        assert output.offload is None
        assert len(output.masks) >= 1

    def test_never_offloads(self, scene):
        client = MobileOnlyClient(np.random.default_rng(0))
        assert client.receive_result(0, [], 0.0) == 0.0


class TestBestEffort:
    def test_saturates_then_waits(self, scene):
        _, frame, truth = scene
        client = BestEffortEdgeClient((120, 160))
        sent = 0
        for _ in range(6):
            output = client.process_frame(frame, truth, 0.0)
            if output.offload is not None:
                sent += 1
        assert sent == client.max_outstanding
        client.receive_result(0, [], 0.0)
        assert client.process_frame(frame, truth, 0.0).offload is not None

    def test_renders_raw_results(self, scene):
        _, frame, truth = scene
        client = BestEffortEdgeClient((120, 160))
        mask = InstanceMask(1, "x", np.zeros((120, 160), bool))
        client.receive_result(0, [mask], 0.0)
        output = client.process_frame(frame, truth, 33.0)
        assert output.masks == [mask]

    def test_sends_full_quality(self, scene):
        _, frame, truth = scene
        client = BestEffortEdgeClient((120, 160))
        output = client.process_frame(frame, truth, 0.0)
        assert output.offload is not None
        assert output.offload.encoded.quality_fraction(TileQuality.HIGH) == 1.0
        assert output.offload.instructions is None


class TestEAAREncoding:
    def test_objects_high_background_medium(self, scene):
        _, frame, truth = scene
        client = EAARClient((120, 160))
        client.tracker.reset(truth.masks, frame.gray)
        output = client.process_frame(frame, truth, 0.0)
        encoded = output.offload.encoded
        assert encoded.quality_fraction(TileQuality.HIGH) > 0.0
        assert encoded.quality_fraction(TileQuality.MEDIUM) > 0.3
        assert encoded.quality_fraction(TileQuality.LOW) == 0.0

    def test_one_in_flight(self, scene):
        _, frame, truth = scene
        client = EAARClient((120, 160))
        first = client.process_frame(frame, truth, 0.0)
        second = client.process_frame(frame, truth, 33.0)
        assert first.offload is not None and second.offload is None


class TestEdgeDuetEncoding:
    def test_large_objects_low_quality(self, scene):
        _, frame, truth = scene
        client = EdgeDuetClient((120, 160))
        big = InstanceMask(1, "crate", np.zeros((120, 160), bool))
        big.mask[10:90, 10:120] = True  # area >> small_object_area
        small = InstanceMask(2, "cup", np.zeros((120, 160), bool))
        small.mask[100:112, 100:115] = True
        encoded = client._encode(frame, frame.gray, [big, small])
        # The big object's tiles stay LOW; the small one's go HIGH.
        assert encoded.fidelity_for_box(big.box) < encoded.fidelity_for_box(small.box)

    def test_tracker_is_correlation_filter(self, scene):
        from repro.baselines import MosseTracker

        client = EdgeDuetClient((120, 160))
        assert isinstance(client.tracker, MosseTracker)

    def test_higher_compute_cost_than_eaar(self):
        # Fig. 11: EdgeDuet's correlation tracking costs more per frame
        # than EAAR's motion vectors (49 ms vs 41 ms) at equal object count.
        for objects in (2, 4, 6):
            eaar_cost = (
                EAARClient.tracker_base_ms + EAARClient.tracker_per_object_ms * objects
            )
            duet_cost = (
                EdgeDuetClient.tracker_base_ms
                + EdgeDuetClient.tracker_per_object_ms * objects
            )
            assert duet_cost > eaar_cost
