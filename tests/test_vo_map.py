"""Unit tests for the labeled map."""

import numpy as np
import pytest

from repro.geometry import SE3
from repro.image import InstanceMask
from repro.vo import BACKGROUND, KeyframeRecord, LabeledMap


def make_map(**kwargs):
    return LabeledMap(**kwargs)


def add_points(labeled_map, count, label=None, frame_index=0):
    rng = np.random.default_rng(0)
    points = []
    for _ in range(count):
        points.append(
            labeled_map.add_point(
                position=rng.normal(size=3),
                descriptor=rng.integers(0, 256, 32, dtype=np.uint8),
                label=label,
                frame_index=frame_index,
            )
        )
    return points


class TestPoints:
    def test_add_and_get(self):
        labeled_map = make_map()
        point = labeled_map.add_point([1, 2, 3], np.zeros(32, np.uint8))
        assert labeled_map.get(point.point_id) is point
        assert point.point_id in labeled_map
        assert len(labeled_map) == 1

    def test_ids_are_unique_and_monotonic(self):
        labeled_map = make_map()
        points = add_points(labeled_map, 10)
        ids = [p.point_id for p in points]
        assert ids == sorted(set(ids))

    def test_label_predicates(self):
        labeled_map = make_map()
        unlabeled = labeled_map.add_point([0, 0, 1], np.zeros(32, np.uint8))
        background = labeled_map.add_point(
            [0, 0, 2], np.zeros(32, np.uint8), label=BACKGROUND
        )
        instance = labeled_map.add_point(
            [0, 0, 3], np.zeros(32, np.uint8), label=7, class_label="car"
        )
        assert unlabeled.is_unlabeled and not unlabeled.is_object
        assert background.is_background and not background.is_object
        assert instance.is_object and not instance.is_unlabeled

    def test_relabel(self):
        labeled_map = make_map()
        point = labeled_map.add_point([0, 0, 1], np.zeros(32, np.uint8))
        labeled_map.relabel(point.point_id, 3, "person")
        assert point.label == 3 and point.class_label == "person"

    def test_unlabeled_fraction(self):
        labeled_map = make_map()
        add_points(labeled_map, 3)
        add_points(labeled_map, 1, label=BACKGROUND)
        assert labeled_map.unlabeled_fraction() == pytest.approx(0.75)
        assert make_map().unlabeled_fraction() == 1.0

    def test_descriptor_matrix_shapes(self):
        labeled_map = make_map()
        ids, descriptors = labeled_map.descriptor_matrix()
        assert len(ids) == 0 and descriptors.shape == (0, 32)
        add_points(labeled_map, 5)
        ids, descriptors = labeled_map.descriptor_matrix()
        assert len(ids) == 5 and descriptors.shape == (5, 32)

    def test_object_labels_sorted(self):
        labeled_map = make_map()
        add_points(labeled_map, 1, label=5)
        add_points(labeled_map, 1, label=2)
        add_points(labeled_map, 1, label=BACKGROUND)
        assert labeled_map.object_labels() == [2, 5]


class TestCulling:
    def test_stale_points_culled(self):
        labeled_map = make_map(cull_after_frames=10)
        add_points(labeled_map, 5, frame_index=0)
        fresh = add_points(labeled_map, 2, frame_index=50)
        removed = labeled_map.cull(current_frame=50)
        assert removed == 5
        assert len(labeled_map) == 2
        assert all(p.point_id in labeled_map for p in fresh)

    def test_overflow_evicts_least_recent(self):
        labeled_map = make_map(max_points=5, cull_after_frames=1000)
        old = add_points(labeled_map, 5, frame_index=0)
        new = add_points(labeled_map, 3, frame_index=9)
        labeled_map.cull(current_frame=10)
        assert len(labeled_map) == 5
        assert all(p.point_id in labeled_map for p in new)

    def test_chronic_outliers_culled(self):
        labeled_map = make_map(cull_after_frames=1000)
        (point,) = add_points(labeled_map, 1, frame_index=0)
        point.observation_count = 10
        point.outlier_count = 9
        point.last_seen_frame = 10
        labeled_map.cull(current_frame=10)
        assert point.point_id not in labeled_map

    def test_touch_updates_recency(self):
        labeled_map = make_map(cull_after_frames=10)
        (point,) = add_points(labeled_map, 1, frame_index=0)
        labeled_map.touch(point.point_id, 100)
        labeled_map.cull(current_frame=105)
        assert point.point_id in labeled_map
        assert point.observation_count == 2


class TestKeyframes:
    def make_record(self, frame_index, masks=None):
        return KeyframeRecord(
            frame_index=frame_index,
            timestamp=frame_index / 30.0,
            pose_cw=SE3.identity(),
            pixels=np.zeros((4, 2)),
            point_ids=np.full(4, -1),
            masks=masks,
        )

    def test_add_and_lookup(self):
        labeled_map = make_map()
        labeled_map.add_keyframe(self.make_record(5))
        assert labeled_map.keyframe(5) is not None
        assert labeled_map.keyframe(6) is None

    def test_keyframes_sorted(self):
        labeled_map = make_map()
        for index in (9, 3, 7):
            labeled_map.add_keyframe(self.make_record(index))
        assert [k.frame_index for k in labeled_map.keyframes] == [3, 7, 9]

    def test_keyframes_with_masks_filter(self):
        labeled_map = make_map()
        labeled_map.add_keyframe(self.make_record(1))
        mask = InstanceMask(1, "car", np.ones((4, 4), bool))
        labeled_map.add_keyframe(self.make_record(2, masks=[mask]))
        with_masks = labeled_map.keyframes_with_masks()
        assert [k.frame_index for k in with_masks] == [2]
        assert with_masks[0].mask_for(1) is mask
        assert with_masks[0].mask_for(99) is None

    def test_keyframe_cull_keeps_newest_masked(self):
        labeled_map = make_map(cull_after_frames=10)
        mask = InstanceMask(1, "car", np.ones((4, 4), bool))
        labeled_map.add_keyframe(self.make_record(0, masks=[mask]))
        labeled_map.add_keyframe(self.make_record(1))
        labeled_map.cull(current_frame=500)
        # Unmasked old keyframe culled; masked one retained (newest mask
        # for instance 1).
        assert labeled_map.keyframe(1) is None
        assert labeled_map.keyframe(0) is not None

    def test_memory_estimate_grows(self):
        labeled_map = make_map()
        empty = labeled_map.memory_bytes()
        add_points(labeled_map, 100)
        labeled_map.add_keyframe(self.make_record(1))
        assert labeled_map.memory_bytes() > empty
