"""Tests for the baseline local trackers (motion vector, MOSSE)."""

import numpy as np
import pytest

from repro.baselines import (
    MosseTracker,
    MotionVectorTracker,
    block_match_shift,
    shift_mask,
)
from repro.image import InstanceMask, mask_iou


def textured_scene(shape=(120, 160), seed=0):
    rng = np.random.default_rng(seed)
    image = np.full(shape, 120.0, dtype=np.float32)
    rr, cc = np.mgrid[0 : shape[0], 0 : shape[1]]
    for _ in range(60):
        r, c = rng.integers(5, shape[0] - 5), rng.integers(5, shape[1] - 5)
        radius = rng.integers(2, 4)
        image[(rr - r) ** 2 + (cc - c) ** 2 <= radius**2] = float(
            rng.choice([20, 240])
        )
    return image


class TestShiftMask:
    def test_shift_moves_pixels(self):
        mask = np.zeros((10, 10), bool)
        mask[4, 4] = True
        shifted = shift_mask(mask, 2, -1)
        assert shifted[6, 3]
        assert shifted.sum() == 1

    def test_shift_clips_at_border(self):
        mask = np.ones((5, 5), bool)
        shifted = shift_mask(mask, 3, 3)
        assert shifted.sum() == 4  # only the 2x2 corner survives


class TestBlockMatch:
    def test_recovers_known_shift(self):
        image = textured_scene(seed=1)
        shifted = np.roll(image, shift=(3, -5), axis=(0, 1))
        dy, dx = block_match_shift(image, shifted, (40, 30, 120, 90))
        assert (dy, dx) == (3, -5)

    def test_zero_shift(self):
        image = textured_scene(seed=2)
        assert block_match_shift(image, image, (40, 30, 120, 90)) == (0, 0)

    def test_degenerate_box(self):
        image = textured_scene(seed=3)
        assert block_match_shift(image, image, (10, 10, 12, 12)) == (0, 0)


class TestMotionVectorTracker:
    def make_object(self, shape=(120, 160)):
        mask = np.zeros(shape, bool)
        mask[40:70, 50:90] = True
        return InstanceMask(1, "car", mask)

    def test_tracks_translation(self):
        image = textured_scene(seed=4)
        instance = self.make_object()
        tracker = MotionVectorTracker()
        tracker.reset([instance], image)
        moved = np.roll(image, shift=(4, 6), axis=(0, 1))
        tracked = tracker.update(moved)
        expected = shift_mask(instance.mask, 4, 6)
        assert mask_iou(tracked[0].mask, expected) > 0.85

    def test_sequential_tracking(self):
        image = textured_scene(seed=5)
        instance = self.make_object()
        tracker = MotionVectorTracker()
        tracker.reset([instance], image)
        current = image
        total = 0
        for _ in range(4):
            current = np.roll(current, shift=(0, 3), axis=(0, 1))
            tracked = tracker.update(current)
            total += 3
        expected = shift_mask(instance.mask, 0, total)
        assert mask_iou(tracked[0].mask, expected) > 0.75

    def test_empty_reset(self):
        tracker = MotionVectorTracker()
        tracker.reset([], textured_scene())
        assert tracker.update(textured_scene()) == []


class TestMosseTracker:
    def test_tracks_translation(self):
        image = textured_scene(seed=6)
        mask = np.zeros(image.shape, bool)
        mask[40:72, 50:94] = True
        instance = InstanceMask(1, "crate", mask)
        tracker = MosseTracker()
        tracker.reset([instance], image)
        moved = np.roll(image, shift=(3, 5), axis=(0, 1))
        tracked = tracker.update(moved)
        assert len(tracked) == 1
        expected = shift_mask(mask, 3, 5)
        assert mask_iou(tracked[0].mask, expected) > 0.7

    def test_shift_only_fails_on_scale_change(self):
        """The paper's point: shift-only trackers cannot follow scale
        changes — IoU degrades even under perfect translation tracking."""
        shape = (120, 160)
        rr, cc = np.mgrid[0 : shape[0], 0 : shape[1]]
        small = (rr - 60) ** 2 + (cc - 80) ** 2 <= 20**2
        grown = (rr - 60) ** 2 + (cc - 80) ** 2 <= 28**2
        # Best possible shift-only prediction of `grown` from `small` is
        # `small` itself.
        assert mask_iou(small, grown) < 0.6

    def test_tiny_objects_skipped(self):
        image = textured_scene(seed=7)
        mask = np.zeros(image.shape, bool)
        mask[10:13, 10:13] = True
        tracker = MosseTracker()
        tracker.reset([InstanceMask(1, "dot", mask)], image)
        assert tracker.masks == []
