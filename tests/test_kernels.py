"""Property-style equivalence tests: every vectorized hot-path kernel
against its retained scalar ``*_reference`` implementation.

These are the correctness contract behind the ``micro`` bench suite
(:mod:`repro.obs.kernelbench`): the bench gates *speed*, these tests gate
*equivalence* — over random seeds, degenerate shapes, and the branch
points of each kernel (empty inputs, dense-vs-sparse paths, clamps).
Most pairs are bit-identical; the k-NN depth lookup is atol-bounded
because ``cKDTree`` and the argsort reference may order exact distance
ties differently.
"""

import numpy as np
import pytest
from types import SimpleNamespace

from repro.features.fast import (
    _max_consecutive_true_reference,
    arc_run_at_least,
)
from repro.geometry.bundle_adjustment import (
    _dlt_rows,
    _dlt_rows_reference,
    _residuals_and_jacobian,
    _residuals_and_jacobian_reference,
    _score_hypotheses_reference,
)
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3
from repro.geometry.triangulation import reprojection_errors_batch
from repro.model.acceleration import InferenceInstruction
from repro.model.maskrcnn import SimulatedSegmentationModel
from repro.model.rpn import _assemble_proposals_reference
from repro.transfer.mask_transfer import (
    _contour_depths_reference,
    contour_depths,
)

CAMERA = PinholeCamera(fx=500.0, fy=500.0, cx=320.0, cy=240.0, width=640, height=480)
CAMERA_MATRIX = np.array(
    [[500.0, 0.0, 320.0], [0.0, 500.0, 240.0], [0.0, 0.0, 1.0]]
)


def random_points(rng, n, z_low=2.0, z_high=8.0):
    return np.column_stack(
        [
            rng.uniform(-2.0, 2.0, n),
            rng.uniform(-1.5, 1.5, n),
            rng.uniform(z_low, z_high, n),
        ]
    )


class TestArcRun:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("density", [0.05, 0.3, 0.9])
    def test_matches_reference_both_branches(self, seed, density):
        # density 0.9 forces the dense BLAS-pack branch, the sparse
        # densities the per-plane gather branch.
        rng = np.random.default_rng(seed)
        flags = rng.random((16, 500)) < density
        for arc in (1, 5, 9, 12, 16):
            vec = arc_run_at_least(flags, arc)
            ref = _max_consecutive_true_reference(flags) >= arc
            assert np.array_equal(vec, ref), (seed, density, arc)

    def test_2d_inner_shape_preserved(self):
        rng = np.random.default_rng(3)
        flags = rng.random((16, 12, 17)) < 0.4
        vec = arc_run_at_least(flags, 9)
        ref = _max_consecutive_true_reference(flags) >= 9
        assert vec.shape == (12, 17)
        assert np.array_equal(vec, ref)

    def test_empty_input(self):
        flags = np.zeros((16, 0), dtype=bool)
        assert arc_run_at_least(flags, 9).shape == (0,)

    def test_wraparound_run(self):
        # A run crossing the circular boundary: flags set at indices
        # 12..15 and 0..4 form a contiguous circular run of 9.
        flags = np.zeros((16, 1), dtype=bool)
        flags[list(range(12, 16)) + list(range(0, 5)), 0] = True
        assert arc_run_at_least(flags, 9)[0]
        assert not arc_run_at_least(flags, 10)[0]

    def test_all_true_is_run_16(self):
        flags = np.ones((16, 3), dtype=bool)
        assert arc_run_at_least(flags, 16).all()

    def test_rejects_wrong_leading_axis(self):
        with pytest.raises(ValueError):
            arc_run_at_least(np.zeros((8, 4), dtype=bool), 9)


class TestRPNAssemble:
    @pytest.mark.parametrize("seed", range(5))
    def test_gt_index_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = 200
        boxes = rng.uniform(0.0, 320.0, (n, 4))
        scores = rng.uniform(0.0, 1.0, n)
        best_index = rng.integers(0, 6, n)
        best_iou = rng.uniform(0.0, 1.0, n)
        gt_index = np.where(best_iou >= 0.3, best_index, -1).astype(np.int64)
        proposals = _assemble_proposals_reference(
            boxes, scores, best_index, best_iou
        )
        assert np.array_equal(
            gt_index, np.array([p.best_gt_index for p in proposals])
        )
        assert np.allclose(scores, [p.objectness for p in proposals])

    def test_empty(self):
        empty = np.zeros(0)
        assert (
            _assemble_proposals_reference(
                np.zeros((0, 4)), empty, empty.astype(int), empty
            )
            == []
        )

    def test_threshold_idempotent(self):
        # Feeding an already-thresholded index column back through the
        # assembly leaves it unchanged: the -1 sentinel never flips back.
        rng = np.random.default_rng(11)
        n = 64
        best_index = rng.integers(0, 4, n)
        best_iou = rng.uniform(0.0, 1.0, n)
        once = np.where(best_iou >= 0.3, best_index, -1).astype(np.int64)
        twice = np.where(best_iou >= 0.3, once, -1).astype(np.int64)
        assert np.array_equal(once, twice)


class TestClassConfidences:
    @pytest.mark.parametrize("seed", range(4))
    def test_stream_identical_to_reference(self, seed):
        # Same-seeded Generators: one size-n normal draw consumes the
        # stream exactly like n scalar draws, so the outputs are
        # bit-identical, not merely close.
        rng = np.random.default_rng(seed)
        n = 100
        classes = ["person", "car", "chair", "dog"]
        gt_instances = [SimpleNamespace(class_label=c) for c in classes]
        instructions = [
            InferenceInstruction(
                box=np.array([0.0, 0.0, 32.0, 32.0]), class_label=c
            )
            for c in classes[:2]
        ]
        boxes = rng.uniform(0.0, 320.0, (n, 4))
        scores = rng.uniform(0.0, 1.0, n)
        best_index = rng.integers(0, len(classes), n)
        best_iou = rng.uniform(0.0, 1.0, n)
        gt_index = np.where(best_iou >= 0.3, best_index, -1).astype(np.int64)
        proposals = _assemble_proposals_reference(
            boxes, scores, best_index, best_iou
        )
        vec = SimulatedSegmentationModel._class_confidences(
            SimpleNamespace(_rng=np.random.default_rng(seed + 99)),
            best_iou,
            gt_index,
            instructions,
            gt_instances,
        )
        ref = SimulatedSegmentationModel._class_confidences_reference(
            SimpleNamespace(_rng=np.random.default_rng(seed + 99)),
            proposals,
            instructions,
            gt_instances,
        )
        assert np.array_equal(vec, ref)

    def test_no_gt_instances(self):
        rng = np.random.default_rng(0)
        best_iou = rng.uniform(0.0, 1.0, 16)
        gt_index = np.full(16, -1, dtype=np.int64)
        vec = SimulatedSegmentationModel._class_confidences(
            SimpleNamespace(_rng=np.random.default_rng(5)),
            best_iou,
            gt_index,
            [],
            [],
        )
        ref = SimulatedSegmentationModel._class_confidences_reference(
            SimpleNamespace(_rng=np.random.default_rng(5)),
            _assemble_proposals_reference(
                rng.uniform(0.0, 320.0, (16, 4)),
                best_iou,
                np.zeros(16, dtype=int),
                np.zeros(16),  # iou 0 => all background
            ),
            [],
            [],
        )
        assert vec.shape == ref.shape == (16,)
        assert ((0.0 <= vec) & (vec <= 1.0)).all()


class TestBundleAdjustmentKernels:
    @pytest.mark.parametrize("seed", range(5))
    def test_jacobian_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        pose = SE3.exp(rng.normal(scale=0.05, size=6))
        points = random_points(rng, 120)
        pixels = rng.uniform((0.0, 0.0), (640.0, 480.0), (120, 2))
        res_v, jac_v, valid_v = _residuals_and_jacobian(
            CAMERA, pose, points, pixels
        )
        res_r, jac_r, valid_r = _residuals_and_jacobian_reference(
            CAMERA, pose, points, pixels
        )
        assert np.array_equal(valid_v, valid_r)
        assert np.array_equal(res_v, res_r)
        assert np.array_equal(jac_v, jac_r)

    def test_jacobian_behind_camera_points_flagged(self):
        # Points at or behind the camera plane exercise the safe-z branch
        # in both implementations identically.
        rng = np.random.default_rng(7)
        points = random_points(rng, 40, z_low=-1.0, z_high=1.0)
        pixels = rng.uniform((0.0, 0.0), (640.0, 480.0), (40, 2))
        pose = SE3.identity()
        res_v, jac_v, valid_v = _residuals_and_jacobian(
            CAMERA, pose, points, pixels
        )
        res_r, jac_r, valid_r = _residuals_and_jacobian_reference(
            CAMERA, pose, points, pixels
        )
        assert not valid_v.all()  # some depths really were invalid
        assert np.array_equal(valid_v, valid_r)
        assert np.array_equal(res_v, res_r)
        assert np.array_equal(jac_v, jac_r)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("num_poses", [1, 3, 17])
    def test_ransac_scores_match_reference(self, seed, num_poses):
        rng = np.random.default_rng(seed)
        poses = [
            SE3.exp(rng.normal(scale=0.1, size=6)) for _ in range(num_poses)
        ]
        points = random_points(rng, 60)
        pixels = rng.uniform((0.0, 0.0), (640.0, 480.0), (60, 2))
        vec = reprojection_errors_batch(CAMERA_MATRIX, poses, points, pixels)
        ref = _score_hypotheses_reference(CAMERA_MATRIX, poses, points, pixels)
        assert vec.shape == (num_poses, 60)
        assert np.allclose(vec, ref, rtol=0.0, atol=1e-9)

    def test_ransac_empty_pose_list(self):
        points = np.zeros((5, 3))
        pixels = np.zeros((5, 2))
        vec = reprojection_errors_batch(CAMERA_MATRIX, [], points, pixels)
        ref = _score_hypotheses_reference(CAMERA_MATRIX, [], points, pixels)
        assert vec.shape == ref.shape == (0, 5)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("n", [1, 6, 50])
    def test_dlt_rows_match_reference(self, seed, n):
        rng = np.random.default_rng(seed)
        normalized = rng.normal(size=(n, 2))
        homogeneous = np.column_stack([rng.normal(size=(n, 3)), np.ones(n)])
        vec = _dlt_rows(normalized, homogeneous)
        ref = _dlt_rows_reference(normalized, homogeneous)
        assert vec.shape == (2 * n, 12)
        assert np.array_equal(vec, ref)


class TestContourDepths:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_reference(self, seed, k):
        rng = np.random.default_rng(seed)
        contour_uv = rng.uniform((0.0, 0.0), (640.0, 480.0), (50, 2))
        feature_pixels = rng.uniform((0.0, 0.0), (640.0, 480.0), (80, 2))
        depths = rng.uniform(2.0, 8.0, 80)
        vec = contour_depths(contour_uv, feature_pixels, depths, k)
        ref = _contour_depths_reference(contour_uv, feature_pixels, depths, k)
        # Not bit-identical by design: cKDTree and the argsort reference
        # may break exact distance ties differently (measure zero here).
        assert np.allclose(vec, ref, rtol=0.0, atol=1e-9)

    def test_k_clamped_to_feature_count(self):
        rng = np.random.default_rng(2)
        contour_uv = rng.uniform((0.0, 0.0), (64.0, 64.0), (10, 2))
        feature_pixels = rng.uniform((0.0, 0.0), (64.0, 64.0), (3, 2))
        depths = np.array([1.0, 2.0, 3.0])
        vec = contour_depths(contour_uv, feature_pixels, depths, 50)
        ref = _contour_depths_reference(contour_uv, feature_pixels, depths, 50)
        # k > population: every estimate is the global mean.
        assert np.allclose(vec, depths.mean())
        assert np.allclose(vec, ref)

    def test_single_neighbor_branch(self):
        # k=1: cKDTree returns a 1-D index array; the reshape branch must
        # keep the per-pixel mean well-formed.
        contour_uv = np.array([[0.0, 0.0], [10.0, 10.0]])
        feature_pixels = np.array([[0.1, 0.0], [10.0, 10.1]])
        depths = np.array([4.0, 6.0])
        vec = contour_depths(contour_uv, feature_pixels, depths, 1)
        assert np.allclose(vec, [4.0, 6.0])

    def test_prebuilt_tree_equivalent(self):
        from scipy.spatial import cKDTree

        rng = np.random.default_rng(8)
        contour_uv = rng.uniform((0.0, 0.0), (640.0, 480.0), (30, 2))
        feature_pixels = rng.uniform((0.0, 0.0), (640.0, 480.0), (60, 2))
        depths = rng.uniform(2.0, 8.0, 60)
        tree = cKDTree(feature_pixels)
        assert np.array_equal(
            contour_depths(contour_uv, feature_pixels, depths, 5, tree=tree),
            contour_depths(contour_uv, feature_pixels, depths, 5),
        )
