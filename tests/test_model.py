"""Tests for the simulated segmentation models and CIIA acceleration."""

import numpy as np
import pytest

from repro.image import InstanceMask, mask_iou
from repro.model import (
    AnchorGrid,
    InferenceInstruction,
    SimulatedSegmentationModel,
    box_iou_matrix,
    degrade_mask_to_iou,
    dynamic_anchor_placement,
    fast_nms,
    instructions_from_masks,
    nms,
    prune_rois,
    simulate_rpn,
)
from repro.model.costs import MODEL_COSTS
from repro.model.rpn import Proposal


def disk_mask(shape, center, radius):
    rr, cc = np.mgrid[0 : shape[0], 0 : shape[1]]
    return (rr - center[0]) ** 2 + (cc - center[1]) ** 2 <= radius**2


class TestAnchorGrid:
    def test_level_structure(self):
        grid = AnchorGrid(240, 320)
        assert [l.name for l in grid.levels] == ["P2", "P3", "P4", "P5", "P6"]
        p2 = grid.level("P2")
        assert p2.grid_height == 60 and p2.grid_width == 80
        assert p2.num_anchors == 60 * 80 * 3

    def test_total_counts(self):
        grid = AnchorGrid(240, 320)
        assert grid.total_locations == sum(l.num_locations for l in grid.levels)
        assert grid.total_anchors == 3 * grid.total_locations

    def test_anchor_boxes_centered(self):
        grid = AnchorGrid(240, 320)
        p4 = grid.level("P4")
        boxes = p4.boxes.reshape(p4.num_locations, 3, 4)
        centers = (boxes[..., :2] + boxes[..., 2:]) / 2.0
        assert np.allclose(centers, p4.centers[:, None, :])

    def test_locations_in_boxes(self):
        grid = AnchorGrid(240, 320)
        masks = grid.locations_in_boxes(np.array([[100, 80, 180, 160]]), margin=0.0)
        p2 = grid.level("P2")
        selected = masks["P2"]
        inside = p2.centers[selected]
        assert (inside[:, 0] >= 100).all() and (inside[:, 0] <= 180).all()
        # Selection is a strict subset.
        assert 0 < selected.sum() < p2.num_locations

    def test_unknown_level_raises(self):
        with pytest.raises(KeyError):
            AnchorGrid(64, 64).level("P9")


class TestNMS:
    def test_iou_matrix_known_values(self):
        a = np.array([[0, 0, 10, 10]])
        b = np.array([[0, 0, 10, 10], [5, 0, 15, 10], [20, 20, 30, 30]])
        iou = box_iou_matrix(a, b)[0]
        assert iou[0] == pytest.approx(1.0)
        assert iou[1] == pytest.approx(50 / 150)
        assert iou[2] == 0.0

    def test_nms_suppresses_overlaps(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11], [30, 30, 40, 40]])
        scores = np.array([0.9, 0.8, 0.7])
        keep = nms(boxes, scores, iou_threshold=0.5)
        assert list(keep) == [0, 2]

    def test_fast_nms_matches_greedy_on_simple_case(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11], [30, 30, 40, 40]])
        scores = np.array([0.9, 0.8, 0.7])
        assert set(fast_nms(boxes, scores, 0.5)) == set(nms(boxes, scores, 0.5))

    def test_fast_nms_empty(self):
        assert len(fast_nms(np.zeros((0, 4)), np.zeros(0))) == 0


class TestDegrade:
    @pytest.mark.parametrize("target", [0.95, 0.85, 0.7])
    def test_hits_target_iou(self, target):
        mask = disk_mask((120, 160), (60, 80), 30)
        rng = np.random.default_rng(0)
        achieved = [
            mask_iou(mask, degrade_mask_to_iou(mask, target, rng)) for _ in range(10)
        ]
        # Degradation should land at or slightly below the target.
        assert np.median(achieved) == pytest.approx(target, abs=0.08)
        assert max(achieved) <= target + 0.05

    def test_empty_mask_passthrough(self):
        empty = np.zeros((20, 20), bool)
        out = degrade_mask_to_iou(empty, 0.8, np.random.default_rng(0))
        assert not out.any()

    def test_perfect_target_is_identity(self):
        mask = disk_mask((40, 40), (20, 20), 8)
        out = degrade_mask_to_iou(mask, 1.0, np.random.default_rng(0))
        assert mask_iou(mask, out) == 1.0


class TestRPN:
    def test_full_grid_produces_budget_proposals(self):
        grid = AnchorGrid(240, 320)
        gt = np.array([[100, 80, 180, 160]])
        out = simulate_rpn(grid, gt, np.random.default_rng(0), max_proposals=500)
        assert len(out.proposals) == 500
        assert out.location_fraction == 1.0
        assert out.anchors_evaluated == grid.total_anchors

    def test_top_proposals_cover_object(self):
        grid = AnchorGrid(240, 320)
        gt = np.array([[100, 80, 180, 160]])
        out = simulate_rpn(grid, gt, np.random.default_rng(0), max_proposals=300)
        top = out.proposals[:20]
        # The best-scoring proposals overlap the object strongly.
        assert np.mean([p.best_gt_iou for p in top]) > 0.5

    def test_restricted_locations_cut_work(self):
        grid = AnchorGrid(240, 320)
        gt = np.array([[100, 80, 180, 160]])
        masks = grid.locations_in_boxes(gt, margin=0.3)
        out = simulate_rpn(
            grid, gt, np.random.default_rng(0), location_masks=masks
        )
        assert out.location_fraction < 0.5
        assert out.anchors_evaluated < grid.total_anchors / 2


class TestPruning:
    def make_proposals(self, rng, count, center_box):
        proposals = []
        for _ in range(count):
            jitter = rng.normal(scale=8.0, size=4)
            proposals.append(
                Proposal(
                    box=np.asarray(center_box, dtype=float) + jitter,
                    objectness=float(rng.uniform(0.4, 1.0)),
                    best_gt_index=0,
                    best_gt_iou=float(rng.uniform(0.4, 1.0)),
                )
            )
        return proposals

    def test_dominance_rule(self):
        # Hand-built case of Fig. 7: RoI with both lower confidence and
        # lower init-box IoU must be pruned.
        init = np.array([100.0, 100.0, 200.0, 200.0])
        instruction = InferenceInstruction(box=init, class_label="car")
        good = Proposal(np.array([102, 101, 198, 199.0]), 0.9, 0, 0.9)
        dominated = Proposal(np.array([120, 120, 180, 180.0]), 0.6, 0, 0.6)
        better_loc = Proposal(np.array([100, 100, 200, 200.0]), 0.5, 0, 0.5)
        result = prune_rois(
            [good, dominated, better_loc], [instruction], np.array([0.9, 0.6, 0.5])
        )
        kept_boxes = [tuple(p.box) for p in result.kept]
        assert tuple(good.box) in kept_boxes
        assert tuple(dominated.box) not in kept_boxes  # dominated by `good`
        assert tuple(better_loc.box) in kept_boxes  # lower conf but better IoU

    def test_prune_reduces_count_substantially(self):
        rng = np.random.default_rng(1)
        instruction = InferenceInstruction(
            box=np.array([100.0, 100.0, 200.0, 200.0]), class_label="car"
        )
        proposals = self.make_proposals(rng, 200, [100, 100, 200, 200])
        confidences = np.array([p.objectness for p in proposals])
        result = prune_rois(proposals, [instruction], confidences)
        assert result.num_kept < 0.3 * result.num_input
        assert result.num_pruned_dominated > 0

    def test_unknown_areas_use_fast_nms(self):
        rng = np.random.default_rng(2)
        proposals = self.make_proposals(rng, 50, [300, 300, 380, 380])
        instruction = InferenceInstruction(
            box=np.array([0.0, 0.0, 50.0, 50.0]), class_label="car"
        )
        confidences = np.array([p.objectness for p in proposals])
        result = prune_rois(proposals, [instruction], confidences)
        assert result.num_pruned_dominated == 0
        assert result.num_pruned_nms > 0

    def test_empty(self):
        result = prune_rois([], [], np.zeros(0))
        assert result.num_input == 0 and result.kept == []


class TestSimulatedModel:
    def scene(self):
        shape = (240, 320)
        masks = [
            InstanceMask(1, "car", disk_mask(shape, (120, 120), 40)),
            InstanceMask(2, "person", disk_mask(shape, (80, 240), 25)),
        ]
        return shape, masks

    def test_full_frame_latency_calibration(self):
        # Paper Fig. 2b: Mask R-CNN ~400 ms, YOLACT ~120 ms, YOLOv3 ~30 ms.
        assert MODEL_COSTS["mask_rcnn_r101"].full_frame_latency() == pytest.approx(400, abs=15)
        assert MODEL_COSTS["yolact_r50"].full_frame_latency() == pytest.approx(120, abs=10)
        assert MODEL_COSTS["yolov3"].full_frame_latency(0) == pytest.approx(30, abs=5)

    def test_mask_rcnn_quality(self):
        shape, masks = self.scene()
        model = SimulatedSegmentationModel("mask_rcnn_r101", rng=np.random.default_rng(0))
        result = model.infer(masks, shape)
        assert len(result.masks) == 2
        ious = [
            mask_iou(d.mask, next(m for m in masks if m.instance_id == d.instance_id).mask)
            for d in result.masks
        ]
        assert np.mean(ious) > 0.85

    def test_yolact_coarser_but_faster(self):
        shape, masks = self.scene()
        rng = np.random.default_rng(0)
        mask_rcnn = SimulatedSegmentationModel("mask_rcnn_r101", rng=rng)
        yolact = SimulatedSegmentationModel("yolact_r50", rng=np.random.default_rng(0))
        result_m = mask_rcnn.infer(masks, shape)
        result_y = yolact.infer(masks, shape)
        assert result_y.total_ms < result_m.total_ms / 2
        iou_y = np.mean(
            [
                mask_iou(d.mask, next(m for m in masks if m.instance_id == d.instance_id).mask)
                for d in result_y.masks
            ]
        )
        assert iou_y < 0.88

    def test_acceleration_shape_matches_fig14(self):
        shape, masks = self.scene()
        model = SimulatedSegmentationModel("mask_rcnn_r101", rng=np.random.default_rng(0))
        instructions = instructions_from_masks(masks)
        full = model.infer(masks, shape, instructions=None)
        dap = model.infer(masks, shape, instructions=instructions, use_roi_pruning=False)
        prune = model.infer(masks, shape, instructions=instructions, use_dynamic_anchors=False)
        both = model.infer(masks, shape, instructions=instructions)
        # DAP cuts RPN-stage latency substantially (paper: -46%).
        assert 0.25 < 1 - dap.rpn_ms / full.rpn_ms < 0.75
        # Pruning cuts inference latency (paper: -43%).
        assert 0.25 < 1 - prune.inference_ms / full.inference_ms < 0.75
        assert prune.rpn_ms == pytest.approx(full.rpn_ms)
        # Combined cuts total latency by about half (paper: -48%).
        assert 0.35 < 1 - both.total_ms / full.total_ms < 0.75
        # Accuracy preserved: detections still cover both objects.
        assert len(both.masks) == 2

    def test_device_scaling(self):
        shape, masks = self.scene()
        tx2 = SimulatedSegmentationModel("mask_rcnn_r101", "jetson_tx2", np.random.default_rng(0))
        xavier = SimulatedSegmentationModel("mask_rcnn_r101", "jetson_xavier", np.random.default_rng(0))
        assert xavier.infer(masks, shape).total_ms < tx2.infer(masks, shape).total_ms

    def test_no_detection_outside_instructed_area(self):
        shape, masks = self.scene()
        model = SimulatedSegmentationModel("mask_rcnn_r101", rng=np.random.default_rng(0))
        # Instruct only around instance 1; instance 2 has no coverage and
        # no new-area box, so no RoI can cover it.
        instructions = instructions_from_masks([masks[0]])
        result = model.infer(masks, shape, instructions=instructions)
        detected_ids = {d.instance_id for d in result.masks}
        assert 1 in detected_ids
        assert 2 not in detected_ids

    def test_new_area_boxes_restore_recall(self):
        shape, masks = self.scene()
        model = SimulatedSegmentationModel("mask_rcnn_r101", rng=np.random.default_rng(0))
        instructions = instructions_from_masks(
            [masks[0]], new_area_boxes=[np.array([180, 30, 310, 130])]
        )
        result = model.infer(masks, shape, instructions=instructions)
        assert {d.instance_id for d in result.masks} == {1, 2}

    def test_empty_scene(self):
        model = SimulatedSegmentationModel("mask_rcnn_r101", rng=np.random.default_rng(0))
        result = model.infer([], (240, 320))
        assert result.masks == []
        assert result.total_ms > 0
