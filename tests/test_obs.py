"""Tests for the observability subsystem: metrics registry, span tracer,
exporters, trace determinism and the disabled-path guarantees."""

import json
import math

import numpy as np
import pytest

from repro.eval import ExperimentSpec, run_experiment
from repro.eval.cli import main as cli_main
from repro.obs import (
    FRAME_BUDGET_MS,
    NULL_METRICS,
    NULL_TRACER,
    Counter,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    evaluate_slo,
    exact_percentile,
    mean_frame_latency_ms,
    stage_summary,
    stage_table,
    to_jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)


def traced_spec(**overrides) -> ExperimentSpec:
    base = dict(
        system="edgeis",
        dataset="xiph_like",
        num_frames=70,
        resolution=(160, 120),
        trace=True,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(4)
        assert registry.counter("requests") is counter
        assert counter.value == 5
        registry.gauge("depth").set(3)
        assert registry.gauge("depth").value == 3.0

    def test_gauge_envelope(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        assert gauge.changes == 0
        gauge.set(3.0)
        gauge.set(7.0)
        gauge.set(7.0)  # no-op write: not a change
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.min_value == 1.0
        assert gauge.max_value == 7.0
        assert gauge.changes == 3
        assert gauge.last_change == -6.0
        snap = registry.snapshot()["gauges"]["depth"]
        assert snap == {"value": 1.0, "min": 1.0, "max": 7.0, "changes": 3}

    def test_unwritten_gauge_snapshot_collapses_envelope(self):
        registry = MetricsRegistry()
        registry.gauge("idle")
        snap = registry.snapshot()["gauges"]["idle"]
        assert snap == {"value": 0.0, "min": 0.0, "max": 0.0, "changes": 0}

    def test_registry_value_views(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc()
        registry.gauge("g").set(4.5)
        assert registry.counter_values() == {"a": 1, "b": 2}
        assert registry.gauge_values() == {"g": 4.5}

    def test_histogram_quantiles(self):
        hist = Histogram("lat", buckets=(1.0, 2.0, 5.0, 10.0))
        for value in (0.5, 1.5, 1.6, 3.0, 7.0, 20.0):
            hist.observe(value)
        assert hist.count == 6
        assert hist.mean == pytest.approx(33.6 / 6)
        assert hist.quantile(0.0) == 0.5
        assert hist.quantile(1.0) == 20.0
        assert 1.0 <= hist.quantile(0.5) <= 5.0
        assert hist.quantile(0.95) >= 5.0

    def test_empty_histogram(self):
        hist = Histogram("lat")
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0

    def test_snapshot_sorted_and_serializable(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must be JSON-clean

    def test_null_registry_is_inert(self):
        handle = NULL_METRICS.counter("anything")
        handle.inc(100)
        handle.observe(5.0)
        handle.set(2.0)
        assert NULL_METRICS.snapshot()["counters"] == {}
        assert not NULL_METRICS.enabled


class TestTracer:
    def test_span_nesting_records_parent(self):
        tracer = Tracer()
        with tracer.span("outer", start_ms=0.0, dur_ms=10.0):
            with tracer.span("inner", start_ms=2.0, dur_ms=3.0):
                pass
        inner = next(s for s in tracer.spans if s.name == "inner")
        outer = next(s for s in tracer.spans if s.name == "outer")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.end_ms == 5.0

    def test_set_now_anchors_events(self):
        tracer = Tracer()
        tracer.set_now(123.0)
        event = tracer.event("tick", reason="test")
        assert event.ts_ms == 123.0
        assert event.attrs["reason"] == "test"

    def test_deferred_duration_assignment(self):
        tracer = Tracer()
        with tracer.span("work", start_ms=1.0) as span:
            span.dur_ms = 42.0
        assert tracer.spans[0].dur_ms == 42.0

    def test_records_are_seq_ordered(self):
        tracer = Tracer()
        tracer.event("first")
        tracer.add_span("second", dur_ms=1.0)
        tracer.event("third")
        assert [r["seq"] for r in tracer.records()] == [0, 1, 2]

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("x", frame=1) as span:
            span.dur_ms = 5.0
            span.annotate(a=1)
        NULL_TRACER.event("y", reason="z")
        NULL_TRACER.add_span("w", dur_ms=1.0)
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.events == ()
        assert not NULL_TRACER.enabled

    def test_null_tracer_mirrors_tracer_api(self):
        """Instrumented code never branches on the tracer type, so every
        public attribute of a live Tracer must exist on NULL_TRACER."""
        real = Tracer()
        for name in dir(real):
            if name.startswith("_"):
                continue
            assert hasattr(NULL_TRACER, name), f"NullTracer lacks {name!r}"

    def test_null_span_mirrors_active_span_api(self):
        from repro.obs.trace import _NULL_SPAN_RECORD

        real = Tracer()
        with real.span("probe", start_ms=0.0, dur_ms=1.0) as live:
            live_names = [n for n in dir(live) if not n.startswith("_")]
        null = NULL_TRACER.span("probe")
        for name in live_names:
            assert hasattr(null, name), f"_NullSpan lacks {name!r}"
        # Writes are swallowed, the record sink is shared, chaining works.
        null.dur_ms = 99.0
        assert null.dur_ms == 0.0
        assert null.set_sim(start_ms=1.0, dur_ms=2.0) is null
        assert null.span is _NULL_SPAN_RECORD


class TestPipelineTracing:
    def test_traced_run_matches_untraced_run(self):
        plain = run_experiment(traced_spec(trace=False)).result
        traced = run_experiment(traced_spec()).result
        assert traced.mean_iou() == plain.mean_iou()
        assert traced.mean_latency_ms() == plain.mean_latency_ms()
        assert traced.offload_count == plain.offload_count

    def test_trace_is_deterministic(self):
        first = run_experiment(traced_spec()).tracer
        second = run_experiment(traced_spec()).tracer
        lines_first = to_jsonl_lines(first)
        lines_second = to_jsonl_lines(second)
        assert lines_first == lines_second  # byte-identical JSONL
        assert "\n".join(lines_first) == "\n".join(lines_second)

    def test_disabled_tracing_adds_no_events(self):
        outcome = run_experiment(traced_spec(trace=False))
        assert outcome.tracer is None
        # The shared no-op tracer must have stayed empty.
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.events == ()

    def test_lanes_and_offload_reasons(self):
        tracer = run_experiment(traced_spec()).tracer
        assert set(tracer.lanes()) == {"client", "channel", "server"}
        reasons = {
            event.attrs["reason"]
            for event in tracer.events
            if event.name == "offload.decision"
        }
        assert reasons  # decisions carry their reasons
        dispatch_reasons = {
            event.attrs["reason"]
            for event in tracer.events
            if event.name == "offload.dispatch"
        }
        assert dispatch_reasons <= {
            "initializing",
            "new-content",
            "object-motion",
            "refresh",
            "best-effort",
        }

    def test_mean_latency_reconciles_within_1_percent(self):
        outcome = run_experiment(traced_spec(num_frames=90))
        traced_ms = mean_frame_latency_ms(
            outcome.tracer, warmup_frames=outcome.spec.warmup_frames
        )
        reported_ms = outcome.result.mean_latency_ms()
        assert traced_ms == pytest.approx(reported_ms, rel=0.01)

    def test_client_stage_spans_tile_the_process_span(self):
        tracer = run_experiment(traced_spec()).tracer
        process_spans = {
            s.span_id: s for s in tracer.spans if s.name == "client.process"
        }
        children: dict[int, list] = {}
        for span in tracer.spans:
            if span.parent_id in process_spans:
                children.setdefault(span.parent_id, []).append(span)
        assert children
        for parent_id, stage_spans in children.items():
            parent = process_spans[parent_id]
            total = sum(s.dur_ms for s in stage_spans)
            assert total == pytest.approx(parent.dur_ms, abs=1e-6)

    def test_server_metrics_and_events(self):
        tracer = run_experiment(traced_spec()).tracer
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["server.requests"] >= 1
        assert counters["model.anchors_evaluated"] > 0
        infer_spans = [s for s in tracer.spans if s.name == "server.infer"]
        assert infer_spans
        assert all(s.lane == "server" for s in infer_spans)
        assert all("anchors_evaluated" in s.attrs for s in infer_spans)
        queue_events = [e for e in tracer.events if e.name == "server.queue_enter"]
        assert queue_events
        assert all("was_free" in e.attrs for e in queue_events)

    def test_vo_state_transitions_traced(self):
        tracer = run_experiment(traced_spec()).tracer
        transitions = [
            e for e in tracer.events if e.name == "vo.state_transition"
        ]
        assert transitions  # at least initializing -> tracking
        assert transitions[0].attrs["from_state"] == "initializing"
        assert transitions[0].attrs["to_state"] == "tracking"

    def test_cfrs_encode_budget_events(self):
        tracer = run_experiment(traced_spec()).tracer
        encodes = [e for e in tracer.events if e.name == "cfrs.encode"]
        assert encodes
        for event in encodes:
            assert event.attrs["total_bytes"] > 0
            assert "bytes_high" in event.attrs and "tiles_low" in event.attrs


class TestExporters:
    def test_chrome_trace_structure(self):
        tracer = run_experiment(traced_spec()).tracer
        payload = chrome_trace(tracer)
        json.dumps(payload)  # serializable
        events = payload["traceEvents"]
        assert events
        lanes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert lanes == {"client", "channel", "server"}
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in complete)
        # Distinct tids per lane.
        assert len({e["tid"] for e in complete}) == 3

    def test_write_exports(self, tmp_path):
        tracer = run_experiment(traced_spec()).tracer
        jsonl_path = write_jsonl(tracer, tmp_path / "t.jsonl")
        chrome_path = write_chrome_trace(tracer, tmp_path / "t.json")
        lines = jsonl_path.read_text().strip().splitlines()
        assert len(lines) == len(tracer.spans) + len(tracer.events)
        for line in lines:
            json.loads(line)
        chrome = json.loads(chrome_path.read_text())
        assert chrome["traceEvents"]

    def test_stage_table_lists_stages(self):
        tracer = run_experiment(traced_spec()).tracer
        summary = stage_summary(tracer)
        names = {name for _, name in summary}
        assert {"client.process", "mamt.predict", "server.infer"} <= names
        rendered = stage_table(tracer).render()
        assert "server.infer" in rendered
        assert "mean ms" in rendered


class TestMultiClientTracing:
    def test_lanes_per_session(self):
        from repro.eval import build_client
        from repro.model import SimulatedSegmentationModel
        from repro.network import make_channel
        from repro.runtime import ClientSession, EdgeServer, MultiClientPipeline
        from repro.synthetic import make_dataset

        tracer = Tracer()
        sessions = []
        for index in range(2):
            video = make_dataset(
                "davis_like", num_frames=40, resolution=(160, 120), seed=index
            )
            sessions.append(
                ClientSession(
                    video=video,
                    client=build_client("edgeis", video, seed=index, tracer=tracer),
                    channel=make_channel("wifi_5ghz", np.random.default_rng(index)),
                )
            )
        server = EdgeServer(
            SimulatedSegmentationModel(rng=np.random.default_rng(7))
        )
        results = MultiClientPipeline(
            sessions, server, warmup_frames=5, tracer=tracer
        ).run()
        assert len(results) == 2
        lanes = set(tracer.lanes())
        assert {"client0", "client1"} <= lanes
        assert "server" in lanes  # shared lane wired via attach_tracer


class TestHistogramPercentile:
    def test_empty_histogram(self):
        assert Histogram("h").percentile(50.0) == 0.0
        assert Histogram("h").percentile(99.0) == 0.0

    def test_single_bucket(self):
        hist = Histogram("h", buckets=(10.0,))
        hist.observe(5.0)
        assert hist.percentile(0.0) == 5.0
        assert hist.percentile(50.0) == 5.0
        assert hist.percentile(100.0) == 5.0

    def test_values_beyond_last_bucket_clamp_to_max(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(50.0)
        hist.observe(60.0)
        # Both land in the implicit overflow bucket; the estimate must
        # stay inside the recorded sample range, never inf.
        assert 50.0 <= hist.percentile(50.0) <= 60.0
        assert hist.percentile(99.0) <= 60.0

    def test_matches_quantile(self):
        hist = Histogram("h")
        for value in (0.4, 1.5, 3.0, 7.0, 30.0, 400.0):
            hist.observe(value)
        assert hist.percentile(95.0) == hist.quantile(0.95)
        assert hist.percentile(50.0) == hist.quantile(0.5)


class TestExactPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(exact_percentile([], 50.0))
        assert math.isnan(exact_percentile([], 99.0))

    def test_single_sample(self):
        assert exact_percentile([7.5], 99.0) == 7.5
        assert exact_percentile([7.5], 0.0) == 7.5

    def test_empty_slo_report_is_nan(self):
        report = evaluate_slo(Tracer())
        assert report["frames"] == 0
        assert report["misses"] == 0
        assert math.isnan(report["miss_rate"])
        assert math.isnan(report["latency_p50_ms"])
        assert math.isnan(report["latency_p99_ms"])

    def test_interpolation(self):
        samples = list(range(1, 11))  # 1..10
        assert exact_percentile(samples, 0.0) == 1.0
        assert exact_percentile(samples, 100.0) == 10.0
        assert exact_percentile(samples, 50.0) == pytest.approx(5.5)
        assert exact_percentile(samples, 90.0) == pytest.approx(9.1)

    def test_order_independent(self):
        assert exact_percentile([3.0, 1.0, 2.0], 50.0) == 2.0


class TestEmptyTracerExports:
    def test_stage_summary_empty(self):
        assert stage_summary(Tracer()) == {}

    def test_stage_table_renders_header_only(self):
        rendered = stage_table(Tracer(), title="empty run").render()
        assert "empty run" in rendered
        assert "mean ms" in rendered

    def test_mean_frame_latency_zero(self):
        assert mean_frame_latency_ms(Tracer()) == 0.0

    def test_jsonl_empty(self):
        assert to_jsonl_lines(Tracer()) == []

    def test_evaluate_slo_empty(self):
        report = evaluate_slo(Tracer())
        assert report["frames"] == 0
        assert math.isnan(report["miss_rate"])
        assert report["worst_streak"] == 0
        assert report["attribution"] == {}


def _synthetic_frames(latencies_and_stages):
    """Build a tracer with one top-level client span per frame.

    Each entry is (dur_ms, {stage: dur}) for a processed frame, or
    (dur_ms, None) for a stale frame.
    """
    tracer = Tracer()
    for index, (dur, stages) in enumerate(latencies_and_stages):
        now = index * FRAME_BUDGET_MS
        if stages is None:
            tracer.add_span(
                "client.stale_wait",
                lane="client",
                frame=index,
                start_ms=now,
                dur_ms=dur,
            )
            continue
        with tracer.span(
            "client.process", lane="client", frame=index, start_ms=now, dur_ms=dur
        ):
            for name, stage_dur in stages.items():
                tracer.add_span(
                    name, lane="client", frame=index, start_ms=now, dur_ms=stage_dur
                )
    return tracer


class TestSloEvaluation:
    def test_miss_rate_streak_and_attribution(self):
        tracer = _synthetic_frames(
            [
                (10.0, {"mamt.predict": 8.0, "mamt.features": 2.0}),
                (50.0, {"mamt.predict": 40.0, "mamt.features": 10.0}),
                (60.0, {"mamt.predict": 45.0, "mamt.features": 15.0}),
                (10.0, {"mamt.predict": 8.0, "mamt.features": 2.0}),
                (40.0, {"mamt.features": 30.0, "mamt.predict": 10.0}),
                (10.0, {"mamt.predict": 8.0, "mamt.features": 2.0}),
                (100.0, None),  # stale frame: client never got to it
            ]
        )
        report = evaluate_slo(tracer)
        assert report["frames"] == 7
        assert report["misses"] == 4
        assert report["miss_rate"] == pytest.approx(4 / 7, abs=1e-6)
        assert report["worst_streak"] == 2
        assert report["max_over_ms"] == pytest.approx(100.0 - FRAME_BUDGET_MS, abs=1e-5)
        assert report["attribution"] == {
            "mamt.predict": 2,
            "mamt.features": 1,
            "client.stale_wait": 1,
        }
        assert sum(report["attribution"].values()) == report["misses"]

    def test_warmup_frames_excluded(self):
        tracer = _synthetic_frames(
            [(100.0, None), (100.0, None), (10.0, {"mamt.predict": 10.0})]
        )
        report = evaluate_slo(tracer, warmup_frames=2)
        assert report["frames"] == 1
        assert report["misses"] == 0
        assert report["worst_streak"] == 0

    def test_all_frames_missing_is_one_long_streak(self):
        tracer = _synthetic_frames([(50.0, None)] * 5)
        report = evaluate_slo(tracer)
        assert report["misses"] == 5
        assert report["worst_streak"] == 5
        assert report["attribution"] == {"client.stale_wait": 5}

    def test_streak_resets_on_met_deadline(self):
        tracer = _synthetic_frames(
            [(50.0, None), (10.0, {"a": 10.0}), (50.0, None), (50.0, None)]
        )
        assert evaluate_slo(tracer)["worst_streak"] == 2

    def test_no_misses(self):
        tracer = _synthetic_frames([(10.0, {"a": 10.0})] * 4)
        report = evaluate_slo(tracer)
        assert report["misses"] == 0
        assert report["total_over_ms"] == 0.0
        assert report["attribution"] == {}

    def test_custom_budget(self):
        tracer = _synthetic_frames([(10.0, {"a": 10.0})] * 4)
        assert evaluate_slo(tracer, budget_ms=5.0)["misses"] == 4

    def test_processed_frame_without_stage_children_blames_itself(self):
        tracer = Tracer()
        tracer.add_span(
            "client.process", lane="client", frame=0, start_ms=0.0, dur_ms=90.0
        )
        report = evaluate_slo(tracer)
        assert report["attribution"] == {"client.process": 1}


class TestPipelineDeadlineEvents:
    def test_deadline_miss_events_and_counters(self):
        import numpy as np

        from repro.eval import build_client
        from repro.model import SimulatedSegmentationModel
        from repro.network import make_channel
        from repro.runtime import EdgeServer, Pipeline
        from repro.synthetic import make_dataset

        video = make_dataset(
            "davis_like", num_frames=30, resolution=(160, 120), seed=0
        )
        tracer = Tracer()
        client = build_client("edgeis", video, seed=0, tracer=tracer)
        server = EdgeServer(
            SimulatedSegmentationModel(rng=np.random.default_rng(7)),
            tracer=tracer,
        )
        pipeline = Pipeline(
            video,
            client,
            make_channel("wifi_5ghz", np.random.default_rng(1)),
            server,
            warmup_frames=5,
            tracer=tracer,
            deadline_budget_ms=0.5,  # impossible budget: every frame misses
        )
        pipeline.run()
        events = [e for e in tracer.events if e.name == "frame.deadline_miss"]
        assert len(events) == 30
        for event in events:
            assert event.attrs["budget_ms"] == 0.5
            assert event.attrs["over_ms"] > 0.0
            assert event.attrs["latency_ms"] > 0.5
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["pipeline.deadline_miss"] == 30
        assert counters["pipeline.frames"] == 30
        histograms = tracer.metrics.snapshot()["histograms"]
        assert histograms["pipeline.frame_latency_ms"]["count"] == 30

    def test_default_budget_is_frame_interval(self):
        tracer = run_experiment(
            ExperimentSpec(
                system="edgeis",
                num_frames=70,
                resolution=(160, 120),
                trace=True,
            )
        ).tracer
        events = [e for e in tracer.events if e.name == "frame.deadline_miss"]
        # The traced run has stale frames, and a stale frame's latency is
        # at least one frame interval over budget by construction.
        assert events
        interval = 1000.0 / 30.0
        for event in events:
            assert event.attrs["budget_ms"] == pytest.approx(interval, abs=1e-4)
            # Miss events must agree with the recorded frame spans.
            assert event.attrs["latency_ms"] > event.attrs["budget_ms"]


class TestTraceCli:
    def test_trace_command_writes_exports(self, tmp_path, capsys):
        out_dir = tmp_path / "trace"
        code = cli_main(
            ["trace", "fig9", "--frames", "60", "--out", str(out_dir)]
        )
        assert code == 0
        chrome = json.loads((out_dir / "trace_chrome.json").read_text())
        assert chrome["traceEvents"]  # non-empty Chrome trace
        assert (out_dir / "trace.jsonl").stat().st_size > 0
        assert "reconciliation" in capsys.readouterr().out
