"""Tests for the pipeline runtime, the edge server and the resource model."""

import numpy as np
import pytest

from repro.eval import ExperimentSpec, build_client, run_experiment
from repro.image import InstanceMask
from repro.model import SimulatedSegmentationModel
from repro.network import make_channel
from repro.runtime import (
    DEVICE_POWER,
    ClientFrameOutput,
    EdgeServer,
    OffloadRequest,
    Pipeline,
    ResourceMonitor,
)
from repro.synthetic import make_dataset


class _NullClient:
    """Client that renders nothing and never offloads."""

    name = "null"

    def process_frame(self, frame, truth, now_ms):
        return ClientFrameOutput(masks=[], compute_ms=5.0)

    def receive_result(self, frame_index, masks, now_ms):
        return 0.0

    def memory_bytes(self):
        return 0


class _SlowClient(_NullClient):
    """Takes 3 frame intervals per frame: most frames rendered stale."""

    name = "slow"

    def process_frame(self, frame, truth, now_ms):
        return ClientFrameOutput(masks=[], compute_ms=100.0)


class _OffloadOnceClient(_NullClient):
    name = "offload_once"

    def __init__(self):
        self.received = []
        self._sent = False

    def process_frame(self, frame, truth, now_ms):
        offload = None
        if not self._sent:
            self._sent = True
            offload = OffloadRequest(
                frame_index=frame.index, payload_bytes=20_000, encode_ms=5.0
            )
        return ClientFrameOutput(masks=[], compute_ms=5.0, offload=offload)

    def receive_result(self, frame_index, masks, now_ms):
        self.received.append((frame_index, len(masks), now_ms))
        return 2.0


def make_pipeline(client, frames=60, dataset="xiph_like"):
    video = make_dataset(dataset, num_frames=frames, resolution=(160, 120))
    channel = make_channel("wifi_5ghz", np.random.default_rng(0))
    server = EdgeServer(
        SimulatedSegmentationModel("mask_rcnn_r101", "jetson_tx2", np.random.default_rng(1))
    )
    return Pipeline(video, client, channel, server, warmup_frames=10)


class TestPipelineMechanics:
    def test_null_client_scores_zero_iou(self):
        result = make_pipeline(_NullClient()).run()
        assert result.mean_iou() == 0.0
        assert result.false_rate(0.75) == 1.0
        assert result.offload_count == 0

    def test_slow_client_shows_stale_frames(self):
        result = make_pipeline(_SlowClient()).run()
        processed = [f for f in result.frames if f.client_processed]
        stale = [f for f in result.frames if not f.client_processed]
        # 100 ms compute at 33 ms frames: roughly 1 in 3 processed.
        assert len(stale) > len(processed)
        # Stale frames report waiting latency > frame interval.
        assert all(f.latency_ms > 33 for f in stale)

    def test_offload_round_trip(self):
        client = _OffloadOnceClient()
        result = make_pipeline(client).run()
        assert result.offload_count == 1
        assert len(client.received) == 1
        frame_index, num_masks, at_ms = client.received[0]
        assert frame_index == 0
        assert num_masks >= 1  # the scene has objects
        # Arrival after uplink + ~400ms inference + downlink.
        assert at_ms > 300
        assert result.bytes_up == 20_000
        assert result.bytes_down > 0

    def test_server_serializes_requests(self):
        server = EdgeServer(
            SimulatedSegmentationModel("mask_rcnn_r101", rng=np.random.default_rng(0))
        )
        video = make_dataset("xiph_like", num_frames=1, resolution=(160, 120))
        _, truth = video.frame_at(0)
        request = OffloadRequest(frame_index=0, payload_bytes=0, encode_ms=0.0)
        done1, _ = server.submit(request, truth.masks, (120, 160), arrive_ms=0.0)
        done2, _ = server.submit(request, truth.masks, (120, 160), arrive_ms=0.0)
        assert done2 >= done1 * 2 * 0.8  # second waits for the first

    def test_warmup_excluded_from_aggregates(self):
        result = make_pipeline(_NullClient(), frames=20).run()
        measured = result._measured()
        assert all(f.frame_index >= 10 for f in measured)

    def test_run_result_cdf(self):
        result = make_pipeline(_NullClient(), frames=30).run()
        grid, cdf = result.iou_cdf()
        assert cdf[-1] == 1.0  # all IoUs <= 1
        assert (np.diff(cdf) >= 0).all()


class TestResourceMonitor:
    def test_cpu_and_energy_accumulate(self):
        monitor = ResourceMonitor(DEVICE_POWER["iphone_11"], fps=30)
        for index in range(30):
            monitor.sample(index, compute_ms=25.0, memory_bytes=10**8, bytes_sent=1000)
        assert monitor.trace.cpu_percent_mean() == pytest.approx(75.0, abs=1.0)
        assert monitor.trace.energy_joules > 0
        assert monitor.extrapolate_battery_percent(10) > 0

    def test_memory_growth_estimate(self):
        monitor = ResourceMonitor(DEVICE_POWER["iphone_11"], fps=30)
        for index in range(60):
            memory = 10**8 + index * 70_000  # ~2.1 MB/s at 30 fps
            monitor.sample(index, 10.0, memory, 0)
        growth = monitor.trace.memory_growth_mb_per_s()
        assert growth == pytest.approx(2.0, abs=0.3)

    def test_monitored_experiment(self):
        spec = ExperimentSpec(
            system="edgeis",
            dataset="davis_like",
            num_frames=60,
            resolution=(160, 120),
            monitor_resources=True,
        )
        outcome = run_experiment(spec)
        assert outcome.resources is not None
        trace = outcome.resources.trace
        assert len(trace.times_s) > 40
        assert 0 < trace.cpu_percent_mean() <= 100


class TestBuildClient:
    @pytest.mark.parametrize(
        "name",
        ["edgeis", "eaar", "edgeduet", "edge_best_effort", "mobile_only", "baseline+mamt"],
    )
    def test_factory(self, name):
        video = make_dataset("davis_like", num_frames=1, resolution=(160, 120))
        client = build_client(name, video)
        assert hasattr(client, "process_frame")

    def test_unknown_raises(self):
        video = make_dataset("davis_like", num_frames=1, resolution=(160, 120))
        with pytest.raises(ValueError):
            build_client("clairvoyant", video)

    def test_ablation_flags(self):
        video = make_dataset("davis_like", num_frames=1, resolution=(160, 120))
        client = build_client("baseline+ciia", video)
        assert client.config.use_ciia
        assert not client.config.use_mamt
        assert not client.config.use_cfrs
        assert client.name == "baseline+ciia"


class TestRunResultSerialization:
    def test_to_dict_roundtrips_through_json(self):
        import json

        result = make_pipeline(_NullClient(), frames=15).run()
        payload = result.to_dict(include_frames=True)
        restored = json.loads(json.dumps(payload))
        assert restored["system"] == "null"
        assert restored["num_frames"] == 15
        assert len(restored["frames"]) == 15
        assert 0.0 <= restored["mean_iou"] <= 1.0

    def test_summary_only_by_default(self):
        result = make_pipeline(_NullClient(), frames=10).run()
        assert "frames" not in result.to_dict()

    def test_to_dict_frame_entries_match_metrics(self):
        result = make_pipeline(_OffloadOnceClient(), frames=20).run()
        payload = result.to_dict(include_frames=True)
        assert len(payload["frames"]) == len(result.frames)
        for entry, metric in zip(payload["frames"], result.frames):
            assert entry["frame"] == metric.frame_index
            assert entry["latency_ms"] == metric.latency_ms
            assert entry["processed"] == metric.client_processed
            assert entry["offloaded"] == metric.offloaded
            assert entry["ious"] == {
                str(k): v for k, v in metric.object_ious.items()
            }
        assert any(entry["offloaded"] for entry in payload["frames"])


class TestRunResultAggregates:
    def test_iou_cdf_custom_grid(self):
        result = make_pipeline(_NullClient(), frames=20).run()
        grid = np.array([0.0, 0.5, 1.0])
        out_grid, cdf = result.iou_cdf(grid)
        assert out_grid is grid
        # A null client scores IoU 0 on every object: full mass at 0.
        assert cdf.tolist() == [1.0, 1.0, 1.0]

    def test_iou_cdf_empty_measured_set(self):
        result = make_pipeline(_NullClient(), frames=20).run()
        result.frames = [f for f in result.frames if False]
        grid, cdf = result.iou_cdf()
        assert (cdf == 0.0).all()
        assert len(grid) == len(cdf)

    def test_server_utilization_bounds(self):
        idle = make_pipeline(_NullClient(), frames=20).run()
        assert idle.server_utilization() == 0.0
        busy = make_pipeline(_OffloadOnceClient(), frames=20).run()
        assert 0.0 < busy.server_utilization() <= 1.0
        # One ~400 ms inference inside a ~660 ms run.
        assert busy.server_utilization() == pytest.approx(
            busy.server_busy_ms / busy.duration_ms
        )


class TestEdgeServerAvailability:
    def test_is_free_at_tracks_free_at_ms(self):
        server = EdgeServer(
            SimulatedSegmentationModel("mask_rcnn_r101", rng=np.random.default_rng(0))
        )
        assert server.is_free_at(0.0)
        video = make_dataset("xiph_like", num_frames=1, resolution=(160, 120))
        _, truth = video.frame_at(0)
        request = OffloadRequest(frame_index=0, payload_bytes=0, encode_ms=0.0)
        done, _ = server.submit(request, truth.masks, (120, 160), arrive_ms=10.0)
        assert server.free_at_ms == done
        assert not server.is_free_at(done - 1.0)
        assert server.is_free_at(done)
        assert server.is_free_at(done + 1.0)


class TestPipelineState:
    def test_pending_list_initialized_in_init(self):
        pipeline = make_pipeline(_NullClient(), frames=5)
        # No lazy hasattr-guarded creation: the queue exists before run().
        assert pipeline._pending_list == []
        pipeline.run()
        assert pipeline._pending_list == []  # drained by the end of the run
