"""Causal request lineage, critical-path decomposition and the
``repro why`` deadline-miss root-cause console.

Covers the contracts docs/observability.md promises:

* every offloaded frame stitches into a lineage whose exclusive
  segments telescope exactly (±1e-6 ms) to its end-to-end latency;
* every deadline miss classifies to a cause from the fixed taxonomy —
  including under chaos (killed replicas, mid-flight link handoffs);
* exports are byte-deterministic and Chrome flow ids are a pure
  function of ``(session, frame)``, never of object identity;
* the per-cell ``miss_causes`` BENCH section is gated by
  ``repro bench compare``.
"""

from __future__ import annotations

import json

import pytest

from repro.eval import ExperimentSpec, run_experiment
from repro.eval.cli import main as cli_main
from repro.eval.experiments import FleetSpec, run_fleet
from repro.obs import (
    CAUSES,
    FRAME_BUDGET_MS,
    SEGMENT_ORDER,
    RequestContext,
    build_lineages,
    build_why,
    chrome_trace,
    classify_misses,
    miss_causes,
    render_waterfall,
    to_jsonl_lines,
    why_filename,
)
from repro.obs.compare import compare_payloads, iter_metric_paths, policy_for

_EPS = 1e-6


def traced_spec(**overrides) -> ExperimentSpec:
    base = dict(
        system="edgeis",
        dataset="xiph_like",
        num_frames=70,
        resolution=(160, 120),
        trace=True,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def fleet_spec(**overrides) -> FleetSpec:
    base = dict(
        num_clients=2,
        num_frames=50,
        resolution=(96, 72),
        warmup_frames=4,
        trace=True,
    )
    base.update(overrides)
    return FleetSpec(**base)


def assert_telescopes(lineage) -> None:
    """The exclusive segments must sum exactly to the end-to-end span."""
    total = sum(lineage.segments.values())
    assert total == pytest.approx(lineage.e2e_ms, abs=_EPS), lineage.trace_id
    for name, value in lineage.segments.items():
        assert name in SEGMENT_ORDER
        assert value >= -_EPS, f"{lineage.trace_id}: negative {name}"


class TestRequestContext:
    def test_ids_are_pure_functions_of_session_and_frame(self):
        ctx = RequestContext(session=3, frame=41)
        assert ctx.trace_id == "s3-f41"
        assert ctx.flow_id == 3 * 1_000_000 + 42
        # Frozen + value-equal: the same (session, frame) minted anywhere
        # in the pipeline names the same request.
        assert ctx == RequestContext(3, 41)
        assert hash(ctx) == hash(RequestContext(3, 41))
        assert RequestContext(0, 0).flow_id == 1  # ids stay non-zero


class TestSingleClientLineage:
    @pytest.fixture(scope="class")
    def tracer(self):
        return run_experiment(traced_spec()).tracer

    def test_every_offload_has_a_complete_lineage(self, tracer):
        lineages = build_lineages(tracer)
        dispatches = [e for e in tracer.events if e.name == "offload.dispatch"]
        assert len(lineages) == len(dispatches) > 0
        delivered = [
            ln for ln in lineages.values() if ln.outcome == "delivered"
        ]
        # Everything but a possible still-in-flight tail is delivered.
        assert len(delivered) >= len(lineages) - 2 > 0
        for lineage in lineages.values():
            assert lineage.complete, lineage.trace_id
        for lineage in delivered:
            assert lineage.server == 0

    def test_segments_telescope_to_e2e(self, tracer):
        for lineage in build_lineages(tracer).values():
            assert_telescopes(lineage)

    def test_lineages_sorted_by_session_then_frame(self, tracer):
        keys = [(ln.session, ln.frame) for ln in build_lineages(tracer).values()]
        assert keys == sorted(keys)

    def test_waterfall_renders_each_segment_and_footer(self, tracer):
        lineage = next(iter(build_lineages(tracer).values()))
        lines = render_waterfall(lineage)
        text = "\n".join(lines)
        for name in lineage.segments:
            assert name in text
        assert "end-to-end" in lines[-1]
        assert "delivered" in lines[-1]


class TestFleetLineage:
    @pytest.fixture(scope="class")
    def outcome(self):
        # EDF + cross-session batching: exercises admission, queueing,
        # batch assembly and the scheduler delivery path.
        return run_fleet(
            fleet_spec(
                num_clients=3,
                policy="edf",
                queue_limit=6,
                deadline_horizon=36.0,
                batch_window_ms=20.0,
                max_batch_size=3,
            )
        )

    def test_terminal_lineages_complete_and_telescope(self, outcome):
        lineages = build_lineages(outcome.tracer)
        assert lineages
        delivered = [ln for ln in lineages.values() if ln.outcome == "delivered"]
        assert delivered
        for lineage in lineages.values():
            if lineage.outcome != "in-flight":  # run may end mid-request
                assert lineage.complete, lineage.trace_id
            assert_telescopes(lineage)

    def test_batch_members_share_the_infer_span(self, outcome):
        lineages = build_lineages(outcome.tracer)
        batched = [
            s
            for s in outcome.tracer.spans
            if s.name == "server.infer" and len(s.attrs.get("traces", ())) > 1
        ]
        assert batched, "batching fleet produced no multi-member batches"
        for span in batched:
            for trace_id in span.attrs["traces"]:
                lineage = lineages[trace_id]
                assert lineage.infer is span
                assert lineage.batch is not None
                assert lineage.segments.get("batch_wait", 0.0) >= 0.0

    def test_all_misses_classified(self, outcome):
        causes = miss_causes(
            outcome.tracer, FRAME_BUDGET_MS, warmup_frames=4
        )
        assert causes["unclassified"] == 0
        assert causes["classified"] == causes["misses"]
        assert sum(causes["causes"].values()) == causes["classified"]
        for cause in causes["causes"]:
            assert cause in CAUSES
        if causes["misses"]:
            assert causes["top_cause"] in causes["causes"]

    def test_classify_misses_rows_are_well_formed(self, outcome):
        for row in classify_misses(outcome.tracer, warmup_frames=4):
            assert row["cause"] in CAUSES
            assert row["over_ms"] > 0.0
            assert row["latency_ms"] > FRAME_BUDGET_MS


class TestChaosLineage:
    def test_killed_replica_orphans_become_shed_lineages(self):
        # The batch window holds admitted requests in the replica queue,
        # so the kill tick finds work to orphan (a bare queue drains too
        # fast to shed anything at this scale).
        outcome = run_fleet(
            fleet_spec(
                num_clients=4,
                num_frames=56,
                resolution=(128, 96),
                warmup_frames=8,
                num_servers=2,
                batch_window_ms=20.0,
                max_batch_size=3,
                faults="replica-outage",
            )
        )
        lineages = build_lineages(outcome.tracer)
        shed = [ln for ln in lineages.values() if ln.outcome == "shed"]
        rejected = [ln for ln in lineages.values() if ln.outcome == "rejected"]
        # The outage both sheds queued work and rejects new arrivals.
        assert shed, "kill_replica shed no queued requests"
        assert rejected, "outage window rejected no submissions"
        for lineage in shed + rejected:
            assert lineage.complete, lineage.trace_id
            assert_telescopes(lineage)
        # Sheds at the fault tick can precede the item's uplink arrival;
        # the clamp keeps the queue segment a non-negative step.
        for lineage in shed:
            assert lineage.segments["queue_wait"] >= 0.0
        causes = miss_causes(outcome.tracer, FRAME_BUDGET_MS, warmup_frames=8)
        assert causes["unclassified"] == 0

    def test_midflight_handoff_is_attributed_to_the_new_link(self):
        outcome = run_fleet(fleet_spec(scenario="wifi-to-lte"))
        lineages = build_lineages(outcome.tracer)
        handed_off = [
            ln for ln in lineages.values() if ln.handoff_link is not None
        ]
        assert handed_off, "wifi-to-lte produced no handoff-carried transfer"
        for lineage in handed_off:
            assert lineage.handoff_link == "lte"
            assert_telescopes(lineage)
        causes = miss_causes(outcome.tracer, FRAME_BUDGET_MS, warmup_frames=4)
        assert causes["unclassified"] == 0

    def test_straggler_window_classifies_as_straggler_replica(self):
        outcome = run_fleet(
            fleet_spec(num_servers=2, faults="straggler")
        )
        causes = miss_causes(outcome.tracer, FRAME_BUDGET_MS, warmup_frames=4)
        assert causes["unclassified"] == 0
        assert causes["causes"].get("straggler-replica", 0) >= 1


class TestExportDeterminism:
    def test_jsonl_and_chrome_byte_identical_across_runs(self):
        first = run_experiment(traced_spec()).tracer
        second = run_experiment(traced_spec()).tracer
        assert to_jsonl_lines(first) == to_jsonl_lines(second)
        assert json.dumps(chrome_trace(first), sort_keys=True) == json.dumps(
            chrome_trace(second), sort_keys=True
        )

    def test_flow_ids_are_pure_functions_of_the_context(self):
        tracer = run_experiment(traced_spec()).tracer
        flows = [
            e
            for e in chrome_trace(tracer)["traceEvents"]
            if e.get("cat") == "lineage"
        ]
        assert flows
        assert {e["ph"] for e in flows} == {"s", "t", "f"}
        for event in flows:
            session, _, frame = event["args"]["trace"][1:].partition("-f")
            expected = RequestContext(int(session), int(frame)).flow_id
            assert event["id"] == expected  # formula, not id()-derived
            assert event["name"] == "request"
        finishes = [e for e in flows if e["ph"] == "f"]
        assert all(e.get("bp") == "e" for e in finishes)

    def test_span_records_carry_the_trace_id(self):
        tracer = run_experiment(traced_spec()).tracer
        uplinks = [s for s in tracer.spans if s.name == "channel.uplink"]
        assert uplinks
        for span in uplinks:
            record = span.to_record()
            assert record["trace"] == f"s0-f{record['frame']}"
            assert record["session"] == 0


class TestWhyConsole:
    def test_build_why_skips_kernel_cells_and_is_deterministic(self):
        first = build_why("micro", label="t")
        second = build_why("micro", label="t")
        assert first["markdown"] == second["markdown"]
        assert first["unclassified"] == 0
        # micro = 1 pipeline cell + 8 kernel cells; only the former has
        # frames to classify.
        assert list(first["scenarios"]) == ["wifi5-walk"]

    def test_build_why_rejects_unknown_suite_and_scenario(self):
        with pytest.raises(KeyError):
            build_why("no-such-suite")
        with pytest.raises(ValueError):
            build_why("micro", scenario="no-such-cell")

    def test_cli_why_writes_byte_stable_console(self, tmp_path, capsys):
        out_a, out_b = tmp_path / "a", tmp_path / "b"
        for out in (out_a, out_b):
            rc = cli_main(
                ["why", "micro", "--label", "ci", "--out", str(out)]
            )
            assert not rc
        name = why_filename("micro", "ci")
        assert name == "WHY_micro_ci.md"
        assert (out_a / name).read_bytes() == (out_b / name).read_bytes()
        assert "wifi5-walk" in capsys.readouterr().out


class TestMissCauseGating:
    def test_policy_for_miss_cause_paths(self):
        unclassified = policy_for("cell.miss_causes.unclassified")
        assert unclassified is not None
        assert not unclassified.higher_is_better
        assert unclassified.min_effect == 0.5  # any growth from zero flags
        count = policy_for("cell.miss_causes.causes.queue-wait")
        assert count is not None
        assert count.min_effect == 2.0

    def _payload(self, unclassified: int, queue_wait: int) -> dict:
        return {
            "schema_version": 5,
            "scenarios": {
                "cell": {
                    "miss_causes": {
                        "budget_ms": 33.3,
                        "misses": queue_wait + unclassified,
                        "classified": queue_wait,
                        "unclassified": unclassified,
                        "causes": {"queue-wait": queue_wait},
                        "top_cause": "queue-wait",
                    }
                }
            },
        }

    def test_iter_metric_paths_yields_miss_cause_metrics(self):
        paths = dict(iter_metric_paths(self._payload(0, 3)))
        assert paths["cell.miss_causes.unclassified"] == 0.0
        assert paths["cell.miss_causes.causes.queue-wait"] == 3.0

    def test_unclassified_growth_regresses_compare(self):
        report = compare_payloads(self._payload(0, 3), self._payload(2, 3))
        assert "cell.miss_causes.unclassified" in report["regressed"]
        steady = compare_payloads(self._payload(0, 3), self._payload(0, 3))
        assert steady["regressed"] == []


class TestPipelineMetricsParity:
    def test_single_and_multi_register_identical_names(self):
        single = run_experiment(traced_spec(num_frames=20)).tracer.metrics
        fleet = run_fleet(fleet_spec(num_frames=20)).tracer.metrics

        def pipeline_names(metrics) -> set[str]:
            snap = metrics.snapshot()
            return {
                name
                for section in snap.values()
                if isinstance(section, dict)
                for name in section
                if name.startswith("pipeline.")
            }

        names = pipeline_names(single)
        assert names == pipeline_names(fleet)
        assert "pipeline.frames" in names
        assert "pipeline.deadline_miss" in names
