"""Additional renderer tests: depth consistency, label/depth agreement,
texture determinism and cylinder silhouettes."""

import numpy as np
import pytest

from repro.geometry import SE3, PinholeCamera
from repro.synthetic import (
    ProceduralTexture,
    Renderer,
    SceneObject,
    StaticMotion,
    make_box_mesh,
    make_cylinder_mesh,
)


def make_renderer(objects, width=160, height=120):
    camera = PinholeCamera.with_fov(width, height, 64.0)
    return Renderer(camera, objects), camera


def box_at(instance_id, z, size=(1.0, 1.0, 1.0), x=0.0, seed=0):
    return SceneObject(
        instance_id,
        "box",
        make_box_mesh(size),
        ProceduralTexture((150, 120, 90), seed),
        StaticMotion(SE3(np.eye(3), [x, 0.0, z])),
    )


class TestDepthBuffer:
    def test_depth_matches_geometry(self):
        renderer, camera = make_renderer([box_at(1, 5.0)])
        result = renderer.render(SE3.identity(), 0.0)
        mask = result.instance_mask(1)
        # Depth inside the mask spans the front face only: z in [4.5, ~5.6]
        depths = result.depth[mask]
        assert depths.min() == pytest.approx(4.5, abs=0.05)
        assert depths.max() < 6.0

    def test_depth_infinite_on_sky(self):
        renderer, _ = make_renderer([box_at(1, 5.0)])
        result = renderer.render(SE3.identity(), 0.0)
        assert np.isinf(result.depth[~(result.label_map > 0)]).all()

    def test_labels_and_depth_consistent(self):
        # Where two boxes overlap, the label must belong to the smaller depth.
        near = box_at(1, 4.0, x=0.0)
        far = box_at(2, 8.0, size=(3.0, 3.0, 1.0), x=0.0)
        renderer, _ = make_renderer([near, far])
        result = renderer.render(SE3.identity(), 0.0)
        near_mask = result.instance_mask(1)
        far_mask = result.instance_mask(2)
        assert result.depth[near_mask].max() < result.depth[far_mask].min() + 1e-6


class TestDeterminism:
    def test_same_seed_same_frame(self):
        r1, _ = make_renderer([box_at(1, 5.0, seed=3)])
        r2, _ = make_renderer([box_at(1, 5.0, seed=3)])
        f1 = r1.render(SE3.identity(), 0.0)
        f2 = r2.render(SE3.identity(), 0.0)
        assert np.array_equal(f1.frame.image, f2.frame.image)
        assert np.array_equal(f1.label_map, f2.label_map)

    def test_different_seed_different_texture(self):
        r1, _ = make_renderer([box_at(1, 5.0, seed=3)])
        r2, _ = make_renderer([box_at(1, 5.0, seed=4)])
        f1 = r1.render(SE3.identity(), 0.0)
        f2 = r2.render(SE3.identity(), 0.0)
        assert not np.array_equal(f1.frame.image, f2.frame.image)


class TestCylinder:
    def test_cylinder_silhouette_roughly_rectangular(self):
        cylinder = SceneObject(
            1,
            "tank",
            make_cylinder_mesh(0.8, 2.4, segments=24),
            ProceduralTexture((120, 140, 160), 5),
            StaticMotion(SE3(np.eye(3), [0.0, 0.0, 6.0])),
        )
        renderer, camera = make_renderer([cylinder])
        result = renderer.render(SE3.identity(), 0.0)
        mask = result.instance_mask(1)
        assert mask.any()
        # Silhouette width ~ 2r/z * fx, height ~ h/z * fy.
        cols = mask.any(axis=0).sum()
        rows = mask.any(axis=1).sum()
        # The near edge of the cylinder is at z = 6 - r, so the silhouette
        # is a bit larger than the center-depth estimate.
        assert cols == pytest.approx(2 * 0.8 / 6.0 * camera.fx, rel=0.25)
        assert rows == pytest.approx(2.4 / (6.0 - 0.8) * camera.fy, rel=0.2)

    def test_visible_from_above_shows_cap(self):
        cylinder = SceneObject(
            1,
            "tank",
            make_cylinder_mesh(1.0, 2.0, segments=24),
            ProceduralTexture((120, 140, 160), 5),
            StaticMotion(SE3(np.eye(3), [0.0, 0.0, 6.0])),
        )
        renderer, camera = make_renderer([cylinder])
        pose = SE3.look_at(eye=[0.0, -5.0, 2.0], target=[0.0, 0.0, 6.0])
        result = renderer.render(pose, 0.0)
        assert result.instance_mask(1).sum() > 200
