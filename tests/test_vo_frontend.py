"""Tests for the VO feature frontends (oracle and FAST+BRIEF)."""

import numpy as np
import pytest

from repro.features import match_descriptors
from repro.synthetic import make_dataset
from repro.vo import FastBriefFrontend, Observation, OracleFrontend


@pytest.fixture(scope="module")
def video():
    return make_dataset("davis_like", num_frames=6, resolution=(160, 120))


class TestObservation:
    def test_len_and_subset(self):
        observation = Observation(
            pixels=np.arange(10).reshape(5, 2).astype(float),
            descriptors=np.arange(5 * 32, dtype=np.uint8).reshape(5, 32),
        )
        assert len(observation) == 5
        subset = observation.subset(np.array([0, 2]))
        assert len(subset) == 2
        assert np.allclose(subset.pixels[1], observation.pixels[2])
        by_bool = observation.subset(np.array([True, False, True, False, False]))
        assert np.array_equal(by_bool.descriptors, subset.descriptors)


class TestOracleFrontend:
    def test_observation_counts_and_bounds(self, video):
        frontend = OracleFrontend(video.world, video.camera, max_features=200, seed=0)
        frame, truth = video.frame_at(0)
        observation = frontend.observe(frame, truth)
        assert 30 < len(observation) <= 200
        assert observation.pixels[:, 0].max() < video.camera.width + 2
        assert observation.pixels[:, 1].max() < video.camera.height + 2
        assert observation.descriptors.shape == (len(observation), 32)

    def test_consecutive_frames_share_sites(self, video):
        frontend = OracleFrontend(video.world, video.camera, seed=0)
        frame0, truth0 = video.frame_at(0)
        frame1, truth1 = video.frame_at(1)
        obs0 = frontend.observe(frame0, truth0)
        obs1 = frontend.observe(frame1, truth1)
        matches = match_descriptors(obs0.descriptors, obs1.descriptors)
        # High overlap is the point of the deterministic site selection.
        assert len(matches) > 0.6 * min(len(obs0), len(obs1))

    def test_descriptor_noise_bounded(self, video):
        frontend = OracleFrontend(
            video.world, video.camera, descriptor_flip_bits=6, seed=1
        )
        frame, truth = video.frame_at(0)
        obs_a = frontend.observe(frame, truth)
        obs_b = frontend.observe(frame, truth)
        matches = match_descriptors(obs_a.descriptors, obs_b.descriptors)
        distances = [m.distance for m in matches]
        assert np.median(distances) <= 12  # <= 2 * flip bits

    def test_occluded_sites_excluded(self, video):
        # Sites on the back of objects (failing the depth test) must not
        # be emitted: every returned pixel should match the depth buffer.
        frontend = OracleFrontend(video.world, video.camera, seed=2, pixel_noise=0.0)
        frame, truth = video.frame_at(0)
        observation = frontend.observe(frame, truth)
        sites = video.world.feature_sites
        positions = video.world.site_world_positions(frame.timestamp)
        pixels, depths = video.camera.project_world(truth.pose_cw, positions)
        # Check a sample of emitted pixels against the depth buffer.
        for u, v in observation.pixels[:50]:
            row, col = int(round(v)), int(round(u))
            if 0 <= row < frame.height and 0 <= col < frame.width:
                assert np.isfinite(truth.depth[row, col])

    def test_dropout_reduces_count(self, video):
        frame, truth = video.frame_at(0)
        dense = OracleFrontend(video.world, video.camera, dropout=0.0, seed=3)
        sparse = OracleFrontend(video.world, video.camera, dropout=0.6, seed=3)
        assert len(sparse.observe(frame, truth)) < len(dense.observe(frame, truth))


class TestFastBriefFrontend:
    def test_runs_on_rendered_frame(self, video):
        frontend = FastBriefFrontend(max_features=200)
        frame, truth = video.frame_at(0)
        observation = frontend.observe(frame, truth)
        assert len(observation) > 20
        assert observation.descriptors.dtype == np.uint8

    def test_truth_optional(self, video):
        frontend = FastBriefFrontend()
        frame, _ = video.frame_at(0)
        observation = frontend.observe(frame)  # no ground truth needed
        assert len(observation) > 0
