"""Tests for ATE/RPE trajectory metrics and Umeyama alignment."""

import numpy as np
import pytest

from repro.geometry import SE3, so3_exp
from repro.eval.trajectory_metrics import (
    TrajectoryErrors,
    evaluate_trajectory,
    umeyama_alignment,
)
from repro.synthetic import make_dataset
from repro.vo import OracleFrontend, VisualOdometry


class TestUmeyama:
    def test_recovers_similarity_transform(self):
        rng = np.random.default_rng(0)
        source = rng.normal(size=(30, 3))
        true_scale = 2.5
        true_rotation = so3_exp([0.2, -0.4, 0.7])
        true_translation = np.array([1.0, -2.0, 3.0])
        target = true_scale * source @ true_rotation.T + true_translation
        scale, rotation, translation = umeyama_alignment(source, target)
        assert scale == pytest.approx(true_scale, rel=1e-9)
        assert np.allclose(rotation, true_rotation, atol=1e-9)
        assert np.allclose(translation, true_translation, atol=1e-9)

    def test_without_scale(self):
        rng = np.random.default_rng(1)
        source = rng.normal(size=(20, 3))
        target = source @ so3_exp([0, 0, 0.3]).T + np.array([0.5, 0, 0])
        scale, _, _ = umeyama_alignment(source, target, with_scale=False)
        assert scale == 1.0

    def test_reflection_guard(self):
        # A reflected cloud must still produce a proper rotation.
        rng = np.random.default_rng(2)
        source = rng.normal(size=(15, 3))
        target = source.copy()
        target[:, 0] *= -1  # mirror
        _, rotation, _ = umeyama_alignment(source, target)
        assert np.linalg.det(rotation) == pytest.approx(1.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            umeyama_alignment(np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            umeyama_alignment(np.zeros((5, 3)), np.zeros((4, 3)))


class TestEvaluateTrajectory:
    def make_circle_poses(self, count=40, radius=3.0):
        poses = []
        for i in range(count):
            angle = 2 * np.pi * i / count * 0.25
            eye = np.array([radius * np.cos(angle), -1.5, radius * np.sin(angle)])
            poses.append(SE3.look_at(eye, np.zeros(3)))
        return poses

    def test_perfect_estimate_zero_error(self):
        poses = self.make_circle_poses()
        errors = evaluate_trajectory(poses, poses)
        assert errors.ate_rmse < 1e-9
        assert errors.rpe_rotation_deg_median < 1e-6
        assert errors.scale == pytest.approx(1.0)

    def test_scaled_estimate_recovered(self):
        # Monocular VO reports everything at 3x scale: ATE after alignment
        # must still be ~zero and the scale recovered.
        poses = self.make_circle_poses()
        scaled = [SE3(p.rotation, p.translation * 3.0) for p in poses]
        errors = evaluate_trajectory(scaled, poses)
        assert errors.ate_rmse < 1e-6
        assert errors.scale == pytest.approx(1 / 3.0, rel=1e-6)

    def test_none_poses_skipped(self):
        poses = self.make_circle_poses()
        estimated = list(poses)
        estimated[5] = None
        estimated[6] = None
        errors = evaluate_trajectory(estimated, poses)
        assert errors.num_poses == len(poses) - 2

    def test_length_mismatch(self):
        poses = self.make_circle_poses()
        with pytest.raises(ValueError):
            evaluate_trajectory(poses[:-1], poses)

    def test_vo_trajectory_quality(self):
        # End-to-end: the VO's trajectory on a rendered sequence must have
        # sub-centimeter-scale ATE relative to the path length.
        video = make_dataset("xiph_like", num_frames=90)
        frontend = OracleFrontend(video.world, video.camera, seed=1)
        vo = VisualOdometry(video.camera)
        estimated, truth = [], []
        for frame, gt in video:
            observation = frontend.observe(frame, gt)
            result = vo.process_frame(frame.index, frame.timestamp, observation)
            estimated.append(result.pose_cw if result.is_tracking else None)
            truth.append(gt.pose_cw)
        errors = evaluate_trajectory(estimated, truth)
        assert errors.num_poses > 40
        # Path length over the run is ~1.5 m; ATE should be centimeters.
        assert errors.ate_rmse < 0.10
        assert errors.rpe_rotation_deg_median < 0.5
