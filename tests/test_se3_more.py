"""Additional SE(3) behavior tests: retract semantics, matmul dispatch,
look_at edge cases."""

import numpy as np
import pytest

from repro.geometry import SE3, so3_exp


class TestRetract:
    def test_retract_is_left_multiplicative(self):
        pose = SE3.exp(np.array([0.1, 0.2, -0.1, 0.05, 0.0, 0.02]))
        xi = np.array([0.01, -0.02, 0.03, 0.001, 0.002, -0.001])
        assert pose.retract(xi).allclose(SE3.exp(xi) @ pose)

    def test_zero_retract_identity(self):
        pose = SE3.exp(np.array([0.4, 0.0, 0.1, 0.2, -0.1, 0.0]))
        assert pose.retract(np.zeros(6)).allclose(pose)


class TestMatmulDispatch:
    def test_matmul_with_pose_composes(self):
        a = SE3.exp(np.array([0.1, 0, 0, 0, 0.1, 0]))
        b = SE3.exp(np.array([0, 0.2, 0, 0.05, 0, 0]))
        assert (a @ b).allclose(a.compose(b))

    def test_matmul_with_points_transforms(self):
        pose = SE3.exp(np.array([1.0, 2.0, 3.0, 0, 0, 0]))
        point = np.array([1.0, 1.0, 1.0])
        assert np.allclose(pose @ point, point + [1, 2, 3])

    def test_compose_not_commutative(self):
        a = SE3(so3_exp([0, 0, 0.5]), [1, 0, 0])
        b = SE3(so3_exp([0.5, 0, 0]), [0, 1, 0])
        assert not (a @ b).allclose(b @ a)


class TestLookAtEdgeCases:
    def test_straight_down(self):
        # Forward parallel to the default up vector: needs the fallback axis.
        pose = SE3.look_at(eye=[0, -5, 0], target=[0, 0, 0])
        target_camera = pose.transform(np.zeros(3))
        assert target_camera[2] > 0
        assert np.allclose(target_camera[:2], 0, atol=1e-9)
        assert np.isclose(np.linalg.det(pose.rotation), 1.0)

    def test_behind_looking_forward(self):
        pose = SE3.look_at(eye=[0, 0, 10], target=[0, 0, 0])
        assert pose.transform(np.zeros(3))[2] == pytest.approx(10.0)

    def test_rotation_orthonormal_for_random_pairs(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            eye = rng.normal(size=3) * 5
            target = rng.normal(size=3) * 5
            if np.linalg.norm(eye - target) < 1e-3:
                continue
            pose = SE3.look_at(eye, target)
            assert np.allclose(
                pose.rotation @ pose.rotation.T, np.eye(3), atol=1e-9
            )
            # The eye really is the camera center.
            assert np.allclose(pose.center, eye, atol=1e-9)
