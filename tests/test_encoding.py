"""Tests for tile encoding and CFRS (Section V)."""

import numpy as np
import pytest

from repro.encoding import (
    CFRSConfig,
    ContentRoiSelector,
    EncodedFrame,
    TileGrid,
    TileQuality,
    encode_frame,
)
from repro.image import InstanceMask


def textured_gray(shape=(240, 320), seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(128, 30, size=shape).astype(np.float32)
    return np.clip(base, 0, 255)


def disk_mask(shape, center, radius):
    rr, cc = np.mgrid[0 : shape[0], 0 : shape[1]]
    return (rr - center[0]) ** 2 + (cc - center[1]) ** 2 <= radius**2


class TestTileGrid:
    def test_dimensions(self):
        grid = TileGrid(240, 320, 16)
        assert grid.rows == 15 and grid.cols == 20
        assert grid.num_tiles == 300

    def test_ragged_edge(self):
        grid = TileGrid(250, 330, 16)
        counts = grid.tile_pixel_counts()
        assert counts.sum() == 250 * 330
        assert counts[-1, -1] == (250 - 15 * 16) * (330 - 20 * 16)

    def test_tile_of_pixel(self):
        grid = TileGrid(240, 320, 16)
        assert grid.tile_of_pixel(0, 0) == (0, 0)
        assert grid.tile_of_pixel(17, 33) == (1, 2)
        assert grid.tile_of_pixel(1000, 1000) == (14, 19)  # clamped

    def test_tiles_overlapping_box(self):
        grid = TileGrid(240, 320, 16)
        rows, cols = grid.tiles_overlapping_box((16, 32, 48, 64))
        assert rows == slice(2, 4) and cols == slice(1, 3)

    def test_coverage_mask(self):
        grid = TileGrid(240, 320, 16)
        mask = disk_mask((240, 320), (100, 100), 20)
        coverage = grid.coverage_mask_from_rastermask(mask)
        assert coverage.any()
        # Coverage only near the disk's tiles.
        rows, cols = np.nonzero(coverage)
        assert rows.min() >= 4 and rows.max() <= 8
        assert cols.min() >= 4 and cols.max() <= 8


class TestEncodeFrame:
    def test_higher_quality_more_bytes(self):
        gray = textured_gray()
        grid = TileGrid(240, 320, 16)
        sizes = {}
        for quality in TileQuality:
            qualities = np.full((grid.rows, grid.cols), int(quality), dtype=int)
            sizes[quality] = encode_frame(gray, qualities, grid).total_bytes
        assert (
            sizes[TileQuality.SKIP]
            < sizes[TileQuality.LOW]
            < sizes[TileQuality.MEDIUM]
            < sizes[TileQuality.HIGH]
        )

    def test_flat_image_compresses_to_nothing(self):
        flat = np.full((240, 320), 100.0, dtype=np.float32)
        grid = TileGrid(240, 320, 16)
        qualities = np.full((grid.rows, grid.cols), int(TileQuality.HIGH), dtype=int)
        encoded = encode_frame(flat, qualities, grid)
        # Zero entropy -> only container overhead.
        assert encoded.total_bytes <= 300

    def test_plausible_hevc_scale(self):
        # At full quality and the device's 720p-class capture resolution
        # (CAPTURE_SCALE), a textured frame is in the HEVC-intra range of
        # tens to ~250 kB.
        gray = textured_gray()
        grid = TileGrid(240, 320, 16)
        qualities = np.full((grid.rows, grid.cols), int(TileQuality.HIGH), dtype=int)
        encoded = encode_frame(gray, qualities, grid)
        assert 50_000 < encoded.total_bytes < 350_000

    def test_fidelity_for_box(self):
        gray = textured_gray()
        grid = TileGrid(240, 320, 16)
        qualities = np.full((grid.rows, grid.cols), int(TileQuality.LOW), dtype=int)
        qualities[5:8, 5:8] = int(TileQuality.HIGH)
        encoded = encode_frame(gray, qualities, grid)
        high_box = (5 * 16, 5 * 16, 8 * 16, 8 * 16)
        low_box = (200, 200, 260, 230)
        assert encoded.fidelity_for_box(high_box) > encoded.fidelity_for_box(low_box)

    def test_shape_mismatch_raises(self):
        gray = textured_gray()
        grid = TileGrid(240, 320, 16)
        with pytest.raises(ValueError):
            encode_frame(gray, np.zeros((3, 3), dtype=int), grid)


class TestCFRSDecisions:
    def make_selector(self, **kwargs):
        return ContentRoiSelector((240, 320), CFRSConfig(**kwargs))

    def test_new_content_triggers(self):
        selector = self.make_selector()
        decision = selector.decide(100, 0.4, {}, np.zeros((0, 2)), True)
        assert decision.should_send and decision.reason == "new-content"

    def test_covered_scene_waits(self):
        selector = self.make_selector()
        decision = selector.decide(100, 0.05, {}, np.zeros((0, 2)), True)
        assert decision.should_send and decision.reason == "refresh"  # first ever
        decision = selector.decide(105, 0.05, {}, np.zeros((0, 2)), True)
        assert not decision.should_send

    def test_min_interval_rate_limits(self):
        selector = self.make_selector(min_interval_frames=6)
        assert selector.decide(10, 0.9, {}, np.zeros((0, 2)), True).should_send
        follow_up = selector.decide(12, 0.9, {}, np.zeros((0, 2)), True)
        assert not follow_up.should_send
        assert follow_up.reason == "rate-limited"

    def test_object_motion_triggers(self):
        selector = self.make_selector()
        selector.decide(0, 0.9, {}, np.zeros((0, 2)), True)  # baseline send
        decision = selector.decide(10, 0.05, {7: 0.5}, np.zeros((0, 2)), True)
        assert decision.should_send and decision.reason == "object-motion"
        # Re-triggering requires *additional* motion beyond the baseline.
        decision = selector.decide(20, 0.05, {7: 0.5}, np.zeros((0, 2)), True)
        assert decision.reason != "object-motion"

    def test_max_interval_refresh(self):
        selector = self.make_selector(max_interval_frames=20)
        selector.decide(0, 0.9, {}, np.zeros((0, 2)), True)
        assert not selector.decide(10, 0.05, {}, np.zeros((0, 2)), True).should_send
        decision = selector.decide(21, 0.05, {}, np.zeros((0, 2)), True)
        assert decision.should_send and decision.reason == "refresh"

    def test_initializing_sends_at_cadence(self):
        selector = self.make_selector(min_interval_frames=6)
        assert selector.decide(0, 1.0, {}, np.zeros((0, 2)), False).should_send
        assert not selector.decide(3, 1.0, {}, np.zeros((0, 2)), False).should_send
        assert selector.decide(6, 1.0, {}, np.zeros((0, 2)), False).should_send


class TestCFRSRegions:
    def test_new_area_boxes_cluster(self):
        selector = ContentRoiSelector((240, 320))
        cluster = np.array([[100 + i, 60 + j] for i in range(0, 40, 5) for j in range(0, 40, 5)])
        boxes = selector.new_area_boxes(cluster)
        assert len(boxes) == 1
        x0, y0, x1, y1 = boxes[0]
        assert x0 <= 100 and x1 >= 140
        assert y0 <= 60 and y1 >= 95  # points reach v=95; box is tile-quantized

    def test_stray_tiles_ignored(self):
        selector = ContentRoiSelector((240, 320))
        assert selector.new_area_boxes(np.array([[10.0, 10.0]])) == []

    def test_quality_map_structure(self):
        selector = ContentRoiSelector((240, 320))
        shape = (240, 320)
        mask = InstanceMask(1, "car", disk_mask(shape, (120, 160), 50))
        qualities = selector.quality_map([mask], [np.array([0.0, 0.0, 48.0, 48.0])])
        # Center of the object: medium (interior).
        assert qualities[7, 10] == int(TileQuality.MEDIUM)
        # New area: high.
        assert qualities[0, 0] == int(TileQuality.HIGH)
        # Far corner: low.
        assert qualities[-1, -1] == int(TileQuality.LOW)
        # There is a high-quality contour band.
        assert (qualities == int(TileQuality.HIGH)).sum() > 4

    def test_cfrs_encoding_smaller_than_uniform_high(self):
        selector = ContentRoiSelector((240, 320))
        gray = textured_gray()
        mask = InstanceMask(1, "car", disk_mask((240, 320), (120, 160), 40))
        cfrs_bytes = selector.encode(0, gray, [mask], []).total_bytes
        uniform_bytes = selector.encode_uniform(0, gray, TileQuality.HIGH).total_bytes
        assert cfrs_bytes < 0.6 * uniform_bytes
