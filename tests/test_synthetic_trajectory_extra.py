"""Extra trajectory tests: arc-length parametrization, sway spectra and
orbit geometry."""

import numpy as np
import pytest

from repro.synthetic import MOTION_PRESETS, OrbitTrajectory, WalkTrajectory


class TestWalkParametrization:
    def test_constant_speed_along_route(self):
        trajectory = WalkTrajectory(
            np.array([[0, -1.6, 0], [10, -1.6, 0]]),
            speed=1.0,
            look_target=np.array([5.0, -1.0, 8.0]),
            motion_grade="walk",
        )
        # Positions at 1-second spacing are ~1 m apart (modulo sway).
        centers = [trajectory.pose_cw(t).center for t in range(6)]
        steps = [np.linalg.norm(b - a) for a, b in zip(centers, centers[1:])]
        assert np.allclose(steps, 1.0, atol=0.15)

    def test_multi_segment_route(self):
        waypoints = np.array([[0, -1.6, 0], [2, -1.6, 0], [2, -1.6, 2]])
        trajectory = WalkTrajectory(
            waypoints, speed=1.0, look_target=np.array([1.0, -1.0, 5.0])
        )
        assert trajectory.total_length == pytest.approx(4.0)
        # After 3 seconds the carrier is on the second segment.
        center = trajectory.pose_cw(3.0).center
        assert center[0] == pytest.approx(2.0, abs=0.2)
        assert center[2] > 0.5

    def test_clamps_at_route_end(self):
        trajectory = WalkTrajectory(
            np.array([[0, -1.6, 0], [1, -1.6, 0]]), speed=1.0,
            look_target=np.array([0.5, -1.0, 5.0]),
        )
        end_a = trajectory.pose_cw(10.0).center
        end_b = trajectory.pose_cw(50.0).center
        assert np.allclose(end_a, end_b, atol=0.12)  # only sway differs

    def test_sway_amplitude_scales_with_grade(self):
        waypoints = np.array([[0, -1.6, 0], [100, -1.6, 0]])
        target = np.array([50.0, -1.0, 8.0])
        spans = {}
        for grade in ("walk", "jog"):
            trajectory = WalkTrajectory(
                waypoints, speed=0.0001, look_target=target, motion_grade=grade
            )
            ys = [trajectory.pose_cw(t / 10).center[1] for t in range(60)]
            spans[grade] = max(ys) - min(ys)
        assert spans["jog"] > 2 * spans["walk"]

    def test_presets_cover_paper_grades(self):
        # Fig. 12 grades plus the adversarial chaos grade (docs/scenarios.md).
        assert {"walk", "stride", "jog", "whip"} <= set(MOTION_PRESETS)
        assert (
            MOTION_PRESETS["walk"]["speed_scale"]
            < MOTION_PRESETS["stride"]["speed_scale"]
            < MOTION_PRESETS["jog"]["speed_scale"]
        )

    def test_paper_grades_have_no_yaw(self):
        # Only chaos grades carry yaw keys — the Fig. 12 grades must stay
        # byte-identical to their pre-chaos trajectories.
        for grade in ("walk", "stride", "jog"):
            assert "yaw_amp" not in MOTION_PRESETS[grade]
        assert MOTION_PRESETS["whip"]["yaw_amp"] > 0.0


class TestOrbit:
    def test_constant_distance_to_center(self):
        orbit = OrbitTrajectory(center=[1, -1, 5], radius=3.0, height=-0.5)
        for t in (0.0, 2.0, 7.5):
            center = orbit.pose_cw(t).center
            planar = np.linalg.norm((center - np.array([1, -1.5, 5]))[[0, 2]])
            assert planar == pytest.approx(3.0, abs=1e-9)

    def test_always_faces_center(self):
        orbit = OrbitTrajectory(center=[0, -1, 6], radius=2.0, height=-0.6)
        for t in (0.0, 3.0):
            pose = orbit.pose_cw(t)
            target_camera = pose.transform(np.array([0.0, -1.0, 6.0]))
            assert target_camera[2] > 0
            assert np.allclose(target_camera[:2], 0.0, atol=1e-9)
