"""Tests for the FAST/BRIEF/matching feature substrate."""

import numpy as np
import pytest

from repro.features import (
    BriefDescriptorExtractor,
    FeatureSet,
    Keypoint,
    OrbFeatureExtractor,
    corner_score_map,
    fast_corners,
    grid_select,
    hamming_distance,
    match_descriptors,
    select_features,
)


def dot_field(shape=(120, 160), num_dots=60, seed=0):
    """Random bright/dark dots on a gray background.

    FAST-9 fires on blob-like structure (a full circle of brighter/darker
    pixels), not on checkerboard X-junctions, so dots are the natural test
    texture.
    """
    rng = np.random.default_rng(seed)
    image = np.full(shape, 128.0, dtype=np.float32)
    rr, cc = np.mgrid[0 : shape[0], 0 : shape[1]]
    for _ in range(num_dots):
        r = rng.integers(5, shape[0] - 5)
        c = rng.integers(5, shape[1] - 5)
        radius = rng.integers(2, 4)
        value = float(rng.choice([10.0, 245.0]))
        image[(rr - r) ** 2 + (cc - c) ** 2 <= radius**2] = value
    return image


def textured_image(shape=(120, 160), seed=0):
    """Dot field + mild noise: plenty of corners, repeatable."""
    rng = np.random.default_rng(seed)
    return dot_field(shape, seed=seed) + rng.normal(scale=3.0, size=shape).astype(
        np.float32
    )


class TestFast:
    def test_flat_image_has_no_corners(self):
        flat = np.full((50, 50), 128.0, dtype=np.float32)
        assert fast_corners(flat) == []

    def test_dot_field_detections_lie_on_dots(self):
        image = dot_field(seed=7)
        keypoints = fast_corners(image, threshold=25.0)
        assert len(keypoints) > 10
        for keypoint in keypoints[:30]:
            # Each detection sits on or next to non-background texture.
            patch = image[
                max(int(keypoint.row) - 4, 0) : int(keypoint.row) + 5,
                max(int(keypoint.col) - 4, 0) : int(keypoint.col) + 5,
            ]
            assert np.abs(patch - 128.0).max() > 50

    def test_single_bright_dot(self):
        image = np.zeros((40, 40), dtype=np.float32)
        image[20, 20] = 255.0
        keypoints = fast_corners(image, threshold=20.0, compute_orientation=False)
        # The dot itself darker-ring test fires at/near the dot.
        assert any(abs(k.row - 20) <= 2 and abs(k.col - 20) <= 2 for k in keypoints)

    def test_score_map_zero_border(self):
        scores = corner_score_map(textured_image(), threshold=20.0)
        assert not scores[:3].any() and not scores[-3:].any()
        assert not scores[:, :3].any() and not scores[:, -3:].any()

    def test_max_keypoints_respected(self):
        keypoints = fast_corners(textured_image(), max_keypoints=7)
        assert len(keypoints) <= 7

    def test_scores_sorted_descending(self):
        keypoints = fast_corners(textured_image())
        scores = [k.score for k in keypoints]
        assert scores == sorted(scores, reverse=True)

    def test_tiny_image(self):
        assert fast_corners(np.zeros((5, 5), dtype=np.float32)) == []

    def test_rejects_color_image(self):
        with pytest.raises(ValueError):
            corner_score_map(np.zeros((10, 10, 3)))


class TestGridSelect:
    def test_caps_per_cell(self):
        keypoints = [
            Keypoint(row=5, col=5 + i, score=float(i)) for i in range(10)
        ]
        selected = grid_select(keypoints, (64, 64), cell=32, per_cell=3)
        assert len(selected) == 3
        assert [k.score for k in selected] == [9.0, 8.0, 7.0]

    def test_keeps_spread_points(self):
        keypoints = [
            Keypoint(row=5, col=5, score=1.0),
            Keypoint(row=40, col=40, score=1.0),
            Keypoint(row=90, col=90, score=1.0),
        ]
        assert len(grid_select(keypoints, (128, 128), cell=32, per_cell=1)) == 3


class TestBrief:
    def test_descriptor_shape(self):
        image = textured_image()
        keypoints = fast_corners(image, max_keypoints=50)
        kept, descriptors = BriefDescriptorExtractor().compute(image, keypoints)
        assert descriptors.shape == (len(kept), 32)
        assert descriptors.dtype == np.uint8

    def test_border_keypoints_dropped(self):
        image = textured_image()
        keypoints = [Keypoint(row=2, col=2, score=1.0)]
        kept, descriptors = BriefDescriptorExtractor().compute(image, keypoints)
        assert kept == [] and len(descriptors) == 0

    def test_descriptor_stable_under_noise(self):
        image = textured_image(seed=1)
        noisy = image + np.random.default_rng(2).normal(scale=2.0, size=image.shape)
        keypoints = fast_corners(image, max_keypoints=30)
        extractor = BriefDescriptorExtractor()
        kept_a, descriptors_a = extractor.compute(image, keypoints)
        kept_b, descriptors_b = extractor.compute(noisy.astype(np.float32), kept_a)
        assert len(kept_a) == len(kept_b)
        distances = np.diagonal(hamming_distance(descriptors_a, descriptors_b))
        assert np.median(distances) < 40  # same points stay close in Hamming space

    def test_hamming_distance_identity(self):
        descriptors = np.random.default_rng(0).integers(
            0, 256, size=(5, 32), dtype=np.uint8
        )
        distances = hamming_distance(descriptors, descriptors)
        assert (np.diagonal(distances) == 0).all()
        assert (distances >= 0).all() and (distances <= 256).all()

    def test_hamming_known_value(self):
        a = np.zeros((1, 32), dtype=np.uint8)
        b = np.zeros((1, 32), dtype=np.uint8)
        b[0, 0] = 0b10110000
        assert hamming_distance(a, b)[0, 0] == 3


class TestMatching:
    def test_self_match_is_identity(self):
        image = textured_image()
        features = OrbFeatureExtractor(max_keypoints=60).extract(image)
        matches = match_descriptors(features.descriptors, features.descriptors)
        assert len(matches) >= len(features) * 0.8
        assert all(m.query_index == m.train_index for m in matches)
        assert all(m.distance == 0 for m in matches)

    def test_translated_image_matches(self):
        image = textured_image(seed=3)
        shifted = np.roll(image, shift=(4, 6), axis=(0, 1))
        extractor = OrbFeatureExtractor(max_keypoints=80)
        features_a = extractor.extract(image)
        features_b = extractor.extract(shifted)
        matches = match_descriptors(features_a.descriptors, features_b.descriptors)
        assert len(matches) >= 10
        # Matched displacement should cluster around (6, 4) in (u, v).
        displacements = np.array(
            [
                features_b.pixels[m.train_index] - features_a.pixels[m.query_index]
                for m in matches
            ]
        )
        median_displacement = np.median(displacements, axis=0)
        assert np.allclose(median_displacement, [6, 4], atol=1.5)

    def test_empty_inputs(self):
        empty = np.zeros((0, 32), dtype=np.uint8)
        some = np.zeros((3, 32), dtype=np.uint8)
        assert match_descriptors(empty, some) == []
        assert match_descriptors(some, empty) == []

    def test_max_distance_filters(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 256, size=(10, 32), dtype=np.uint8)
        b = rng.integers(0, 256, size=(10, 32), dtype=np.uint8)
        strict = match_descriptors(a, b, max_distance=10, cross_check=False)
        assert all(m.distance <= 10 for m in strict)


class TestFeatureSet:
    def test_pixels_layout(self):
        features = FeatureSet(
            keypoints=[Keypoint(row=3, col=7, score=1.0)],
            descriptors=np.zeros((1, 32), dtype=np.uint8),
        )
        assert np.allclose(features.pixels, [[7, 3]])  # (u, v) order

    def test_subset_bool_and_int(self):
        image = textured_image()
        features = OrbFeatureExtractor(max_keypoints=20).extract(image)
        by_bool = features.subset(np.arange(len(features)) % 2 == 0)
        by_int = features.subset(np.arange(0, len(features), 2))
        assert len(by_bool) == len(by_int)
        assert np.array_equal(by_bool.descriptors, by_int.descriptors)


class TestSelectFeatures:
    def make_scene(self):
        image = textured_image(seed=5)
        mask = np.zeros(image.shape, dtype=bool)
        mask[30:80, 40:100] = True
        features = OrbFeatureExtractor(max_keypoints=120).extract(image)
        return image, mask, features

    def test_labels_match_masks(self):
        image, mask, features = self.make_scene()
        selected, labels = select_features(features, image, [mask])
        pixels = selected.pixels
        for pixel, label in zip(pixels, labels):
            inside = mask[int(round(pixel[1])), int(round(pixel[0]))]
            assert (label == 1) == bool(inside)

    def test_background_proximity_pruning(self):
        image, mask, features = self.make_scene()
        selected, labels = select_features(
            features, image, [mask], min_separation=12.0
        )
        background = selected.pixels[labels == 0]
        if len(background) >= 2:
            from scipy.spatial.distance import pdist

            assert pdist(background).min() >= 12.0 - 1e-6

    def test_empty_feature_set(self):
        empty = FeatureSet(keypoints=[], descriptors=np.zeros((0, 32), np.uint8))
        selected, labels = select_features(empty, np.zeros((50, 50)))
        assert len(selected) == 0 and len(labels) == 0

    def test_no_masks_means_all_background(self):
        image, _, features = self.make_scene()
        _, labels = select_features(features, image, None)
        assert (labels == 0).all()
