"""Tests for the synthetic world, renderer and dataset catalog."""

import numpy as np
import pytest

from repro.geometry import SE3, PinholeCamera
from repro.synthetic import (
    COMPLEXITY_LEVELS,
    DATASET_NAMES,
    LinearMotion,
    OrbitMotion,
    ProceduralTexture,
    Renderer,
    SceneObject,
    StaticMotion,
    SyntheticVideo,
    WalkTrajectory,
    WaypointMotion,
    World,
    default_camera,
    make_box_mesh,
    make_complexity_scene,
    make_cylinder_mesh,
    make_dataset,
    make_plane_mesh,
)


class TestMeshes:
    def test_box_mesh_structure(self):
        mesh = make_box_mesh((2.0, 4.0, 6.0))
        assert mesh.vertices.shape == (8, 3)
        assert mesh.num_faces == 12
        assert np.allclose(np.abs(mesh.vertices).max(axis=0), [1.0, 2.0, 3.0])
        # Box surface area = 2(ab+bc+ca) = 2(8+24+12) = 88.
        assert np.isclose(mesh.face_areas().sum(), 88.0)

    def test_plane_mesh_area(self):
        mesh = make_plane_mesh(10.0, 4.0)
        assert np.isclose(mesh.face_areas().sum(), 40.0)

    def test_cylinder_mesh_closed(self):
        mesh = make_cylinder_mesh(1.0, 2.0, segments=16)
        # 16 side quads (2 tris each) + 2*16 cap tris.
        assert mesh.num_faces == 16 * 4
        # Lateral area ~ 2*pi*r*h, caps ~ 2*pi*r^2 (polygonal, slightly less).
        total = mesh.face_areas().sum()
        assert 0.9 * (2 * np.pi * 2.0 + 2 * np.pi) < total <= 2 * np.pi * 2.0 + 2 * np.pi

    def test_surface_sampling_on_box(self):
        mesh = make_box_mesh((2.0, 2.0, 2.0))
        rng = np.random.default_rng(0)
        points = mesh.sample_surface_points(200, rng)
        assert points.shape == (200, 3)
        # Every sample lies on the box surface: max coordinate == 1.
        assert np.allclose(np.abs(points).max(axis=1), 1.0, atol=1e-9)

    def test_bad_uv_shape_raises(self):
        from repro.synthetic import TriangleMesh

        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 2]]), np.zeros((2, 3, 2)))


class TestTexture:
    def test_sample_in_range(self):
        texture = ProceduralTexture((100, 120, 140), seed=0)
        u = np.linspace(-3, 3, 50)
        v = np.linspace(-3, 3, 50)
        rgb = texture.sample(u, v)
        assert rgb.shape == (50, 3)
        assert rgb.min() >= 0.0 and rgb.max() <= 255.0

    def test_tileable(self):
        texture = ProceduralTexture((100, 100, 100), seed=1)
        a = texture.sample(np.array([0.25]), np.array([0.5]))
        b = texture.sample(np.array([1.25]), np.array([-0.5]))
        assert np.allclose(a, b)

    def test_has_contrast(self):
        texture = ProceduralTexture((128, 128, 128), seed=2)
        grid = np.linspace(0, 1, 96)
        uu, vv = np.meshgrid(grid, grid)
        rgb = texture.sample(uu.ravel(), vv.ravel())
        assert rgb.std() > 10.0  # dots must create texture for FAST


class TestMotionModels:
    def test_static(self):
        pose = SE3(np.eye(3), [1, 2, 3])
        motion = StaticMotion(pose)
        assert motion.pose_wo(0.0).allclose(motion.pose_wo(10.0))
        assert not motion.is_dynamic

    def test_linear_velocity(self):
        start = SE3(np.eye(3), [0, 0, 0])
        motion = LinearMotion(start, velocity=[1.0, 0.0, 0.5])
        assert np.allclose(motion.pose_wo(2.0).translation, [2.0, 0.0, 1.0])
        assert motion.is_dynamic

    def test_waypoint_interpolation(self):
        motion = WaypointMotion(
            np.array([0.0, 2.0]), np.array([[0, 0, 0], [4, 0, 0]])
        )
        assert np.allclose(motion.pose_wo(1.0).translation, [2, 0, 0])
        # Clamps beyond the last waypoint.
        assert np.allclose(motion.pose_wo(99.0).translation, [4, 0, 0])

    def test_orbit_radius_constant(self):
        motion = OrbitMotion(center=[1, 0, 1], radius=2.0, angular_speed=0.5)
        for t in (0.0, 1.0, 3.3):
            offset = motion.pose_wo(t).translation - np.array([1, 0, 1])
            assert np.isclose(np.linalg.norm(offset), 2.0)

    def test_waypoint_requires_two(self):
        with pytest.raises(ValueError):
            WaypointMotion(np.array([0.0]), np.array([[0, 0, 0]]))


class TestTrajectory:
    def test_walk_moves_camera(self):
        trajectory = WalkTrajectory(
            np.array([[0, -1.6, 0], [5, -1.6, 0]]), speed=1.0,
            look_target=np.array([2.5, -1.0, 6.0]),
        )
        pose0 = trajectory.pose_cw(0.0)
        pose3 = trajectory.pose_cw(3.0)
        assert pose0.translation_distance_to(pose3) > 2.0

    def test_motion_grades_scale_speed(self):
        waypoints = np.array([[0, -1.6, 0], [10, -1.6, 0]])
        walk = WalkTrajectory(waypoints, speed=1.0, motion_grade="walk",
                              look_target=np.array([5.0, -1.0, 8.0]))
        jog = WalkTrajectory(waypoints, speed=1.0, motion_grade="jog",
                             look_target=np.array([5.0, -1.0, 8.0]))
        t = 2.0
        assert jog.pose_cw(t).center[0] > walk.pose_cw(t).center[0]

    def test_unknown_grade_raises(self):
        with pytest.raises(ValueError):
            WalkTrajectory(np.zeros((2, 3)), motion_grade="sprint")

    def test_look_target_in_view(self):
        camera = default_camera()
        trajectory = WalkTrajectory(
            np.array([[-3, -1.6, -1.5], [3, -1.6, -1.5]]), speed=0.5,
            look_target=np.array([0.0, -1.0, 5.5]),
        )
        pixels, depths = camera.project_world(
            trajectory.pose_cw(1.0), np.array([[0.0, -1.0, 5.5]])
        )
        assert camera.in_view(pixels, depths).all()
        # Target projects near image center.
        assert abs(pixels[0, 0] - camera.cx) < 30
        assert abs(pixels[0, 1] - camera.cy) < 30


class TestRenderer:
    def make_simple(self):
        box = SceneObject(
            instance_id=1,
            class_label="crate",
            mesh=make_box_mesh((1.0, 1.0, 1.0)),
            texture=ProceduralTexture((180, 90, 80), seed=0),
            motion=StaticMotion(SE3(np.eye(3), [0.0, 0.0, 4.0])),
        )
        camera = PinholeCamera.with_fov(160, 120, 64.0)
        return Renderer(camera, [box]), camera

    def test_box_renders_centered(self):
        renderer, camera = self.make_simple()
        result = renderer.render(SE3.identity(), time=0.0)
        mask = result.instance_mask(1)
        assert mask.any()
        rows, cols = np.nonzero(mask)
        assert abs(rows.mean() - camera.cy) < 6
        assert abs(cols.mean() - camera.cx) < 6
        # Depth of the front face is 3.5 (box spans z in [3.5, 4.5]).
        assert np.isclose(result.depth[mask].min(), 3.5, atol=0.05)

    def test_expected_mask_size(self):
        renderer, camera = self.make_simple()
        result = renderer.render(SE3.identity(), time=0.0)
        mask = result.instance_mask(1)
        # A unit box at 3.5m: width ~ fx / 3.5 pixels.
        expected = camera.fx / 3.5
        width = mask.any(axis=0).sum()
        assert abs(width - expected) < 6

    def test_occlusion_order(self):
        near = SceneObject(
            1, "near", make_box_mesh((1.0, 1.0, 1.0)),
            ProceduralTexture((200, 60, 60), 1),
            StaticMotion(SE3(np.eye(3), [0.0, 0.0, 3.0])),
        )
        far = SceneObject(
            2, "far", make_box_mesh((3.5, 3.5, 1.0)),
            ProceduralTexture((60, 200, 60), 2),
            StaticMotion(SE3(np.eye(3), [0.0, 0.0, 6.0])),
        )
        camera = PinholeCamera.with_fov(160, 120, 64.0)
        result = Renderer(camera, [far, near]).render(SE3.identity(), 0.0)
        center_label = result.label_map[60, 80]
        assert center_label == 1  # near box wins the z-test
        assert 2 in result.visible_instance_ids  # far box visible around it

    def test_camera_behind_sees_nothing(self):
        renderer, camera = self.make_simple()
        pose = SE3.look_at(eye=[0, 0, 10.0], target=[0, 0, 20.0])
        result = renderer.render(pose, time=0.0)
        assert not result.instance_mask(1).any()

    def test_near_plane_clipping_keeps_partial_geometry(self):
        # Camera inside the scene, close to a large floor: triangles cross
        # the near plane and must be clipped, not dropped.
        floor = SceneObject(
            0, "background", make_plane_mesh(40.0, 40.0),
            ProceduralTexture((120, 120, 120), 3),
        )
        camera = PinholeCamera.with_fov(160, 120, 64.0)
        pose = SE3.look_at(eye=[0.0, -1.6, 0.0], target=[0.0, 0.0, 6.0])
        result = Renderer(camera, [floor]).render(pose, 0.0)
        assert np.isfinite(result.depth).mean() > 0.3


class TestWorldAndVideo:
    def test_duplicate_instance_ids_rejected(self):
        box = lambda i: SceneObject(
            i, "x", make_box_mesh((1, 1, 1)), ProceduralTexture((100, 100, 100), i)
        )
        with pytest.raises(ValueError):
            World([box(1), box(1)])

    def test_feature_sites_follow_moving_objects(self):
        start = SE3(np.eye(3), [0.0, 0.0, 5.0])
        mover = SceneObject(
            1, "car", make_box_mesh((1, 1, 1)),
            ProceduralTexture((100, 100, 100), 0),
            LinearMotion(start, velocity=[1.0, 0.0, 0.0]),
        )
        world = World([mover])
        positions0 = world.site_world_positions(0.0)
        positions2 = world.site_world_positions(2.0)
        moved = positions2 - positions0
        assert np.allclose(moved[:, 0], 2.0, atol=1e-9)

    def test_video_iteration_and_cache(self):
        video = make_dataset("davis_like", num_frames=3, resolution=(160, 120))
        frames = list(video)
        assert len(frames) == 3
        # Cached: same object identity on second access.
        again, _ = video.frame_at(1)
        assert again is frames[1][0]

    def test_video_index_bounds(self):
        video = make_dataset("davis_like", num_frames=3, resolution=(160, 120))
        with pytest.raises(IndexError):
            video.frame_at(3)

    def test_ground_truth_masks_match_label_map(self):
        video = make_dataset("xiph_like", num_frames=1, resolution=(160, 120))
        _, truth = video.frame_at(0)
        for mask in truth.masks:
            assert (truth.label_map[mask.mask] == mask.instance_id).all()


class TestDatasetCatalog:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_datasets_show_instances(self, name):
        video = make_dataset(name, num_frames=1, resolution=(160, 120))
        _, truth = video.frame_at(0)
        assert len(truth.masks) >= 1
        assert max(m.area for m in truth.masks) > 150

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            make_dataset("imagenet")

    @pytest.mark.parametrize("level", COMPLEXITY_LEVELS)
    def test_complexity_object_counts(self, level):
        video = make_complexity_scene(level, num_frames=1, resolution=(160, 120))
        _, truth = video.frame_at(0)
        if level == "easy":
            assert len(truth.masks) <= 3
        else:
            assert len(truth.masks) >= 5
        if level == "hard":
            assert len(video.world.dynamic_instance_ids) >= 1

    def test_unknown_complexity_raises(self):
        with pytest.raises(ValueError):
            make_complexity_scene("extreme")

    def test_dynamic_flag_adds_moving_object(self):
        static = make_dataset("xiph_like", num_frames=1, dynamic=False)
        dynamic = make_dataset("xiph_like", num_frames=1, dynamic=True)
        assert not static.world.dynamic_instance_ids
        assert dynamic.world.dynamic_instance_ids

    def test_rendered_frames_have_texture_for_fast(self):
        from repro.features import OrbFeatureExtractor

        video = make_dataset("davis_like", num_frames=1)
        frame, _ = video.frame_at(0)
        features = OrbFeatureExtractor(max_keypoints=200).extract(frame.gray)
        assert len(features) > 50
