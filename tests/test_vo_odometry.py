"""Integration tests for visual odometry + mask transfer on synthetic video.

These are the load-bearing tests of the mobile side: they run the real
initialization / tracking / labeling / transfer pipeline on rendered
sequences with ground truth and check end metrics.
"""

import numpy as np
import pytest

from repro.image import mask_iou
from repro.synthetic import make_dataset
from repro.transfer import MaskTransferEngine
from repro.vo import OracleFrontend, VisualOdometry, VOState


def run_sequence(
    name,
    num_frames=90,
    offload_every=10,
    mask_delay=5,
    seed=1,
    dynamic=None,
):
    """Drive VO + mask transfer with an ideal edge (GT masks, fixed delay).

    Returns (states, ious, vo).
    """
    video = make_dataset(name, num_frames=num_frames, dynamic=dynamic)
    frontend = OracleFrontend(video.world, video.camera, seed=seed)
    vo = VisualOdometry(video.camera)
    engine = MaskTransferEngine(video.camera)
    pending = {}
    states, ious = [], []
    for frame, truth in video:
        observation = frontend.observe(frame, truth)
        result = vo.process_frame(frame.index, frame.timestamp, observation)
        states.append(result.state)
        for keyframe_index, (due, masks) in list(pending.items()):
            if frame.index >= due:
                vo.apply_segmentation(keyframe_index, masks)
                del pending[keyframe_index]
        if result.is_tracking and frame.index % offload_every == 0:
            vo.promote_keyframe(frame.index)
            pending[frame.index] = (frame.index + mask_delay, truth.masks)
        if result.is_tracking:
            for prediction in engine.predict(vo):
                truth_mask = truth.mask_for(prediction.mask.instance_id)
                if truth_mask is not None:
                    ious.append(mask_iou(prediction.mask.mask, truth_mask.mask))
    return states, np.asarray(ious), vo


class TestInitialization:
    def test_initializes_within_two_seconds(self):
        states, _, _ = run_sequence("davis_like", num_frames=60)
        assert VOState.TRACKING in states
        first = states.index(VOState.TRACKING)
        assert first < 60

    def test_no_track_without_features(self):
        from repro.vo import Observation

        video = make_dataset("davis_like", num_frames=1)
        vo = VisualOdometry(video.camera)
        empty = Observation(np.zeros((0, 2)), np.zeros((0, 32), np.uint8))
        result = vo.process_frame(0, 0.0, empty)
        assert result.state is VOState.INITIALIZING


class TestTrackingQuality:
    @pytest.mark.parametrize("name", ["davis_like", "xiph_like", "oilfield"])
    def test_tracking_stable_no_losses(self, name):
        states, _, _ = run_sequence(name, num_frames=90)
        lost = sum(1 for s in states if s is VOState.LOST)
        assert lost <= 5

    def test_pose_rotation_accuracy(self):
        video = make_dataset("xiph_like", num_frames=90)
        frontend = OracleFrontend(video.world, video.camera, seed=1)
        vo = VisualOdometry(video.camera)
        previous_vo = previous_gt = None
        errors = []
        for frame, truth in video:
            observation = frontend.observe(frame, truth)
            result = vo.process_frame(frame.index, frame.timestamp, observation)
            if result.is_tracking and previous_vo is not None:
                rel_vo = result.pose_cw @ previous_vo.inverse()
                rel_gt = truth.pose_cw @ previous_gt.inverse()
                errors.append(np.degrees(rel_vo.rotation_angle_to(rel_gt)))
            if result.is_tracking:
                previous_vo, previous_gt = result.pose_cw, truth.pose_cw
            else:
                previous_vo = None
        assert len(errors) > 30
        assert np.median(errors) < 0.5

    def test_map_grows_and_stays_bounded(self):
        _, _, vo = run_sequence("xiph_like", num_frames=90)
        assert 50 < len(vo.map) <= vo.config.max_map_points


class TestSegmentationLabeling:
    def test_objects_registered_after_masks(self):
        _, _, vo = run_sequence("xiph_like", num_frames=90)
        assert len(vo.objects) >= 3
        assert len(vo.map.object_labels()) >= 3

    def test_unlabeled_fraction_drops_after_masks(self):
        _, _, vo = run_sequence("davis_like", num_frames=90)
        assert vo.map.unlabeled_fraction() < 0.5

    def test_apply_segmentation_unknown_frame_fails(self):
        video = make_dataset("davis_like", num_frames=1)
        vo = VisualOdometry(video.camera)
        assert not vo.apply_segmentation(999, [])


class TestMaskTransfer:
    @pytest.mark.parametrize("name", ["davis_like", "xiph_like", "oilfield"])
    def test_static_scene_transfer_quality(self, name):
        _, ious, _ = run_sequence(name, num_frames=90, dynamic=False)
        assert len(ious) > 20
        assert ious.mean() > 0.85
        assert np.median(ious) > 0.9

    def test_dynamic_scene_transfer_still_works(self):
        # davis_like with its slowly drifting "person": the refreshing
        # point cloud plus frequent keyframes keeps transfers usable.
        _, ious, vo = run_sequence("davis_like", num_frames=90, dynamic=True)
        assert len(ious) > 20
        assert ious.mean() > 0.75

    def test_fast_mover_detected_and_tracked(self):
        # xiph_like's orbiting person moves ~0.7 m/s: the image-space
        # evidence must flag it and the per-object pose solve (Eq. 6-7)
        # must absorb the motion.
        # Slow keyframe cadence so the tracker cannot lean on point
        # refresh and must actually solve the object pose.
        _, ious, vo = run_sequence(
            "xiph_like", num_frames=90, dynamic=True, offload_every=30
        )
        mover = vo.objects.get(9)
        assert mover is not None
        assert mover.accumulated_motion > 0
        assert ious.mean() > 0.8
        # Static objects were not dragged along.
        static_tracks = [t for k, t in vo.objects.items() if k != 9]
        assert all(np.linalg.norm(t.pose_wo.translation) < 0.5 for t in static_tracks)

    def test_no_predictions_before_any_masks(self):
        video = make_dataset("davis_like", num_frames=40)
        frontend = OracleFrontend(video.world, video.camera, seed=1)
        vo = VisualOdometry(video.camera)
        engine = MaskTransferEngine(video.camera)
        for frame, truth in video:
            observation = frontend.observe(frame, truth)
            vo.process_frame(frame.index, frame.timestamp, observation)
            assert engine.predict(vo) == []

    def test_transfer_uses_newest_keyframe(self):
        video = make_dataset("xiph_like", num_frames=90)
        frontend = OracleFrontend(video.world, video.camera, seed=1)
        vo = VisualOdometry(video.camera)
        engine = MaskTransferEngine(video.camera)
        pending = {}
        last_sources = []
        for frame, truth in video:
            observation = frontend.observe(frame, truth)
            result = vo.process_frame(frame.index, frame.timestamp, observation)
            for kf, (due, masks) in list(pending.items()):
                if frame.index >= due:
                    vo.apply_segmentation(kf, masks)
                    del pending[kf]
            if result.is_tracking and frame.index % 10 == 0:
                vo.promote_keyframe(frame.index)
                pending[frame.index] = (frame.index + 3, truth.masks)
            if result.is_tracking and frame.index == 85:
                for prediction in engine.predict(vo):
                    last_sources.append(prediction.source_frame_index)
        assert last_sources
        # Sources must be recent (the freshest masked keyframe is 80).
        assert min(last_sources) >= 70
