"""Tests for the EdgeISSystem client and SystemConfig ablations."""

import numpy as np
import pytest

from repro.core import EdgeISSystem, SystemConfig
from repro.eval import ExperimentSpec, run_experiment
from repro.synthetic import make_dataset


def make_system(config=None, frontend="oracle", frames=1):
    video = make_dataset("davis_like", num_frames=frames, resolution=(160, 120))
    shape = (video.camera.height, video.camera.width)
    system = EdgeISSystem(
        video.camera, shape, config=config, world=video.world, frontend=frontend
    )
    return system, video


class TestConfig:
    def test_ablation_names(self):
        assert SystemConfig().ablation_name == "edgeis"
        assert (
            SystemConfig(use_mamt=False, use_ciia=False, use_cfrs=False).ablation_name
            == "baseline"
        )
        assert (
            SystemConfig(use_mamt=True, use_ciia=False, use_cfrs=False).ablation_name
            == "baseline+mamt"
        )
        assert (
            SystemConfig(use_mamt=True, use_ciia=True, use_cfrs=False).ablation_name
            == "baseline+mamt+ciia"
        )

    def test_top_level_reexports(self):
        import repro

        assert repro.EdgeISSystem is EdgeISSystem
        assert repro.SystemConfig is SystemConfig


class TestConstruction:
    def test_oracle_frontend_requires_world(self):
        video = make_dataset("davis_like", num_frames=1, resolution=(160, 120))
        with pytest.raises(ValueError):
            EdgeISSystem(video.camera, (120, 160), world=None, frontend="oracle")

    def test_unknown_frontend(self):
        video = make_dataset("davis_like", num_frames=1, resolution=(160, 120))
        with pytest.raises(ValueError):
            EdgeISSystem(
                video.camera, (120, 160), world=video.world, frontend="sift"
            )

    def test_fast_brief_frontend_builds(self):
        system, _ = make_system(frontend="fast_brief")
        assert system.name == "edgeis"


class TestBehaviour:
    def test_process_frame_returns_costs(self):
        system, video = make_system(frames=3)
        frame, truth = video.frame_at(0)
        output = system.process_frame(frame, truth, 0.0)
        assert output.compute_ms > 0
        assert isinstance(output.masks, list)

    def test_offloads_during_initialization(self):
        system, video = make_system(frames=8)
        offloads = 0
        for frame, truth in video:
            output = system.process_frame(frame, truth, frame.index * 33.3)
            if output.offload is not None:
                offloads += 1
                system._outstanding = 0  # pretend the result returned
        assert offloads >= 1  # CFRS ships init frames to the edge

    def test_receive_result_drains_outstanding(self):
        system, video = make_system(frames=2)
        frame, truth = video.frame_at(0)
        system.process_frame(frame, truth, 0.0)
        system._outstanding = 1
        cost = system.receive_result(0, [], 100.0)
        assert cost > 0
        assert system._outstanding == 0

    def test_memory_grows_with_map(self):
        system, video = make_system(frames=1)
        empty = system.memory_bytes()
        system.vo.map.add_point(np.zeros(3), np.zeros(32, np.uint8))
        assert system.memory_bytes() >= empty

    def test_ciia_disabled_sends_no_instructions(self):
        config = SystemConfig(use_ciia=False)
        system, video = make_system(config=config, frames=40)
        requests = []
        for frame, truth in video:
            output = system.process_frame(frame, truth, frame.index * 33.3)
            if output.offload is not None:
                requests.append(output.offload)
                system._outstanding = 0
        assert requests
        assert all(r.instructions is None for r in requests)
        assert all(not r.use_dynamic_anchors for r in requests)

    def test_cfrs_disabled_uses_fixed_interval(self):
        config = SystemConfig(use_cfrs=False, fixed_offload_interval=10)
        system, video = make_system(config=config, frames=35)
        offload_frames = []
        for frame, truth in video:
            output = system.process_frame(frame, truth, frame.index * 33.3)
            if output.offload is not None:
                offload_frames.append(frame.index)
                system._outstanding = 0
        gaps = np.diff(offload_frames)
        assert (gaps >= 10).all()


class TestEndToEndAblation:
    def test_full_system_beats_baseline(self):
        full = run_experiment(
            ExperimentSpec(system="edgeis", dataset="davis_like", num_frames=110)
        ).result
        base = run_experiment(
            ExperimentSpec(system="baseline", dataset="davis_like", num_frames=110)
        ).result
        assert full.mean_iou() > base.mean_iou()
