"""Tests for the timeline sampler: fixed-grid sampling, ring bounds,
pipeline wiring, and the latency-spike / queue-growth detectors."""

import pytest

from repro.eval import ExperimentSpec, run_experiment
from repro.obs import (
    MetricsRegistry,
    TimelineSampler,
    TimelineSeries,
    Tracer,
    detect_latency_spikes,
    detect_queue_growth,
)


class TestTimelineSeries:
    def test_ring_evicts_oldest(self):
        series = TimelineSeries("q", "gauge", 1.0, capacity=3)
        for tick in range(5):
            series.append(float(tick), float(tick * 10))
        assert len(series) == 3
        assert series.times_ms == [2.0, 3.0, 4.0]
        assert series.values == [20.0, 30.0, 40.0]
        assert series.dropped == 2
        assert series.last == 40.0

    def test_to_dict_is_json_clean(self):
        series = TimelineSeries("q", "counter", 0.5, capacity=8)
        series.append(0.123456789, 1.987654321)
        payload = series.to_dict()
        assert payload["name"] == "q"
        assert payload["kind"] == "counter"
        assert payload["times_ms"] == [0.123457]
        assert payload["values"] == [1.987654]
        assert payload["dropped"] == 0


class TestTimelineSampler:
    def test_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="interval_ms"):
            TimelineSampler(registry, interval_ms=0.0)
        with pytest.raises(ValueError, match="capacity"):
            TimelineSampler(registry, interval_ms=1.0, capacity=0)

    def test_samples_on_fixed_grid(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        sampler = TimelineSampler(registry, interval_ms=100.0)
        gauge.set(1.0)
        assert sampler.tick(0.0) == 1  # grid anchors at the first tick
        gauge.set(2.0)
        # 0.0 was sampled; crossing 100 and 200 takes two more samples,
        # timestamped on the boundaries (not at 250).
        assert sampler.tick(250.0) == 2
        series = sampler.get("depth")
        assert series.times_ms == [0.0, 100.0, 200.0]
        assert series.values == [1.0, 2.0, 2.0]
        # No boundary crossed: no sample.
        assert sampler.tick(260.0) == 0
        assert sampler.samples_taken == 3

    def test_counters_and_gauges_sampled_with_kind(self):
        registry = MetricsRegistry()
        registry.counter("frames").inc(3)
        registry.gauge("depth").set(2.0)
        sampler = TimelineSampler(registry, interval_ms=10.0)
        sampler.tick(0.0)
        assert sampler.get("frames").kind == "counter"
        assert sampler.get("depth").kind == "gauge"

    def test_series_appear_lazily_without_backfill(self):
        registry = MetricsRegistry()
        registry.gauge("early").set(1.0)
        sampler = TimelineSampler(registry, interval_ms=10.0)
        sampler.tick(0.0)
        registry.gauge("late").set(5.0)
        sampler.tick(10.0)
        assert len(sampler.get("early")) == 2
        assert sampler.get("late").times_ms == [10.0]

    def test_to_dict_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("b").set(1.0)
        registry.gauge("a").set(2.0)
        sampler = TimelineSampler(registry, interval_ms=10.0)
        sampler.tick(0.0)
        payload = sampler.to_dict()
        assert list(payload["series"]) == ["a", "b"]
        assert payload["interval_ms"] == 10.0
        assert payload["samples_taken"] == 1


class TestPipelineWiring:
    def test_experiment_produces_timeline(self):
        spec = ExperimentSpec(
            system="edgeis",
            num_frames=40,
            resolution=(160, 120),
            warmup_frames=10,
            trace=True,
            sample_interval_ms=100.0,
        )
        outcome = run_experiment(spec)
        sampler = outcome.sampler
        assert sampler is not None
        assert sampler.samples_taken > 0
        ewma = sampler.get("pipeline.frame_latency_ewma_ms")
        assert ewma is not None and len(ewma) > 0
        # Timestamps sit on the fixed grid anchored at the first tick.
        anchor = ewma.times_ms[0]
        for ts in ewma.times_ms:
            assert (ts - anchor) % 100.0 == pytest.approx(0.0)

    def test_no_sampler_without_interval(self):
        spec = ExperimentSpec(
            system="edgeis", num_frames=10, resolution=(160, 120), trace=True
        )
        assert run_experiment(spec).sampler is None


def spike_tracer():
    tracer = Tracer()
    for frame in range(6):
        dur = 100.0 if frame == 5 else 10.0
        tracer.add_span(
            "client.process",
            lane="client",
            frame=frame,
            start_ms=frame * 33.0,
            dur_ms=dur,
        )
    return tracer


class TestLatencySpikeDetector:
    def test_detects_spike_over_ewma_baseline(self):
        anomalies = detect_latency_spikes(spike_tracer())
        assert len(anomalies) == 1
        anomaly = anomalies[0]
        assert anomaly["type"] == "latency_spike"
        assert anomaly["frame"] == 5
        assert anomaly["latency_ms"] == 100.0
        assert anomaly["baseline_ms"] == pytest.approx(10.0)
        assert anomaly["severity"] == pytest.approx(10.0)

    def test_no_spike_on_flat_series(self):
        tracer = Tracer()
        for frame in range(10):
            tracer.add_span(
                "client.process",
                lane="client",
                frame=frame,
                start_ms=frame * 33.0,
                dur_ms=10.0,
            )
        assert detect_latency_spikes(tracer) == []

    def test_min_ms_floor_suppresses_tiny_spikes(self):
        tracer = Tracer()
        for frame, dur in enumerate((0.5, 0.5, 3.0)):
            tracer.add_span(
                "client.process",
                lane="client",
                frame=frame,
                start_ms=frame * 33.0,
                dur_ms=dur,
            )
        # 3.0 is 6x the 0.5 baseline but under the 5 ms absolute floor.
        assert detect_latency_spikes(tracer) == []

    def test_emit_mirrors_anomaly_as_trace_event(self):
        tracer = spike_tracer()
        detect_latency_spikes(tracer, emit=True)
        events = [e for e in tracer.events if e.name == "anomaly.latency_spike"]
        assert len(events) == 1
        assert events[0].attrs["latency_ms"] == 100.0


def growth_sampler(values, interval=100.0, name="serve.queue_depth"):
    registry = MetricsRegistry()
    gauge = registry.gauge(name)
    sampler = TimelineSampler(registry, interval_ms=interval)
    for tick, value in enumerate(values):
        gauge.set(float(value))
        sampler.tick(tick * interval)
    return sampler


class TestQueueGrowthDetector:
    def test_detects_sustained_growth(self):
        sampler = growth_sampler([0, 1, 2, 3, 4, 1])
        anomalies = detect_queue_growth(sampler)
        assert len(anomalies) == 1
        anomaly = anomalies[0]
        assert anomaly["type"] == "queue_growth"
        assert anomaly["from_depth"] == 0.0
        assert anomaly["to_depth"] == 4.0
        assert anomaly["samples"] == 5
        assert anomaly["ts_ms"] == 400.0

    def test_short_or_shallow_runs_ignored(self):
        assert detect_queue_growth(growth_sampler([0, 1, 2, 0, 1, 2])) == []
        assert detect_queue_growth(growth_sampler([0, 0, 1, 1, 1, 1])) == []

    def test_none_sampler_and_missing_series(self):
        assert detect_queue_growth(None) == []
        assert detect_queue_growth(growth_sampler([0, 5], name="other")) == []

    def test_emit_mirrors_into_tracer(self):
        tracer = Tracer()
        sampler = growth_sampler([0, 1, 2, 3, 4])
        detect_queue_growth(sampler, tracer=tracer, emit=True)
        assert [e.name for e in tracer.events] == ["anomaly.queue_growth"]
