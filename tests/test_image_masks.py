"""Unit + property tests for masks, IoU and label maps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.image import (
    InstanceMask,
    bounding_box,
    box_iou,
    label_map_to_masks,
    mask_area,
    mask_iou,
    masks_to_label_map,
)


def disk_mask(shape, center, radius):
    rr, cc = np.mgrid[0 : shape[0], 0 : shape[1]]
    return (rr - center[0]) ** 2 + (cc - center[1]) ** 2 <= radius**2


class TestMaskIoU:
    def test_identical_masks(self):
        mask = disk_mask((40, 40), (20, 20), 8)
        assert mask_iou(mask, mask) == 1.0

    def test_disjoint_masks(self):
        a = disk_mask((40, 40), (10, 10), 4)
        b = disk_mask((40, 40), (30, 30), 4)
        assert mask_iou(a, b) == 0.0

    def test_both_empty_is_one(self):
        empty = np.zeros((10, 10), dtype=bool)
        assert mask_iou(empty, empty) == 1.0

    def test_one_empty_is_zero(self):
        empty = np.zeros((10, 10), dtype=bool)
        full = np.ones((10, 10), dtype=bool)
        assert mask_iou(empty, full) == 0.0

    def test_half_overlap(self):
        a = np.zeros((10, 10), dtype=bool)
        b = np.zeros((10, 10), dtype=bool)
        a[:, :6] = True  # 60 px
        b[:, 4:] = True  # 60 px, overlap 20 px
        assert mask_iou(a, b) == pytest.approx(20 / 100)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mask_iou(np.zeros((5, 5), bool), np.zeros((6, 6), bool))

    @settings(max_examples=40, deadline=None)
    @given(
        a=hnp.arrays(bool, (12, 12)),
        b=hnp.arrays(bool, (12, 12)),
    )
    def test_property_symmetric_and_bounded(self, a, b):
        value = mask_iou(a, b)
        assert 0.0 <= value <= 1.0
        assert value == mask_iou(b, a)

    @settings(max_examples=40, deadline=None)
    @given(a=hnp.arrays(bool, (12, 12)))
    def test_property_self_iou_is_one(self, a):
        assert mask_iou(a, a) == 1.0


class TestBoxIoU:
    def test_identical(self):
        assert box_iou([0, 0, 10, 10], [0, 0, 10, 10]) == 1.0

    def test_disjoint(self):
        assert box_iou([0, 0, 5, 5], [6, 6, 10, 10]) == 0.0

    def test_known_overlap(self):
        # 10x10 and 10x10 shifted by 5 in x: intersection 50, union 150.
        assert box_iou([0, 0, 10, 10], [5, 0, 15, 10]) == pytest.approx(50 / 150)

    def test_degenerate_boxes(self):
        assert box_iou([3, 3, 3, 3], [3, 3, 3, 3]) == 0.0


class TestBoundingBox:
    def test_empty_returns_none(self):
        assert bounding_box(np.zeros((5, 5), bool)) is None

    def test_single_pixel(self):
        mask = np.zeros((10, 10), bool)
        mask[3, 7] = True
        assert bounding_box(mask) == (7, 3, 8, 4)

    def test_rectangle(self):
        mask = np.zeros((20, 20), bool)
        mask[5:10, 2:8] = True
        assert bounding_box(mask) == (2, 5, 8, 10)

    def test_area(self):
        mask = np.zeros((20, 20), bool)
        mask[5:10, 2:8] = True
        assert mask_area(mask) == 30


class TestInstanceMask:
    def test_properties(self):
        raster = disk_mask((30, 30), (15, 15), 5)
        instance = InstanceMask(instance_id=3, class_label="car", mask=raster)
        assert instance.area == raster.sum()
        assert not instance.is_empty
        assert instance.box is not None
        assert instance.iou(instance) == 1.0

    def test_copy_is_independent(self):
        raster = disk_mask((30, 30), (15, 15), 5)
        instance = InstanceMask(1, "car", raster)
        clone = instance.copy()
        clone.mask[:] = False
        assert instance.area > 0


class TestLabelMaps:
    def test_roundtrip(self):
        shape = (24, 24)
        masks = [
            InstanceMask(1, "car", disk_mask(shape, (8, 8), 4)),
            InstanceMask(2, "person", disk_mask(shape, (16, 16), 4)),
        ]
        label_map = masks_to_label_map(masks, shape)
        recovered = label_map_to_masks(label_map, {1: "car", 2: "person"})
        assert len(recovered) == 2
        by_id = {m.instance_id: m for m in recovered}
        assert by_id[1].class_label == "car"
        # Non-overlapping disks roundtrip exactly.
        assert mask_iou(by_id[1].mask, masks[0].mask) == 1.0

    def test_overlap_painters_order(self):
        shape = (10, 10)
        a = np.zeros(shape, bool)
        a[2:8, 2:8] = True
        b = np.zeros(shape, bool)
        b[4:6, 4:6] = True
        label_map = masks_to_label_map(
            [InstanceMask(1, "x", a), InstanceMask(2, "y", b)], shape
        )
        assert label_map[5, 5] == 2
        assert label_map[2, 2] == 1

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            masks_to_label_map([InstanceMask(1, "x", np.zeros((5, 5), bool))], (6, 6))
