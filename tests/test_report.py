"""Tests for the ops report: payload shape, deterministic markdown/HTML
rendering, file output, and the shared CLI ``--format`` convention."""

import pytest

from repro.eval.cli import main as cli_main
from repro.eval.reporting import SCHEMA_VERSION
from repro.obs import build_report, render_report_html, render_report_markdown
from repro.obs.report import report_filename, sparkline, write_report


@pytest.fixture(scope="module")
def micro_report():
    return build_report("micro", "t")


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_floor(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_ramp_spans_levels(self):
        line = sparkline(list(range(9)))
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_long_series_bucketed_to_width(self):
        assert len(sparkline(list(range(500)), width=48)) == 48


class TestReportPayload:
    def test_structure(self, micro_report):
        assert micro_report["schema_version"] == SCHEMA_VERSION
        assert micro_report["kind"] == "report"
        assert micro_report["suite"] == "micro"
        scenario = micro_report["scenarios"]["wifi5-walk"]
        # Superset of the BENCH section: budget with burn series,
        # timeline, sessions, anomalies, duration.
        assert "burn_series" in scenario["budget"]
        assert scenario["timeline"]["series"]
        assert "pipeline.frame_latency_ewma_ms" in scenario["timeline"]["series"]
        assert isinstance(scenario["sessions"], list)
        assert isinstance(scenario["anomalies"], list)
        assert scenario["duration_ms"] > 0.0

    def test_anomalies_sorted_by_severity(self, micro_report):
        for scenario in micro_report["scenarios"].values():
            severities = [a.get("severity", 0.0) for a in scenario["anomalies"]]
            assert severities == sorted(severities, reverse=True)

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError, match="unknown suite"):
            build_report("no-such-suite", "x")


class TestRenderDeterminism:
    def test_two_runs_render_byte_identical(self, micro_report):
        again = build_report("micro", "t")
        assert render_report_markdown(micro_report) == render_report_markdown(
            again
        )
        assert render_report_html(micro_report) == render_report_html(again)


class TestMarkdownRendering:
    def test_sections_present(self, micro_report):
        text = render_report_markdown(micro_report)
        assert text.startswith("# Ops report — micro [t]")
        assert "## Scenario `wifi5-walk`" in text
        assert "### SLO & error budget" in text
        assert "### Burn rate" in text
        assert "### Timelines" in text
        assert "### Top anomalies" in text
        assert "`pipeline.frame_latency_ewma_ms`" in text


class TestHtmlRendering:
    def test_self_contained_document(self, micro_report):
        html = render_report_html(micro_report)
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html  # inline CSS, no external assets
        assert "<svg" in html  # sparklines and burn chart
        assert "href=" not in html
        assert "wifi5-walk" in html


class TestWriteReport:
    def test_writes_selected_formats(self, micro_report, tmp_path):
        paths = write_report(micro_report, tmp_path, formats=("md", "html"))
        assert [p.name for p in paths] == [
            "REPORT_micro_t.md",
            "REPORT_micro_t.html",
        ]
        assert paths[0].read_text().startswith("# Ops report")

    def test_unknown_format_raises(self, micro_report, tmp_path):
        with pytest.raises(ValueError, match="unknown report format"):
            write_report(micro_report, tmp_path, formats=("pdf",))

    def test_filename(self):
        assert report_filename("fleet", "ci", "html") == "REPORT_fleet_ci.html"


class TestCliFormatConvention:
    def test_report_cli_writes_only_requested_format(self, tmp_path, capsys):
        code = cli_main(
            [
                "report",
                "--suite",
                "micro",
                "--label",
                "cli",
                "--out",
                str(tmp_path),
                "--format",
                "md",
            ]
        )
        assert code == 0
        assert (tmp_path / "REPORT_micro_cli.md").exists()
        assert not (tmp_path / "REPORT_micro_cli.html").exists()
        out = capsys.readouterr().out
        assert "budget used %" in out

    def test_trace_cli_honors_format_subset(self, tmp_path, capsys):
        out_dir = tmp_path / "trace"
        code = cli_main(
            [
                "trace",
                "fig9",
                "--frames",
                "60",
                "--out",
                str(out_dir),
                "--format",
                "table",
            ]
        )
        assert code == 0
        assert (out_dir / "stage_latency.txt").exists()
        assert not (out_dir / "trace.jsonl").exists()
        assert not (out_dir / "trace_chrome.json").exists()

    def test_rejects_formats_the_verb_cannot_render(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["report", "--format", "chrome"])
        with pytest.raises(SystemExit):
            cli_main(["trace", "fig9", "--format", "html"])
