"""Tests for repro.serve: policies, admission control, the degrade state
machine, the fleet scheduler, and the committed fleet BENCH baseline."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.model import SimulatedSegmentationModel
from repro.obs import Tracer, session_timelines
from repro.runtime.interface import OffloadRequest
from repro.runtime.pipeline import EdgeServer
from repro.serve import (
    ADMIT,
    REJECT_INFEASIBLE,
    REJECT_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
    BatchConfig,
    DegradeConfig,
    DegradeManager,
    FleetScheduler,
    POLICY_NAMES,
    ServeItem,
    ServerPool,
    ServerReplica,
    estimate_batch_ms,
    make_policy,
)

BASELINE = Path(__file__).resolve().parent.parent / (
    "benchmarks/baselines/BENCH_fleet_baseline.json"
)


class _StubServer:
    """Just enough of EdgeServer for placement/admission unit tests."""

    def __init__(self, free_at_ms=0.0):
        self.free_at_ms = free_at_ms
        self.lane = "server"


def make_item(seq=0, session=0, arrive_ms=0.0, deadline_ms=400.0):
    request = OffloadRequest(frame_index=seq, payload_bytes=1000, encode_ms=5.0)
    return ServeItem(
        seq=seq,
        session_index=session,
        request=request,
        truth_masks=[],
        image_shape=(120, 160),
        send_ms=arrive_ms - 2.0,
        arrive_ms=arrive_ms,
        deadline_ms=deadline_ms,
    )


def make_replicas(*free_ats, est_infer_ms=100.0):
    return [
        ServerReplica(index, _StubServer(free_at), est_infer_ms)
        for index, free_at in enumerate(free_ats)
    ]


def make_edge_server(seed=9):
    return EdgeServer(
        SimulatedSegmentationModel(
            "mask_rcnn_r101", "jetson_tx2", np.random.default_rng(seed)
        )
    )


class TestPolicies:
    def test_registry(self):
        assert set(POLICY_NAMES) == {"round_robin", "least_queue", "edf"}
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("priority-lottery")

    def test_round_robin_cycles(self):
        policy = make_policy("round_robin")
        replicas = make_replicas(0.0, 0.0, 0.0)
        picks = [policy.choose(make_item(i), replicas, 0.0).index for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_queue_prefers_short_queue(self):
        policy = make_policy("least_queue")
        replicas = make_replicas(0.0, 0.0)
        replicas[0].queue.append(make_item(0))
        assert policy.choose(make_item(1), replicas, 0.0).index == 1

    def test_least_queue_ties_break_on_backlog_then_index(self):
        policy = make_policy("least_queue")
        replicas = make_replicas(500.0, 100.0)  # equal queue lengths (0)
        assert policy.choose(make_item(0), replicas, 0.0).index == 1

    def test_edf_places_on_earliest_completion(self):
        policy = make_policy("edf")
        # Replica 0 busy until 600 ms, replica 1 free: EDF must pick 1.
        replicas = make_replicas(600.0, 0.0)
        assert policy.choose(make_item(0, arrive_ms=10.0), replicas, 0.0).index == 1

    def test_edf_service_order_is_deadline_first(self):
        policy = make_policy("edf")
        late = make_item(seq=0, deadline_ms=900.0)
        urgent = make_item(seq=1, deadline_ms=100.0)
        assert sorted([late, urgent], key=policy.service_key)[0] is urgent

    def test_fifo_service_order_is_sequence(self):
        policy = make_policy("least_queue")
        first = make_item(seq=0, deadline_ms=900.0)
        second = make_item(seq=1, deadline_ms=100.0)
        assert sorted([second, first], key=policy.service_key)[0] is first

    def test_edf_identical_deadlines_break_on_session_then_frame(self):
        # Identical deadlines must order by stable request identity
        # (session, then frame) — never by admission order — so drain
        # order is a pure function of the workload.
        policy = make_policy("edf")
        items = [
            make_item(seq=5, session=1, deadline_ms=400.0),
            make_item(seq=6, session=0, deadline_ms=400.0),
            make_item(seq=2, session=0, deadline_ms=400.0),
        ]
        ordered = sorted(items, key=policy.service_key)
        assert [(i.session_index, i.frame_index) for i in ordered] == [
            (0, 2),
            (0, 6),
            (1, 5),
        ]


class TestAdmission:
    def test_deadline_from_horizon(self):
        controller = AdmissionController(AdmissionConfig(deadline_horizon=12.0))
        assert controller.deadline_for(100.0, 33.0) == pytest.approx(496.0)

    def test_admit_when_free_and_feasible(self):
        controller = AdmissionController()
        replica = make_replicas(0.0, est_infer_ms=100.0)[0]
        decision = controller.check(
            make_item(arrive_ms=10.0, deadline_ms=500.0), replica, 0.0
        )
        assert decision.status == ADMIT and decision.admitted

    def test_reject_queue_full(self):
        controller = AdmissionController(AdmissionConfig(queue_limit=1))
        replica = make_replicas(0.0)[0]
        replica.queue.append(make_item(0))
        decision = controller.check(
            make_item(1, arrive_ms=10.0, deadline_ms=10_000.0), replica, 0.0
        )
        assert decision.status == REJECT_QUEUE_FULL and not decision.admitted

    def test_reject_infeasible(self):
        controller = AdmissionController()
        # Replica busy for 700 ms; deadline at 400 ms can't be met.
        replica = make_replicas(700.0, est_infer_ms=350.0)[0]
        decision = controller.check(
            make_item(arrive_ms=10.0, deadline_ms=400.0), replica, 0.0
        )
        assert decision.status == REJECT_INFEASIBLE

    def test_infeasible_check_can_be_disabled(self):
        controller = AdmissionController(AdmissionConfig(reject_infeasible=False))
        replica = make_replicas(700.0, est_infer_ms=350.0)[0]
        decision = controller.check(
            make_item(arrive_ms=10.0, deadline_ms=400.0), replica, 0.0
        )
        assert decision.admitted

    def test_should_shed_on_expired_deadline(self):
        controller = AdmissionController()
        item = make_item(deadline_ms=400.0)
        assert controller.should_shed(item, start_ms=395.0, est_infer_ms=100.0)
        assert not controller.should_shed(item, start_ms=100.0, est_infer_ms=100.0)

    def test_admit_exactly_at_feasibility_threshold(self):
        # The feasibility check is strict (est > deadline): an arrival
        # whose estimated completion lands exactly on its deadline is
        # still admitted; one estimated a hair later is rejected.
        controller = AdmissionController()
        replica = make_replicas(0.0, est_infer_ms=100.0)[0]
        est = controller.estimate_completion(
            make_item(arrive_ms=10.0), replica, 0.0
        )
        at = controller.check(
            make_item(arrive_ms=10.0, deadline_ms=est), replica, 0.0
        )
        assert at.status == ADMIT
        assert at.est_completion_ms == pytest.approx(est)
        below = controller.check(
            make_item(arrive_ms=10.0, deadline_ms=est - 0.001), replica, 0.0
        )
        assert below.status == REJECT_INFEASIBLE

    def test_queue_full_reported_before_infeasibility(self):
        # Both reject reasons apply here; the queue-full verdict must win
        # deterministically (it is checked first), so rejection counters
        # are stable under backlog estimate drift.
        controller = AdmissionController(AdmissionConfig(queue_limit=1))
        replica = make_replicas(700.0, est_infer_ms=350.0)[0]
        replica.queue.append(make_item(0))
        decision = controller.check(
            make_item(1, arrive_ms=10.0, deadline_ms=400.0), replica, 0.0
        )
        assert decision.status == REJECT_QUEUE_FULL


class TestDegradeManager:
    def test_degrades_after_threshold(self):
        manager = DegradeManager(2, DegradeConfig(failure_threshold=2))
        assert manager.on_failure(0, 10.0) is False
        assert manager.on_failure(0, 20.0) is True
        assert manager.is_degraded(0)
        assert not manager.is_degraded(1)

    def test_success_resets_failure_run(self):
        manager = DegradeManager(1, DegradeConfig(failure_threshold=2))
        manager.on_failure(0, 10.0)
        manager.on_success(0)
        assert manager.on_failure(0, 20.0) is False
        assert not manager.is_degraded(0)

    def test_disabled_never_degrades(self):
        manager = DegradeManager(1, DegradeConfig(enabled=False, failure_threshold=1))
        assert manager.on_failure(0, 10.0) is False
        assert not manager.is_degraded(0)

    def test_recovery_waits_for_min_degraded_ms(self):
        manager = DegradeManager(1, DegradeConfig(failure_threshold=1, min_degraded_ms=300.0))
        manager.on_failure(0, 100.0)
        assert manager.maybe_recover(200.0, queue_depth=0) is None
        assert manager.maybe_recover(400.0, queue_depth=0) == 0
        assert not manager.is_degraded(0)

    def test_recovery_waits_for_queue_depth(self):
        manager = DegradeManager(1, DegradeConfig(failure_threshold=1, recover_depth=1))
        manager.on_failure(0, 0.0)
        assert manager.maybe_recover(1000.0, queue_depth=5) is None
        assert manager.maybe_recover(1000.0, queue_depth=1) == 0

    def test_recovery_is_staggered_oldest_first(self):
        manager = DegradeManager(3, DegradeConfig(failure_threshold=1))
        manager.on_failure(2, 50.0)
        manager.on_failure(0, 100.0)
        manager.on_failure(1, 150.0)
        assert manager.maybe_recover(1000.0, queue_depth=0) == 2
        assert manager.maybe_recover(1000.0, queue_depth=0) == 0
        assert manager.maybe_recover(1000.0, queue_depth=0) == 1
        assert manager.maybe_recover(1000.0, queue_depth=0) is None

    def test_keyframe_flag_is_one_shot(self):
        manager = DegradeManager(1, DegradeConfig(failure_threshold=1))
        manager.on_failure(0, 0.0)
        assert not manager.take_keyframe_request(0)
        manager.maybe_recover(1000.0, queue_depth=0)
        assert manager.take_keyframe_request(0)
        assert not manager.take_keyframe_request(0)

    def test_stats_counts(self):
        manager = DegradeManager(2, DegradeConfig(failure_threshold=1))
        manager.on_failure(0, 0.0)
        manager.maybe_recover(1000.0, queue_depth=0)
        manager.on_failure(1, 1000.0)
        stats = manager.stats()
        assert stats["degrade_events"] == 2
        assert stats["recover_events"] == 1
        assert stats["degraded_at_end"] == [1]


class TestServerPool:
    def test_requires_servers(self):
        with pytest.raises(ValueError, match="at least one"):
            ServerPool([])

    def test_replica_lanes_renamed(self):
        pool = ServerPool([make_edge_server(1), make_edge_server(2)])
        assert [r.server.lane for r in pool.replicas] == ["server0", "server1"]

    def test_queue_depth_and_free(self):
        pool = ServerPool([make_edge_server()])
        assert pool.queue_depth() == 0
        assert pool.is_free_at(0.0)
        pool.replicas[0].queue.append(make_item())
        assert pool.queue_depth() == 1
        assert not pool.is_free_at(0.0)


class TestFleetScheduler:
    def make_scheduler(self, **kwargs):
        kwargs.setdefault("num_sessions", 2)
        return FleetScheduler([make_edge_server()], **kwargs)

    def test_submit_admits_then_bounds_queue(self):
        scheduler = self.make_scheduler(
            admission=AdmissionConfig(queue_limit=1, reject_infeasible=False)
        )
        request = OffloadRequest(frame_index=0, payload_bytes=1000, encode_ms=5.0)
        first = scheduler.submit(0, request, [], (120, 160), 0.0, 5.0, 33.0, 0.0)
        second = scheduler.submit(1, request, [], (120, 160), 0.0, 6.0, 33.0, 0.0)
        assert first == (True, ADMIT)
        # queue_limit=1: the first request sits in the queue until a
        # drain, so the second arrival finds it full.
        assert second == (False, REJECT_QUEUE_FULL)
        scheduler.advance(10_000.0)  # drains the queue
        third = scheduler.submit(
            0, request, [], (120, 160), 10_000.0, 10_005.0, 33.0, 10_000.0
        )
        assert third == (True, ADMIT)

    def test_infeasible_rejection_trips_degrade(self):
        scheduler = self.make_scheduler(
            admission=AdmissionConfig(deadline_horizon=1.0),
            degrade=DegradeConfig(failure_threshold=2),
        )
        request = OffloadRequest(frame_index=0, payload_bytes=1000, encode_ms=5.0)
        # Deadline = send + 33 ms; est completion >= 350 ms prior: reject.
        for send in (0.0, 33.0):
            admitted, status = scheduler.submit(
                0, request, [], (120, 160), send, send + 5.0, 33.0, send
            )
            assert not admitted and status == REJECT_INFEASIBLE
        assert scheduler.is_degraded(0)
        assert scheduler.counts["rejected_infeasible"] == 2

    def test_shed_and_reject_accounting_reconciles(self):
        from repro.tenancy import TenantDirectory, parse_tenants

        directory = TenantDirectory(
            parse_tenants("bulk:best_effort:1,gold:premium:1")
        )
        scheduler = FleetScheduler(
            [make_edge_server()],
            num_sessions=2,
            tenancy=directory,
            admission=AdmissionConfig(queue_limit=1),
        )
        request_of = lambda tick: OffloadRequest(  # noqa: E731
            frame_index=tick, payload_bytes=1000, encode_ms=5.0
        )
        for tick in range(10):
            now = 30.0 * tick
            scheduler.submit(
                tick % 2, request_of(tick), [], (120, 160),
                now, now + 1.0, 33.0, now,
            )
            scheduler.advance(now)
        scheduler.advance(100_000.0)
        counts = scheduler.counts
        # Every submission gets exactly one admission verdict, and every
        # admitted item either completes or is shed (displaced items are
        # a subset of shed) — the books balance on both axes, and the
        # per-tenant meters agree with the fleet counters exactly.
        assert counts["submitted"] == 10
        verdicts = (
            counts["admitted"]
            + counts["rejected_queue_full"]
            + counts["rejected_infeasible"]
            + counts["rejected_no_replica"]
        )
        assert verdicts == counts["submitted"]
        assert counts["completed"] + counts["shed"] == counts["admitted"]
        assert counts["displaced"] <= counts["shed"]
        totals = scheduler.meter.totals()
        for key, value in totals.items():
            assert value == counts[key], key

    def test_drain_completes_admitted_work(self):
        scheduler = self.make_scheduler()
        request = OffloadRequest(frame_index=3, payload_bytes=1000, encode_ms=5.0)
        admitted, _ = scheduler.submit(
            0, request, [], (120, 160), 0.0, 5.0, 100.0, 0.0
        )
        assert admitted
        assert scheduler.advance(0.0) == []  # GPU start (5 ms) still ahead
        outcomes = scheduler.advance(10_000.0)
        assert [o.kind for o in outcomes] == ["complete"]
        assert outcomes[0].item.frame_index == 3
        assert outcomes[0].completion_ms > 5.0
        assert scheduler.counts["completed"] == 1

    def test_shed_expired_queue_entries(self):
        scheduler = self.make_scheduler(
            admission=AdmissionConfig(reject_infeasible=False),
            degrade=DegradeConfig(failure_threshold=1),
        )
        request = OffloadRequest(frame_index=0, payload_bytes=1000, encode_ms=5.0)
        # Two requests, tight deadlines: the first occupies the GPU past
        # both deadlines, so the queued one is shed unrun.
        scheduler.submit(0, request, [], (120, 160), 0.0, 5.0, 33.0, 0.0)
        scheduler.submit(1, request, [], (120, 160), 0.0, 6.0, 33.0, 0.0)
        outcomes = scheduler.advance(10_000.0)
        kinds = sorted(o.kind for o in outcomes)
        assert kinds == ["complete", "shed"]
        assert scheduler.counts["shed"] == 1
        shed = next(o for o in outcomes if o.kind == "shed")
        assert scheduler.is_degraded(shed.item.session_index)

    def test_deterministic_across_runs(self):
        def run_once():
            scheduler = self.make_scheduler(num_sessions=3)
            request = OffloadRequest(
                frame_index=0, payload_bytes=1000, encode_ms=5.0
            )
            for tick in range(20):
                now = tick * 33.0
                scheduler.submit(
                    tick % 3, request, [], (120, 160), now, now + 5.0, 33.0, now
                )
                scheduler.advance(now)
            scheduler.advance(10_000.0)
            return scheduler.stats(10_000.0)

        assert run_once() == run_once()

    def test_stats_shape(self):
        scheduler = self.make_scheduler()
        stats = scheduler.stats(1000.0)
        assert stats["policy"] == "edf"
        assert stats["num_servers"] == 1
        assert stats["submitted"] == 0
        assert stats["per_server"][0]["utilization"] == 0.0
        json.dumps(stats)  # JSON-clean

    def test_recover_under_sustained_saturation_redegrades_cleanly(self):
        """A session recovered while the system is still saturated must
        re-degrade on its next rejection, with the degrade -> recover ->
        degrade trajectory fully mirrored in serve.* events, counters,
        and the reconstructed session timeline."""
        tracer = Tracer()
        scheduler = self.make_scheduler(
            admission=AdmissionConfig(queue_limit=1, reject_infeasible=False),
            # recover_depth above the queue bound: recovery fires even
            # though the queue never drains — the saturation trap.
            degrade=DegradeConfig(
                failure_threshold=1, min_degraded_ms=50.0, recover_depth=8
            ),
            tracer=tracer,
        )
        request = OffloadRequest(frame_index=0, payload_bytes=1000, encode_ms=5.0)

        # t=0: session 0 fills the single queue slot; session 1 is
        # rejected and degrades immediately (threshold 1).
        scheduler.submit(0, request, [], (120, 160), 0.0, 5.0, 33.0, 0.0)
        scheduler.submit(1, request, [], (120, 160), 0.0, 6.0, 33.0, 0.0)
        assert scheduler.is_degraded(1)

        # The first item reaches the GPU and occupies it for hundreds of
        # ms; refill the queue so it stays full through the recovery.
        scheduler.advance(10.0)
        scheduler.submit(0, request, [], (120, 160), 20.0, 25.0, 33.0, 20.0)

        # t=60: min_degraded_ms elapsed, depth (1) <= recover_depth (8)
        # -> session 1 recovers while the queue is still full...
        scheduler.advance(60.0)
        assert not scheduler.is_degraded(1)

        # ...so its next submit is rejected again and re-degrades.
        admitted, status = scheduler.submit(
            1, request, [], (120, 160), 60.0, 66.0, 33.0, 60.0
        )
        assert not admitted and status == REJECT_QUEUE_FULL
        assert scheduler.is_degraded(1)

        # Events, counters and the degrade stats must all agree.
        names = [
            e.name
            for e in tracer.events
            if e.attrs.get("session") == 1 and e.name.startswith("serve.")
        ]
        assert names == [
            "serve.reject",
            "serve.degrade",
            "serve.recover",
            "serve.reject",
            "serve.degrade",
        ]
        assert tracer.metrics.counter("serve.degrade").value == 2
        assert tracer.metrics.counter("serve.recover").value == 1
        stats = scheduler.degrade.stats()
        assert stats["degrade_events"] == 2
        assert stats["recover_events"] == 1
        assert stats["degraded_at_end"] == [1]

        # The ops-report reconstruction sees the same trajectory.
        timeline = next(
            t for t in session_timelines(tracer, duration_ms=100.0)
            if t["session"] == 1
        )
        assert [t["state"] for t in timeline["transitions"]] == [
            "normal",
            "degraded",
            "normal",
            "degraded",
        ]
        assert timeline["final_state"] == "degraded"
        assert timeline["degrades"] == 2
        assert timeline["recovers"] == 1


class TestClientCapabilities:
    def make_client(self):
        from repro.eval.experiments import ExperimentSpec, _make_video, build_client

        spec = ExperimentSpec(
            system="baseline+mamt",
            num_frames=10,
            resolution=(160, 120),
            seed=0,
        )
        video = _make_video(spec)
        return build_client("baseline+mamt", video, seed=0), video

    def test_offload_disabled_suppresses_attempts(self):
        client, video = self.make_client()
        client.set_offload_enabled(False)
        for index in range(6):
            frame, truth = video.frame_at(index)
            output = client.process_frame(frame, truth, index * 33.0)
            assert output.offload is None

    def test_offload_rejected_frees_slot(self):
        client, video = self.make_client()
        frame, truth = video.frame_at(0)
        output = client.process_frame(frame, truth, 0.0)
        assert output.offload is not None
        before = client._outstanding
        client.offload_rejected(0, 10.0)
        assert client._outstanding == before - 1

    def test_request_keyframe_forces_full_offload(self):
        client, video = self.make_client()
        client.set_offload_enabled(False)
        frame, truth = video.frame_at(0)
        client.process_frame(frame, truth, 0.0)
        client.set_offload_enabled(True)
        client.request_keyframe()
        frame, truth = video.frame_at(1)
        output = client.process_frame(frame, truth, 33.0)
        assert output.offload is not None
        assert output.offload.reason == "recover-keyframe"
        assert output.offload.instructions is None
        # One-shot: the next offload is a normal one.
        client.offload_rejected(1, 40.0)
        frame, truth = video.frame_at(2)
        output = client.process_frame(frame, truth, 66.0)
        if output.offload is not None:
            assert output.offload.reason != "recover-keyframe"

    def test_baseline_clients_implement_offload_rejected(self):
        from repro.baselines.systems import (
            BestEffortEdgeClient,
            EAARClient,
            EdgeDuetClient,
            MobileOnlyClient,
        )

        for cls in (BestEffortEdgeClient, EAARClient, EdgeDuetClient):
            client = cls((120, 160))
            client._outstanding = 1
            client.offload_rejected(0, 0.0)
            assert client._outstanding == 0
        MobileOnlyClient().offload_rejected(0, 0.0)  # no-op, must not raise


class TestFleetExperiment:
    def test_small_fleet_runs_and_reports(self):
        from repro.eval.experiments import FleetSpec, run_fleet

        spec = FleetSpec(
            num_clients=3,
            num_frames=20,
            resolution=(128, 96),
            warmup_frames=5,
            seed=3,
        )
        outcome = run_fleet(spec)
        assert len(outcome.results) == 3
        stats = outcome.scheduler.stats(outcome.duration_ms)
        assert stats["submitted"] > 0
        assert stats["submitted"] == (
            stats["admitted"]
            + stats["rejected_queue_full"]
            + stats["rejected_infeasible"]
        )

    def test_fifo_topology_has_no_scheduler(self):
        from repro.eval.experiments import FleetSpec, run_fleet

        outcome = run_fleet(
            FleetSpec(
                num_clients=2,
                num_frames=15,
                resolution=(128, 96),
                warmup_frames=5,
                scheduler=False,
            )
        )
        assert outcome.scheduler is None
        assert len(outcome.results) == 2

    def test_fifo_multi_server_rejected(self):
        from repro.eval.experiments import FleetSpec, run_fleet

        with pytest.raises(ValueError, match="exactly one server"):
            run_fleet(FleetSpec(scheduler=False, num_servers=2))

    def test_channel_rngs_are_independent(self):
        from repro.network import spawn_channel_rngs

        rngs = spawn_channel_rngs(7, 3)
        draws = [rng.uniform() for rng in rngs]
        assert len(set(draws)) == 3
        again = [rng.uniform() for rng in spawn_channel_rngs(7, 3)]
        assert draws == again  # deterministic per (seed, index)


class TestFleetBaselineArtifact:
    """The committed fleet BENCH artifact must certify the tentpole
    claim: under 8-client saturation, deadline-aware scheduling with
    MAMT-fallback degradation strictly beats the bare FIFO deployment
    on frame-deadline miss rate."""

    @pytest.fixture(scope="class")
    def payload(self):
        assert BASELINE.exists(), "run: repro bench run --suite fleet --label baseline --out benchmarks/baselines"
        return json.loads(BASELINE.read_text())

    def test_scenarios_present(self, payload):
        assert payload["suite"] == "fleet"
        assert {"fifo-1srv", "edf-1srv-degrade", "lq-2srv"} <= set(
            payload["scenarios"]
        )

    def test_deadline_aware_beats_fifo_miss_rate(self, payload):
        fifo = payload["scenarios"]["fifo-1srv"]["slo"]["miss_rate"]
        edf = payload["scenarios"]["edf-1srv-degrade"]["slo"]["miss_rate"]
        assert edf < fifo  # strictly lower

    def test_shed_and_degrade_counts_recorded(self, payload):
        serve = payload["scenarios"]["edf-1srv-degrade"]["serve"]
        assert serve["scheduler"] is True
        assert serve["shed"] + serve["rejected_infeasible"] > 0
        assert serve["shed"] >= 1
        assert serve["degrade"]["degrade_events"] >= 1
        fifo = payload["scenarios"]["fifo-1srv"]["serve"]
        assert fifo["scheduler"] is False


class TestBatchConfig:
    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="max_size"):
            BatchConfig(max_size=0).validate()
        with pytest.raises(ValueError, match="window_ms"):
            BatchConfig(window_ms=-1.0).validate()
        with pytest.raises(ValueError, match="alpha"):
            BatchConfig(alpha=0.0).validate()
        with pytest.raises(ValueError, match="alpha"):
            BatchConfig(alpha=1.5).validate()

    def test_enabled_iff_size_above_one(self):
        assert not BatchConfig(max_size=1).enabled
        assert BatchConfig(max_size=2).enabled

    def test_batch_of_one_is_exactly_solo(self):
        # The analytical anchor of the max_batch_size=1 byte-identity
        # contract: size 1 collapses the model to the solo estimate.
        assert estimate_batch_ms(350.0, 80.0, 1, 0.8) == 350.0

    def test_sublinear_amortization(self):
        solo, setup = 350.0, 80.0
        for size in (2, 3, 4):
            batched = estimate_batch_ms(solo, setup, size, 0.8)
            assert batched > estimate_batch_ms(solo, setup, size - 1, 0.8)
            assert batched < size * solo  # cheaper than size solo calls


class TestBatchDispatch:
    """Unit-level invariants of FleetScheduler._dispatch_batch."""

    def make_scheduler(self, batching, **kwargs):
        kwargs.setdefault("num_sessions", 4)
        return FleetScheduler([make_edge_server()], batching=batching, **kwargs)

    def submit(self, scheduler, session, send_ms, budget_ms=33.0):
        request = OffloadRequest(
            frame_index=session, payload_bytes=1000, encode_ms=5.0
        )
        admitted, status = scheduler.submit(
            session, request, [], (120, 160), send_ms, send_ms + 5.0,
            budget_ms, send_ms,
        )
        assert admitted, status

    def test_coalesces_queue_into_one_batch(self):
        scheduler = self.make_scheduler(
            BatchConfig(window_ms=10.0, max_size=3),
            admission=AdmissionConfig(deadline_horizon=100.0),
        )
        for session in range(3):
            self.submit(scheduler, session, float(session))
        outcomes = scheduler.advance(10_000.0)
        assert [o.kind for o in outcomes] == ["complete"] * 3
        assert scheduler.counts["batches"] == 1
        assert scheduler.counts["batched_items"] == 3
        assert scheduler.counts["batch_saved_ms"] > 0.0
        # One batch: every member lands at the same completion instant.
        assert len({o.completion_ms for o in outcomes}) == 1

    def test_batch_members_complete_in_edf_order(self):
        scheduler = self.make_scheduler(
            BatchConfig(window_ms=10.0, max_size=3),
            admission=AdmissionConfig(deadline_horizon=100.0),
        )
        # Simultaneous arrivals submitted in the *reverse* of deadline
        # order: the head and the outcome sequence must still follow EDF.
        for session, budget in enumerate((40.0, 30.0, 20.0)):
            self.submit(scheduler, session, 0.0, budget_ms=budget)
        outcomes = scheduler.advance(10_000.0)
        deadlines = [o.item.deadline_ms for o in outcomes]
        assert len(deadlines) == 3
        assert deadlines == sorted(deadlines)

    def test_window_defers_dispatch_in_simulated_time(self):
        scheduler = self.make_scheduler(
            BatchConfig(window_ms=25.0, max_size=4),
            admission=AdmissionConfig(deadline_horizon=100.0),
        )
        self.submit(scheduler, 0, 0.0)
        # The request is servable at arrival (t=5) but the window holds
        # it open for co-riders until t=30; advancing to t<30 must not
        # dispatch, and a second arrival inside the window joins.
        assert scheduler.advance(10.0) == []
        assert scheduler.counts["batches"] == 0
        self.submit(scheduler, 1, 15.0)
        outcomes = scheduler.advance(10_000.0)
        assert len(outcomes) == 2
        assert scheduler.counts["batches"] == 1
        assert scheduler.counts["batched_items"] == 2

    def test_tight_deadline_refuses_joiner(self):
        # Head deadline leaves ~20 ms of estimated slack over its solo
        # service: growing to a batch of two would push the estimated
        # completion past it (urgency(2, .) is in the past), so the
        # joiner must ride alone — batching never *induces* a miss that
        # solo service was estimated to avoid.
        def run(head_budget):
            scheduler = self.make_scheduler(
                BatchConfig(window_ms=40.0, max_size=4),
                admission=AdmissionConfig(deadline_horizon=1.0),
            )
            self.submit(scheduler, 0, 0.0, budget_ms=head_budget)
            self.submit(scheduler, 1, 1.0, budget_ms=10_000.0)
            outcomes = scheduler.advance(50_000.0)
            assert [o.kind for o in outcomes] == ["complete", "complete"]
            return scheduler

        prior = AdmissionConfig()
        slack = prior.est_infer_prior_ms + prior.est_downlink_ms
        tight = run(slack + 20.0)
        assert tight.counts["batches"] == 2  # two singleton batches
        assert tight.counts["batched_items"] == 2
        # Control: the identical workload with a loose head deadline
        # coalesces — the refusal above was deadline-driven, not noise.
        loose = run(10_000.0)
        assert loose.counts["batches"] == 1
        assert loose.counts["batched_items"] == 2

    def test_full_batch_leaves_without_waiting_out_the_window(self):
        scheduler = self.make_scheduler(
            BatchConfig(window_ms=1_000.0, max_size=2),
            admission=AdmissionConfig(deadline_horizon=100.0),
        )
        self.submit(scheduler, 0, 0.0)
        self.submit(scheduler, 1, 1.0)
        # Window nominally open until ~1006 ms, but the batch is full at
        # t=6 (both arrivals): it must dispatch long before the window.
        outcomes = scheduler.advance(20.0)
        assert scheduler.counts["batches"] == 1
        assert scheduler.counts["batched_items"] == 2
        assert len(outcomes) in (0, 2)  # completion may still be ahead
        outcomes += scheduler.advance(10_000.0)
        assert len(outcomes) == 2

    def test_backlog_costs_queue_at_amortized_batch_rate(self):
        batching = BatchConfig(window_ms=10.0, max_size=4)
        replica = ServerReplica(0, make_edge_server(), 350.0, batching=batching)
        per_item = replica.est_batch_ms(4) / 4
        assert per_item == pytest.approx(
            estimate_batch_ms(
                350.0, replica.server.batch_setup_ms(), 4, batching.alpha
            )
            / 4
        )
        assert per_item < replica.est_infer_ms  # amortization is real
        replica.server.free_at_ms = 50.0
        replica.queue = [make_item(seq=i, arrive_ms=0.0) for i in range(2)]
        assert replica.backlog_ms(0.0) == pytest.approx(50.0 + 2 * per_item)

    def test_backlog_sees_in_flight_batch(self):
        scheduler = self.make_scheduler(
            BatchConfig(window_ms=10.0, max_size=3),
            admission=AdmissionConfig(deadline_horizon=100.0),
        )
        for session in range(3):
            self.submit(scheduler, session, float(session))
        scheduler.advance(20.0)  # batch dispatched, completion ahead
        replica = scheduler.pool.replicas[0]
        assert scheduler.counts["batches"] == 1
        assert not replica.queue
        assert replica.server.free_at_ms > 20.0
        # The running batch's residual service time is the whole backlog.
        assert replica.backlog_ms(20.0) == pytest.approx(
            replica.server.free_at_ms - 20.0
        )

    def test_stats_report_batching_section(self):
        scheduler = self.make_scheduler(
            BatchConfig(window_ms=10.0, max_size=3),
            admission=AdmissionConfig(deadline_horizon=100.0),
        )
        for session in range(3):
            self.submit(scheduler, session, float(session))
        scheduler.advance(10_000.0)
        stats = scheduler.stats(10_000.0)
        batching = stats["batching"]
        assert batching["batches"] == 1
        assert batching["batched_items"] == 3
        assert batching["mean_batch_size"] == 3.0
        assert batching["batched_fraction"] == 1.0
        assert batching["batch_saved_ms"] > 0.0
        assert stats["per_server"][0]["batches"] == 1
        json.dumps(stats)  # JSON-clean


class TestBatchingFleet:
    """End-to-end batching contracts at the fleet level."""

    @staticmethod
    def fleet_fingerprint(outcome):
        """JSON string capturing everything schedule-dependent about a
        fleet run: scheduler stats plus per-session, per-frame metrics."""
        payload = {
            "stats": outcome.scheduler.stats(outcome.duration_ms),
            "results": [
                {
                    "offloads": result.offload_count,
                    "bytes_up": result.bytes_up,
                    "bytes_down": result.bytes_down,
                    "server_busy_ms": round(result.server_busy_ms, 9),
                    "frames": [
                        (
                            frame.frame_index,
                            round(frame.latency_ms, 9),
                            round(frame.mean_iou, 9),
                            frame.offloaded,
                        )
                        for frame in result.frames
                    ],
                }
                for result in outcome.results
            ],
        }
        return json.dumps(payload, sort_keys=True)

    def test_max_batch_size_one_is_byte_identical(self):
        from repro.eval.experiments import FleetSpec, run_fleet

        base = dict(
            num_clients=3,
            num_frames=20,
            resolution=(128, 96),
            warmup_frames=5,
            seed=3,
        )
        unbatched = run_fleet(FleetSpec(**base))
        inert = run_fleet(
            FleetSpec(**base, batch_window_ms=40.0, max_batch_size=1)
        )
        assert self.fleet_fingerprint(unbatched) == self.fleet_fingerprint(
            inert
        )
        # max_size=1 disables batching outright: no batching section.
        assert "batching" not in inert.scheduler.stats()

    def test_batching_fleet_produces_real_batches(self):
        from repro.eval.experiments import FleetSpec, run_fleet

        outcome = run_fleet(
            FleetSpec(
                num_clients=8,
                num_frames=30,
                resolution=(160, 120),
                warmup_frames=5,
                queue_limit=6,
                deadline_horizon=36.0,
                batch_window_ms=20.0,
                max_batch_size=3,
                seed=0,
            )
        )
        stats = outcome.scheduler.stats(outcome.duration_ms)
        assert stats["batching"]["batches"] >= 1
        assert stats["batching"]["mean_batch_size"] > 1.0
        assert stats["batching"]["batch_saved_ms"] > 0.0

    def test_baseline_batch_cell_dominates_unbatched_edf(self):
        """The committed fleet artifact certifies the batching tentpole:
        same EDF config apart from the window, equal-or-better frame
        miss rate, and strictly less server busy time per completion."""
        assert BASELINE.exists()
        payload = json.loads(BASELINE.read_text())
        batch = payload["scenarios"]["edf-1srv-batch"]
        plain = payload["scenarios"]["edf-1srv-degrade"]
        for knob in ("policy", "queue_limit", "deadline_horizon"):
            assert batch["spec"][knob] == plain["spec"][knob]
        assert batch["spec"]["max_batch_size"] > 1
        assert batch["slo"]["miss_rate"] <= plain["slo"]["miss_rate"]

        def busy_per_completed(cell):
            serve = cell["serve"]
            busy = sum(s["busy_ms"] for s in serve["per_server"])
            return busy / serve["completed"]

        assert busy_per_completed(batch) < busy_per_completed(plain)
        assert batch["serve"]["batching"]["batches"] >= 1
        assert batch["serve"]["batching"]["batch_saved_ms"] > 0.0
