"""Tests for repro.tenancy: QoS classes, the tenant directory,
start-time fair queueing, per-tenant metering, weighted-fair
displacement, the queue-driven autoscaler, and the committed tenants
BENCH baseline."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.eval.experiments import FleetSpec, run_fleet
from repro.model import SimulatedSegmentationModel
from repro.obs import Tracer
from repro.runtime.interface import OffloadRequest
from repro.runtime.pipeline import EdgeServer
from repro.serve import (
    ADMIT,
    REJECT_QUEUE_FULL,
    AdmissionConfig,
    DegradeConfig,
    FleetScheduler,
)
from repro.tenancy import (
    DEFAULT_TENANTS,
    QOS_CLASSES,
    Autoscaler,
    AutoscalerConfig,
    FairQueue,
    TenantDirectory,
    TenantMeter,
    TenantSpec,
    parse_tenants,
)
from repro.tenancy.metering import REQUEST_COUNTERS

BASELINE = Path(__file__).resolve().parent.parent / (
    "benchmarks/baselines/BENCH_tenants_baseline.json"
)


def make_edge_server(seed=9):
    return EdgeServer(
        SimulatedSegmentationModel(
            "mask_rcnn_r101", "jetson_tx2", np.random.default_rng(seed)
        )
    )


def make_request(frame=0, payload=1000):
    return OffloadRequest(frame_index=frame, payload_bytes=payload, encode_ms=5.0)


class TestQoSClasses:
    def test_registry(self):
        assert set(QOS_CLASSES) == {"premium", "standard", "best_effort"}
        premium = QOS_CLASSES["premium"]
        bulk = QOS_CLASSES["best_effort"]
        # Priority 0 is the strongest claim; only premium is shed-exempt.
        assert premium.priority < QOS_CLASSES["standard"].priority < bulk.priority
        assert premium.shed_exempt and not bulk.shed_exempt
        assert premium.weight > QOS_CLASSES["standard"].weight > bulk.weight
        # Premium degrades last (scaled-up failure threshold), best
        # effort first.
        assert premium.degrade_scale > 1.0 > bulk.degrade_scale

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown QoS"):
            TenantSpec("x", "platinum", 1)
        with pytest.raises(ValueError, match="at least one session"):
            TenantSpec("x", "premium", 0)


class TestTenantDirectory:
    def test_contiguous_session_assignment(self):
        directory = TenantDirectory(
            (TenantSpec("a", "premium", 2), TenantSpec("b", "best_effort", 3))
        )
        assert directory.num_sessions == 5
        assert directory.sessions_of("a") == [0, 1]
        assert directory.sessions_of("b") == [2, 3, 4]
        assert directory.tenant_of(4) == "b"
        assert directory.qos_of(0).name == "premium"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant"):
            TenantDirectory(
                (TenantSpec("a", "premium", 1), TenantSpec("a", "standard", 1))
            )

    def test_describe_is_json_clean_and_ordered(self):
        directory = TenantDirectory(DEFAULT_TENANTS)
        described = directory.describe()
        json.dumps(described)
        assert [entry["name"] for entry in described] == [
            spec.name for spec in DEFAULT_TENANTS
        ]

    def test_parse_tenants(self):
        directory = TenantDirectory(
            parse_tenants("gold:premium:1,bulk:best_effort:2")
        )
        assert directory.tenants == ["gold", "bulk"]
        assert directory.num_sessions == 3

    def test_parse_tenants_errors(self):
        with pytest.raises(ValueError):
            parse_tenants("")
        with pytest.raises(ValueError):
            parse_tenants("gold:premium")
        with pytest.raises(ValueError):
            parse_tenants("gold:premium:zero")


class TestFairQueue:
    def test_commit_advances_by_inverse_weight(self):
        fair = FairQueue(TenantDirectory(DEFAULT_TENANTS))
        # premium weight 4 -> finish advances 0.25; best_effort weight 1.
        assert fair.commit("gold") == 0.0
        assert fair.finish["gold"] == pytest.approx(0.25)
        assert fair.commit("bulk") == 0.0
        assert fair.finish["bulk"] == pytest.approx(1.0)

    def test_no_credit_for_idling(self):
        fair = FairQueue(TenantDirectory(DEFAULT_TENANTS))
        for _ in range(4):
            fair.commit("bulk")
        # bulk's own virtual start reflects its backlog; an idle tenant
        # starts at the global virtual time, not at zero.
        assert fair.vstart("bulk") == pytest.approx(4.0)
        assert fair.vstart("gold") == pytest.approx(fair.virtual_time)
        assert fair.vstart("gold") < fair.vstart("bulk")

    def test_stats_json_clean(self):
        fair = FairQueue(TenantDirectory(DEFAULT_TENANTS))
        fair.commit("silver")
        json.dumps(fair.stats())


class TestTenantMeter:
    def test_counts_and_totals(self):
        meter = TenantMeter(TenantDirectory(DEFAULT_TENANTS))
        meter.add("gold", "submitted")
        meter.add("gold", "admitted")
        meter.add("bulk", "submitted")
        meter.add("bulk", "shed")
        meter.add("gold", "server_ms", 12.5)
        stats = meter.stats()
        assert stats["gold"]["admitted"] == 1
        assert stats["gold"]["server_ms"] == pytest.approx(12.5)
        assert stats["bulk"]["shed_rate"] == pytest.approx(1.0)
        totals = meter.totals()
        assert totals["submitted"] == 2
        assert totals["shed"] == 1
        json.dumps(stats)

    def test_attach_registers_tenant_counters(self):
        tracer = Tracer()
        meter = TenantMeter(TenantDirectory(DEFAULT_TENANTS))
        meter.attach(tracer.metrics)
        meter.add("gold", "submitted")
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["tenant.gold.submitted"] == 1


class TestDisplacement:
    def make_scheduler(self, tenants, **kwargs):
        directory = TenantDirectory(parse_tenants(tenants))
        kwargs.setdefault(
            "admission",
            AdmissionConfig(queue_limit=2, reject_infeasible=False),
        )
        scheduler = FleetScheduler(
            [make_edge_server()],
            num_sessions=directory.num_sessions,
            tenancy=directory,
            **kwargs,
        )
        return scheduler, directory

    def submit(self, scheduler, session, frame=0, t=0.0):
        return scheduler.submit(
            session, make_request(frame), [], (120, 160), t, t + 1.0, 33.0, t
        )

    def test_premium_displaces_saturating_best_effort(self):
        scheduler, directory = self.make_scheduler(
            "bulk:best_effort:2,gold:premium:1"
        )
        # Two best-effort items fill the queue; the premium arrival must
        # evict one rather than be rejected.
        assert self.submit(scheduler, 0) == (True, ADMIT)
        assert self.submit(scheduler, 1) == (True, ADMIT)
        assert self.submit(scheduler, 2) == (True, ADMIT)
        assert scheduler.counts["displaced"] == 1
        assert scheduler.counts["shed"] == 1
        assert scheduler.meter.counts["bulk"]["displaced"] == 1
        assert scheduler.meter.counts["bulk"]["shed"] == 1
        assert scheduler.meter.counts["gold"]["admitted"] == 1

    def test_best_effort_cannot_displace_premium(self):
        scheduler, directory = self.make_scheduler(
            "gold:premium:2,bulk:best_effort:1"
        )
        assert self.submit(scheduler, 0) == (True, ADMIT)
        assert self.submit(scheduler, 1) == (True, ADMIT)
        admitted, status = self.submit(scheduler, 2)
        assert not admitted and status == REJECT_QUEUE_FULL
        assert scheduler.counts["displaced"] == 0

    def test_equal_claims_break_on_session_then_frame(self):
        # Two distinct best-effort tenants, both previously idle, share
        # an SFQ virtual start of 0.0: the victim must be the weaker
        # *request identity* — the larger (session, frame).
        scheduler, directory = self.make_scheduler(
            "a:best_effort:1,b:best_effort:1,gold:premium:1"
        )
        assert self.submit(scheduler, 0) == (True, ADMIT)
        assert self.submit(scheduler, 1) == (True, ADMIT)
        assert self.submit(scheduler, 2) == (True, ADMIT)
        assert scheduler.meter.counts["b"]["displaced"] == 1
        assert scheduler.meter.counts["a"]["displaced"] == 0

    def test_premium_is_never_shed_at_drain(self):
        scheduler, directory = self.make_scheduler(
            "bulk:best_effort:1,gold:premium:1",
            degrade=DegradeConfig(failure_threshold=1),
        )
        # Both queued behind the same replica with ~33 ms deadlines; the
        # first dispatch runs the GPU far past both.  The best-effort
        # item is shed; the premium one is dispatched late instead.
        assert self.submit(scheduler, 0, frame=0) == (True, ADMIT)
        assert self.submit(scheduler, 1, frame=0) == (True, ADMIT)
        outcomes = scheduler.advance(100_000.0)
        kinds = {o.item.tenant: o.kind for o in outcomes}
        assert kinds["gold"] == "complete"
        assert scheduler.meter.counts["gold"]["shed"] == 0

    def test_tenancy_session_mismatch_rejected(self):
        directory = TenantDirectory(parse_tenants("gold:premium:2"))
        with pytest.raises(ValueError, match="tenant directory covers"):
            FleetScheduler(
                [make_edge_server()], num_sessions=5, tenancy=directory
            )

    def test_stats_tenancy_section_json_clean(self):
        scheduler, directory = self.make_scheduler(
            "bulk:best_effort:2,gold:premium:1"
        )
        self.submit(scheduler, 0)
        stats = scheduler.stats(1000.0)
        section = stats["tenancy"]
        assert [t["name"] for t in section["tenants"]] == ["bulk", "gold"]
        assert section["per_tenant"]["bulk"]["submitted"] == 1
        json.dumps(stats)


class TestMeteringReconciliation:
    def test_totals_match_fleet_counts_exactly(self):
        directory = TenantDirectory(
            parse_tenants("bulk:best_effort:2,gold:premium:1")
        )
        scheduler = FleetScheduler(
            [make_edge_server()],
            num_sessions=3,
            tenancy=directory,
            admission=AdmissionConfig(queue_limit=1),
            degrade=DegradeConfig(failure_threshold=1),
        )
        # A mixed workload: admissions, queue-full rejections,
        # displacements, infeasible rejections and drain sheds.
        for tick in range(12):
            now = tick * 20.0
            scheduler.submit(
                tick % 3, make_request(tick), [], (120, 160),
                now, now + 1.0, 33.0, now,
            )
            scheduler.advance(now)
        scheduler.advance(100_000.0)
        totals = scheduler.meter.totals()
        for key in REQUEST_COUNTERS:
            assert totals[key] == scheduler.counts[key], key
        server_ms = sum(
            scheduler.meter.counts[name]["server_ms"]
            for name in directory.tenants
        )
        assert server_ms == pytest.approx(scheduler.pool.busy_ms_total)


class TestAutoscaler:
    def make_scheduler(self, servers=3, queue_limit=8):
        return FleetScheduler(
            [make_edge_server(seed) for seed in range(servers)],
            num_sessions=4,
            admission=AdmissionConfig(
                queue_limit=queue_limit, reject_infeasible=False
            ),
        )

    def fill_queue(self, scheduler, n, t=0.0):
        for i in range(n):
            scheduler.submit(
                i % 4, make_request(i), [], (120, 160), t, t + 1.0, 33.0, t
            )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="min_replicas"):
            AutoscalerConfig(min_replicas=0).validate()
        with pytest.raises(ValueError, match="exceed"):
            AutoscalerConfig(scale_up_depth=1.0, scale_down_depth=1.0).validate()
        with pytest.raises(ValueError, match="exceeds"):
            Autoscaler(self.make_scheduler(2), AutoscalerConfig(min_replicas=3))

    def test_starts_at_min_replicas(self):
        scheduler = self.make_scheduler(3)
        scaler = Autoscaler(scheduler, AutoscalerConfig(min_replicas=1))
        assert len(scheduler.pool.live_replicas()) == 1
        assert scaler.replica_series == [[0.0, 1]]

    def test_scale_up_waits_for_warmup(self):
        scheduler = self.make_scheduler(2)
        scaler = Autoscaler(
            scheduler,
            AutoscalerConfig(min_replicas=1, scale_up_depth=2.0, warmup_ms=200.0),
        )
        self.fill_queue(scheduler, 5)
        scaler.tick(0.0)
        assert scaler.scale_ups == 1
        # Decision made, but capacity lags by warmup_ms.
        assert len(scheduler.pool.live_replicas()) == 1
        scaler.tick(100.0)
        assert len(scheduler.pool.live_replicas()) == 1
        scaler.tick(200.0)
        assert len(scheduler.pool.live_replicas()) == 2
        assert scaler.replica_series == [[0.0, 1], [200.0, 2]]

    def test_scale_down_hysteresis_and_floor(self):
        scheduler = self.make_scheduler(2)
        scaler = Autoscaler(
            scheduler,
            AutoscalerConfig(
                min_replicas=1,
                scale_up_depth=2.0,
                warmup_ms=0.0,
                scale_down_hold_ms=300.0,
                cooldown_ms=0.0,
            ),
        )
        self.fill_queue(scheduler, 5)
        scaler.tick(0.0)
        scaler.tick(0.0)  # warmup_ms=0: ready immediately
        assert len(scheduler.pool.live_replicas()) == 2
        scheduler.advance(100_000.0)  # drain everything
        # Low load must persist for scale_down_hold_ms before capacity
        # returns to standby.
        scaler.tick(100_000.0)
        assert len(scheduler.pool.live_replicas()) == 2
        scaler.tick(100_200.0)
        assert len(scheduler.pool.live_replicas()) == 2
        scaler.tick(100_400.0)
        assert len(scheduler.pool.live_replicas()) == 1
        assert scaler.scale_downs == 1
        # Never below the floor, no matter how long the idle stretch.
        for t in range(5):
            scaler.tick(101_000.0 + 500.0 * t)
        assert len(scheduler.pool.live_replicas()) == 1

    def test_standby_with_queued_work_rejected(self):
        scheduler = self.make_scheduler(2, queue_limit=2)
        self.fill_queue(scheduler, 4)
        busy = next(
            r.index for r in scheduler.pool.replicas if r.queue
        )
        with pytest.raises(ValueError, match="queued"):
            scheduler.set_replica_standby(busy)

    def test_standby_transitions_do_not_count_as_faults(self):
        scheduler = self.make_scheduler(2)
        Autoscaler(scheduler, AutoscalerConfig(min_replicas=1))
        assert scheduler.counts["replica_kills"] == 0
        assert scheduler.counts["replica_revives"] == 0

    def test_stats_json_clean(self):
        scaler = Autoscaler(self.make_scheduler(2), AutoscalerConfig())
        stats = scaler.stats()
        json.dumps(stats)
        assert stats["final_live"] == 1


class TestFleetIntegration:
    SPEC = dict(
        num_clients=5,
        num_frames=30,
        resolution=(160, 120),
        scheduler=True,
        policy="edf",
        queue_limit=3,
        deadline_horizon=72.0,
        tenants="bulk:best_effort:3,gold:premium:2",
        warmup_frames=5,
        trace=True,
    )

    def test_tenancy_requires_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            run_fleet(
                FleetSpec(
                    num_clients=2, num_frames=4, scheduler=False,
                    tenants="gold:premium:2",
                )
            )

    def test_tenancy_session_count_must_match(self):
        with pytest.raises(ValueError, match="session counts"):
            run_fleet(
                FleetSpec(
                    num_clients=3, num_frames=4, scheduler=True,
                    tenants="gold:premium:2",
                )
            )

    def test_contexts_carry_tenant_and_meters_reconcile(self):
        outcome = run_fleet(FleetSpec(**self.SPEC))
        scheduler = outcome.scheduler
        tenants_seen = {
            span.ctx.tenant
            for span in outcome.tracer.spans
            if span.ctx is not None and span.ctx.tenant is not None
        }
        assert tenants_seen <= {"bulk", "gold"} and tenants_seen
        totals = scheduler.meter.totals()
        for key in REQUEST_COUNTERS:
            assert totals[key] == scheduler.counts[key], key
        server_ms = sum(
            scheduler.meter.counts[name]["server_ms"]
            for name in scheduler.tenancy.tenants
        )
        assert server_ms == pytest.approx(scheduler.pool.busy_ms_total)
        # tenant.* counters mirror the meter exactly.
        counters = outcome.tracer.metrics.snapshot()["counters"]
        assert counters["tenant.gold.submitted"] == (
            scheduler.meter.counts["gold"]["submitted"]
        )

    def test_autoscaled_fleet_is_byte_deterministic(self):
        spec = FleetSpec(
            **self.SPEC,
            autoscale=True,
            autoscale_min=1,
            autoscale_max=3,
            autoscale_up_depth=1.5,
            autoscale_warmup_ms=150.0,
            autoscale_hold_ms=800.0,
        )

        def run_once():
            outcome = run_fleet(spec)
            return json.dumps(
                {
                    "serve": outcome.scheduler.stats(outcome.duration_ms),
                    "autoscale": outcome.autoscaler.stats(),
                },
                sort_keys=True,
            )

        first = run_once()
        second = run_once()
        assert first == second
        payload = json.loads(first)
        assert payload["autoscale"]["scale_ups"] >= 1
        series = payload["autoscale"]["replica_series"]
        assert series[0] == [0.0, 1]
        assert all(isinstance(point[1], int) for point in series)

    def test_autoscale_emits_trace_events(self):
        spec = FleetSpec(
            **self.SPEC,
            autoscale=True,
            autoscale_min=1,
            autoscale_max=3,
            autoscale_up_depth=1.5,
            autoscale_warmup_ms=150.0,
        )
        outcome = run_fleet(spec)
        names = {e.name for e in outcome.tracer.events}
        assert "autoscale.scale_up" in names
        assert "autoscale.replica_ready" in names


@pytest.mark.skipif(not BASELINE.exists(), reason="baseline not committed")
class TestTenantsBaseline:
    @pytest.fixture(scope="class")
    def payload(self):
        return json.loads(BASELINE.read_text())

    def test_certified(self, payload):
        certification = payload["certification"]
        assert certification["certified"] is True
        for name, check in certification["checks"].items():
            assert check["ok"], name

    def test_cells_present_with_roles(self, payload):
        cells = payload["scenarios"]
        roles = {cells[name]["spec"]["role"] for name in cells}
        assert roles == {"reference", "certify", "exhibit"}

    def test_reconciliation_exact_in_every_cell(self, payload):
        for name, cell in payload["scenarios"].items():
            recon = cell["tenants"]["reconciliation"]
            assert recon["requests_exact"] is True, name
            assert recon["server_ms_ok"] is True, name

    def test_autoscale_series_committed(self, payload):
        cell = payload["scenarios"]["autoscale-burst"]
        series = cell["autoscale"]["replica_series"]
        assert series[0] == [0.0, 1]
        assert cell["autoscale"]["scale_ups"] >= 1
