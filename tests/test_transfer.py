"""Unit tests for the MAMT mask-transfer engine (Section III-C)."""

import numpy as np
import pytest

from repro.geometry import SE3, PinholeCamera
from repro.image import InstanceMask, fill_contour, mask_iou
from repro.transfer import MaskTransferEngine, TransferConfig
from repro.transfer.mask_transfer import K_NEAREST_FEATURES
from repro.vo import KeyframeRecord, VisualOdometry
from repro.vo.odometry import ObjectTrack


@pytest.fixture
def camera():
    return PinholeCamera.with_fov(320, 240, 64.0)


def build_vo_with_object(camera, instance_id=1, moved_pose=None):
    """Hand-assemble a VO state: one object with labeled points and one
    masked keyframe, so the transfer path can run in isolation."""
    vo = VisualOdometry(camera)
    vo._pose_cw = SE3.identity() if moved_pose is None else moved_pose
    vo.state = type(vo.state).TRACKING

    # Object: a 1 m square plate at z = 5, sampled points on it.
    rng = np.random.default_rng(0)
    points_object = np.column_stack(
        [
            rng.uniform(-0.5, 0.5, 40),
            rng.uniform(-0.5, 0.5, 40),
            np.full(40, 5.0),
        ]
    )
    track = ObjectTrack(instance_id=instance_id, class_label="plate")
    vo.objects[instance_id] = track
    for point in points_object:
        vo.map.add_point(
            point, np.zeros(32, np.uint8), label=instance_id, class_label="plate"
        )

    # Source keyframe at the identity pose with the plate's true mask.
    corners_camera = np.array(
        [
            [-0.5, -0.5, 5.0],
            [0.5, -0.5, 5.0],
            [0.5, 0.5, 5.0],
            [-0.5, 0.5, 5.0],
        ]
    )
    pixels, _ = camera.project(corners_camera)
    mask = fill_contour(pixels[:, ::-1], (camera.height, camera.width))
    record = KeyframeRecord(
        frame_index=0,
        timestamp=0.0,
        pose_cw=SE3.identity(),
        pixels=np.zeros((0, 2)),
        point_ids=np.zeros(0, dtype=int),
        masks=[InstanceMask(instance_id, "plate", mask)],
    )
    record.object_poses_co[instance_id] = SE3.identity()
    vo.map.add_keyframe(record)
    return vo, mask


class TestTransferGeometry:
    def test_identity_transfer_reproduces_mask(self, camera):
        vo, mask = build_vo_with_object(camera)
        engine = MaskTransferEngine(camera)
        predictions = engine.predict(vo)
        assert len(predictions) == 1
        assert mask_iou(predictions[0].mask.mask, mask) > 0.93

    def test_translated_camera_shifts_mask(self, camera):
        moved = SE3(np.eye(3), np.array([0.5, 0.0, 0.0]))  # camera-from-world
        vo, mask = build_vo_with_object(camera, moved_pose=moved)
        engine = MaskTransferEngine(camera)
        predictions = engine.predict(vo)
        assert len(predictions) == 1
        predicted = predictions[0].mask.mask
        # World shifted +x in camera coords -> pixels shift +u by fx*0.5/5.
        expected_shift = camera.fx * 0.5 / 5.0
        cols_pred = np.flatnonzero(predicted.any(axis=0))
        cols_orig = np.flatnonzero(mask.any(axis=0))
        measured = cols_pred.mean() - cols_orig.mean()
        assert measured == pytest.approx(expected_shift, abs=3)

    def test_approach_scales_mask_up(self, camera):
        moved = SE3(np.eye(3), np.array([0.0, 0.0, -2.0]))  # 2 m closer (P_c = P_w + t)
        vo, mask = build_vo_with_object(camera, moved_pose=moved)
        engine = MaskTransferEngine(camera)
        predictions = engine.predict(vo)
        assert len(predictions) == 1
        # Depth 5 -> 3: area scales by (5/3)^2 ~ 2.8.
        ratio = predictions[0].mask.area / max(mask.sum(), 1)
        assert 2.0 < ratio < 3.8

    def test_object_motion_compensated(self, camera):
        # The object moved +0.4 m in x; the camera stayed.  The engine
        # must use the camera-from-object relative transform.
        vo, mask = build_vo_with_object(camera)
        track = vo.objects[1]
        track.pose_wo = SE3(np.eye(3), np.array([0.4, 0.0, 0.0]))
        engine = MaskTransferEngine(camera)
        predictions = engine.predict(vo)
        assert len(predictions) == 1
        predicted = predictions[0].mask.mask
        expected_shift = camera.fx * 0.4 / 5.0
        cols_pred = np.flatnonzero(predicted.any(axis=0))
        cols_orig = np.flatnonzero(mask.any(axis=0))
        assert cols_pred.mean() - cols_orig.mean() == pytest.approx(
            expected_shift, abs=4
        )


class TestTransferGates:
    def test_no_pose_no_predictions(self, camera):
        vo = VisualOdometry(camera)
        assert MaskTransferEngine(camera).predict(vo) == []

    def test_too_few_object_points(self, camera):
        vo, _ = build_vo_with_object(camera)
        # Strip the object's points below the minimum.
        for point in list(vo.map.points):
            if point.label == 1 and point.point_id > 1:
                vo.map._points.pop(point.point_id)
        engine = MaskTransferEngine(
            camera, TransferConfig(min_object_features=5)
        )
        assert engine.predict(vo) == []

    def test_view_angle_gate(self, camera):
        vo, _ = build_vo_with_object(camera)
        # Rotate the camera far beyond the view-angle budget.
        from repro.geometry import so3_exp

        vo._pose_cw = SE3(so3_exp([0.0, np.deg2rad(80), 0.0]), np.zeros(3))
        engine = MaskTransferEngine(camera, TransferConfig(max_view_angle_deg=45))
        assert engine.predict(vo) == []

    def test_k_nearest_default_is_papers_five(self):
        assert K_NEAREST_FEATURES == 5
        assert TransferConfig().k_nearest == 5

    def test_behind_camera_object_skipped(self, camera):
        vo, _ = build_vo_with_object(camera)
        vo._pose_cw = SE3(np.eye(3), np.array([0.0, 0.0, -12.0]))  # walked past the object
        engine = MaskTransferEngine(camera)
        predictions = engine.predict(vo)
        assert predictions == []
