"""Tests for SLO error budgets: burn-rate windows, budget arithmetic,
the exhaustion anomaly, and per-session serve timelines."""

import json
import math

import pytest

from repro.obs import (
    BurnRateTracker,
    Tracer,
    detect_budget_exhaustion,
    evaluate_error_budget,
    session_timelines,
)


def frame_tracer(durations, interval_ms=33.0):
    """One top-level client frame span per duration."""
    tracer = Tracer()
    for frame, dur in enumerate(durations):
        tracer.add_span(
            "client.process",
            lane="client",
            frame=frame,
            start_ms=frame * interval_ms,
            dur_ms=float(dur),
        )
    return tracer


class TestBurnRateTracker:
    def test_validation(self):
        with pytest.raises(ValueError, match="window_ms"):
            BurnRateTracker(0.0, 0.1)
        with pytest.raises(ValueError, match="target"):
            BurnRateTracker(100.0, 0.0)
        with pytest.raises(ValueError, match="target"):
            BurnRateTracker(100.0, 1.5)

    def test_burn_is_windowed_miss_rate_over_target(self):
        tracker = BurnRateTracker(100.0, 0.5)
        assert tracker.burn_rate == 0.0
        tracker.record(0.0, True)
        assert tracker.burn_rate == pytest.approx(2.0)  # 1/1 over 0.5
        tracker.record(50.0, False)
        assert tracker.burn_rate == pytest.approx(1.0)  # 1/2 over 0.5
        # 0.0 and 50.0 age out of the 100 ms window.
        tracker.record(151.0, False)
        assert tracker.burn_rate == 0.0

    def test_burn_one_means_on_target(self):
        tracker = BurnRateTracker(1000.0, 0.25)
        for tick in range(8):
            tracker.record(tick * 10.0, tick % 4 == 0)
        assert tracker.burn_rate == pytest.approx(1.0)


class TestEvaluateErrorBudget:
    def test_arithmetic_and_exhaustion_instant(self):
        # 20 frames at 5% target: budget = 1 miss.  Misses at frames 10
        # and 12 -> the budget is exhausted on the SECOND miss.
        durations = [20.0] * 20
        durations[10] = durations[12] = 50.0
        report = evaluate_error_budget(frame_tracer(durations))
        assert report["frames"] == 20
        assert report["misses"] == 2
        assert report["allowed_misses"] == pytest.approx(1.0)
        assert report["consumed_fraction"] == pytest.approx(2.0)
        assert report["remaining_fraction"] == 0.0
        assert report["exhausted_at_ms"] == pytest.approx(12 * 33.0)
        assert report["max_fast_burn_rate"] > 0.0
        assert report["max_slow_burn_rate"] > 0.0
        series = report["burn_series"]
        assert len(series["times_ms"]) == 20
        assert len(series["fast"]) == len(series["slow"]) == 20
        json.dumps(report)  # JSON-clean

    def test_within_budget_never_exhausts(self):
        durations = [20.0] * 40
        durations[5] = 50.0  # one miss, 5% of 40 allows 2
        report = evaluate_error_budget(frame_tracer(durations))
        assert report["misses"] == 1
        assert report["exhausted_at_ms"] is None
        assert report["consumed_fraction"] == pytest.approx(0.5)
        assert report["remaining_fraction"] == pytest.approx(0.5)

    def test_fast_window_decays_faster_than_slow(self):
        # A burst of misses early, then clean: the fast window must
        # return to zero while the slow window still remembers.
        durations = [50.0] * 4 + [20.0] * 36
        report = evaluate_error_budget(frame_tracer(durations))
        assert report["fast_burn_rate"] == 0.0
        assert report["slow_burn_rate"] > 0.0

    def test_empty_trace_nan_policy(self):
        report = evaluate_error_budget(Tracer())
        assert report["frames"] == 0
        assert report["misses"] == 0
        assert math.isnan(report["consumed_fraction"])
        assert math.isnan(report["fast_burn_rate"])
        assert math.isnan(report["max_slow_burn_rate"])
        assert report["exhausted_at_ms"] is None
        assert report["burn_series"]["times_ms"] == []

    def test_warmup_frames_excluded(self):
        durations = [500.0] * 10 + [20.0] * 10
        report = evaluate_error_budget(
            frame_tracer(durations), warmup_frames=10
        )
        assert report["frames"] == 10
        assert report["misses"] == 0


class TestBudgetExhaustionAnomaly:
    def test_no_anomaly_within_budget(self):
        assert detect_budget_exhaustion({"exhausted_at_ms": None}) == []

    def test_anomaly_and_emit(self):
        durations = [50.0] * 10
        tracer = frame_tracer(durations)
        report = evaluate_error_budget(tracer)
        anomalies = detect_budget_exhaustion(report, tracer=tracer, emit=True)
        assert len(anomalies) == 1
        anomaly = anomalies[0]
        assert anomaly["type"] == "budget_exhausted"
        assert anomaly["ts_ms"] == report["exhausted_at_ms"]
        assert anomaly["severity"] == report["consumed_fraction"]
        events = [
            e for e in tracer.events if e.name == "anomaly.budget_exhausted"
        ]
        assert len(events) == 1


def serve_tracer():
    tracer = Tracer()
    tracer.event("serve.admit", lane="serve", ts_ms=10.0, session=0)
    tracer.event("serve.reject", lane="serve", ts_ms=20.0, session=1)
    tracer.event("serve.degrade", lane="serve", ts_ms=20.0, session=1)
    tracer.event("serve.shed", lane="serve", ts_ms=40.0, session=0)
    tracer.event("serve.recover", lane="serve", ts_ms=120.0, session=1)
    tracer.event("serve.degrade", lane="serve", ts_ms=150.0, session=1)
    # Events without a session attr (or outside serve.*) are ignored.
    tracer.event("serve.queue", lane="serve", ts_ms=10.0)
    tracer.event("pipeline.tick", lane="client", ts_ms=10.0, session=0)
    return tracer


class TestSessionTimelines:
    def test_counts_and_transitions(self):
        timelines = session_timelines(serve_tracer(), duration_ms=200.0)
        assert [t["session"] for t in timelines] == [0, 1]
        s0, s1 = timelines
        assert (s0["admits"], s0["sheds"], s0["rejects"]) == (1, 1, 0)
        assert s0["final_state"] == "normal"
        assert s0["degraded_ms"] == 0.0
        assert s1["rejects"] == 1
        assert s1["degrades"] == 2
        assert s1["recovers"] == 1
        states = [t["state"] for t in s1["transitions"]]
        assert states == ["normal", "degraded", "normal", "degraded"]
        # degraded 20..120 plus 150..200 = 150 ms of 200.
        assert s1["degraded_ms"] == pytest.approx(150.0)
        assert s1["degraded_fraction"] == pytest.approx(0.75)
        assert s1["final_state"] == "degraded"
        json.dumps(timelines)

    def test_no_serve_events_yields_empty(self):
        assert session_timelines(Tracer()) == []

    def test_without_duration_no_degraded_time(self):
        timelines = session_timelines(serve_tracer())
        assert "degraded_ms" not in timelines[0]
        assert timelines[1]["final_state"] == "degraded"
