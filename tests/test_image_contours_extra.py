"""Extra contour tests: holes, concavities, frame-border blobs."""

import numpy as np
import pytest

from repro.image import fill_contour, find_contours, largest_contour, mask_iou


class TestConcaveShapes:
    def make_l_shape(self):
        mask = np.zeros((40, 40), bool)
        mask[5:35, 5:15] = True
        mask[25:35, 5:35] = True
        return mask

    def test_l_shape_roundtrip(self):
        mask = self.make_l_shape()
        contour = find_contours(mask)[0]
        refilled = fill_contour(contour, mask.shape)
        assert mask_iou(mask, refilled) > 0.93

    def test_u_shape_roundtrip(self):
        mask = np.zeros((40, 40), bool)
        mask[5:35, 5:12] = True
        mask[5:35, 28:35] = True
        mask[28:35, 5:35] = True
        contour = largest_contour(mask)
        refilled = fill_contour(contour, mask.shape)
        assert mask_iou(mask, refilled) > 0.9


class TestHoles:
    def test_donut_outer_contour_fills_hole(self):
        # find_contours returns *outer* boundaries: filling a donut's
        # contour recovers the filled disk (documented behaviour — masks
        # with holes lose them through contour transfer).
        rr, cc = np.mgrid[0:50, 0:50]
        distance = (rr - 25) ** 2 + (cc - 25) ** 2
        donut = (distance <= 20**2) & (distance >= 10**2)
        disk = distance <= 20**2
        contour = largest_contour(donut)
        refilled = fill_contour(contour, donut.shape)
        assert mask_iou(refilled, disk) > 0.92


class TestBorderBlobs:
    def test_blob_touching_border(self):
        mask = np.zeros((30, 30), bool)
        mask[0:12, 0:12] = True  # corner blob
        contours = find_contours(mask)
        assert len(contours) == 1
        refilled = fill_contour(contours[0], mask.shape)
        assert mask_iou(mask, refilled) > 0.95

    def test_full_frame_mask(self):
        mask = np.ones((20, 20), bool)
        contour = find_contours(mask)[0]
        refilled = fill_contour(contour, mask.shape)
        assert mask_iou(mask, refilled) > 0.95

    def test_one_pixel_wide_line(self):
        mask = np.zeros((20, 20), bool)
        mask[10, 2:18] = True
        contours = find_contours(mask)
        assert len(contours) == 1
        refilled = fill_contour(contours[0], mask.shape)
        # Thin structures survive thanks to contour stamping.
        assert mask_iou(mask, refilled) > 0.9

    def test_diagonal_line(self):
        mask = np.zeros((20, 20), bool)
        for i in range(3, 17):
            mask[i, i] = True
        contours = find_contours(mask)
        assert len(contours) == 1
        refilled = fill_contour(contours[0], mask.shape)
        assert refilled[10, 10]
