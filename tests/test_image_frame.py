"""Tests for frame utilities: grayscale, filtering, entropy, VideoFrame."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.image import (
    VideoFrame,
    block_entropy,
    downsample,
    gaussian_blur,
    image_entropy,
    sobel_gradients,
    to_grayscale,
)


class TestGrayscale:
    def test_bt601_weights(self):
        red = np.zeros((2, 2, 3), dtype=np.uint8)
        red[..., 0] = 255
        assert np.allclose(to_grayscale(red), 255 * 0.299)

    def test_gray_passthrough(self):
        gray = np.random.default_rng(0).uniform(0, 255, (5, 5)).astype(np.float32)
        assert np.allclose(to_grayscale(gray), gray)

    def test_white_is_255(self):
        white = np.full((3, 3, 3), 255, dtype=np.uint8)
        assert np.allclose(to_grayscale(white), 255.0, atol=0.1)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            to_grayscale(np.zeros((4, 4, 2)))


class TestFilters:
    def test_blur_preserves_mean(self):
        rng = np.random.default_rng(1)
        image = rng.uniform(0, 255, (60, 60)).astype(np.float32)
        blurred = gaussian_blur(image, sigma=2.0)
        assert blurred.mean() == pytest.approx(image.mean(), rel=0.02)
        assert blurred.std() < image.std()

    def test_sobel_responds_to_edges(self):
        image = np.zeros((40, 40), dtype=np.float32)
        image[:, 20:] = 200.0
        gx, gy = sobel_gradients(image)
        assert np.abs(gx[:, 18:22]).max() > 100
        assert np.abs(gy).max() < np.abs(gx).max()

    def test_downsample_halves(self):
        image = np.random.default_rng(2).uniform(0, 255, (64, 80)).astype(np.float32)
        small = downsample(image, 2)
        assert small.shape == (32, 40)

    def test_downsample_factor_one_identity(self):
        image = np.random.default_rng(3).uniform(0, 255, (10, 10)).astype(np.float32)
        assert np.allclose(downsample(image, 1), image)


class TestEntropy:
    def test_flat_zero(self):
        assert image_entropy(np.full((20, 20), 100.0)) == 0.0

    def test_uniform_noise_high(self):
        noise = np.random.default_rng(4).uniform(0, 255, (64, 64))
        assert image_entropy(noise, bins=32) > 4.5

    def test_empty(self):
        assert image_entropy(np.zeros((0, 0))) == 0.0

    def test_block_entropy_shape(self):
        image = np.random.default_rng(5).uniform(0, 255, (50, 70))
        blocks = block_entropy(image, 16)
        assert blocks.shape == (4, 5)

    def test_block_entropy_localizes_texture(self):
        image = np.full((64, 64), 100.0, dtype=np.float32)
        image[:16, :16] = np.random.default_rng(6).uniform(0, 255, (16, 16))
        blocks = block_entropy(image, 16)
        assert blocks[0, 0] > 3.0
        assert blocks[2, 2] == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        scale=st.floats(1.0, 80.0),
        offset=st.floats(0.0, 150.0),
    )
    def test_property_entropy_bounded(self, scale, offset):
        rng = np.random.default_rng(7)
        image = np.clip(offset + rng.uniform(0, scale, (32, 32)), 0, 255)
        value = image_entropy(image, bins=32)
        assert 0.0 <= value <= 5.0  # log2(32)


class TestVideoFrame:
    def make(self):
        image = np.random.default_rng(8).integers(0, 256, (24, 32, 3), dtype=np.uint8)
        return VideoFrame(index=3, timestamp=0.1, image=image)

    def test_properties(self):
        frame = self.make()
        assert frame.height == 24 and frame.width == 32
        assert frame.shape == (24, 32)

    def test_gray_cached(self):
        frame = self.make()
        assert frame.gray is frame.gray  # same object: computed once

    def test_bad_image_raises(self):
        with pytest.raises(ValueError):
            VideoFrame(index=0, timestamp=0.0, image=np.zeros((10, 10)))
