"""Integration tests for camera projection, epipolar geometry, triangulation
and PnP — the full two-view pipeline edgeIS initialization relies on."""

import numpy as np
import pytest

from repro.geometry import (
    PinholeCamera,
    SE3,
    eight_point_fundamental,
    fundamental_ransac,
    recover_relative_pose,
    refine_pose,
    reprojection_errors,
    sampson_distance,
    solve_pnp,
    triangulate_dlt,
    triangulate_midpoint,
)


@pytest.fixture
def camera():
    return PinholeCamera.with_fov(640, 480, horizontal_fov_deg=64.0)


def make_scene(rng, count=60, depth_range=(4.0, 12.0)):
    """Random 3-D points in front of the origin camera."""
    x = rng.uniform(-3.0, 3.0, size=count)
    y = rng.uniform(-2.0, 2.0, size=count)
    z = rng.uniform(*depth_range, size=count)
    return np.stack([x, y, z], axis=1)


class TestPinholeCamera:
    def test_project_backproject_roundtrip(self, camera):
        rng = np.random.default_rng(0)
        points = make_scene(rng)
        pixels, depths = camera.project(points)
        recovered = camera.backproject(pixels, depths)
        assert np.allclose(recovered, points, atol=1e-9)

    def test_principal_point_projects_to_center(self, camera):
        pixels, depths = camera.project(np.array([[0.0, 0.0, 5.0]]))
        assert np.allclose(pixels[0], [camera.cx, camera.cy])
        assert depths[0] == 5.0

    def test_in_view_rejects_behind_camera(self, camera):
        pixels, depths = camera.project(np.array([[0.0, 0.0, -5.0]]))
        assert not camera.in_view(pixels, depths).any()

    def test_matrix_inverse(self, camera):
        assert np.allclose(camera.matrix @ camera.matrix_inverse, np.eye(3), atol=1e-12)

    def test_normalize_matches_backproject_at_unit_depth(self, camera):
        pix = np.array([[100.0, 200.0], [320.0, 240.0]])
        normalized = camera.normalize(pix)
        lifted = camera.backproject(pix, np.ones(2))
        assert np.allclose(normalized, lifted[:, :2])

    def test_with_fov_has_symmetric_principal_point(self):
        cam = PinholeCamera.with_fov(320, 240, 90.0)
        assert cam.cx == 160.0 and cam.cy == 120.0
        # 90 deg horizontal fov -> fx = w/2.
        assert np.isclose(cam.fx, 160.0)


class TestEpipolar:
    def make_two_views(self, camera, rng, noise=0.0, outliers=0):
        points = make_scene(rng, count=80)
        pose_10 = SE3.exp(np.array([0.4, 0.05, 0.02, 0.01, 0.08, 0.005]))
        pixels0, _ = camera.project(points)
        pixels1, depths1 = camera.project(pose_10.transform(points))
        if noise:
            pixels0 = pixels0 + rng.normal(scale=noise, size=pixels0.shape)
            pixels1 = pixels1 + rng.normal(scale=noise, size=pixels1.shape)
        if outliers:
            idx = rng.choice(len(points), size=outliers, replace=False)
            pixels1[idx] += rng.uniform(30, 80, size=(outliers, 2))
        return points, pose_10, pixels0, pixels1

    def test_eight_point_satisfies_epipolar_constraint(self, camera):
        rng = np.random.default_rng(1)
        _, _, pixels0, pixels1 = self.make_two_views(camera, rng)
        fundamental = eight_point_fundamental(pixels0, pixels1)
        errors = sampson_distance(fundamental, pixels0, pixels1)
        assert np.max(errors) < 1e-6

    def test_eight_point_requires_eight_pairs(self):
        pts = np.random.default_rng(0).uniform(0, 100, size=(7, 2))
        with pytest.raises(ValueError):
            eight_point_fundamental(pts, pts)

    def test_ransac_rejects_outliers(self, camera):
        rng = np.random.default_rng(2)
        _, _, pixels0, pixels1 = self.make_two_views(camera, rng, noise=0.3, outliers=15)
        _, mask = fundamental_ransac(pixels0, pixels1, rng=rng)
        # The 15 corrupted matches should be mostly excluded.
        assert mask.sum() >= 50
        assert mask.sum() <= 70

    def test_recover_relative_pose_direction(self, camera):
        rng = np.random.default_rng(3)
        _, pose_10, pixels0, pixels1 = self.make_two_views(camera, rng)
        geometry = recover_relative_pose(camera, pixels0, pixels1, rng=rng)
        # Rotation recovered exactly; translation up to scale.
        assert np.allclose(geometry.pose_10.rotation, pose_10.rotation, atol=1e-4)
        t_est = geometry.pose_10.translation
        t_true = pose_10.translation / np.linalg.norm(pose_10.translation)
        assert np.allclose(t_est, t_true, atol=1e-3)

    def test_recover_relative_pose_structure_scale_consistent(self, camera):
        rng = np.random.default_rng(4)
        points, pose_10, pixels0, pixels1 = self.make_two_views(camera, rng)
        geometry = recover_relative_pose(camera, pixels0, pixels1, rng=rng)
        scale = np.linalg.norm(pose_10.translation)  # true baseline length
        recovered = geometry.points_3d * scale
        true_subset = points[geometry.point_indices]
        assert np.allclose(recovered, true_subset, atol=1e-2)

    def test_recover_reports_parallax(self, camera):
        rng = np.random.default_rng(5)
        _, _, pixels0, pixels1 = self.make_two_views(camera, rng)
        geometry = recover_relative_pose(camera, pixels0, pixels1, rng=rng)
        assert geometry.median_parallax_deg > 0.5


class TestTriangulation:
    def test_midpoint_recovers_points(self, camera):
        rng = np.random.default_rng(6)
        points = make_scene(rng, count=30)
        pose_10 = SE3.exp(np.array([0.5, 0.0, 0.0, 0.0, 0.05, 0.0]))
        norm0 = camera.normalize(camera.project(points)[0])
        norm1 = camera.normalize(camera.project(pose_10.transform(points))[0])
        recovered, valid = triangulate_midpoint(norm0, norm1, pose_10)
        assert valid.all()
        assert np.allclose(recovered, points, atol=1e-8)

    def test_dlt_recovers_world_points(self, camera):
        rng = np.random.default_rng(7)
        points = make_scene(rng, count=30)
        pose_0w = SE3.exp(np.array([0.1, -0.05, 0.02, 0.03, 0.0, 0.01]))
        pose_1w = SE3.exp(np.array([0.6, 0.05, 0.0, 0.0, -0.06, 0.0])) @ pose_0w
        norm0 = camera.normalize(camera.project(pose_0w.transform(points))[0])
        norm1 = camera.normalize(camera.project(pose_1w.transform(points))[0])
        recovered, valid = triangulate_dlt(norm0, norm1, pose_0w, pose_1w)
        assert valid.all()
        assert np.allclose(recovered, points, atol=1e-6)

    def test_midpoint_flags_behind_camera(self, camera):
        # A point behind camera 0 must fail cheirality.
        pose_10 = SE3.exp(np.array([0.5, 0, 0, 0, 0, 0]))
        norm0 = np.array([[0.0, 0.0]])
        # Camera 1 sits to the *left* of camera 0 (its center is at x=-0.5
        # in frame 0); a match disparity in the wrong direction implies the
        # rays intersect behind the cameras.
        norm1 = np.array([[-0.5, 0.0]])
        _, valid = triangulate_midpoint(norm0, norm1, pose_10)
        assert not valid[0]


class TestPnP:
    def test_refine_converges_from_perturbed_pose(self, camera):
        rng = np.random.default_rng(8)
        points = make_scene(rng)
        true_pose = SE3.exp(np.array([0.2, -0.1, 0.05, 0.04, -0.03, 0.02]))
        pixels, _ = camera.project(true_pose.transform(points))
        guess = true_pose.retract(np.array([0.05, 0.02, -0.03, 0.01, 0.02, -0.01]))
        result = refine_pose(camera, guess, points, pixels)
        assert result.pose_cw.allclose(true_pose, atol=1e-5)
        assert result.num_inliers == len(points)
        assert result.final_rms < 1e-4

    def test_refine_rejects_too_few_points(self, camera):
        with pytest.raises(ValueError):
            refine_pose(camera, SE3.identity(), np.zeros((2, 3)), np.zeros((2, 2)))

    def test_solve_pnp_with_outliers(self, camera):
        rng = np.random.default_rng(9)
        points = make_scene(rng, count=100)
        true_pose = SE3.exp(np.array([0.3, 0.1, -0.02, 0.02, 0.05, -0.01]))
        pixels, _ = camera.project(true_pose.transform(points))
        pixels += rng.normal(scale=0.3, size=pixels.shape)
        corrupt = rng.choice(100, size=20, replace=False)
        pixels[corrupt] += rng.uniform(25, 60, size=(20, 2))
        guess = true_pose.retract(rng.normal(scale=0.05, size=6))
        result = solve_pnp(camera, points, pixels, initial_pose_cw=guess)
        errors = reprojection_errors(camera.matrix, result.pose_cw, points, pixels)
        clean = np.setdiff1d(np.arange(100), corrupt)
        assert np.median(errors[clean]) < 1.5
        assert result.num_inliers >= 70

    def test_solve_pnp_cold_start_with_ransac(self, camera):
        rng = np.random.default_rng(10)
        points = make_scene(rng, count=60)
        true_pose = SE3.exp(np.array([0.1, 0.05, 0.02, 0.02, 0.01, 0.0]))
        pixels, _ = camera.project(true_pose.transform(points))
        result = solve_pnp(camera, points, pixels, ransac_iterations=20, rng=rng)
        errors = reprojection_errors(camera.matrix, result.pose_cw, points, pixels)
        assert np.median(errors) < 2.0

    def test_minimum_three_points(self, camera):
        # The paper: BA requires at least 3 pairs (Section III-B).
        rng = np.random.default_rng(11)
        points = make_scene(rng, count=3)
        true_pose = SE3.exp(np.array([0.05, 0.02, 0.0, 0.01, 0.0, 0.0]))
        pixels, _ = camera.project(true_pose.transform(points))
        result = refine_pose(
            camera, SE3.identity(), points, pixels, max_iterations=60, huber_delta=None
        )
        errors = reprojection_errors(camera.matrix, result.pose_cw, points, pixels)
        assert np.max(errors) < 1.0
