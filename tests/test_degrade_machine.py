"""Exhaustive state-transition table for the degrade/recover machine.

``repro.serve.degrade`` has two states (NORMAL, DEGRADED) and four
events (failure, success, recover-attempt, keyframe-take).  The table
below enumerates every (state, event) pair — including the ones that
must be no-ops — and the multi-step journeys the chaos suite leans on:
re-degrade during staggered re-admission, and the invariant that every
recovery re-requests a keyframe exactly once.
"""

from __future__ import annotations

import pytest

from repro.serve.degrade import DEGRADED, NORMAL, DegradeConfig, DegradeManager


def make_manager(
    num_sessions: int = 3,
    enabled: bool = True,
    failure_threshold: int = 2,
    recover_depth: int = 1,
    min_degraded_ms: float = 300.0,
) -> DegradeManager:
    return DegradeManager(
        num_sessions,
        DegradeConfig(
            enabled=enabled,
            failure_threshold=failure_threshold,
            recover_depth=recover_depth,
            min_degraded_ms=min_degraded_ms,
        ),
    )


def drive_to_degraded(manager: DegradeManager, session: int = 0, at_ms: float = 100.0):
    threshold = manager.config.failure_threshold
    for k in range(threshold):
        tipped = manager.on_failure(session, at_ms)
        assert tipped == (k == threshold - 1)
    assert manager.is_degraded(session)


# ----------------------------------------------------------------------
# The transition table.  Each row: a starting state, an event applied to
# it, and the expected (state, tipped/recovered, keyframe_pending).
# "setup" puts session 0 into the named state; "event" is a callable on
# the manager; "expect" asserts the post-state.
# ----------------------------------------------------------------------
def ev_failure(m):
    return m.on_failure(0, 1000.0)


def ev_success(m):
    m.on_success(0)
    return None


def ev_recover_early(m):
    # min_degraded_ms has NOT elapsed yet (degraded at 100, now 150).
    return m.maybe_recover(150.0, queue_depth=0)


def ev_recover_ready(m):
    # min_degraded_ms elapsed and queue drained.
    return m.maybe_recover(1000.0, queue_depth=0)


def ev_recover_deep_queue(m):
    # Queue still above recover_depth: must refuse even when overdue.
    return m.maybe_recover(1000.0, queue_depth=5)


def ev_take_keyframe(m):
    return m.take_keyframe_request(0)


TRANSITIONS = [
    # (name, start_state, event, expected_state, expected_return)
    ("normal+single_failure_stays", NORMAL, ev_failure, NORMAL, False),
    ("normal+success_noop", NORMAL, ev_success, NORMAL, None),
    ("normal+recover_noop", NORMAL, ev_recover_ready, NORMAL, None),
    ("normal+keyframe_noop", NORMAL, ev_take_keyframe, NORMAL, False),
    ("degraded+failure_stays_degraded", DEGRADED, ev_failure, DEGRADED, False),
    ("degraded+success_stays_degraded", DEGRADED, ev_success, DEGRADED, None),
    ("degraded+recover_too_early", DEGRADED, ev_recover_early, DEGRADED, None),
    ("degraded+recover_queue_deep", DEGRADED, ev_recover_deep_queue, DEGRADED, None),
    ("degraded+recover_ready", DEGRADED, ev_recover_ready, NORMAL, 0),
    ("degraded+keyframe_not_yet", DEGRADED, ev_take_keyframe, DEGRADED, False),
]


class TestTransitionTable:
    @pytest.mark.parametrize(
        "name,start,event,expected_state,expected_return",
        TRANSITIONS,
        ids=[row[0] for row in TRANSITIONS],
    )
    def test_pair(self, name, start, event, expected_state, expected_return):
        manager = make_manager(num_sessions=1)
        if start == DEGRADED:
            drive_to_degraded(manager)
        returned = event(manager)
        assert returned == expected_return
        state = DEGRADED if manager.is_degraded(0) else NORMAL
        assert state == expected_state

    def test_table_covers_every_state_event_pair(self):
        kind = {
            ev_failure: "failure",
            ev_success: "success",
            ev_recover_early: "recover",
            ev_recover_ready: "recover",
            ev_recover_deep_queue: "recover",
            ev_take_keyframe: "keyframe",
        }
        covered = {(row[1], kind[row[2]]) for row in TRANSITIONS}
        for state in (NORMAL, DEGRADED):
            for event in ("failure", "success", "recover", "keyframe"):
                assert (state, event) in covered, f"missing ({state}, {event})"


class TestThresholdSemantics:
    def test_tips_exactly_at_threshold(self):
        manager = make_manager(num_sessions=1, failure_threshold=3)
        assert not manager.on_failure(0, 10.0)
        assert not manager.on_failure(0, 20.0)
        assert manager.on_failure(0, 30.0)
        assert manager.sessions[0].degraded_at_ms == 30.0

    def test_success_resets_the_run(self):
        manager = make_manager(num_sessions=1, failure_threshold=2)
        manager.on_failure(0, 10.0)
        manager.on_success(0)
        assert not manager.on_failure(0, 20.0)  # run restarted, not tipped
        assert manager.on_failure(0, 30.0)

    def test_disabled_never_degrades(self):
        manager = make_manager(num_sessions=1, enabled=False)
        for k in range(10):
            assert not manager.on_failure(0, float(k))
        assert not manager.is_degraded(0)
        assert manager.degrade_events == 0

    def test_failures_beyond_threshold_do_not_redegrade(self):
        manager = make_manager(num_sessions=1)
        drive_to_degraded(manager)
        assert manager.sessions[0].degrade_count == 1
        manager.on_failure(0, 500.0)
        manager.on_failure(0, 600.0)
        assert manager.sessions[0].degrade_count == 1
        assert manager.degrade_events == 1


class TestStaggeredRecovery:
    def test_one_session_per_call_oldest_first(self):
        manager = make_manager(num_sessions=3)
        for session, at_ms in ((2, 100.0), (0, 200.0), (1, 300.0)):
            for _ in range(2):
                manager.on_failure(session, at_ms)
        assert manager.degraded_sessions() == [0, 1, 2]
        # Oldest degraded first: 2 (t=100), then 0 (t=200), then 1.
        assert manager.maybe_recover(1000.0, queue_depth=0) == 2
        assert manager.maybe_recover(1000.0, queue_depth=0) == 0
        assert manager.maybe_recover(1000.0, queue_depth=0) == 1
        assert manager.maybe_recover(1000.0, queue_depth=0) is None
        assert manager.recover_events == 3

    def test_recovery_always_requests_keyframe_exactly_once(self):
        manager = make_manager(num_sessions=2)
        drive_to_degraded(manager, session=0)
        drive_to_degraded(manager, session=1)
        recovered = manager.maybe_recover(1000.0, queue_depth=0)
        assert recovered == 0
        # The one-shot keyframe flag: set by recovery, consumed once.
        assert manager.take_keyframe_request(0) is True
        assert manager.take_keyframe_request(0) is False
        # The still-degraded session has no pending keyframe.
        assert manager.take_keyframe_request(1) is False

    def test_redegrade_during_staggered_readmission(self):
        """A recovered session that immediately fails again re-degrades,
        gets a fresh degraded_at_ms, and recovers again later — the
        keyframe flag from the aborted recovery does not leak."""
        manager = make_manager(num_sessions=2)
        drive_to_degraded(manager, session=0, at_ms=100.0)
        drive_to_degraded(manager, session=1, at_ms=150.0)
        assert manager.maybe_recover(500.0, queue_depth=0) == 0

        # Session 0 re-fails before its keyframe was even consumed.
        manager.on_failure(0, 510.0)
        manager.on_failure(0, 520.0)
        assert manager.is_degraded(0)
        assert manager.sessions[0].degrade_count == 2
        # Re-degrading clears the stale keyframe flag.
        assert manager.take_keyframe_request(0) is False

        # Next recovery slot goes to session 1 (older: 150 < 520).
        assert manager.maybe_recover(900.0, queue_depth=0) == 1
        # Session 0's fresh min_degraded_ms window applies: 520 + 300.
        assert manager.maybe_recover(800.0, queue_depth=0) is None
        assert manager.maybe_recover(900.0, queue_depth=0) == 0
        assert manager.take_keyframe_request(0) is True
        assert manager.recover_events == 3

    def test_recover_depth_gate(self):
        manager = make_manager(num_sessions=1, recover_depth=2)
        drive_to_degraded(manager)
        assert manager.maybe_recover(1000.0, queue_depth=3) is None
        assert manager.maybe_recover(1000.0, queue_depth=2) == 0


class TestStats:
    def test_stats_shape_and_counts(self):
        manager = make_manager(num_sessions=2)
        drive_to_degraded(manager, session=1)
        stats = manager.stats()
        assert stats["degrade_events"] == 1
        assert stats["recover_events"] == 0
        assert stats["degraded_at_end"] == [1]
        assert stats["per_session"]["1"]["state"] == DEGRADED
        assert stats["per_session"]["0"]["state"] == NORMAL
