"""Unit tests for the latency cost model and device profiles."""

import numpy as np
import pytest

from repro.model import DEVICES, MODEL_COSTS, DeviceProfile, ModelCost


class TestDeviceProfiles:
    def test_tx2_is_reference(self):
        assert DEVICES["jetson_tx2"].speed == 1.0
        assert DEVICES["jetson_tx2"].scale(100.0) == 100.0

    def test_speed_ordering(self):
        assert (
            DEVICES["mobile_npu"].speed
            < DEVICES["jetson_tx2"].speed
            < DEVICES["jetson_xavier"].speed
            < DEVICES["titan_v"].speed
        )

    def test_scaling_inverse_to_speed(self):
        xavier = DEVICES["jetson_xavier"]
        assert xavier.scale(220.0) == pytest.approx(100.0)

    def test_mobile_seconds_per_frame(self):
        mobile = DEVICES["mobile_npu"]
        full = MODEL_COSTS["mask_rcnn_r101"].full_frame_latency()
        assert 3000 < mobile.scale(full) < 4500  # TFLite-class


class TestModelCost:
    def test_rpn_latency_linear_in_fraction(self):
        cost = MODEL_COSTS["mask_rcnn_r101"]
        empty = cost.rpn_latency(0.0)
        full = cost.rpn_latency(1.0)
        half = cost.rpn_latency(0.5)
        assert empty == cost.rpn_fixed_ms
        assert half == pytest.approx((empty + full) / 2)

    def test_inference_latency_monotone(self):
        cost = MODEL_COSTS["mask_rcnn_r101"]
        few = cost.inference_latency(100, 50, 2)
        many = cost.inference_latency(1000, 500, 5)
        assert few < many

    def test_single_stage_models_fixed(self):
        for name in ("yolact_r50", "yolov3"):
            cost = MODEL_COSTS[name]
            assert cost.rpn_variable_ms == 0.0
            assert cost.per_proposal_ms == 0.0

    def test_frozen(self):
        with pytest.raises(Exception):
            DEVICES["jetson_tx2"].speed = 2.0
        with pytest.raises(Exception):
            MODEL_COSTS["yolov3"].rpn_fixed_ms = 1.0
