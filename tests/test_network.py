"""Tests for the wireless channel models."""

import numpy as np
import pytest

from repro.network import CHANNELS, Channel, make_channel, spawn_channel_rngs
from repro.network.channel import ChannelProfile


class TestChannels:
    def test_profiles_exist(self):
        assert set(CHANNELS) == {"wifi_5ghz", "wifi_2.4ghz", "lte"}

    def test_unknown_channel_raises(self):
        with pytest.raises(ValueError):
            make_channel("5g_mmwave")

    def test_latency_increases_with_bytes(self):
        channel = make_channel("wifi_5ghz", np.random.default_rng(0))
        small = np.median([channel.uplink_ms(1_000) for _ in range(50)])
        large = np.median([channel.uplink_ms(1_000_000) for _ in range(50)])
        assert large > small

    def test_channel_ordering(self):
        """WiFi 5 GHz beats 2.4 GHz beats LTE for a typical keyframe."""
        payload = 30_000
        medians = {}
        for name in CHANNELS:
            channel = make_channel(name, np.random.default_rng(1))
            medians[name] = np.median(
                [channel.uplink_ms(payload) for _ in range(100)]
            )
        assert medians["wifi_5ghz"] < medians["wifi_2.4ghz"] < medians["lte"]

    def test_serialization_math(self):
        # With jitter suppressed, latency ~ rtt/2 + size/bandwidth.
        profile = CHANNELS["wifi_5ghz"]
        channel = Channel(profile, np.random.default_rng(2))
        expected = profile.rtt_ms / 2 + 100_000 * 8 / (profile.uplink_mbps * 1e6) * 1000
        observed = np.median([channel.uplink_ms(100_000) for _ in range(300)])
        assert observed == pytest.approx(expected, rel=0.25)

    def test_byte_accounting(self):
        channel = make_channel("lte", np.random.default_rng(3))
        channel.uplink_ms(1000)
        channel.uplink_ms(2000)
        channel.downlink_ms(500)
        assert channel.bytes_up == 3000
        assert channel.bytes_down == 500

    def test_downlink_faster_than_uplink_on_lte(self):
        channel = make_channel("lte", np.random.default_rng(4))
        up = np.median([channel.uplink_ms(200_000) for _ in range(80)])
        down = np.median([channel.downlink_ms(200_000) for _ in range(80)])
        assert down < up

    def test_loss_adds_stalls(self):
        lossy = Channel(
            ChannelProfile("lossy", 100, 100, 10, 0.0, 1.0),
            np.random.default_rng(5),
        )
        clean = Channel(
            ChannelProfile("clean", 100, 100, 10, 0.0, 0.0),
            np.random.default_rng(5),
        )
        assert lossy.uplink_ms(1000) > clean.uplink_ms(1000)

    def test_loss_stall_path_matches_rng_replay(self):
        """With jitter off, each transfer is rtt/2 + serialization, plus
        exactly one 2xRTT stall whenever the seeded loss draw fires."""
        profile = ChannelProfile("half-lossy", 100, 100, 10, 0.0, 0.5)
        channel = Channel(profile, np.random.default_rng(6))
        replay = np.random.default_rng(6)
        base = profile.rtt_ms / 2 + 1000 * 8 / (profile.uplink_mbps * 1e6) * 1000
        stalled = 0
        for _ in range(40):
            observed = channel.uplink_ms(1000)
            replay.normal(0.0, profile.jitter)  # jitter draw (multiplier 1)
            lost = replay.uniform() < profile.loss_rate
            expected = base + (2.0 * profile.rtt_ms if lost else 0.0)
            stalled += lost
            assert observed == pytest.approx(expected)
        assert 0 < stalled < 40  # the seed exercises both branches

    def test_jitter_deterministic_under_fixed_seed(self):
        draws_a = [
            make_channel("lte", np.random.default_rng(42)).uplink_ms(50_000)
            for _ in range(1)
        ]
        channel_a = make_channel("lte", np.random.default_rng(42))
        channel_b = make_channel("lte", np.random.default_rng(42))
        sequence_a = [channel_a.uplink_ms(50_000) for _ in range(20)]
        sequence_b = [channel_b.uplink_ms(50_000) for _ in range(20)]
        assert sequence_a == sequence_b
        assert sequence_a[0] == draws_a[0]
        channel_c = make_channel("lte", np.random.default_rng(43))
        assert [channel_c.uplink_ms(50_000) for _ in range(20)] != sequence_a


class TestSpawnChannelRngs:
    def test_streams_are_deterministic_and_distinct(self):
        first = [rng.uniform() for rng in spawn_channel_rngs(11, 4)]
        second = [rng.uniform() for rng in spawn_channel_rngs(11, 4)]
        assert first == second
        assert len(set(first)) == 4

    def test_different_seed_different_streams(self):
        a = [rng.uniform() for rng in spawn_channel_rngs(1, 3)]
        b = [rng.uniform() for rng in spawn_channel_rngs(2, 3)]
        assert a != b

    def test_count_validation(self):
        assert spawn_channel_rngs(0, 0) == []
        with pytest.raises(ValueError):
            spawn_channel_rngs(0, -1)

    def test_streams_unchanged_by_fleet_size(self):
        """Growing the fleet must not perturb existing sessions' streams:
        stream i is the same whether 2 or 8 children are spawned."""
        small = spawn_channel_rngs(7, 2)
        large = spawn_channel_rngs(7, 8)
        for a, b in zip(small, large):
            assert list(a.uniform(size=16)) == list(b.uniform(size=16))


class TestHandoff:
    def test_handoff_swaps_profile_at_instant(self):
        channel = make_channel("wifi_5ghz", np.random.default_rng(0))
        channel.schedule_handoff(700.0, "lte")
        assert channel.profile_at(699.9).name == "wifi_5ghz"
        assert channel.profile_at(700.0).name == "lte"
        assert channel.profile_at(10_000.0).name == "lte"

    def test_handoff_accepts_profile_object_and_rejects_unknown(self):
        channel = make_channel("wifi_5ghz")
        channel.schedule_handoff(10.0, CHANNELS["lte"])
        assert channel.profile_at(10.0).name == "lte"
        with pytest.raises(ValueError, match="unknown channel"):
            make_channel("wifi_5ghz").schedule_handoff(10.0, "5g_mmwave")

    def test_legacy_no_now_keeps_base_profile(self):
        channel = make_channel("wifi_5ghz", np.random.default_rng(0))
        channel.schedule_handoff(0.0, "lte")
        # Callers that never pass now_ms stay on the base profile forever.
        assert channel.profile_at(None).name == "wifi_5ghz"

    def test_prefix_bit_identical_before_handoff(self):
        """A handoff at t leaves every transfer initiated before t
        bit-identical to the unmodified channel — the schedule adds no
        RNG draws."""
        plain = make_channel("wifi_5ghz", np.random.default_rng(9))
        handed = make_channel("wifi_5ghz", np.random.default_rng(9))
        handed.schedule_handoff(700.0, "lte")
        times = [0.0, 100.0, 250.0, 400.0, 550.0, 699.0]
        for now in times:
            assert handed.uplink_ms(20_000, now_ms=now) == plain.uplink_ms(
                20_000, now_ms=now
            )
        # At/after the instant the profiles differ, so latencies diverge
        # (LTE's rtt/2 alone exceeds WiFi 5 GHz's typical total here) —
        # but both channels still consume the same number of draws.
        after_handed = handed.uplink_ms(20_000, now_ms=800.0)
        after_plain = plain.uplink_ms(20_000, now_ms=800.0)
        assert after_handed != after_plain
        assert handed.uplink_ms(20_000, now_ms=900.0) != plain.uplink_ms(
            20_000, now_ms=900.0
        )
        # Post-divergence the streams are still aligned: re-running the
        # whole history on fresh channels reproduces both sequences.
        replay = make_channel("wifi_5ghz", np.random.default_rng(9))
        replay.schedule_handoff(700.0, "lte")
        for now in times:
            replay.uplink_ms(20_000, now_ms=now)
        assert replay.uplink_ms(20_000, now_ms=800.0) == after_handed

    def test_handoff_count_increments_once(self):
        channel = make_channel("wifi_5ghz", np.random.default_rng(1))
        channel.schedule_handoff(100.0, "lte")
        for now in (0.0, 50.0, 150.0, 200.0, 300.0):
            channel.uplink_ms(1000, now_ms=now)
        assert channel.handoff_count == 1

    def test_multiple_handoffs_sorted_by_instant(self):
        channel = make_channel("wifi_5ghz")
        channel.schedule_handoff(500.0, "wifi_2.4ghz")
        channel.schedule_handoff(200.0, "lte")  # scheduled out of order
        assert channel.profile_at(100.0).name == "wifi_5ghz"
        assert channel.profile_at(300.0).name == "lte"
        assert channel.profile_at(600.0).name == "wifi_2.4ghz"


class TestStall:
    def test_stall_window_holds_transfer_until_release(self):
        plain = make_channel("wifi_5ghz", np.random.default_rng(3))
        stalled = make_channel("wifi_5ghz", np.random.default_rng(3))
        stalled.schedule_stall(100.0, 50.0)
        # Outside the window: identical.
        assert stalled.uplink_ms(1000, now_ms=50.0) == plain.uplink_ms(
            1000, now_ms=50.0
        )
        # Inside: the held transfer pays exactly the remaining window.
        inside = stalled.uplink_ms(1000, now_ms=120.0)
        base = plain.uplink_ms(1000, now_ms=120.0)
        assert inside == pytest.approx(base + 30.0)
        assert stalled.stall_hits == 1
        # The window is half-open: at release the link is back.
        assert stalled.uplink_ms(1000, now_ms=150.0) == plain.uplink_ms(
            1000, now_ms=150.0
        )

    def test_stall_duration_must_be_positive(self):
        channel = make_channel("wifi_5ghz")
        with pytest.raises(ValueError, match="positive"):
            channel.schedule_stall(10.0, 0.0)
