"""Tests for the wireless channel models."""

import numpy as np
import pytest

from repro.network import CHANNELS, Channel, make_channel


class TestChannels:
    def test_profiles_exist(self):
        assert set(CHANNELS) == {"wifi_5ghz", "wifi_2.4ghz", "lte"}

    def test_unknown_channel_raises(self):
        with pytest.raises(ValueError):
            make_channel("5g_mmwave")

    def test_latency_increases_with_bytes(self):
        channel = make_channel("wifi_5ghz", np.random.default_rng(0))
        small = np.median([channel.uplink_ms(1_000) for _ in range(50)])
        large = np.median([channel.uplink_ms(1_000_000) for _ in range(50)])
        assert large > small

    def test_channel_ordering(self):
        """WiFi 5 GHz beats 2.4 GHz beats LTE for a typical keyframe."""
        payload = 30_000
        medians = {}
        for name in CHANNELS:
            channel = make_channel(name, np.random.default_rng(1))
            medians[name] = np.median(
                [channel.uplink_ms(payload) for _ in range(100)]
            )
        assert medians["wifi_5ghz"] < medians["wifi_2.4ghz"] < medians["lte"]

    def test_serialization_math(self):
        # With jitter suppressed, latency ~ rtt/2 + size/bandwidth.
        profile = CHANNELS["wifi_5ghz"]
        channel = Channel(profile, np.random.default_rng(2))
        expected = profile.rtt_ms / 2 + 100_000 * 8 / (profile.uplink_mbps * 1e6) * 1000
        observed = np.median([channel.uplink_ms(100_000) for _ in range(300)])
        assert observed == pytest.approx(expected, rel=0.25)

    def test_byte_accounting(self):
        channel = make_channel("lte", np.random.default_rng(3))
        channel.uplink_ms(1000)
        channel.uplink_ms(2000)
        channel.downlink_ms(500)
        assert channel.bytes_up == 3000
        assert channel.bytes_down == 500

    def test_downlink_faster_than_uplink_on_lte(self):
        channel = make_channel("lte", np.random.default_rng(4))
        up = np.median([channel.uplink_ms(200_000) for _ in range(80)])
        down = np.median([channel.downlink_ms(200_000) for _ in range(80)])
        assert down < up

    def test_loss_adds_stalls(self):
        from repro.network.channel import ChannelProfile

        lossy = Channel(
            ChannelProfile("lossy", 100, 100, 10, 0.0, 1.0),
            np.random.default_rng(5),
        )
        clean = Channel(
            ChannelProfile("clean", 100, 100, 10, 0.0, 0.0),
            np.random.default_rng(5),
        )
        assert lossy.uplink_ms(1000) > clean.uplink_ms(1000)
