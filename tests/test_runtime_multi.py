"""Tests for the multi-client shared-server pipeline."""

import numpy as np
import pytest

from repro.eval.experiments import ExperimentSpec, _make_video, build_client
from repro.model import SimulatedSegmentationModel
from repro.network import make_channel
from repro.runtime import ClientSession, EdgeServer, MultiClientPipeline, Pipeline


def make_sessions(count, system="edge_best_effort", frames=40, resolution=(160, 120)):
    sessions = []
    for index in range(count):
        spec = ExperimentSpec(
            system=system,
            dataset="xiph_like",
            num_frames=frames,
            resolution=resolution,
            seed=index,
        )
        video = _make_video(spec)
        client = build_client(system, video, seed=index)
        channel = make_channel("wifi_5ghz", np.random.default_rng(index))
        sessions.append(ClientSession(video=video, client=client, channel=channel))
    return sessions


def make_server():
    return EdgeServer(
        SimulatedSegmentationModel("mask_rcnn_r101", "jetson_tx2", np.random.default_rng(9))
    )


class TestMultiClientPipeline:
    def test_requires_sessions(self):
        with pytest.raises(ValueError):
            MultiClientPipeline([], make_server())

    def test_mismatched_lengths_rejected(self):
        sessions = make_sessions(1, frames=30) + make_sessions(1, frames=40)
        with pytest.raises(ValueError):
            MultiClientPipeline(sessions, make_server())

    def test_mismatched_fps_rejected(self):
        sessions = make_sessions(2, frames=30)
        sessions[1].video.fps = 60.0
        with pytest.raises(ValueError, match="same fps"):
            MultiClientPipeline(sessions, make_server())

    def test_per_session_results(self):
        sessions = make_sessions(2, frames=40)
        results = MultiClientPipeline(sessions, make_server(), warmup_frames=10).run()
        assert len(results) == 2
        for result in results:
            assert len(result.frames) == 40
            assert result.offload_count >= 1

    def test_single_session_matches_pipeline_shape(self):
        # One session through the multi pipeline behaves like Pipeline.
        sessions = make_sessions(1, frames=40)
        multi_result = MultiClientPipeline(
            sessions, make_server(), warmup_frames=10
        ).run()[0]

        spec = ExperimentSpec(
            system="edge_best_effort",
            dataset="xiph_like",
            num_frames=40,
            resolution=(160, 120),
            seed=0,
        )
        video = _make_video(spec)
        client = build_client("edge_best_effort", video, seed=0)
        channel = make_channel("wifi_5ghz", np.random.default_rng(0))
        single_result = Pipeline(
            video, client, channel, make_server(), warmup_frames=10
        ).run()
        assert multi_result.offload_count == single_result.offload_count
        assert abs(multi_result.mean_iou() - single_result.mean_iou()) < 0.15

    def test_contention_serializes_server(self):
        # Four clients saturate the shared server far more than one.
        solo = MultiClientPipeline(make_sessions(1, frames=40), make_server()).run()
        fleet = MultiClientPipeline(make_sessions(4, frames=40), make_server()).run()
        assert fleet[0].server_utilization() > solo[0].server_utilization()

    def test_shared_field_study_runs(self):
        from repro.eval.field_study import run_field_study

        study = run_field_study(num_frames=40, resolution=(160, 120), shared_server=True)
        assert len(study.per_device_iou) == 8
