"""Tests for the benchmark harness: suite runner, BENCH artifacts,
noise-aware comparison/regression gating, and the trend aggregator."""

import json

import pytest

from repro.eval.cli import main as cli_main
from repro.eval.reporting import SCHEMA_VERSION
# Note: ``bench_filename`` is deliberately not imported at module scope —
# this repo's pytest config collects ``bench_*`` functions as tests.
from repro.obs import bench as bench_mod
from repro.obs.bench import (
    SUITES,
    BenchScenario,
    KernelBenchScenario,
    dump_bench,
    environment_fingerprint,
    run_suite,
    strip_timing,
    write_bench,
)
from repro.obs.kernelbench import KERNEL_NAMES, TIMING_KEYS
from repro.obs.compare import (
    compare_payloads,
    load_bench_dir,
    policy_for,
    render_comparison,
    render_trend_markdown,
    write_trend_report,
)


@pytest.fixture(scope="module")
def micro_payload():
    return run_suite("micro", "base")


@pytest.fixture(scope="module")
def degraded_payload():
    return run_suite("micro", "slow", degrade=3.0)


def synthetic_payload(
    label="base", infer_p50=400.0, iou=0.9, miss=0.1, burn=1.0, consumed=0.4
):
    """A handcrafted minimal BENCH payload for comparator unit tests."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "suite": "synthetic",
        "label": label,
        "budget_ms": 33.333333,
        "degrade": 1.0,
        "environment": {},
        "scenarios": {
            "cell": {
                "result": {
                    "mean_iou": iou,
                    "false_rate_75": 0.05,
                    "mean_latency_ms": 20.0,
                    "bytes_up": 100000,
                    "bytes_down": 5000,
                },
                "slo": {
                    "miss_rate": miss,
                    "worst_streak": 3,
                    "latency_p50_ms": 18.0,
                    "latency_p99_ms": 40.0,
                    "total_over_ms": 12.0,
                    "max_over_ms": 6.0,
                },
                "budget": {
                    "target_miss_rate": 0.05,
                    "consumed_fraction": consumed,
                    "max_fast_burn_rate": burn,
                    "max_slow_burn_rate": burn * 0.8,
                },
                "stages": {
                    "server/server.infer": {
                        "mean_ms": infer_p50,
                        "p50_ms": infer_p50,
                        "p90_ms": infer_p50 * 1.05,
                        "p99_ms": infer_p50 * 1.1,
                    },
                    "client/mamt.predict": {
                        "mean_ms": 0.1,
                        "p50_ms": 0.1,
                        "p90_ms": 0.12,
                        "p99_ms": 0.15,
                    },
                },
            }
        },
    }


class TestSuiteRegistry:
    def test_suites_present(self):
        assert {"micro", "smoke", "full"} <= set(SUITES)
        for scenarios in SUITES.values():
            assert scenarios
            assert all(isinstance(s, BenchScenario) for s in scenarios)

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError, match="unknown suite"):
            run_suite("no-such-suite", "x")

    def test_filename(self):
        assert bench_mod.bench_filename("smoke", "ci") == "BENCH_smoke_ci.json"


class TestBenchPayload:
    def test_structure(self, micro_payload):
        assert micro_payload["schema_version"] == SCHEMA_VERSION
        assert micro_payload["kind"] == "bench"
        assert micro_payload["suite"] == "micro"
        scenario = micro_payload["scenarios"]["wifi5-walk"]
        # Shared result schema rides along with its own version field.
        assert scenario["result"]["schema_version"] == SCHEMA_VERSION
        assert 0.0 < scenario["result"]["mean_iou"] <= 1.0
        stages = scenario["stages"]
        assert "server/server.infer" in stages
        assert "client/client.process" in stages
        for stats in stages.values():
            assert stats["p50_ms"] <= stats["p90_ms"] <= stats["p99_ms"]
            assert stats["p99_ms"] <= stats["max_ms"] + 1e-9
            # The streaming estimate must bracket within the sample range.
            assert stats["hist_p99_ms"] <= stats["max_ms"] + 1e-9
        slo = scenario["slo"]
        assert slo["frames"] == 50  # 80 frames - 30 warmup
        assert 0.0 <= slo["miss_rate"] <= 1.0
        assert slo["worst_streak"] <= slo["misses"]
        if slo["misses"]:
            assert sum(slo["attribution"].values()) == slo["misses"]
        offload = scenario["offload"]
        assert offload["bytes_up"] > 0
        assert offload["counters"]["server.requests"] >= 1
        assert offload["counters"]["pipeline.frames"] == 80

    def test_budget_section(self, micro_payload):
        assert micro_payload["slo_target"] == 0.05
        budget = micro_payload["scenarios"]["wifi5-walk"]["budget"]
        # The artifact embeds the lean scalar form, never the series.
        assert "burn_series" not in budget
        assert budget["frames"] == 50
        assert budget["allowed_misses"] == pytest.approx(2.5)
        assert budget["misses"] <= budget["frames"]
        assert budget["max_fast_burn_rate"] >= budget["fast_burn_rate"]
        assert budget["max_slow_burn_rate"] >= budget["slow_burn_rate"]
        if budget["misses"] > budget["allowed_misses"]:
            assert budget["exhausted_at_ms"] is not None

    def test_environment_fingerprint(self, micro_payload):
        env = micro_payload["environment"]
        assert env == environment_fingerprint()
        assert set(env) == {
            "python",
            "implementation",
            "platform",
            "machine",
            "numpy",
        }

    def test_byte_identical_across_runs(self, micro_payload):
        # Kernel wall-clock fields are the one sanctioned source of
        # nondeterminism; everything else must match byte for byte.
        again = run_suite("micro", "base")
        assert dump_bench(strip_timing(micro_payload)) == dump_bench(
            strip_timing(again)
        )

    def test_kernel_cells_present_and_equivalent(self, micro_payload):
        cells = {
            name: scenario["kernel"]
            for name, scenario in micro_payload["scenarios"].items()
            if "kernel" in scenario
        }
        assert set(cells) == set(KERNEL_NAMES)
        for name, kernel in cells.items():
            assert kernel["equivalent"], f"{name} diverged from its reference"
        # The vectorization acceptance bar: at least three kernels at 3x+.
        speedups = [
            kernel["speedup_x"]
            for kernel in cells.values()
            if "vectorized_us" in kernel
        ]
        assert sum(1 for s in speedups if s >= 3.0) >= 3

    def test_strip_timing_removes_only_wallclock(self, micro_payload):
        stripped = strip_timing(micro_payload)
        kernel = stripped["scenarios"]["fast.arc_run"]["kernel"]
        assert not set(TIMING_KEYS) & set(kernel)
        assert kernel["equivalent"] is True
        # The original payload is untouched.
        assert "speedup_x" in micro_payload["scenarios"]["fast.arc_run"]["kernel"]

    def test_write_bench(self, micro_payload, tmp_path):
        path = write_bench(micro_payload, tmp_path)
        assert path.name == "BENCH_micro_base.json"
        assert json.loads(path.read_text()) == json.loads(
            dump_bench(micro_payload)
        )


class TestComparePolicies:
    def test_policy_selection(self):
        assert policy_for("x.result.mean_iou").higher_is_better
        assert not policy_for("x.stages.server/server.infer.p50_ms").higher_is_better
        assert policy_for("x.slo.miss_rate") is not None
        assert policy_for("x.offload.offload_count") is None

    def test_budget_policies(self):
        assert not policy_for("x.budget.consumed_fraction").higher_is_better
        assert not policy_for("x.budget.max_fast_burn_rate").higher_is_better
        assert policy_for("x.budget.max_slow_burn_rate") is not None
        assert policy_for("x.budget.target_miss_rate") is None

    def test_identical_payloads_all_neutral(self):
        report = compare_payloads(synthetic_payload(), synthetic_payload())
        assert report["regressed"] == []
        assert report["improved"] == []
        assert report["neutral_count"] == len(report["metrics"])

    def test_budget_burn_regression_fails_gate(self):
        report = compare_payloads(
            synthetic_payload(), synthetic_payload(burn=4.0, consumed=1.6)
        )
        assert "cell.budget.max_fast_burn_rate" in report["regressed"]
        assert "cell.budget.consumed_fraction" in report["regressed"]

    def test_budget_burn_floor_suppresses_wobble(self):
        # 1.0 -> 1.3 burn: 30% relative but under the 0.5 absolute floor.
        report = compare_payloads(synthetic_payload(), synthetic_payload(burn=1.3))
        assert not any("burn_rate" in p for p in report["regressed"])

    def test_nan_budget_metrics_skipped(self):
        old, new = synthetic_payload(), synthetic_payload()
        old["scenarios"]["cell"]["budget"]["consumed_fraction"] = float("nan")
        report = compare_payloads(old, new)
        paths = [entry["metric"] for entry in report["metrics"]]
        assert "cell.budget.consumed_fraction" not in paths
        assert "cell.budget.consumed_fraction" in report["added"]

    def test_regression_names_stage(self):
        report = compare_payloads(
            synthetic_payload(), synthetic_payload(infer_p50=800.0)
        )
        assert any("server/server.infer.p50_ms" in p for p in report["regressed"])

    def test_improvement_detected(self):
        report = compare_payloads(
            synthetic_payload(), synthetic_payload(infer_p50=200.0)
        )
        assert any("server/server.infer" in p for p in report["improved"])
        assert not any("server/server.infer" in p for p in report["regressed"])

    def test_min_effect_floor_suppresses_tiny_absolute_change(self):
        # mamt.predict doubles 0.1 -> 0.2 ms: 100% relative, but below the
        # 0.25 ms latency floor — must stay neutral.
        new = synthetic_payload()
        new["scenarios"]["cell"]["stages"]["client/mamt.predict"]["p50_ms"] = 0.2
        report = compare_payloads(synthetic_payload(), new)
        assert report["regressed"] == []

    def test_rel_threshold_suppresses_small_relative_change(self):
        # 400 -> 408 ms: 8 ms absolute, but only 2% — under the 5% gate.
        report = compare_payloads(
            synthetic_payload(), synthetic_payload(infer_p50=408.0)
        )
        assert report["regressed"] == []

    def test_iou_is_higher_is_better(self):
        worse = compare_payloads(synthetic_payload(), synthetic_payload(iou=0.8))
        assert "cell.result.mean_iou" in worse["regressed"]
        better = compare_payloads(synthetic_payload(), synthetic_payload(iou=0.99))
        assert "cell.result.mean_iou" in better["improved"]

    def test_threshold_scale_loosens_gate(self):
        old, new = synthetic_payload(), synthetic_payload(infer_p50=440.0)
        assert compare_payloads(old, new)["regressed"]  # 10% > 5%
        assert not compare_payloads(old, new, threshold_scale=4.0)["regressed"]

    def test_schema_mismatch_raises(self):
        old, new = synthetic_payload(), synthetic_payload()
        new["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version mismatch"):
            compare_payloads(old, new)

    def test_missing_and_added_metrics_reported(self):
        old, new = synthetic_payload(), synthetic_payload()
        del new["scenarios"]["cell"]["stages"]["client/mamt.predict"]
        report = compare_payloads(old, new)
        assert any("mamt.predict" in p for p in report["missing"])
        assert report["added"] == []

    def test_render_comparison_lists_verdicts(self):
        report = compare_payloads(
            synthetic_payload(), synthetic_payload(infer_p50=800.0)
        )
        rendered = render_comparison(report).render()
        assert "REGRESSED" in rendered
        assert "server/server.infer" in rendered


class TestDegradeGate:
    def test_degraded_run_regresses_server_infer(
        self, micro_payload, degraded_payload
    ):
        report = compare_payloads(micro_payload, degraded_payload)
        assert any("server/server.infer" in p for p in report["regressed"])

    def test_self_compare_passes(self, micro_payload):
        assert compare_payloads(micro_payload, micro_payload)["regressed"] == []


class TestTrend:
    def test_markdown_rows(self, tmp_path):
        write_bench(synthetic_payload("aaa"), tmp_path)
        fast = synthetic_payload("bbb", infer_p50=200.0)
        fast["suite"] = "synthetic2"
        write_bench(fast, tmp_path)
        entries = load_bench_dir(tmp_path)
        assert [name for name, _ in entries] == [
            "BENCH_synthetic2_bbb.json",
            "BENCH_synthetic_aaa.json",
        ]
        markdown = render_trend_markdown(entries)
        assert "do not edit" in markdown
        assert "BENCH_synthetic_aaa.json" in markdown
        assert markdown.count("| cell |") == 2

    def test_write_trend_report(self, tmp_path):
        write_bench(synthetic_payload(), tmp_path)
        out = write_trend_report(tmp_path)
        assert out == tmp_path / "README.md"
        assert "Benchmark trajectory" in out.read_text()

    def test_empty_dir(self, tmp_path):
        markdown = render_trend_markdown(load_bench_dir(tmp_path))
        assert "No `BENCH_*.json` artifacts" in markdown


class TestBenchCli:
    def test_bench_run_writes_artifact(self, tmp_path, capsys):
        code = cli_main(
            ["bench", "run", "--suite", "micro", "--label", "clitest",
             "--out", str(tmp_path)]
        )
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_micro_clitest.json").read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        out = capsys.readouterr().out
        assert "miss rate" in out and "wrote" in out

    def test_bench_compare_exit_codes(
        self, micro_payload, degraded_payload, tmp_path, capsys
    ):
        base = write_bench(micro_payload, tmp_path)
        slow = write_bench(degraded_payload, tmp_path)
        assert cli_main(["bench", "compare", str(base), str(base)]) == 0
        code = cli_main(["bench", "compare", str(base), str(slow)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "server.infer" in out

    def test_bench_trend_writes_report(self, micro_payload, tmp_path, capsys):
        write_bench(micro_payload, tmp_path)
        code = cli_main(
            ["bench", "trend", "--results-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "README.md").exists()
        assert "wifi5-walk" in (tmp_path / "README.md").read_text()
