"""Cross-module property-based tests on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import SE3, PinholeCamera, dlt_pose
from repro.image import fill_contour, find_contours, mask_iou, resample_contour
from repro.model import box_iou_matrix, degrade_mask_to_iou, fast_nms, nms
from repro.model.degrade import sample_target_iou


# ----------------------------------------------------------------------
# Geometry
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    xi=st.lists(st.floats(-0.5, 0.5), min_size=6, max_size=6),
    seed=st.integers(0, 1000),
)
def test_dlt_pose_recovers_exact_pose(xi, seed):
    camera = PinholeCamera.with_fov(320, 240, 64.0)
    pose = SE3.exp(np.array(xi))
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [rng.uniform(-2, 2, 12), rng.uniform(-2, 2, 12), rng.uniform(4, 10, 12)]
    )
    # Points defined in the camera frame of the *true* pose: move to world.
    points_world = pose.inverse().transform(points)
    pixels, _ = camera.project(points)
    recovered = dlt_pose(camera, points_world, pixels)
    assert recovered.allclose(pose, atol=1e-4) or (
        recovered.rotation_angle_to(pose) < 1e-3
        and recovered.translation_distance_to(pose) < 1e-3
    )


@settings(max_examples=30, deadline=None)
@given(
    fov=st.floats(30.0, 110.0),
    depth=st.floats(0.5, 50.0),
    u=st.floats(0.0, 319.0),
    v=st.floats(0.0, 239.0),
)
def test_project_backproject_inverse(fov, depth, u, v):
    camera = PinholeCamera.with_fov(320, 240, fov)
    point = camera.backproject(np.array([[u, v]]), np.array([depth]))[0]
    pixel, z = camera.project(point)
    assert abs(z[0] - depth) < 1e-9
    assert np.allclose(pixel[0], [u, v], atol=1e-6)


# ----------------------------------------------------------------------
# NMS
# ----------------------------------------------------------------------
def _random_boxes(rng, count):
    x0 = rng.uniform(0, 200, count)
    y0 = rng.uniform(0, 200, count)
    w = rng.uniform(5, 80, count)
    h = rng.uniform(5, 80, count)
    return np.column_stack([x0, y0, x0 + w, y0 + h])


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 40))
def test_nms_kept_boxes_mutually_separated(seed, count):
    rng = np.random.default_rng(seed)
    boxes = _random_boxes(rng, count)
    scores = rng.uniform(0, 1, count)
    keep = nms(boxes, scores, iou_threshold=0.5)
    kept = boxes[keep]
    iou = box_iou_matrix(kept, kept)
    np.fill_diagonal(iou, 0.0)
    assert (iou <= 0.5 + 1e-9).all()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 40))
def test_fast_nms_subset_of_input_and_keeps_top(seed, count):
    rng = np.random.default_rng(seed)
    boxes = _random_boxes(rng, count)
    scores = rng.uniform(0, 1, count)
    keep = fast_nms(boxes, scores, iou_threshold=0.5)
    assert len(set(keep.tolist())) == len(keep)
    # The single highest-scoring box always survives.
    assert int(np.argmax(scores)) in keep.tolist()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(2, 30))
def test_fast_nms_never_keeps_more_than_greedy_plus_input(seed, count):
    rng = np.random.default_rng(seed)
    boxes = _random_boxes(rng, count)
    scores = rng.uniform(0, 1, count)
    fast_kept = fast_nms(boxes, scores, 0.5)
    assert 1 <= len(fast_kept) <= count


# ----------------------------------------------------------------------
# Contours
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_blobs=st.integers(1, 3),
)
def test_contour_fill_roundtrip_on_random_blobs(seed, num_blobs):
    rng = np.random.default_rng(seed)
    mask = np.zeros((48, 48), dtype=bool)
    rr, cc = np.mgrid[0:48, 0:48]
    for _ in range(num_blobs):
        r = rng.integers(10, 38)
        c = rng.integers(10, 38)
        radius = rng.integers(4, 9)
        mask |= (rr - r) ** 2 + (cc - c) ** 2 <= radius**2
    reconstructed = np.zeros_like(mask)
    for contour in find_contours(mask):
        reconstructed |= fill_contour(contour, mask.shape)
    assert mask_iou(mask, reconstructed) > 0.9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), target_points=st.integers(8, 200))
def test_resample_preserves_closed_shape(seed, target_points):
    rng = np.random.default_rng(seed)
    mask = np.zeros((48, 48), dtype=bool)
    rr, cc = np.mgrid[0:48, 0:48]
    mask |= (rr - 24) ** 2 + (cc - 24) ** 2 <= int(rng.integers(8, 16)) ** 2
    contour = find_contours(mask)[0]
    resampled = resample_contour(contour, target_points)
    assert resampled.shape == (target_points, 2)
    refilled = fill_contour(resampled, mask.shape)
    if target_points >= 24:
        assert mask_iou(mask, refilled) > 0.8


# ----------------------------------------------------------------------
# Degradation
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    target=st.floats(0.5, 0.99),
    radius=st.integers(6, 18),
)
def test_degrade_never_overshoots_much(seed, target, radius):
    rng = np.random.default_rng(seed)
    rr, cc = np.mgrid[0:64, 0:64]
    mask = (rr - 32) ** 2 + (cc - 32) ** 2 <= radius**2
    degraded = degrade_mask_to_iou(mask, target, rng)
    achieved = mask_iou(mask, degraded)
    assert achieved <= min(target + 0.12, 1.0)
    assert degraded.any()  # never erases the instance entirely


@settings(max_examples=40, deadline=None)
@given(mean=st.floats(0.4, 0.99), std=st.floats(0.0, 0.2), seed=st.integers(0, 999))
def test_sample_target_iou_in_range(mean, std, seed):
    value = sample_target_iou(mean, std, np.random.default_rng(seed))
    assert 0.35 <= value <= 0.995
