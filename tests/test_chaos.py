"""Chaos layer: scenario registry, fault injection, byte-determinism.

Covers the three contracts of ``repro.chaos``:

* the declarative registries (scenarios, fault programs) are valid and
  the ``chaos`` bench suite spans their full cross product;
* the injector applies faults at exact sim-clock instants against the
  fleet scheduler (kill/revive, straggler on/off, stall markers);
* chaos runs are byte-deterministic — running any scenario twice yields
  identical artifacts after :func:`strip_timing`.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    FAULT_KINDS,
    FAULTS,
    SCENARIOS,
    ChaosInjector,
    FaultSpec,
    LightingShiftTexture,
    build_video,
    make_faults,
    make_scenario,
)
from repro.eval.experiments import FleetSpec, run_fleet
from repro.obs.bench import (
    SUITES,
    ChaosBenchScenario,
    dump_bench,
    run_scenario,
    strip_timing,
)


class TestRegistries:
    def test_every_scenario_resolves(self):
        for name in SCENARIOS:
            spec = make_scenario(name)
            assert spec.name == name
            assert spec.summary

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("nope")

    def test_unknown_fault_program_raises(self):
        with pytest.raises(ValueError, match="unknown fault program"):
            make_faults("nope")

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode", at_ms=0.0)
        with pytest.raises(ValueError, match="duration_ms"):
            FaultSpec("straggler", at_ms=0.0, duration_ms=0.0)
        with pytest.raises(ValueError, match="factor"):
            FaultSpec("straggler", at_ms=0.0, duration_ms=10.0, factor=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec("kill_replica", at_ms=-1.0)

    def test_every_program_uses_known_kinds(self):
        for program in FAULTS.values():
            for fault in program:
                assert fault.kind in FAULT_KINDS

    def test_chaos_suite_spans_full_matrix(self):
        """The hard-coded name lists in the bench suite must stay in sync
        with the registries: every scenario x fault cell, exactly once."""
        cells = {(c.chaos_scenario, c.fault) for c in SUITES["chaos"]}
        assert cells == {(s, f) for s in SCENARIOS for f in FAULTS}
        assert len(SUITES["chaos"]) == len(SCENARIOS) * len(FAULTS)
        names = [c.name for c in SUITES["chaos"]]
        assert len(names) == len(set(names))


class TestScenarioWorlds:
    def test_crowd_adds_objects_above_catalog_ids(self):
        video = build_video(make_scenario("crowded-occlusion"), num_frames=2, seed=0)
        ids = {o.instance_id for o in video.world.objects if not o.is_background}
        assert len([i for i in ids if i >= 40]) == 5

    def test_transients_enter_and_leave_frame(self):
        video = build_video(
            make_scenario("transit"), num_frames=90, resolution=(160, 120), seed=0
        )
        transient_ids = {
            o.instance_id
            for o in video.world.objects
            if o.instance_id >= 50
        }
        assert transient_ids
        # Visible in some frames but not all: the walkers cross through.
        seen_per_frame = []
        for index in range(0, 90, 6):
            _, truth = video.frame_at(index)
            seen_per_frame.append(
                bool(transient_ids & {m.instance_id for m in truth.masks})
            )
        assert any(seen_per_frame)
        assert not all(seen_per_frame)

    def test_lighting_flip_darkens_after_shift(self):
        spec = make_scenario("lighting-flip")
        video = build_video(spec, num_frames=40, resolution=(96, 72), seed=0)
        fps = video.fps
        before_index = int(spec.lighting_shift_at_s * fps) - 6
        after_index = int(spec.lighting_shift_at_s * fps) + 6
        frame_before, _ = video.frame_at(before_index)
        frame_after, _ = video.frame_at(after_index)
        assert frame_after.image.mean() < frame_before.image.mean() * 0.8

    def test_lighting_wrapper_is_time_gated(self):
        class Flat:
            def sample(self, u, v):
                import numpy as np

                return np.full((len(u), 3), 200.0)

        wrapped = LightingShiftTexture(Flat(), at_s=1.0, gain=0.5)
        import numpy as np

        u = v = np.zeros(4)
        wrapped.set_time(0.5)
        assert wrapped.sample(u, v).max() == 200.0
        wrapped.set_time(1.0)
        assert wrapped.sample(u, v).max() == 100.0

    def test_whip_pan_uses_whip_grade(self):
        assert make_scenario("whip-pan").motion_grade == "whip"


class _StubServer:
    def __init__(self):
        self.latency_scale = 1.0


class _StubReplica:
    def __init__(self, index):
        self.index = index
        self.server = _StubServer()


class _StubScheduler:
    """Records the injector's calls without running a fleet."""

    def __init__(self, num_servers=2):
        class Pool:
            replicas = [_StubReplica(i) for i in range(num_servers)]

        self.pool = Pool()
        self.calls = []

    def kill_replica(self, index, now_ms):
        self.calls.append(("kill", index, now_ms))
        return 3

    def revive_replica(self, index, now_ms):
        self.calls.append(("revive", index, now_ms))

    def set_latency_scale(self, index, scale):
        self.calls.append(("scale", index, scale))


class TestInjector:
    def test_kill_and_revive_at_exact_ticks(self):
        faults = (FaultSpec("kill_replica", at_ms=100.0, duration_ms=200.0, target=1),)
        injector = ChaosInjector(faults)
        scheduler = _StubScheduler()
        injector.bind(scheduler, [])
        injector.tick(0.0)
        assert scheduler.calls == []
        injector.tick(100.0)
        assert scheduler.calls == [("kill", 1, 100.0)]
        injector.tick(150.0)  # inside the outage: nothing new
        assert len(scheduler.calls) == 1
        injector.tick(300.0)
        assert scheduler.calls[-1] == ("revive", 1, 300.0)
        injector.tick(400.0)  # one-shot: no re-application
        assert len(scheduler.calls) == 2
        assert [e["event"] for e in injector.log] == [
            "replica_killed",
            "replica_revived",
        ]
        assert injector.log[0]["orphaned"] == 3

    def test_straggler_scale_set_and_restored(self):
        faults = (
            FaultSpec("straggler", at_ms=50.0, duration_ms=100.0, target=0, factor=4.0),
        )
        injector = ChaosInjector(faults)
        scheduler = _StubScheduler()
        injector.bind(scheduler, [])
        injector.tick(60.0)
        injector.tick(160.0)
        assert scheduler.calls == [("scale", 0, 4.0), ("scale", 0, 1.0)]

    def test_permanent_kill_never_revives(self):
        faults = (FaultSpec("kill_replica", at_ms=10.0, target=0),)  # no duration
        injector = ChaosInjector(faults)
        scheduler = _StubScheduler()
        injector.bind(scheduler, [])
        injector.tick(10.0)
        injector.tick(10_000.0)
        assert [c[0] for c in scheduler.calls] == ["kill"]

    def test_stall_prescheduled_on_every_channel(self):
        from repro.network.channel import make_channel

        class Session:
            def __init__(self):
                self.channel = make_channel("wifi_5ghz")

        faults = (FaultSpec("stall_channel", at_ms=100.0, duration_ms=50.0, target=-1),)
        injector = ChaosInjector(faults)
        sessions = [Session(), Session()]
        injector.bind(_StubScheduler(), sessions)
        for session in sessions:
            assert session.channel._stalls == [(100.0, 150.0)]
        # Tick records the window markers without touching the scheduler.
        injector.tick(100.0)
        injector.tick(200.0)
        assert [e["event"] for e in injector.log] == [
            "channel_stalled",
            "channel_restored",
        ]

    def test_targeted_stall_hits_one_session(self):
        from repro.network.channel import make_channel

        class Session:
            def __init__(self):
                self.channel = make_channel("wifi_5ghz")

        faults = (FaultSpec("stall_channel", at_ms=10.0, duration_ms=5.0, target=1),)
        injector = ChaosInjector(faults)
        sessions = [Session(), Session()]
        injector.bind(_StubScheduler(), sessions)
        assert sessions[0].channel._stalls == []
        assert sessions[1].channel._stalls == [(10.0, 15.0)]


class TestFleetFaultPlumbing:
    def test_server_fault_requires_scheduler(self):
        spec = FleetSpec(
            num_clients=1, num_frames=2, scheduler=False, faults="replica-outage"
        )
        with pytest.raises(ValueError, match="scheduler=True"):
            run_fleet(spec)

    def test_fault_target_out_of_range(self, monkeypatch):
        import repro.eval.experiments as exp

        bad = (FaultSpec("kill_replica", at_ms=10.0, duration_ms=5.0, target=3),)
        monkeypatch.setattr(exp, "make_faults", lambda name: bad)
        with pytest.raises(ValueError, match="out of range"):
            run_fleet(FleetSpec(num_clients=1, num_frames=2, num_servers=1))

    def test_replica_outage_end_to_end(self):
        """Kill the only replica mid-run: submissions are rejected with
        reject-no-replica, sessions degrade, and after revive the fleet
        recovers (scheduler sees live replicas again)."""
        spec = FleetSpec(
            num_clients=2,
            num_frames=50,
            resolution=(96, 72),
            warmup_frames=4,
            num_servers=1,
            faults="replica-outage",
            trace=True,
        )
        outcome = run_fleet(spec)
        stats = outcome.scheduler.stats()
        assert stats["replica_kills"] == 1
        assert stats["replica_revives"] == 1
        assert stats["per_server"][0]["alive"] is True  # revived by the end
        events = [e["event"] for e in outcome.chaos.log]
        assert events == ["replica_killed", "replica_revived"]
        # The outage window rejected at least one offload for lack of a
        # live replica.
        assert stats["rejected_no_replica"] >= 1

    def test_straggler_inflates_then_restores_service(self):
        spec = FleetSpec(
            num_clients=2,
            num_frames=50,
            resolution=(96, 72),
            warmup_frames=4,
            num_servers=2,
            faults="straggler",
            trace=True,
        )
        outcome = run_fleet(spec)
        # Restored by the end of the program.
        for replica in outcome.scheduler.pool.replicas:
            assert replica.server.latency_scale == 1.0
        events = [e["event"] for e in outcome.chaos.log]
        assert events == ["straggler_on", "straggler_off"]


# One distinct fault per scenario: the pairs rotate through the fault
# programs so the determinism property exercises all of them without
# running the full 20-cell matrix twice.
_DETERMINISM_PAIRS = [
    (scenario, sorted(FAULTS)[i % len(FAULTS)])
    for i, scenario in enumerate(sorted(SCENARIOS))
]


class TestByteDeterminism:
    @pytest.mark.parametrize(
        "scenario_name,fault_name",
        _DETERMINISM_PAIRS,
        ids=[f"{s}+{f}" for s, f in _DETERMINISM_PAIRS],
    )
    def test_same_cell_twice_is_byte_identical(self, scenario_name, fault_name):
        cell = ChaosBenchScenario(
            f"{scenario_name}+{fault_name}",
            system="baseline+mamt",
            frames=24,
            resolution=(96, 72),
            warmup_frames=4,
            num_clients=2,
            num_servers=2,
            chaos_scenario=scenario_name,
            fault=fault_name,
        )
        first = {"scenarios": {cell.name: run_scenario(cell)}}
        second = {"scenarios": {cell.name: run_scenario(cell)}}
        assert dump_bench(strip_timing(first)) == dump_bench(strip_timing(second))

    def test_chaos_payload_section_present_and_json_clean(self):
        import json

        cell = ChaosBenchScenario(
            "wifi-to-lte+uplink-stall",
            system="baseline+mamt",
            frames=24,
            resolution=(96, 72),
            warmup_frames=4,
            num_clients=2,
            num_servers=1,
            chaos_scenario="wifi-to-lte",
            fault="uplink-stall",
        )
        payload = run_scenario(cell)
        chaos = payload["chaos"]
        assert chaos["scenario"] == "wifi-to-lte"
        assert chaos["fault"] == "uplink-stall"
        assert 0.0 < chaos["slo_target"] <= 1.0
        assert isinstance(chaos["certified"], bool)
        json.dumps(chaos)  # must be JSON-clean
        assert payload["spec"]["chaos_scenario"] == "wifi-to-lte"
        assert payload["spec"]["network"] == "wifi_5ghz"  # registry's choice
