"""Edge-case tests for the VO tracker: relocalization, degenerate input,
empty segmentations, long-run map hygiene."""

import numpy as np
import pytest

from repro.image import InstanceMask
from repro.synthetic import make_dataset
from repro.vo import Observation, OracleFrontend, VisualOdometry, VOConfig, VOState


def drive(vo, video, frontend, frames, apply_masks_every=None):
    results = []
    for index in frames:
        frame, truth = video.frame_at(index)
        observation = frontend.observe(frame, truth)
        result = vo.process_frame(frame.index, frame.timestamp, observation)
        results.append(result)
        if (
            apply_masks_every
            and result.is_tracking
            and index % apply_masks_every == 0
        ):
            vo.promote_keyframe(index)
            vo.apply_segmentation(index, truth.masks)
    return results


class TestRelocalization:
    def test_recovers_after_feature_blackout(self):
        video = make_dataset("xiph_like", num_frames=90)
        frontend = OracleFrontend(video.world, video.camera, seed=1)
        vo = VisualOdometry(video.camera)
        empty = Observation(np.zeros((0, 2)), np.zeros((0, 32), np.uint8))
        states = []
        for frame, truth in video:
            if 50 <= frame.index < 56:
                observation = empty  # camera covered for 6 frames
            else:
                observation = frontend.observe(frame, truth)
            result = vo.process_frame(frame.index, frame.timestamp, observation)
            states.append(result.state)
        # Lost during the blackout...
        assert VOState.LOST in states[50:56]
        # ... but tracking again within a second afterwards.
        assert VOState.TRACKING in states[56:86]

    def test_velocity_zeroed_when_lost(self):
        video = make_dataset("xiph_like", num_frames=60)
        frontend = OracleFrontend(video.world, video.camera, seed=1)
        vo = VisualOdometry(video.camera)
        empty = Observation(np.zeros((0, 2)), np.zeros((0, 32), np.uint8))
        for frame, truth in video:
            observation = frontend.observe(frame, truth)
            result = vo.process_frame(frame.index, frame.timestamp, observation)
            if result.is_tracking:
                break
        vo.process_frame(frame.index + 1, frame.timestamp + 0.033, empty)
        assert vo.state is VOState.LOST
        assert vo._velocity.allclose(type(vo._velocity).identity())


class TestDegenerateInput:
    def test_single_feature_never_crashes(self):
        video = make_dataset("davis_like", num_frames=3)
        vo = VisualOdometry(video.camera)
        lone = Observation(
            np.array([[100.0, 100.0]]),
            np.zeros((1, 32), np.uint8),
        )
        for index in range(3):
            result = vo.process_frame(index, index / 30, lone)
            assert result.state is VOState.INITIALIZING

    def test_identical_descriptors_no_init(self):
        # All-identical descriptors defeat the ratio test; VO must simply
        # keep waiting, not initialize from garbage matches.
        video = make_dataset("davis_like", num_frames=3)
        vo = VisualOdometry(video.camera)
        rng = np.random.default_rng(0)
        for index in range(3):
            observation = Observation(
                rng.uniform(0, 200, size=(50, 2)),
                np.zeros((50, 32), np.uint8),
            )
            result = vo.process_frame(index, index / 30, observation)
        assert vo.state is VOState.INITIALIZING


class TestSegmentationEdgeCases:
    def make_tracking_vo(self):
        video = make_dataset("xiph_like", num_frames=60)
        frontend = OracleFrontend(video.world, video.camera, seed=1)
        vo = VisualOdometry(video.camera)
        last = None
        for frame, truth in video:
            observation = frontend.observe(frame, truth)
            result = vo.process_frame(frame.index, frame.timestamp, observation)
            if result.is_tracking:
                last = (frame, truth)
        assert last is not None
        return vo, last

    def test_empty_mask_list_labels_background(self):
        vo, (frame, truth) = self.make_tracking_vo()
        assert vo.promote_keyframe(frame.index)
        assert vo.apply_segmentation(frame.index, [])
        # All matched points of that frame became background.
        record = vo.map.keyframe(frame.index)
        for point_id in record.point_ids:
            if point_id >= 0 and point_id in vo.map:
                assert not vo.map.get(int(point_id)).is_unlabeled

    def test_reapplying_masks_is_stable(self):
        vo, (frame, truth) = self.make_tracking_vo()
        vo.promote_keyframe(frame.index)
        assert vo.apply_segmentation(frame.index, truth.masks)
        labels_first = {p.point_id: p.label for p in vo.map.points}
        assert vo.apply_segmentation(frame.index, truth.masks)
        labels_second = {p.point_id: p.label for p in vo.map.points}
        assert labels_first == labels_second

    def test_label_flip_background_to_object_and_back(self):
        vo, (frame, truth) = self.make_tracking_vo()
        vo.promote_keyframe(frame.index)
        vo.apply_segmentation(frame.index, truth.masks)
        object_points = [p for p in vo.map.points if p.is_object]
        assert object_points
        sample = object_points[0]
        position_in_object_frame = sample.position.copy()
        # Demote everything to background and check re-anchoring back to
        # world coordinates happened.
        vo.apply_segmentation(frame.index, [])
        assert sample.is_background
        track = vo.objects[[k for k in vo.objects][0]]
        # Static scene: object frame == world frame, position unchanged.
        assert np.allclose(sample.position, position_in_object_frame, atol=1e-6)


class TestLongRunHygiene:
    def test_map_capped_over_long_run(self):
        video = make_dataset("xiph_like", num_frames=200)
        frontend = OracleFrontend(video.world, video.camera, seed=1)
        config = VOConfig(max_map_points=250, cull_after_frames=50)
        vo = VisualOdometry(video.camera, config)
        for frame, truth in video:
            observation = frontend.observe(frame, truth)
            vo.process_frame(frame.index, frame.timestamp, observation)
        assert len(vo.map) <= 250

    def test_memory_estimate_bounded(self):
        video = make_dataset("xiph_like", num_frames=150)
        frontend = OracleFrontend(video.world, video.camera, seed=1)
        vo = VisualOdometry(video.camera)
        peak = 0
        for frame, truth in video:
            observation = frontend.observe(frame, truth)
            result = vo.process_frame(frame.index, frame.timestamp, observation)
            if result.is_tracking and frame.index % 15 == 0:
                vo.promote_keyframe(frame.index)
                vo.apply_segmentation(frame.index, truth.masks)
            peak = max(peak, vo.map.memory_bytes())
        assert peak < 64 * 1024 * 1024  # far below the paper's 1 GB budget
