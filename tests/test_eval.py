"""Tests for the eval harness helpers (reporting, specs, field study glue)."""

import json

import numpy as np
import pytest

from repro.eval import (
    ABLATION_NAMES,
    SYSTEM_NAMES,
    ExperimentSpec,
    Table,
    format_cdf,
    run_experiment,
    save_json,
)
from repro.eval.field_study import FieldStudyResult, _attention_weight, _fleet


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1.0)
        table.add_row("b", 12.345)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in text and "12.345" in text
        # All data lines share the same width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_empty_table_renders(self):
        table = Table("empty", ["a", "b"])
        assert "empty" in table.render()

    def test_as_dict_roundtrip(self):
        table = Table("t", ["x"], rows=[[1], [2]])
        payload = table.as_dict()
        assert payload["rows"] == [[1], [2]]


class TestFormatCdf:
    def test_values(self):
        ious = np.array([0.2, 0.6, 0.8, 0.9])
        cdf = format_cdf(ious, points=(0.5, 0.75, 0.95))
        assert cdf[0.5] == 0.25
        assert cdf[0.75] == 0.5
        assert cdf[0.95] == 1.0

    def test_empty(self):
        cdf = format_cdf(np.zeros(0))
        assert all(v == 0.0 for v in cdf.values())

    def test_monotone(self):
        rng = np.random.default_rng(0)
        cdf = format_cdf(rng.uniform(0, 1, 200))
        values = [cdf[k] for k in sorted(cdf)]
        assert values == sorted(values)


class TestSaveJson:
    def test_numpy_types_serializable(self, tmp_path):
        path = tmp_path / "out" / "data.json"
        save_json(
            path,
            {"a": np.float64(1.5), "b": np.int32(3), "c": np.arange(3)},
        )
        loaded = json.loads(path.read_text())
        assert loaded == {"a": 1.5, "b": 3, "c": [0, 1, 2]}


class TestSpecs:
    def test_system_lists(self):
        assert "edgeis" in SYSTEM_NAMES
        assert "baseline" in ABLATION_NAMES
        assert ABLATION_NAMES[-1] == "edgeis"

    def test_complexity_spec_runs(self):
        spec = ExperimentSpec(
            system="edge_best_effort",
            complexity="easy",
            num_frames=30,
            resolution=(160, 120),
            warmup_frames=5,
        )
        outcome = run_experiment(spec)
        assert len(outcome.result.frames) == 30

    def test_motion_grade_spec(self):
        spec = ExperimentSpec(
            system="edge_best_effort",
            dataset="xiph_like",
            motion_grade="jog",
            num_frames=20,
            resolution=(160, 120),
            warmup_frames=5,
        )
        outcome = run_experiment(spec)
        assert outcome.result.duration_ms == pytest.approx(20 / 30 * 1000, rel=0.01)


class TestFieldStudyPieces:
    def test_fleet_composition(self):
        fleet = _fleet()
        assert len(fleet) == 8
        assert sum(1 for d in fleet if d.network == "wifi_5ghz") == 5
        assert sum(1 for d in fleet if d.network == "lte") == 3

    def test_attention_weight_monotone_in_area(self):
        image_area = 320 * 240
        small = _attention_weight(200, image_area)
        large = _attention_weight(8000, image_area)
        assert 0.0 < small < large <= 1.0

    def test_result_aggregation(self):
        result = FieldStudyResult(
            per_device_iou={0: 0.9, 1: 0.8},
            per_device_false_rate={0: 0.05, 1: 0.15},
            rendered_accuracy=0.92,
            rendered_false_rate=0.02,
        )
        assert result.mean_iou == pytest.approx(0.85)
        assert result.mean_false_rate == pytest.approx(0.10)
