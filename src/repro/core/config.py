"""System-level configuration for edgeIS.

The three module switches correspond to the ablation study (Fig. 16):
MAMT (motion-aware mobile mask transfer), CIIA (contour-instructed edge
inference acceleration) and CFRS (content-based fine-grained RoI
selection).  Disabling all three degenerates to the best-effort baseline
behaviour (motion-vector tracking, full-quality frames, uninstructed
full-frame inference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..encoding.cfrs import CFRSConfig
from ..transfer.mask_transfer import TransferConfig
from ..vo.odometry import VOConfig

__all__ = ["MobileTimingModel", "SystemConfig"]


@dataclass(frozen=True)
class MobileTimingModel:
    """Per-frame client compute costs in ms (iPhone-11-class device).

    Calibrated so the average edgeIS mobile-side latency lands near the
    paper's 28 ms (Fig. 11) with a handful of tracked objects.
    """

    feature_extraction_ms: float = 9.0
    vo_tracking_ms: float = 7.5
    mask_predict_per_object_ms: float = 2.2
    cfrs_decide_ms: float = 1.0
    encode_ms: float = 5.0  # CFRS tile encoding of an offloaded frame
    encode_full_ms: float = 14.0  # uniform full-quality (CFRS disabled)
    integrate_result_ms: float = 6.0
    mv_tracker_base_ms: float = 7.0  # MAMT-disabled fallback tracker
    mv_tracker_per_object_ms: float = 1.8


@dataclass
class SystemConfig:
    """Top-level configuration of an :class:`~repro.core.system.EdgeISSystem`."""

    use_mamt: bool = True
    use_ciia: bool = True
    use_cfrs: bool = True
    vo: VOConfig = field(default_factory=VOConfig)
    transfer: TransferConfig = field(default_factory=TransferConfig)
    cfrs: CFRSConfig = field(default_factory=CFRSConfig)
    timing: MobileTimingModel = field(default_factory=MobileTimingModel)
    # Without CFRS the client has no offload *policy*: it ships frames
    # best-effort (minimum spacing below, queue depth from
    # ``no_cfrs_outstanding``), which is exactly the paper's ablation
    # baseline behaviour and the reason CFRS shows an accuracy gain.
    fixed_offload_interval: int = 1
    no_cfrs_outstanding: int = 3
    max_outstanding_offloads: int = 1
    seed: int = 0
    # Observability: when True (and no tracer is injected explicitly) the
    # client creates its own repro.obs Tracer, reachable as
    # ``EdgeISSystem.tracer``.  Off by default — the disabled path uses
    # the shared no-op tracer and records nothing.
    trace_enabled: bool = False

    @property
    def ablation_name(self) -> str:
        if self.use_mamt and self.use_ciia and self.use_cfrs:
            return "edgeis"
        if not (self.use_mamt or self.use_ciia or self.use_cfrs):
            return "baseline"
        parts = []
        if self.use_mamt:
            parts.append("mamt")
        if self.use_ciia:
            parts.append("ciia")
        if self.use_cfrs:
            parts.append("cfrs")
        return "baseline+" + "+".join(parts)
