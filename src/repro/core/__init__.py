"""The edgeIS system: configuration and the full mobile client."""

from .config import MobileTimingModel, SystemConfig
from .system import EdgeISSystem

__all__ = ["MobileTimingModel", "SystemConfig", "EdgeISSystem"]
