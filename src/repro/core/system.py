"""EdgeISSystem — the complete mobile side of edgeIS.

Wires together the paper's three modules behind the
:class:`~repro.runtime.interface.ClientSystem` protocol:

* **MAMT** — visual odometry + contour-reprojection mask transfer
  produces the display masks every frame (Section III);
* **CFRS** — decides which frames to offload and tile-encodes them
  (Section V);
* **CIIA** — attaches transferred-mask instructions to every offload so
  the edge can place anchors dynamically and prune RoIs (Section IV).

Each module can be disabled independently for the Fig. 16 ablation; with
all three off the client behaves like the best-effort baseline.
"""

from __future__ import annotations

import numpy as np

from ..baselines.trackers import MotionVectorTracker
from ..encoding.cfrs import ContentRoiSelector
from ..encoding.tiles import TileQuality
from ..image.frame import VideoFrame
from ..image.masks import InstanceMask
from ..model.acceleration import instructions_from_masks
from ..obs.trace import NULL_TRACER, Tracer
from ..runtime.interface import ClientFrameOutput, OffloadRequest
from ..synthetic.world import GroundTruth, World
from ..transfer.mask_transfer import MaskTransferEngine
from ..vo.frontend import FastBriefFrontend, OracleFrontend
from ..vo.odometry import VisualOdometry
from .config import SystemConfig

__all__ = ["EdgeISSystem"]


class EdgeISSystem:
    """The edgeIS mobile client (implements ``ClientSystem``)."""

    def __init__(
        self,
        camera,
        frame_shape: tuple[int, int],
        config: SystemConfig | None = None,
        world: World | None = None,
        frontend: str = "oracle",
        tracer: Tracer | None = None,
    ):
        """Create the client.

        Parameters
        ----------
        camera:
            The device's :class:`~repro.geometry.camera.PinholeCamera`.
        frame_shape:
            (height, width) of the video frames.
        world:
            The synthetic world — required by the ``oracle`` frontend
            (deterministic feature sites; see ``repro.vo.frontend``).
        frontend:
            ``"oracle"`` (default, used by the experiment grids) or
            ``"fast_brief"`` (the real FAST+BRIEF pipeline).
        tracer:
            Observability tracer shared with the pipeline.  Defaults to
            the no-op tracer unless ``config.trace_enabled`` asks the
            client to create its own.
        """
        self.config = config or SystemConfig()
        if tracer is not None:
            self.tracer = tracer
        elif self.config.trace_enabled:
            self.tracer = Tracer()
        else:
            self.tracer = NULL_TRACER
        self.name = self.config.ablation_name
        self.camera = camera
        rng = np.random.default_rng(self.config.seed)
        self.vo = VisualOdometry(camera, self.config.vo, rng=rng, tracer=self.tracer)
        self.transfer = MaskTransferEngine(camera, self.config.transfer)
        self.selector = ContentRoiSelector(
            frame_shape, self.config.cfrs, tracer=self.tracer
        )
        if frontend == "oracle":
            if world is None:
                raise ValueError("oracle frontend requires the synthetic world")
            self.frontend = OracleFrontend(world, camera, seed=self.config.seed)
        elif frontend == "fast_brief":
            self.frontend = FastBriefFrontend()
        else:
            raise ValueError(f"unknown frontend {frontend!r}")
        # MAMT-off fallback: cached-result motion-vector tracking.
        self._mv_tracker = MotionVectorTracker()
        self._outstanding = 0
        self._last_gray: np.ndarray | None = None
        self._last_masks: list[InstanceMask] = []
        self._offloads_sent = 0
        self._last_offload_frame = -(10**9)
        # Fleet-scheduler degradation hooks (see repro.serve): while
        # offloading is disabled the client survives on pure MAMT.
        self._offload_enabled = True
        self._force_keyframe = False

    # ------------------------------------------------------------------
    # ClientSystem protocol
    # ------------------------------------------------------------------
    def process_frame(
        self, frame: VideoFrame, truth: GroundTruth, now_ms: float
    ) -> ClientFrameOutput:
        timing = self.config.timing
        tracer = self.tracer
        tracer.set_now(now_ms)
        # ``cursor`` walks the simulated clock through the frame's stages
        # so their spans tile [now_ms, now_ms + compute_ms) back to back.
        cursor = now_ms

        with tracer.span(
            "mamt.features",
            frame=frame.index,
            start_ms=cursor,
            dur_ms=timing.feature_extraction_ms,
        ):
            observation = self.frontend.observe(frame, truth)
        compute = timing.feature_extraction_ms
        cursor += timing.feature_extraction_ms

        with tracer.span(
            "mamt.vo_track",
            frame=frame.index,
            start_ms=cursor,
            dur_ms=timing.vo_tracking_ms,
        ) as vo_span:
            result = self.vo.process_frame(frame.index, frame.timestamp, observation)
            vo_span.annotate(
                state=result.state.value, num_matches=result.num_matches
            )
        compute += timing.vo_tracking_ms
        cursor += timing.vo_tracking_ms

        # Display masks.
        if self.config.use_mamt:
            with tracer.span(
                "mamt.predict", frame=frame.index, start_ms=cursor
            ) as span:
                predictions = (
                    self.transfer.predict(self.vo) if result.is_tracking else []
                )
                masks = [p.mask for p in predictions]
                stage_ms = timing.mask_predict_per_object_ms * len(masks)
                span.dur_ms = stage_ms
                span.annotate(num_masks=len(masks))
        else:
            with tracer.span(
                "tracker.mv_update", frame=frame.index, start_ms=cursor
            ) as span:
                masks = self._mv_tracker.update(frame.gray)
                stage_ms = (
                    timing.mv_tracker_base_ms
                    + timing.mv_tracker_per_object_ms * len(masks)
                )
                span.dur_ms = stage_ms
                span.annotate(num_masks=len(masks))
        compute += stage_ms
        cursor += stage_ms
        self._last_masks = masks
        self._last_gray = frame.gray

        # Offload decision.
        offload = None
        outstanding_budget = (
            self.config.max_outstanding_offloads
            if self.config.use_cfrs
            else self.config.no_cfrs_outstanding
        )
        if not self._offload_enabled:
            if tracer.enabled:
                tracer.event(
                    "offload.decision",
                    lane="client",
                    frame=frame.index,
                    should_send=False,
                    reason="degraded",
                )
        elif self._outstanding < outstanding_budget:
            offload, encode_ms = self._maybe_offload(frame, result, masks)
            if offload is not None:
                stage_ms = timing.cfrs_decide_ms + encode_ms
                tracer.add_span(
                    "cfrs.offload",
                    lane="client",
                    frame=frame.index,
                    start_ms=cursor,
                    dur_ms=stage_ms,
                    reason=offload.reason,
                    payload_bytes=int(offload.payload_bytes),
                )
                compute += stage_ms
                cursor += stage_ms
                self._outstanding += 1
                self._offloads_sent += 1
                # Register the keyframe *now*, while its observation is in
                # the recent buffer — the result may come back much later.
                if result.is_tracking:
                    self.vo.promote_keyframe(frame.index)
        elif tracer.enabled:
            tracer.event(
                "offload.decision",
                lane="client",
                frame=frame.index,
                should_send=False,
                reason="outstanding-limit",
                outstanding=self._outstanding,
            )
        return ClientFrameOutput(masks=masks, compute_ms=compute, offload=offload)

    def receive_result(
        self, frame_index: int, masks: list[InstanceMask], now_ms: float
    ) -> float:
        self._outstanding = max(0, self._outstanding - 1)
        if self.tracer.enabled:
            self.tracer.event(
                "mamt.apply_result",
                lane="client",
                ts_ms=now_ms,
                frame=frame_index,
                num_masks=len(masks),
                outstanding=self._outstanding,
            )
        self.vo.apply_segmentation(frame_index, masks)
        if not self.config.use_mamt and self._last_gray is not None:
            self._mv_tracker.reset(masks, self._last_gray)
        return self.config.timing.integrate_result_ms

    def memory_bytes(self) -> int:
        return 24 * 1024 * 1024 + self.vo.map.memory_bytes()

    # ------------------------------------------------------------------
    # Fleet-scheduler capabilities (optional ClientSystem extensions)
    # ------------------------------------------------------------------
    def set_offload_enabled(self, enabled: bool) -> None:
        """Degrade/recover hook: while disabled the client skips the
        offload decision entirely and renders through MAMT alone."""
        self._offload_enabled = enabled
        if not enabled:
            self._force_keyframe = False

    def request_keyframe(self) -> None:
        """One-shot: the next eligible frame is offloaded as a
        full-quality keyframe so the edge re-anchors the instance map."""
        self._force_keyframe = True

    def offload_rejected(self, frame_index: int, now_ms: float) -> None:
        """The scheduler rejected or shed this offload: free the
        in-flight slot without touching trackers or the VO map."""
        self._outstanding = max(0, self._outstanding - 1)
        if self.tracer.enabled:
            self.tracer.event(
                "offload.rejected",
                lane="client",
                ts_ms=now_ms,
                frame=frame_index,
                outstanding=self._outstanding,
            )

    # ------------------------------------------------------------------
    @property
    def offloads_sent(self) -> int:
        return self._offloads_sent

    def _maybe_offload(self, frame, result, masks):
        timing = self.config.timing
        tracer = self.tracer
        if self._force_keyframe:
            # Post-recovery keyframe: bypass CFRS and intervals, ship the
            # whole frame at high quality, and ask for a full edge pass.
            self._force_keyframe = False
            self._last_offload_frame = frame.index
            encoded = self.selector.encode_uniform(
                frame.index, frame.gray, TileQuality.HIGH
            )
            return (
                OffloadRequest(
                    frame_index=frame.index,
                    payload_bytes=encoded.total_bytes,
                    encode_ms=timing.encode_full_ms,
                    instructions=None,
                    use_dynamic_anchors=False,
                    use_roi_pruning=False,
                    encoded=encoded,
                    reason="recover-keyframe",
                ),
                timing.encode_full_ms,
            )
        unmatched = self._unmatched_pixels(frame, result)
        if self.config.use_cfrs:
            motion = {
                instance_id: track.accumulated_motion
                / max(self.vo.scene_depth(), 1e-6)
                for instance_id, track in self.vo.objects.items()
            }
            decision = self.selector.decide(
                frame.index,
                result.unlabeled_match_fraction,
                motion,
                unmatched,
                result.is_tracking,
            )
            if tracer.enabled:
                tracer.event(
                    "offload.decision",
                    lane="client",
                    frame=frame.index,
                    should_send=decision.should_send,
                    reason=decision.reason,
                    unlabeled_fraction=round(result.unlabeled_match_fraction, 6),
                    num_new_area_boxes=len(decision.new_area_boxes),
                    tracking=result.is_tracking,
                )
            if not decision.should_send:
                return None, 0.0
            new_boxes = decision.new_area_boxes
            encoded = self.selector.encode(frame.index, frame.gray, masks, new_boxes)
            encode_ms = timing.encode_ms
            reason = decision.reason
        else:
            if frame.index - self._last_offload_frame < self.config.fixed_offload_interval:
                if tracer.enabled:
                    tracer.event(
                        "offload.decision",
                        lane="client",
                        frame=frame.index,
                        should_send=False,
                        reason="interval-wait",
                    )
                return None, 0.0
            self._last_offload_frame = frame.index
            encoded = self.selector.encode_uniform(
                frame.index, frame.gray, TileQuality.HIGH
            )
            # New-content annotation is VO capability, not CFRS's: CIIA can
            # use it even when the smart transmission policy is disabled.
            new_boxes = self.selector.new_area_boxes(unmatched)
            encode_ms = timing.encode_full_ms
            reason = "best-effort"
            if tracer.enabled:
                tracer.event(
                    "offload.decision",
                    lane="client",
                    frame=frame.index,
                    should_send=True,
                    reason=reason,
                )

        if self.config.use_ciia and masks:
            instructions = instructions_from_masks(masks, new_boxes)
            # Without new-area coverage the edge would never discover new
            # objects: fall back to a full-frame pass while a lot of the
            # view is still unlabeled.
            if not new_boxes and result.unlabeled_match_fraction > 0.1:
                instructions = None
        else:
            instructions = None
        return (
            OffloadRequest(
                frame_index=frame.index,
                payload_bytes=encoded.total_bytes,
                encode_ms=encode_ms,
                instructions=instructions,
                use_dynamic_anchors=self.config.use_ciia,
                use_roi_pruning=self.config.use_ciia,
                encoded=encoded,
                reason=reason,
            ),
            encode_ms,
        )

    def _unmatched_pixels(self, frame, result) -> np.ndarray:
        if len(result.matched_point_ids) == 0:
            return np.zeros((0, 2))
        unmatched_rows = []
        for feature_index, point_id in enumerate(result.matched_point_ids):
            if point_id < 0:
                unmatched_rows.append(feature_index)
                continue
            if point_id in self.vo.map and self.vo.map.get(int(point_id)).is_unlabeled:
                unmatched_rows.append(feature_index)
        if not unmatched_rows:
            return np.zeros((0, 2))
        # Recover pixels from the VO's recent-frame buffer.
        recent = self.vo._find_recent(frame.index)
        if recent is None:
            return np.zeros((0, 2))
        return recent.observation.pixels[unmatched_rows]
