"""Trajectory error metrics for the VO substrate.

Standard SLAM-benchmark metrics (TUM-RGBD style), used to qualify the
visual odometry independently of the segmentation task:

* **ATE** — absolute trajectory error after aligning the estimated
  trajectory to ground truth with the best similarity transform
  (Umeyama alignment, which also resolves the monocular scale).
* **RPE** — relative pose error over a fixed frame delta, reported for
  translation (in ground-truth units) and rotation (degrees).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.se3 import SE3

__all__ = ["umeyama_alignment", "TrajectoryErrors", "evaluate_trajectory"]


def umeyama_alignment(
    source: np.ndarray, target: np.ndarray, with_scale: bool = True
) -> tuple[float, np.ndarray, np.ndarray]:
    """Least-squares similarity transform mapping source -> target.

    Returns ``(scale, rotation, translation)`` minimizing
    ``|| target - (scale * R @ source + t) ||^2`` (Umeyama 1991).
    """
    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    if source.shape != target.shape or source.ndim != 2 or source.shape[1] != 3:
        raise ValueError("umeyama_alignment expects matching (N, 3) arrays")
    if len(source) < 3:
        raise ValueError("umeyama_alignment needs >= 3 points")

    mean_source = source.mean(axis=0)
    mean_target = target.mean(axis=0)
    centered_source = source - mean_source
    centered_target = target - mean_target

    covariance = centered_target.T @ centered_source / len(source)
    u, singular, vt = np.linalg.svd(covariance)
    sign_fix = np.eye(3)
    if np.linalg.det(u) * np.linalg.det(vt) < 0:
        sign_fix[2, 2] = -1.0
    rotation = u @ sign_fix @ vt

    if with_scale:
        variance_source = np.mean(np.sum(centered_source**2, axis=1))
        scale = float(np.trace(np.diag(singular) @ sign_fix) / max(variance_source, 1e-12))
    else:
        scale = 1.0
    translation = mean_target - scale * rotation @ mean_source
    return scale, rotation, translation


@dataclass
class TrajectoryErrors:
    """Summary of ATE/RPE for one run."""

    ate_rmse: float
    ate_median: float
    rpe_translation_median: float
    rpe_rotation_deg_median: float
    scale: float
    num_poses: int


def evaluate_trajectory(
    estimated_poses_cw: list[SE3 | None],
    true_poses_cw: list[SE3],
    rpe_delta: int = 1,
) -> TrajectoryErrors:
    """Compare an estimated camera trajectory against ground truth.

    ``estimated_poses_cw`` may contain None for untracked frames; those
    are skipped in both metrics.
    """
    if len(estimated_poses_cw) != len(true_poses_cw):
        raise ValueError("trajectory lengths differ")
    valid = [
        i for i, pose in enumerate(estimated_poses_cw) if pose is not None
    ]
    if len(valid) < 3:
        raise ValueError("need >= 3 tracked poses to evaluate")

    estimated_centers = np.array([estimated_poses_cw[i].center for i in valid])
    true_centers = np.array([true_poses_cw[i].center for i in valid])
    scale, rotation, translation = umeyama_alignment(estimated_centers, true_centers)
    aligned = (scale * (rotation @ estimated_centers.T)).T + translation
    ate = np.linalg.norm(aligned - true_centers, axis=1)

    rpe_translation = []
    rpe_rotation = []
    valid_set = set(valid)
    for i in valid:
        j = i + rpe_delta
        if j not in valid_set:
            continue
        est_rel = estimated_poses_cw[j] @ estimated_poses_cw[i].inverse()
        true_rel = true_poses_cw[j] @ true_poses_cw[i].inverse()
        rpe_rotation.append(np.degrees(est_rel.rotation_angle_to(true_rel)))
        rpe_translation.append(
            float(
                np.linalg.norm(
                    scale * est_rel.translation - true_rel.translation
                )
            )
        )

    return TrajectoryErrors(
        ate_rmse=float(np.sqrt(np.mean(ate**2))),
        ate_median=float(np.median(ate)),
        rpe_translation_median=(
            float(np.median(rpe_translation)) if rpe_translation else float("nan")
        ),
        rpe_rotation_deg_median=(
            float(np.median(rpe_rotation)) if rpe_rotation else float("nan")
        ),
        scale=scale,
        num_poses=len(valid),
    )
