"""Experiment harness: build clients, run (system x dataset x network)
grids and aggregate the metrics every figure reproduces.

Every benchmark under ``benchmarks/`` is a thin wrapper over this module,
so the same machinery is importable for ad-hoc studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.systems import (
    BestEffortEdgeClient,
    EAARClient,
    EdgeDuetClient,
    MobileOnlyClient,
)
from ..core.config import SystemConfig
from ..core.system import EdgeISSystem
from ..model.costs import DEVICES, DeviceProfile
from ..model.maskrcnn import SimulatedSegmentationModel
from ..network.channel import make_channel
from ..obs.trace import NULL_TRACER, Tracer
from ..runtime.pipeline import EdgeServer, Pipeline, RunResult
from ..runtime.resources import DEVICE_POWER, ResourceMonitor
from ..synthetic.datasets import make_complexity_scene, make_dataset
from ..synthetic.world import SyntheticVideo

__all__ = [
    "SYSTEM_NAMES",
    "ABLATION_NAMES",
    "ExperimentSpec",
    "build_client",
    "run_experiment",
    "run_grid",
]

SYSTEM_NAMES = (
    "edgeis",
    "eaar",
    "edgeduet",
    "edge_best_effort",
    "mobile_only",
)

# Fig. 16 variants: the baseline plus each module individually.
ABLATION_NAMES = (
    "baseline",
    "baseline+cfrs",
    "baseline+ciia",
    "baseline+mamt",
    "edgeis",
)


def build_client(
    name: str,
    video: SyntheticVideo,
    seed: int = 0,
    tracer: Tracer | None = None,
):
    """Instantiate a client system by name for the given video."""
    shape = (video.camera.height, video.camera.width)
    if name == "edgeis" or name.startswith("baseline"):
        config = SystemConfig(seed=seed)
        if name != "edgeis":
            config.use_mamt = "mamt" in name
            config.use_ciia = "ciia" in name
            config.use_cfrs = "cfrs" in name
        return EdgeISSystem(
            video.camera, shape, config=config, world=video.world, tracer=tracer
        )
    if name == "eaar":
        return EAARClient(shape, np.random.default_rng(seed + 100))
    if name == "edgeduet":
        return EdgeDuetClient(shape, np.random.default_rng(seed + 200))
    if name == "edge_best_effort":
        return BestEffortEdgeClient(shape, np.random.default_rng(seed + 300))
    if name == "mobile_only":
        return MobileOnlyClient(np.random.default_rng(seed + 400))
    raise ValueError(f"unknown system {name!r}")


@dataclass
class ExperimentSpec:
    """One cell of an experiment grid."""

    system: str
    dataset: str = "xiph_like"
    network: str = "wifi_5ghz"
    num_frames: int = 180
    resolution: tuple[int, int] = (320, 240)
    motion_grade: str = "walk"
    complexity: str | None = None  # use make_complexity_scene instead
    dynamic: bool | None = None
    server_device: str = "jetson_tx2"
    # Synthetic slowdown of the edge device (the bench degrade knob):
    # the server's speed is divided by this, so 2.0 doubles inference
    # latency.  Used to self-test the perf regression gate.
    server_latency_scale: float = 1.0
    warmup_frames: int = 45
    seed: int = 0
    monitor_resources: bool = False
    power_device: str = "iphone_11"
    # Observability: record a frame-level trace of the run (off by
    # default; the no-op tracer keeps the disabled path overhead-free).
    trace: bool = False
    trace_wall_clock: bool = False


@dataclass
class ExperimentOutcome:
    spec: ExperimentSpec
    result: RunResult
    resources: ResourceMonitor | None = None
    client: object | None = None
    tracer: Tracer | None = None


def _make_video(spec: ExperimentSpec) -> SyntheticVideo:
    if spec.complexity is not None:
        return make_complexity_scene(
            spec.complexity,
            num_frames=spec.num_frames,
            resolution=spec.resolution,
            seed=spec.seed,
        )
    return make_dataset(
        spec.dataset,
        num_frames=spec.num_frames,
        resolution=spec.resolution,
        motion_grade=spec.motion_grade,
        dynamic=spec.dynamic,
        seed=spec.seed,
    )


def run_experiment(spec: ExperimentSpec) -> ExperimentOutcome:
    """Run one pipeline configuration end to end."""
    tracer = Tracer(wall_clock=spec.trace_wall_clock) if spec.trace else NULL_TRACER
    video = _make_video(spec)
    client = build_client(spec.system, video, seed=spec.seed, tracer=tracer)
    channel = make_channel(spec.network, np.random.default_rng(spec.seed + 17))
    device = DEVICES[spec.server_device]
    if spec.server_latency_scale != 1.0:
        device = DeviceProfile(
            f"{device.name}-x{spec.server_latency_scale:g}",
            device.speed / spec.server_latency_scale,
        )
    server = EdgeServer(
        SimulatedSegmentationModel(
            "mask_rcnn_r101",
            device,
            np.random.default_rng(spec.seed + 29),
            metrics=tracer.metrics,
        ),
        tracer=tracer,
    )
    pipeline = Pipeline(
        video,
        client,
        channel,
        server,
        warmup_frames=spec.warmup_frames,
        tracer=tracer,
    )

    monitor = None
    if spec.monitor_resources:
        monitor = ResourceMonitor(DEVICE_POWER[spec.power_device], fps=video.fps)
        result = _run_with_monitor(pipeline, monitor, client, channel)
    else:
        result = pipeline.run()
    return ExperimentOutcome(
        spec=spec,
        result=result,
        resources=monitor,
        client=client,
        tracer=tracer if spec.trace else None,
    )


def _run_with_monitor(pipeline: Pipeline, monitor: ResourceMonitor, client, channel):
    """Run a pipeline while sampling per-frame resource usage."""
    original_process = client.process_frame
    bytes_before = {"up": 0}

    def wrapped(frame, truth, now_ms):
        output = original_process(frame, truth, now_ms)
        sent = channel.bytes_up - bytes_before["up"]
        bytes_before["up"] = channel.bytes_up
        monitor.sample(frame.index, output.compute_ms, client.memory_bytes(), sent)
        return output

    client.process_frame = wrapped
    try:
        return pipeline.run()
    finally:
        client.process_frame = original_process


def run_grid(specs: list[ExperimentSpec]) -> list[ExperimentOutcome]:
    """Run a list of experiment cells sequentially."""
    return [run_experiment(spec) for spec in specs]
