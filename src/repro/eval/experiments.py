"""Experiment harness: build clients, run (system x dataset x network)
grids and aggregate the metrics every figure reproduces.

Every benchmark under ``benchmarks/`` is a thin wrapper over this module,
so the same machinery is importable for ad-hoc studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.systems import (
    BestEffortEdgeClient,
    EAARClient,
    EdgeDuetClient,
    MobileOnlyClient,
)
from ..chaos import ChaosInjector, apply_network, build_video, make_faults, make_scenario
from ..core.config import SystemConfig
from ..core.system import EdgeISSystem
from ..model.costs import DEVICES, DeviceProfile
from ..model.maskrcnn import SimulatedSegmentationModel
from ..network.channel import make_channel, spawn_channel_rngs
from ..obs.timeline import TimelineSampler
from ..obs.trace import NULL_TRACER, Tracer
from ..runtime.multi import ClientSession, MultiClientPipeline
from ..runtime.pipeline import EdgeServer, Pipeline, RunResult
from ..runtime.resources import DEVICE_POWER, ResourceMonitor
from ..serve import AdmissionConfig, BatchConfig, DegradeConfig, FleetScheduler
from ..tenancy import Autoscaler, AutoscalerConfig, TenantDirectory, parse_tenants
from ..synthetic.datasets import make_complexity_scene, make_dataset
from ..synthetic.world import SyntheticVideo

__all__ = [
    "SYSTEM_NAMES",
    "ABLATION_NAMES",
    "ExperimentSpec",
    "FleetSpec",
    "FleetOutcome",
    "build_client",
    "run_experiment",
    "run_fleet",
    "run_grid",
]

SYSTEM_NAMES = (
    "edgeis",
    "eaar",
    "edgeduet",
    "edge_best_effort",
    "mobile_only",
)

# Fig. 16 variants: the baseline plus each module individually.
ABLATION_NAMES = (
    "baseline",
    "baseline+cfrs",
    "baseline+ciia",
    "baseline+mamt",
    "edgeis",
)


def build_client(
    name: str,
    video: SyntheticVideo,
    seed: int = 0,
    tracer: Tracer | None = None,
):
    """Instantiate a client system by name for the given video."""
    shape = (video.camera.height, video.camera.width)
    if name == "edgeis" or name.startswith("baseline"):
        config = SystemConfig(seed=seed)
        if name != "edgeis":
            config.use_mamt = "mamt" in name
            config.use_ciia = "ciia" in name
            config.use_cfrs = "cfrs" in name
        return EdgeISSystem(
            video.camera, shape, config=config, world=video.world, tracer=tracer
        )
    if name == "eaar":
        return EAARClient(shape, np.random.default_rng(seed + 100))
    if name == "edgeduet":
        return EdgeDuetClient(shape, np.random.default_rng(seed + 200))
    if name == "edge_best_effort":
        return BestEffortEdgeClient(shape, np.random.default_rng(seed + 300))
    if name == "mobile_only":
        return MobileOnlyClient(np.random.default_rng(seed + 400))
    raise ValueError(f"unknown system {name!r}")


@dataclass
class ExperimentSpec:
    """One cell of an experiment grid."""

    system: str
    dataset: str = "xiph_like"
    network: str = "wifi_5ghz"
    num_frames: int = 180
    resolution: tuple[int, int] = (320, 240)
    motion_grade: str = "walk"
    complexity: str | None = None  # use make_complexity_scene instead
    dynamic: bool | None = None
    server_device: str = "jetson_tx2"
    # Synthetic slowdown of the edge device (the bench degrade knob):
    # the server's speed is divided by this, so 2.0 doubles inference
    # latency.  Used to self-test the perf regression gate.
    server_latency_scale: float = 1.0
    warmup_frames: int = 45
    seed: int = 0
    monitor_resources: bool = False
    power_device: str = "iphone_11"
    # Observability: record a frame-level trace of the run (off by
    # default; the no-op tracer keeps the disabled path overhead-free).
    trace: bool = False
    trace_wall_clock: bool = False
    # Snapshot gauges/counters into fixed-interval time series every
    # this many simulated ms (None = no timeline; requires trace=True
    # for the registry to be live).
    sample_interval_ms: float | None = None


@dataclass
class ExperimentOutcome:
    spec: ExperimentSpec
    result: RunResult
    resources: ResourceMonitor | None = None
    client: object | None = None
    tracer: Tracer | None = None
    sampler: TimelineSampler | None = None


def _make_video(spec: ExperimentSpec) -> SyntheticVideo:
    if spec.complexity is not None:
        return make_complexity_scene(
            spec.complexity,
            num_frames=spec.num_frames,
            resolution=spec.resolution,
            seed=spec.seed,
        )
    return make_dataset(
        spec.dataset,
        num_frames=spec.num_frames,
        resolution=spec.resolution,
        motion_grade=spec.motion_grade,
        dynamic=spec.dynamic,
        seed=spec.seed,
    )


def run_experiment(spec: ExperimentSpec) -> ExperimentOutcome:
    """Run one pipeline configuration end to end."""
    tracer = Tracer(wall_clock=spec.trace_wall_clock) if spec.trace else NULL_TRACER
    video = _make_video(spec)
    client = build_client(spec.system, video, seed=spec.seed, tracer=tracer)
    channel = make_channel(spec.network, np.random.default_rng(spec.seed + 17))
    device = DEVICES[spec.server_device]
    if spec.server_latency_scale != 1.0:
        device = DeviceProfile(
            f"{device.name}-x{spec.server_latency_scale:g}",
            device.speed / spec.server_latency_scale,
        )
    server = EdgeServer(
        SimulatedSegmentationModel(
            "mask_rcnn_r101",
            device,
            np.random.default_rng(spec.seed + 29),
            metrics=tracer.metrics,
        ),
        tracer=tracer,
    )
    sampler = (
        TimelineSampler(tracer.metrics, interval_ms=spec.sample_interval_ms)
        if spec.sample_interval_ms is not None
        else None
    )
    pipeline = Pipeline(
        video,
        client,
        channel,
        server,
        warmup_frames=spec.warmup_frames,
        tracer=tracer,
        sampler=sampler,
    )

    monitor = None
    if spec.monitor_resources:
        monitor = ResourceMonitor(DEVICE_POWER[spec.power_device], fps=video.fps)
        result = _run_with_monitor(pipeline, monitor, client, channel)
    else:
        result = pipeline.run()
    return ExperimentOutcome(
        spec=spec,
        result=result,
        resources=monitor,
        client=client,
        sampler=sampler,
        tracer=tracer if spec.trace else None,
    )


def _run_with_monitor(pipeline: Pipeline, monitor: ResourceMonitor, client, channel):
    """Run a pipeline while sampling per-frame resource usage."""
    original_process = client.process_frame
    bytes_before = {"up": 0}

    def wrapped(frame, truth, now_ms):
        output = original_process(frame, truth, now_ms)
        sent = channel.bytes_up - bytes_before["up"]
        bytes_before["up"] = channel.bytes_up
        monitor.sample(frame.index, output.compute_ms, client.memory_bytes(), sent)
        return output

    client.process_frame = wrapped
    try:
        return pipeline.run()
    finally:
        client.process_frame = original_process


def run_grid(specs: list[ExperimentSpec]) -> list[ExperimentOutcome]:
    """Run a list of experiment cells sequentially."""
    return [run_experiment(spec) for spec in specs]


# ----------------------------------------------------------------------
# Fleet experiments: many clients against the repro.serve layer
# ----------------------------------------------------------------------
@dataclass
class FleetSpec:
    """A multi-client serving experiment (paper Section VI-G topology,
    plus the ``repro.serve`` policy layer on top of it)."""

    num_clients: int = 8
    system: str = "baseline+mamt"
    dataset: str = "xiph_like"
    network: str = "wifi_5ghz"
    num_frames: int = 60
    resolution: tuple[int, int] = (160, 120)
    motion_grade: str = "walk"
    server_device: str = "jetson_tx2"
    server_latency_scale: float = 1.0
    # Serving-layer knobs.  ``scheduler=False`` reproduces the paper's
    # bare deployment: one FIFO EdgeServer, no admission, no degradation.
    scheduler: bool = True
    num_servers: int = 1
    policy: str = "edf"
    queue_limit: int = 4
    deadline_horizon: float = 12.0
    degrade: bool = True
    degrade_failure_threshold: int = 2
    degrade_min_ms: float = 300.0
    degrade_recover_depth: int = 1
    deadline_budget_ms: float | None = None
    # Cross-session batching (repro.serve.batching): a replica may hold a
    # servable request up to ``batch_window_ms`` to coalesce compatible
    # queued requests into one batch of at most ``max_batch_size``.
    # ``max_batch_size=1`` disables batching and reproduces the unbatched
    # fleet byte-for-byte.
    batch_window_ms: float = 0.0
    max_batch_size: int = 1
    batch_alpha: float = 0.8
    warmup_frames: int = 10
    seed: int = 0
    trace: bool = False
    trace_wall_clock: bool = False
    sample_interval_ms: float | None = None
    # Chaos (repro.chaos): an adversarial scenario name replaces the
    # plain catalog scene, and a named fault program injects serving
    # faults on the simulated clock.  ``None``/``"none"`` leave the run
    # byte-identical to a chaos-free fleet.
    scenario: str | None = None
    faults: str = "none"
    # Tenancy (repro.tenancy): a "name:qos:count[,...]" directory over
    # the fleet's sessions.  Counts must sum to ``num_clients``; None
    # runs tenancy-free and byte-identical to the pre-tenancy fleet.
    tenants: str | None = None
    # Queue-driven autoscaling (repro.tenancy.Autoscaler): the pool is
    # provisioned with ``autoscale_max`` replicas, ``autoscale_min``
    # start live and the rest stand by; ``num_servers`` is ignored when
    # autoscaling is on.
    autoscale: bool = False
    autoscale_min: int = 1
    autoscale_max: int = 4
    autoscale_up_depth: float = 2.0
    autoscale_down_depth: float = 0.0
    autoscale_warmup_ms: float = 200.0
    autoscale_hold_ms: float = 1000.0
    autoscale_cooldown_ms: float = 100.0


@dataclass
class FleetOutcome:
    spec: FleetSpec
    results: list[RunResult]
    sessions: list[ClientSession]
    scheduler: FleetScheduler | None = None
    tracer: Tracer | None = None
    sampler: TimelineSampler | None = None
    duration_ms: float = 0.0
    chaos: object | None = None  # ChaosInjector when the run injected faults
    tenancy: TenantDirectory | None = None
    autoscaler: Autoscaler | None = None


def run_fleet(spec: FleetSpec) -> FleetOutcome:
    """Run ``num_clients`` sessions against the serving layer (or the
    legacy bare FIFO server when ``spec.scheduler`` is False)."""
    if spec.num_clients < 1:
        raise ValueError("FleetSpec.num_clients must be >= 1")
    if not spec.scheduler and spec.num_servers != 1:
        raise ValueError(
            "the legacy FIFO topology has exactly one server; "
            "set scheduler=True to use num_servers > 1"
        )
    tenancy = (
        TenantDirectory(list(parse_tenants(spec.tenants)))
        if spec.tenants is not None
        else None
    )
    if tenancy is not None and not spec.scheduler:
        raise ValueError("tenancy requires the serving layer; set scheduler=True")
    if tenancy is not None and tenancy.num_sessions != spec.num_clients:
        raise ValueError(
            f"tenant session counts sum to {tenancy.num_sessions} "
            f"but the fleet has num_clients={spec.num_clients}"
        )
    if spec.autoscale and not spec.scheduler:
        raise ValueError("autoscaling requires the serving layer; set scheduler=True")
    num_servers = spec.autoscale_max if spec.autoscale else spec.num_servers
    # Resolve chaos knobs up front so unknown names fail before any
    # rendering happens.
    scenario = make_scenario(spec.scenario) if spec.scenario is not None else None
    faults = make_faults(spec.faults)
    if faults and not spec.scheduler:
        needs_scheduler = [f.kind for f in faults if f.kind != "stall_channel"]
        if needs_scheduler:
            raise ValueError(
                f"fault kinds {needs_scheduler} act on the FleetScheduler; "
                "set scheduler=True to inject them"
            )
    for fault in faults:
        if fault.kind in ("kill_replica", "straggler") and not (
            0 <= fault.target < num_servers
        ):
            raise ValueError(
                f"fault target {fault.target} out of range for "
                f"{num_servers} server(s)"
            )
    tracer = Tracer(wall_clock=spec.trace_wall_clock) if spec.trace else NULL_TRACER

    # One deterministic scene + client per device; independent channel
    # jitter streams spawned from the single experiment seed.
    channel_rngs = spawn_channel_rngs(spec.seed, spec.num_clients)
    network = scenario.network if scenario is not None else spec.network
    chaos = ChaosInjector(faults, tracer=tracer) if (faults or scenario) else None
    sessions = []
    for index in range(spec.num_clients):
        if scenario is not None:
            video = build_video(
                scenario,
                num_frames=spec.num_frames,
                resolution=spec.resolution,
                seed=spec.seed + index,
            )
        else:
            video = make_dataset(
                spec.dataset,
                num_frames=spec.num_frames,
                resolution=spec.resolution,
                motion_grade=spec.motion_grade,
                seed=spec.seed + index,
            )
        client = build_client(
            spec.system, video, seed=spec.seed + index, tracer=tracer
        )
        channel = make_channel(network, channel_rngs[index])
        if scenario is not None and apply_network(scenario, channel) and chaos is not None:
            chaos.note(
                "handoff_scheduled",
                session=index,
                at_ms=round(scenario.handoff_at_ms, 6),
                to=scenario.handoff_to,
            )
        sessions.append(ClientSession(video=video, client=client, channel=channel))

    device = DEVICES[spec.server_device]
    if spec.server_latency_scale != 1.0:
        device = DeviceProfile(
            f"{device.name}-x{spec.server_latency_scale:g}",
            device.speed / spec.server_latency_scale,
        )
    servers = [
        EdgeServer(
            SimulatedSegmentationModel(
                "mask_rcnn_r101",
                device,
                np.random.default_rng(spec.seed + 29 + index),
                metrics=tracer.metrics,
            ),
            tracer=tracer,
        )
        for index in range(num_servers)
    ]

    scheduler = None
    autoscaler = None
    if spec.scheduler:
        scheduler = FleetScheduler(
            servers,
            policy=spec.policy,
            admission=AdmissionConfig(
                queue_limit=spec.queue_limit,
                deadline_horizon=spec.deadline_horizon,
            ),
            degrade=DegradeConfig(
                enabled=spec.degrade,
                failure_threshold=spec.degrade_failure_threshold,
                min_degraded_ms=spec.degrade_min_ms,
                recover_depth=spec.degrade_recover_depth,
            ),
            num_sessions=spec.num_clients,
            tracer=tracer,
            batching=BatchConfig(
                window_ms=spec.batch_window_ms,
                max_size=spec.max_batch_size,
                alpha=spec.batch_alpha,
            ),
            tenancy=tenancy,
        )
        if spec.autoscale:
            autoscaler = Autoscaler(
                scheduler,
                AutoscalerConfig(
                    min_replicas=spec.autoscale_min,
                    scale_up_depth=spec.autoscale_up_depth,
                    scale_down_depth=spec.autoscale_down_depth,
                    warmup_ms=spec.autoscale_warmup_ms,
                    scale_down_hold_ms=spec.autoscale_hold_ms,
                    cooldown_ms=spec.autoscale_cooldown_ms,
                ),
            )
        backend = scheduler
    else:
        backend = servers[0]

    sampler = (
        TimelineSampler(tracer.metrics, interval_ms=spec.sample_interval_ms)
        if spec.sample_interval_ms is not None
        else None
    )
    if chaos is not None:
        chaos.bind(scheduler if scheduler is not None else backend, sessions, tracer)
    pipeline = MultiClientPipeline(
        sessions,
        backend,
        warmup_frames=spec.warmup_frames,
        tracer=tracer,
        deadline_budget_ms=spec.deadline_budget_ms,
        sampler=sampler,
        chaos=chaos,
        autoscaler=autoscaler,
    )
    results = pipeline.run()
    duration = spec.num_frames * (1000.0 / sessions[0].video.fps)
    return FleetOutcome(
        spec=spec,
        results=results,
        sessions=sessions,
        scheduler=scheduler,
        tracer=tracer if spec.trace else None,
        sampler=sampler,
        duration_ms=duration,
        chaos=chaos,
        tenancy=tenancy,
        autoscaler=autoscaler,
    )
