"""Plain-text reporting helpers shared by the benchmark scripts.

Each benchmark prints the same rows/series its paper figure shows; these
helpers keep the formatting uniform and provide JSON export so results can
be archived alongside EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Table", "format_cdf", "save_json"]


@dataclass
class Table:
    """A small fixed-width text table."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def render(self) -> str:
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()

    def as_dict(self) -> dict:
        return {"title": self.title, "columns": self.columns, "rows": self.rows}


def format_cdf(
    ious: np.ndarray, points: tuple[float, ...] = (0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95)
) -> dict[float, float]:
    """P[IoU <= x] at the given x values — the series Fig. 9 plots."""
    ious = np.asarray(ious)
    if len(ious) == 0:
        return {p: 0.0 for p in points}
    return {p: float((ious <= p).mean()) for p in points}


def save_json(path: str | Path, payload: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    def default(obj):
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"not JSON serializable: {type(obj)}")

    path.write_text(json.dumps(payload, indent=2, default=default))
