"""Plain-text reporting helpers shared by the benchmark scripts.

Each benchmark prints the same rows/series its paper figure shows; these
helpers keep the formatting uniform and provide JSON export so results can
be archived alongside EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["SCHEMA_VERSION", "Table", "format_cdf", "result_payload", "save_json"]

# Version of every JSON artifact built on ``result_payload`` (the
# ``repro run``/``repro compare`` outputs and the per-scenario ``result``
# section of BENCH files).  Bump when the payload shape changes;
# ``repro bench compare`` refuses to diff mismatched versions.
# v3: scenarios carry an error-budget section (``budget``) gated by
# ``repro bench compare``; suite payloads record ``slo_target``.
# v4: kernel micro cells (``kernel`` section, gated ``speedup_x``);
# fleet cells carry batching spec/stats and ``serve.batch.*`` counters.
# v5: per-cell ``miss_causes`` section (deadline-miss root causes,
# gated ``unclassified``/per-cause counts); trace records carry request
# contexts (``session``/``trace`` keys, batch ``traces`` membership).
# v6: multi-tenant serving (repro.tenancy) — tenant cells carry a
# ``tenants`` section (per-tenant meters + SLO slices, reconciliation),
# an ``autoscale`` section (replica-count series), ``tenant.*`` counters
# and a ``serve.displaced`` counter; suite payloads may carry a
# ``certification`` section.
SCHEMA_VERSION = 6


@dataclass
class Table:
    """A small fixed-width text table."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def render(self) -> str:
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()

    def as_dict(self) -> dict:
        return {"title": self.title, "columns": self.columns, "rows": self.rows}


def format_cdf(
    ious: np.ndarray, points: tuple[float, ...] = (0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95)
) -> dict[float, float]:
    """P[IoU <= x] at the given x values — the series Fig. 9 plots."""
    ious = np.asarray(ious)
    if len(ious) == 0:
        return {p: 0.0 for p in points}
    return {p: float((ious <= p).mean()) for p in points}


def result_payload(result) -> dict:
    """The canonical JSON summary of one ``RunResult``.

    Shared by ``repro run``, ``repro compare`` and the ``result`` section
    of every BENCH artifact, so the same keys mean the same thing
    everywhere.  All values are plain JSON types (CDF keys are strings),
    so the payload round-trips losslessly through ``save_json``.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "system": result.system,
        "mean_iou": float(result.mean_iou()),
        "false_rate_75": float(result.false_rate(0.75)),
        "false_rate_50": float(result.false_rate(0.5)),
        "mean_latency_ms": float(result.mean_latency_ms()),
        "offload_count": int(result.offload_count),
        "bytes_up": int(result.bytes_up),
        "bytes_down": int(result.bytes_down),
        "server_utilization": float(result.server_utilization()),
        "iou_cdf": {
            f"{point:g}": value
            for point, value in format_cdf(result.per_object_ious()).items()
        },
    }


def save_json(path: str | Path, payload: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    def default(obj):
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"not JSON serializable: {type(obj)}")

    path.write_text(json.dumps(payload, indent=2, default=default))
