"""The oil-field case study (Section VI-G, Fig. 17).

Eight devices inspect the oil-field scene against a Jetson AGX Xavier
edge node — five over WiFi (Dream Glass stand-ins) and three over LTE
(iPhone 11).  Two metrics, as in the paper:

* **segmentation accuracy** — mean IoU of rendered masks against an
  offline full-quality Mask R-CNN pass (here: ground truth degraded to
  Mask-R-CNN quality, which is what "use the same model offline as ground
  truth" amounts to);
* **rendered-information accuracy** — a user-attention model: users judge
  the AR annotations of objects they notice, and they notice large /
  central objects far more than marginal ones.  A noticed object's
  annotation satisfies when its mask hugs the object (IoU >= 0.75); a
  rendering counts as *false* when visibly misplaced (IoU < 0.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .experiments import ExperimentSpec, run_experiment

__all__ = ["FieldDevice", "FieldStudyResult", "run_field_study"]


@dataclass(frozen=True)
class FieldDevice:
    device_id: int
    kind: str  # "dream_glass" | "iphone_11"
    network: str  # "wifi_5ghz" | "lte"


def _fleet() -> list[FieldDevice]:
    devices = [FieldDevice(i, "dream_glass", "wifi_5ghz") for i in range(5)]
    devices += [FieldDevice(5 + i, "iphone_11", "lte") for i in range(3)]
    return devices


@dataclass
class FieldStudyResult:
    per_device_iou: dict[int, float]
    per_device_false_rate: dict[int, float]
    rendered_accuracy: float
    rendered_false_rate: float

    @property
    def mean_iou(self) -> float:
        return float(np.mean(list(self.per_device_iou.values())))

    @property
    def mean_false_rate(self) -> float:
        return float(np.mean(list(self.per_device_false_rate.values())))


def _attention_weight(iou_entry_area: float, image_area: float) -> float:
    """How likely a user is to attend to (and judge) an object."""
    relative = iou_entry_area / max(image_area, 1)
    return float(np.clip(np.sqrt(relative) * 4.0, 0.05, 1.0))


def _run_devices(num_frames, resolution, seed, shared_server):
    """Run the fleet, either against per-device servers (lab-style) or one
    shared Xavier (the actual deployment topology)."""
    if not shared_server:
        results = {}
        for device in _fleet():
            spec = ExperimentSpec(
                system="edgeis",
                dataset="oilfield",
                network=device.network,
                num_frames=num_frames,
                resolution=resolution,
                server_device="jetson_xavier",
                seed=seed + device.device_id,
                dynamic=True,  # workers move through the field
            )
            results[device.device_id] = run_experiment(spec).result
        return results

    from ..model.maskrcnn import SimulatedSegmentationModel
    from ..network.channel import make_channel
    from ..runtime.multi import ClientSession, MultiClientPipeline
    from ..runtime.pipeline import EdgeServer
    from .experiments import _make_video, build_client

    sessions = []
    for device in _fleet():
        spec = ExperimentSpec(
            system="edgeis",
            dataset="oilfield",
            num_frames=num_frames,
            resolution=resolution,
            seed=seed + device.device_id,
            dynamic=True,
        )
        video = _make_video(spec)
        client = build_client("edgeis", video, seed=seed + device.device_id)
        channel = make_channel(
            device.network, np.random.default_rng(seed + 500 + device.device_id)
        )
        sessions.append(ClientSession(video=video, client=client, channel=channel))
    server = EdgeServer(
        SimulatedSegmentationModel(
            "mask_rcnn_r101", "jetson_xavier", np.random.default_rng(seed + 999)
        )
    )
    run_results = MultiClientPipeline(sessions, server).run()
    return {device.device_id: run_results[i] for i, device in enumerate(_fleet())}


def run_field_study(
    num_frames: int = 180,
    resolution: tuple[int, int] = (320, 240),
    seed: int = 0,
    shared_server: bool = False,
) -> FieldStudyResult:
    """Run all eight devices and aggregate the two Fig. 17 metrics.

    ``shared_server=True`` queues the whole fleet on the one Xavier, as
    in the actual deployment; the default gives each device its own edge
    node (no contention).
    """
    image_area = resolution[0] * resolution[1]
    per_device_iou: dict[int, float] = {}
    per_device_false: dict[int, float] = {}
    satisfied_weight = 0.0
    judged_weight = 0.0
    false_weight = 0.0

    device_results = _run_devices(num_frames, resolution, seed, shared_server)
    for device in _fleet():
        result = device_results[device.device_id]
        per_device_iou[device.device_id] = result.mean_iou()
        per_device_false[device.device_id] = result.false_rate(0.75)

        # Rendered-information accuracy: sample one frame per second, as
        # the paper's users did.
        rng = np.random.default_rng(seed + 1000 + device.device_id)
        measured = [
            f for f in result.frames if f.frame_index >= result.warmup_frames
        ]
        for metric in measured[::30]:
            for instance_id, iou in metric.object_ious.items():
                area = metric.object_areas.get(instance_id, 0)
                weight = _attention_weight(area, image_area)
                if rng.uniform() > weight:
                    continue  # user never looked at this object
                judged_weight += 1.0
                if iou >= 0.75:  # the overlay must hug the object to satisfy
                    satisfied_weight += 1.0
                if iou < 0.3:
                    false_weight += 1.0

    rendered_accuracy = satisfied_weight / max(judged_weight, 1.0)
    rendered_false = false_weight / max(judged_weight, 1.0)
    return FieldStudyResult(
        per_device_iou=per_device_iou,
        per_device_false_rate=per_device_false,
        rendered_accuracy=rendered_accuracy,
        rendered_false_rate=rendered_false,
    )
