"""Command-line interface for running experiments.

Examples::

    python -m repro.eval.cli run --system edgeis --dataset kitti_like \
        --network wifi_2.4ghz --frames 200 --json results/kitti.json
    python -m repro.eval.cli compare --dataset xiph_like
    python -m repro.eval.cli trace fig9 --frames 150 --out results/traces/fig9
    python -m repro.eval.cli bench run --suite smoke --label dev
    python -m repro.eval.cli bench compare results/BENCH_smoke_old.json \
        results/BENCH_smoke_new.json
    python -m repro.eval.cli bench trend
    python -m repro.eval.cli report --suite fleet --label dev --format md,html
    python -m repro.eval.cli chaos --scenario wifi-to-lte --fault replica-outage
    python -m repro.eval.cli tenants --label dev
    python -m repro.eval.cli list

``trace`` and ``report`` share one ``--format`` convention: a
comma-separated subset of ``table,jsonl,chrome,md,html`` (each verb
accepts the formats it can render).  ``serve``/``bench run``/``chaos``/
``why``/``tenants`` all take ``--list`` to print the names they accept
(deterministic order, exit 0) without running anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..chaos import FAULTS, SCENARIOS
from ..network.channel import CHANNELS
from ..obs import (
    DEFAULT_SAMPLE_INTERVAL_MS,
    DEFAULT_SLO_TARGET,
    FRAME_BUDGET_MS,
    SUITES,
    build_report,
    build_why,
    compare_payloads,
    evaluate_slo,
    mean_frame_latency_ms,
    render_comparison,
    run_scenario,
    run_suite,
    stage_table,
    write_bench,
    write_chrome_trace,
    write_jsonl,
    write_report,
    write_trend_report,
    write_why,
)
from ..serve import POLICY_NAMES
from ..tenancy import DEFAULT_TENANTS, QOS_CLASSES
from ..synthetic.datasets import COMPLEXITY_LEVELS, DATASET_NAMES
from ..synthetic.trajectory import MOTION_PRESETS
from .experiments import (
    ABLATION_NAMES,
    SYSTEM_NAMES,
    ExperimentSpec,
    FleetSpec,
    run_experiment,
    run_fleet,
)
from .reporting import Table, result_payload, save_json

__all__ = ["main", "TRACE_BENCHES"]

# Named trace scenarios: one per evaluation setting worth a timeline.
# Each maps to the (dataset, network, motion) cell it reproduces.
TRACE_BENCHES = {
    "fig9": {"dataset": "xiph_like", "network": "wifi_5ghz", "motion": "walk"},
    "fig10-wifi24": {"dataset": "xiph_like", "network": "wifi_2.4ghz", "motion": "walk"},
    "fig10-lte": {"dataset": "xiph_like", "network": "lte", "motion": "walk"},
    "fig12-jog": {"dataset": "kitti_like", "network": "wifi_5ghz", "motion": "jog"},
}


def _format_list(allowed: tuple[str, ...]):
    """argparse ``type=`` factory for the shared ``--format`` flag: a
    comma-separated subset of the formats the verb can render."""

    def parse(value: str) -> list[str]:
        formats = []
        for part in value.split(","):
            part = part.strip()
            if not part:
                continue
            if part not in allowed:
                raise argparse.ArgumentTypeError(
                    f"unknown format {part!r}; choose from {','.join(allowed)}"
                )
            if part not in formats:
                formats.append(part)
        if not formats:
            raise argparse.ArgumentTypeError("at least one format required")
        return formats

    return parse


def _add_format_flag(sub, allowed: tuple[str, ...], default: str) -> None:
    sub.add_argument(
        "--format",
        dest="formats",
        type=_format_list(allowed),
        default=_format_list(allowed)(default),
        help=f"comma-separated outputs to write (subset of {','.join(allowed)};"
        f" default {default})",
    )


def _print_listing(sections: dict) -> int:
    """Shared ``--list`` renderer: one ``name: a, b, c`` line per
    section in a deterministic order, exit 0 without running anything."""
    width = max((len(name) for name in sections), default=0)
    for name, values in sections.items():
        print(f"{name}:".ljust(width + 1), ", ".join(values))
    return 0


def _add_list_flag(sub) -> None:
    sub.add_argument(
        "--list",
        dest="list_names",
        action="store_true",
        help="list the names this verb accepts and exit",
    )


def _require_known(kind: str, value, allowed) -> None:
    """Shared unknown-name check: every verb raises the same one-line
    ``ValueError`` (rendered as ``error: ...`` by :func:`main`)."""
    if value is not None and value not in allowed:
        raise ValueError(
            f"unknown {kind} {value!r}; pick from {', '.join(sorted(allowed))}"
        )


def _spec_from_args(args, system: str | None = None) -> ExperimentSpec:
    return ExperimentSpec(
        system=system or args.system,
        dataset=args.dataset,
        network=args.network,
        num_frames=args.frames,
        motion_grade=args.motion,
        seed=args.seed,
        server_device=args.server,
        monitor_resources=getattr(args, "resources", False),
    )


def _cmd_run(args) -> int:
    spec = _spec_from_args(args)
    outcome = run_experiment(spec)
    result = outcome.result
    table = Table(
        f"{spec.system} on {spec.dataset} over {spec.network}",
        ["metric", "value"],
    )
    payload = result_payload(result)
    for key in (
        "mean_iou",
        "false_rate_75",
        "false_rate_50",
        "mean_latency_ms",
        "offload_count",
        "server_utilization",
    ):
        table.add_row(key, payload[key])
    table.print()
    if args.json:
        save_json(args.json, payload)
        print(f"saved {args.json}")
    return 0


def _cmd_compare(args) -> int:
    table = Table(
        f"comparison on {args.dataset} over {args.network}",
        ["system", "mean IoU", "false@0.75", "latency ms"],
    )
    payloads = {}
    for system in SYSTEM_NAMES:
        result = run_experiment(_spec_from_args(args, system=system)).result
        payload = result_payload(result)
        payloads[system] = payload
        table.add_row(
            system,
            payload["mean_iou"],
            payload["false_rate_75"],
            payload["mean_latency_ms"],
        )
    table.print()
    if args.json:
        save_json(args.json, payloads)
        print(f"saved {args.json}")
    return 0


def _cmd_trace(args) -> int:
    """Run one scenario with tracing on and write every export."""
    preset = TRACE_BENCHES[args.bench]
    spec = ExperimentSpec(
        system=args.system,
        dataset=preset["dataset"],
        network=preset["network"],
        motion_grade=preset["motion"],
        num_frames=args.frames,
        seed=args.seed,
        server_device=args.server,
        trace=True,
        trace_wall_clock=args.wall_clock,
    )
    outcome = run_experiment(spec)
    tracer = outcome.tracer
    result = outcome.result

    out_dir = Path(args.out or f"results/traces/{args.bench}")
    written = []
    if "jsonl" in args.formats:
        written.append(write_jsonl(tracer, out_dir / "trace.jsonl"))
    if "chrome" in args.formats:
        written.append(
            write_chrome_trace(
                tracer,
                out_dir / "trace_chrome.json",
                process_name=f"{spec.system}:{args.bench}",
            )
        )
    if "table" in args.formats:
        table = stage_table(
            tracer,
            title=f"per-stage latency — {spec.system} on {spec.dataset} over {spec.network}",
        )
        table_path = out_dir / "stage_latency.txt"
        out_dir.mkdir(parents=True, exist_ok=True)
        table_path.write_text(table.render() + "\n")
        table.print()
        written.append(table_path)

    # Reconcile: the trace's per-frame client spans must reproduce the
    # run's mean display latency (same simulation, finer grain).
    traced_ms = mean_frame_latency_ms(tracer, warmup_frames=spec.warmup_frames)
    reported_ms = result.mean_latency_ms()
    delta = abs(traced_ms - reported_ms) / max(reported_ms, 1e-9)
    print(f"spans:  {len(tracer.spans)}   events: {len(tracer.events)}")
    for path in written:
        print(f"wrote  {path}")
    print(
        f"reconciliation: trace {traced_ms:.3f} ms vs run {reported_ms:.3f} ms "
        f"({delta * 100:.3f}% apart)"
    )
    if delta > 0.01:
        print("ERROR: trace does not reconcile with the run result (> 1%)")
        return 1
    return 0


def _cmd_serve(args) -> int:
    """Run a client fleet through the serving layer and report on it."""
    if args.list_names:
        return _print_listing(
            {
                "systems": SYSTEM_NAMES + ABLATION_NAMES,
                "datasets": DATASET_NAMES,
                "networks": tuple(sorted(CHANNELS)),
                "policies": tuple(sorted(POLICY_NAMES)),
                "scenarios": tuple(sorted(SCENARIOS)),
                "faults": tuple(sorted(FAULTS)),
                "qos": tuple(sorted(QOS_CLASSES)),
            }
        )
    spec = FleetSpec(
        num_clients=args.clients,
        system=args.system,
        dataset=args.dataset,
        network=args.network,
        num_frames=args.frames,
        motion_grade=args.motion,
        server_device=args.server,
        scenario=args.scenario,
        faults=args.fault,
        scheduler=not args.fifo,
        num_servers=args.servers,
        policy=args.policy,
        queue_limit=args.queue_limit,
        deadline_horizon=args.horizon,
        degrade=not args.no_degrade,
        batch_window_ms=args.batch_window_ms,
        max_batch_size=args.max_batch_size,
        warmup_frames=args.warmup,
        seed=args.seed,
        trace=True,
        tenants=args.tenants,
    )
    outcome = run_fleet(spec)
    slo = evaluate_slo(
        outcome.tracer, budget_ms=args.budget_ms, warmup_frames=spec.warmup_frames
    )
    topology = (
        "fifo (no scheduler)"
        if args.fifo
        else f"{spec.policy} x{spec.num_servers} server(s)"
    )
    table = Table(
        f"fleet: {spec.num_clients} x {spec.system} over {spec.network} — {topology}",
        ["session", "mean IoU", "latency ms", "offloads", "KiB up"],
    )
    payloads = []
    for index, result in enumerate(outcome.results):
        payload = result_payload(result)
        payloads.append(payload)
        table.add_row(
            index,
            payload["mean_iou"],
            payload["mean_latency_ms"],
            payload["offload_count"],
            payload["bytes_up"] / 1024.0,
        )
    table.print()

    serve_stats = None
    if outcome.scheduler is not None:
        serve_stats = outcome.scheduler.stats(outcome.duration_ms)
        degrade = serve_stats["degrade"]
        print(
            "serve:    submitted={submitted} admitted={admitted} "
            "rejected(queue)={rejected_queue_full} "
            "rejected(deadline)={rejected_infeasible} shed={shed} "
            "completed={completed}".format(**serve_stats)
        )
        print(
            f"degrade:  events={degrade['degrade_events']} "
            f"recoveries={degrade['recover_events']} "
            f"degraded_at_end={degrade['degraded_at_end']}"
        )
        batching = serve_stats.get("batching")
        if batching is not None:
            print(
                "batching: window={window_ms:g} ms max_size={max_size} "
                "batches={batches} items={batched_items} "
                "mean_size={mean_batch_size:.2f} "
                "saved={batch_saved_ms:.1f} ms".format(**batching)
            )
        for entry in serve_stats["per_server"]:
            print(
                f"server{entry['index']}:  completed={entry['completed']} "
                f"shed={entry['shed']} utilization={entry.get('utilization', 0.0):.3f}"
            )
        tenancy = serve_stats.get("tenancy")
        if tenancy is not None:
            for name, entry in tenancy["per_tenant"].items():
                print(
                    f"tenant {name} ({entry['qos']}): "
                    f"submitted={entry['submitted']} admitted={entry['admitted']} "
                    f"shed={entry['shed']} displaced={entry['displaced']} "
                    f"completed={entry['completed']} "
                    f"server_ms={entry['server_ms']:.1f}"
                )
    if outcome.chaos is not None and outcome.chaos.log:
        print(
            "chaos:    "
            + " ".join(entry["event"] for entry in outcome.chaos.log)
        )
    print(
        f"fleet SLO: miss_rate={slo['miss_rate']:.4f} "
        f"p50={slo['latency_p50_ms']:.2f} ms p99={slo['latency_p99_ms']:.2f} ms "
        f"({slo['frames']} frames, {args.budget_ms:.2f} ms budget)"
    )
    if args.json:
        save_json(
            args.json,
            {"sessions": payloads, "serve": serve_stats, "slo": slo},
        )
        print(f"saved {args.json}")
    return 0


def _cmd_chaos(args) -> int:
    """Run the adversarial scenario x fault matrix and certify that every
    cell holds its SLO error budget through degrade -> recover."""
    if args.list_names:
        return _print_listing(
            {
                "scenarios": tuple(sorted(SCENARIOS)),
                "faults": tuple(sorted(FAULTS)),
                "cells": tuple(cell.name for cell in SUITES["chaos"]),
            }
        )
    _require_known("scenario", args.scenario, SCENARIOS)
    _require_known("fault program", args.fault, FAULTS)
    cells = [
        cell
        for cell in SUITES["chaos"]
        if (args.scenario is None or cell.chaos_scenario == args.scenario)
        and (args.fault is None or cell.fault == args.fault)
    ]
    filtered = len(cells) != len(SUITES["chaos"])

    if filtered:
        # A filtered run is exploratory: run just those cells, no artifact.
        scenarios = {
            cell.name: run_scenario(cell, budget_ms=args.budget_ms)
            for cell in cells
        }
        path = None
    else:
        payload = run_suite("chaos", args.label, budget_ms=args.budget_ms)
        path = write_bench(payload, args.out)
        scenarios = payload["scenarios"]

    table = Table(
        f"chaos matrix [{args.label}] — certify consumed_fraction < 1.0",
        ["cell", "miss rate", "budget used %", "events", "certified"],
    )
    failed = []
    for name in sorted(scenarios):
        cell = scenarios[name]
        consumed = cell["budget"]["consumed_fraction"]
        certified = cell["chaos"]["certified"]
        if not certified:
            failed.append(name)
        table.add_row(
            name,
            cell["slo"]["miss_rate"],
            round(consumed * 100.0, 2),
            len(cell["chaos"]["events"]),
            "yes" if certified else "NO",
        )
    table.print()
    if path is not None:
        print(f"wrote  {path}")
    if failed:
        for name in failed:
            print(f"NOT CERTIFIED: {name} blew its SLO error budget")
        return 1
    print(f"certified: all {len(scenarios)} cells held their error budget")
    return 0


def _cmd_bench_run(args) -> int:
    """Run a benchmark suite and write its BENCH artifact."""
    if args.list_names:
        return _print_listing(
            {
                suite: tuple(cell.name for cell in SUITES[suite])
                for suite in sorted(SUITES)
            }
        )
    payload = run_suite(
        args.suite,
        args.label,
        degrade=args.degrade,
        budget_ms=args.budget_ms,
        slo_target=args.slo_target,
    )
    path = write_bench(payload, args.out)
    table = Table(
        f"bench {args.suite} [{args.label}] — {args.budget_ms:.2f} ms budget",
        [
            "scenario",
            "frames",
            "mean IoU",
            "frame p50 ms",
            "frame p99 ms",
            "miss rate",
            "worst streak",
        ],
    )
    kernel_table = Table(
        f"kernels [{args.label}]",
        ["kernel", "n", "vectorized µs", "reference µs", "speedup", "equiv"],
    )
    have_kernels = False
    for name in sorted(payload["scenarios"]):
        scenario = payload["scenarios"][name]
        kernel = scenario.get("kernel")
        if kernel is not None:
            have_kernels = True
            kernel_table.add_row(
                kernel.get("name", name),
                kernel.get("n", 0),
                kernel.get("vectorized_us", "-"),
                kernel.get("reference_us", "-"),
                kernel.get("speedup_x", "-"),
                "yes" if kernel.get("equivalent") else "NO",
            )
            continue
        slo = scenario["slo"]
        table.add_row(
            name,
            slo["frames"],
            scenario["result"]["mean_iou"],
            slo["latency_p50_ms"],
            slo["latency_p99_ms"],
            slo["miss_rate"],
            slo["worst_streak"],
        )
    table.print()
    if have_kernels:
        kernel_table.print()
    print(f"wrote  {path}")
    return 0


def _cmd_bench_compare(args) -> int:
    """Diff two BENCH artifacts; exit non-zero on any regression."""
    old = json.loads(Path(args.old).read_text())
    new = json.loads(Path(args.new).read_text())
    report = compare_payloads(old, new, threshold_scale=args.threshold_scale)
    render_comparison(report).print()
    print(
        f"{len(report['improved'])} improved, {len(report['regressed'])} "
        f"regressed, {report['neutral_count']} neutral"
    )
    for path in report["missing"]:
        print(f"note: metric disappeared: {path}")
    if report["regressed"]:
        for path in report["regressed"]:
            print(f"REGRESSED: {path}")
        return 1
    return 0


def _cmd_bench_trend(args) -> int:
    """Fold every BENCH artifact in the results dir into the trend report."""
    out = write_trend_report(args.results_dir, args.out)
    print(out.read_text())
    print(f"wrote  {out}")
    return 0


def _cmd_report(args) -> int:
    """Run a suite observed and render the deterministic ops report."""
    report = build_report(
        args.suite,
        args.label,
        degrade=args.degrade,
        budget_ms=args.budget_ms,
        slo_target=args.slo_target,
        sample_interval_ms=args.sample_interval_ms,
    )
    paths = write_report(report, args.out, formats=args.formats)
    table = Table(
        f"report {args.suite} [{args.label}] — SLO target "
        f"{args.slo_target * 100:.1f}% miss",
        [
            "scenario",
            "miss rate",
            "budget used %",
            "max fast burn",
            "max slow burn",
            "anomalies",
        ],
    )
    for name in sorted(report["scenarios"]):
        scenario = report["scenarios"][name]
        budget = scenario["budget"]
        table.add_row(
            name,
            scenario["slo"]["miss_rate"],
            budget["consumed_fraction"] * 100.0,
            budget["max_fast_burn_rate"],
            budget["max_slow_burn_rate"],
            len(scenario["anomalies"]),
        )
    table.print()
    for path in paths:
        print(f"wrote  {path}")
    return 0


def _cmd_why(args) -> int:
    """Re-run a suite traced and explain every deadline miss: ranked
    root causes per scenario plus per-frame critical-path waterfalls."""
    if args.list_names:
        return _print_listing(
            {
                "suites": tuple(sorted(SUITES)),
                "scenarios": tuple(
                    cell.name for cell in SUITES.get(args.suite, ())
                ),
            }
        )
    why = build_why(
        args.suite,
        args.label,
        scenario=args.scenario,
        session=args.session,
        frame=args.frame,
        budget_ms=args.budget_ms,
    )
    print(why["markdown"], end="")
    table = Table(
        f"why {args.suite} [{args.label}] — miss root causes",
        ["scenario", "misses", "classified", "unclassified", "top cause"],
    )
    for name in sorted(why["scenarios"]):
        summary = why["scenarios"][name]
        table.add_row(
            name,
            summary["misses"],
            summary["classified"],
            summary["unclassified"],
            summary["top_cause"] or "-",
        )
    table.print()
    if args.out is not None:
        path = write_why(why["markdown"], args.out, args.suite, args.label)
        print(f"wrote  {path}")
    if why["unclassified"] > 0:
        print(f"UNCLASSIFIED: {why['unclassified']} miss(es) have no cause")
        return 1
    return 0


def _cmd_tenants(args) -> int:
    """Run the multi-tenant serving suite, render per-tenant fairness
    and metering, and certify the premium-isolation claim."""
    if args.list_names:
        return _print_listing(
            {
                "qos": tuple(sorted(QOS_CLASSES)),
                "default tenants": tuple(
                    f"{spec.name}:{spec.qos}:{spec.num_sessions}"
                    for spec in DEFAULT_TENANTS
                ),
                "cells": tuple(cell.name for cell in SUITES["tenants"]),
            }
        )
    payload = run_suite("tenants", args.label, budget_ms=args.budget_ms)
    path = write_bench(payload, args.out)
    for name in sorted(payload["scenarios"]):
        cell = payload["scenarios"][name]
        section = cell.get("tenants")
        if section is None:
            continue
        table = Table(
            f"tenants — {name} [{cell['spec']['role']}]",
            [
                "tenant",
                "qos",
                "submitted",
                "admitted",
                "shed",
                "displaced",
                "completed",
                "server ms",
                "miss rate",
                "degrades",
            ],
        )
        for tenant_name, entry in section["per_tenant"].items():
            table.add_row(
                tenant_name,
                entry["qos"],
                entry["submitted"],
                entry["admitted"],
                entry["shed"],
                entry["displaced"],
                entry["completed"],
                entry["server_ms"],
                entry["slo"]["miss_rate"],
                entry["degrade_events"],
            )
        table.print()
        recon = section["reconciliation"]
        print(
            "  reconciliation: requests "
            + ("exact" if recon["requests_exact"] else "MISMATCH")
            + f", server_ms delta {recon['server_ms_delta']:.6f}"
        )
        autoscale = cell.get("autoscale")
        if autoscale is not None:
            print(
                f"  autoscale: scale_ups={autoscale['scale_ups']} "
                f"scale_downs={autoscale['scale_downs']} "
                f"replicas={autoscale['replica_series']}"
            )
        print()
    certification = payload["certification"]
    for check_name in sorted(certification.get("checks", {})):
        check = certification["checks"][check_name]
        detail = " ".join(
            f"{k}={check[k]}" for k in sorted(check) if k != "ok"
        )
        print(f"{'PASS' if check['ok'] else 'FAIL'}  {check_name}  {detail}")
    print(f"wrote  {path}")
    if not certification["certified"]:
        print("NOT CERTIFIED: premium isolation claim does not hold")
        return 1
    print("certified: premium isolation holds under best-effort saturation")
    return 0


def _cmd_list(args) -> int:
    return _print_listing(
        {
            "systems": SYSTEM_NAMES,
            "ablations": ABLATION_NAMES,
            "datasets": DATASET_NAMES,
            "complexity": COMPLEXITY_LEVELS,
            "networks": tuple(sorted(CHANNELS)),
            "traces": tuple(TRACE_BENCHES),
            "suites": tuple(sorted(SUITES)),
            "policies": tuple(sorted(POLICY_NAMES)),
            "scenarios": tuple(sorted(SCENARIOS)),
            "faults": tuple(sorted(FAULTS)),
            "qos": tuple(sorted(QOS_CLASSES)),
            "tenants": tuple(
                f"{spec.name}:{spec.qos}:{spec.num_sessions}"
                for spec in DEFAULT_TENANTS
            ),
        }
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.eval.cli", description="edgeIS experiment runner"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub):
        sub.add_argument("--dataset", default="xiph_like", choices=DATASET_NAMES)
        sub.add_argument("--network", default="wifi_5ghz", choices=sorted(CHANNELS))
        sub.add_argument("--frames", type=int, default=150)
        sub.add_argument("--motion", default="walk", choices=sorted(MOTION_PRESETS))
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--server", default="jetson_tx2", choices=("jetson_tx2", "jetson_xavier", "titan_v")
        )
        sub.add_argument("--json", default=None, help="save metrics to this path")

    run_parser = subparsers.add_parser("run", help="run one system")
    run_parser.add_argument(
        "--system", default="edgeis", choices=SYSTEM_NAMES + ABLATION_NAMES
    )
    run_parser.add_argument("--resources", action="store_true")
    add_common(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = subparsers.add_parser("compare", help="run all systems")
    add_common(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    trace_parser = subparsers.add_parser(
        "trace", help="run one scenario with frame-level tracing and export it"
    )
    trace_parser.add_argument(
        "bench",
        nargs="?",
        default="fig9",
        choices=sorted(TRACE_BENCHES),
        help="named scenario (dataset+network+motion preset)",
    )
    trace_parser.add_argument(
        "--system", default="edgeis", choices=SYSTEM_NAMES + ABLATION_NAMES
    )
    trace_parser.add_argument("--frames", type=int, default=150)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument(
        "--server", default="jetson_tx2", choices=("jetson_tx2", "jetson_xavier", "titan_v")
    )
    trace_parser.add_argument(
        "--out", default=None, help="output directory (default results/traces/<bench>)"
    )
    trace_parser.add_argument(
        "--wall-clock",
        action="store_true",
        help="additionally record wall-clock span times (breaks trace diffability)",
    )
    _add_format_flag(
        trace_parser, ("table", "jsonl", "chrome"), "table,jsonl,chrome"
    )
    trace_parser.set_defaults(func=_cmd_trace)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run a multi-client fleet through the deadline-aware serving layer",
    )
    serve_parser.add_argument("--clients", type=int, default=8)
    serve_parser.add_argument("--servers", type=int, default=1)
    serve_parser.add_argument(
        "--policy", default="edf", choices=sorted(POLICY_NAMES)
    )
    serve_parser.add_argument(
        "--fifo",
        action="store_true",
        help="legacy topology: one bare FIFO server, no scheduler",
    )
    serve_parser.add_argument("--queue-limit", type=int, default=4)
    serve_parser.add_argument(
        "--horizon",
        type=float,
        default=12.0,
        help="request deadline = send time + horizon x frame budget",
    )
    serve_parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="disable MAMT-fallback degradation on reject/shed",
    )
    serve_parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=0.0,
        help="how long a replica may hold a servable request open for co-riders",
    )
    serve_parser.add_argument(
        "--max-batch-size",
        type=int,
        default=1,
        help="cross-session batch size cap (1 disables batching)",
    )
    serve_parser.add_argument(
        "--system", default="baseline+mamt", choices=SYSTEM_NAMES + ABLATION_NAMES
    )
    serve_parser.add_argument(
        "--scenario",
        default=None,
        help="adversarial scenario from the chaos registry "
        f"({', '.join(sorted(SCENARIOS))}) — replaces --dataset/--motion",
    )
    serve_parser.add_argument(
        "--fault",
        default="none",
        help="named fault program to inject "
        f"({', '.join(sorted(FAULTS))})",
    )
    serve_parser.add_argument("--warmup", type=int, default=10)
    serve_parser.add_argument(
        "--budget-ms",
        type=float,
        default=FRAME_BUDGET_MS,
        help="per-frame deadline for SLO evaluation (default 33.33 ms = 30 fps)",
    )
    serve_parser.add_argument(
        "--tenants",
        default=None,
        help="tenant directory as name:qos:count[,...] — session counts"
        " must sum to --clients (qos: premium, standard, best_effort)",
    )
    add_common(serve_parser)
    _add_list_flag(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve, frames=60)

    bench_parser = subparsers.add_parser(
        "bench",
        help="benchmark suites: SLO tracking, percentiles, regression gate",
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run a suite and write BENCH_<suite>_<label>.json"
    )
    # No argparse ``choices``: unknown suites get the runner's one-line
    # error (listing what exists) instead of an argparse usage dump.
    bench_run.add_argument(
        "--suite",
        default="smoke",
        help=f"suite to run ({', '.join(sorted(SUITES))})",
    )
    bench_run.add_argument(
        "--label", default="dev", help="artifact label (BENCH_<suite>_<label>.json)"
    )
    bench_run.add_argument(
        "--out", default="results", help="output directory (default results/)"
    )
    bench_run.add_argument(
        "--degrade",
        type=float,
        default=1.0,
        help="synthetically slow the edge server by this factor (gate self-test)",
    )
    bench_run.add_argument(
        "--budget-ms",
        type=float,
        default=FRAME_BUDGET_MS,
        help="per-frame deadline for SLO evaluation (default 33.33 ms = 30 fps)",
    )
    bench_run.add_argument(
        "--slo-target",
        type=float,
        default=DEFAULT_SLO_TARGET,
        help="error-budget miss-rate target (default %(default)s)",
    )
    _add_list_flag(bench_run)
    bench_run.set_defaults(func=_cmd_bench_run)

    bench_compare = bench_sub.add_parser(
        "compare", help="diff two BENCH artifacts; non-zero exit on regression"
    )
    bench_compare.add_argument("old", help="baseline BENCH json")
    bench_compare.add_argument("new", help="candidate BENCH json")
    bench_compare.add_argument(
        "--threshold-scale",
        type=float,
        default=1.0,
        help="scale every per-metric threshold (loose CI gates use > 1)",
    )
    bench_compare.set_defaults(func=_cmd_bench_compare)

    bench_trend = bench_sub.add_parser(
        "trend", help="fold results/BENCH_*.json into the trend report"
    )
    bench_trend.add_argument("--results-dir", default="results")
    bench_trend.add_argument(
        "--out", default=None, help="report path (default <results-dir>/README.md)"
    )
    bench_trend.set_defaults(func=_cmd_bench_trend)

    report_parser = subparsers.add_parser(
        "report",
        help="run a suite observed and render the ops report (timelines,"
        " error budgets, session strips, anomalies)",
    )
    report_parser.add_argument(
        "--suite",
        default="fleet",
        help=f"suite to run ({', '.join(sorted(SUITES))})",
    )
    report_parser.add_argument(
        "--label", default="dev", help="report label (REPORT_<suite>_<label>.*)"
    )
    report_parser.add_argument(
        "--out",
        default="results/reports",
        help="output directory (default results/reports/)",
    )
    report_parser.add_argument(
        "--degrade",
        type=float,
        default=1.0,
        help="synthetically slow the edge server by this factor",
    )
    report_parser.add_argument(
        "--budget-ms",
        type=float,
        default=FRAME_BUDGET_MS,
        help="per-frame deadline for SLO evaluation (default 33.33 ms = 30 fps)",
    )
    report_parser.add_argument(
        "--slo-target",
        type=float,
        default=DEFAULT_SLO_TARGET,
        help="error-budget miss-rate target (default %(default)s)",
    )
    report_parser.add_argument(
        "--sample-interval-ms",
        type=float,
        default=DEFAULT_SAMPLE_INTERVAL_MS,
        help="timeline sampling interval in simulated ms (default %(default)s)",
    )
    _add_format_flag(report_parser, ("md", "html"), "md,html")
    report_parser.set_defaults(func=_cmd_report)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="run the adversarial scenario x fault matrix and certify the"
        " SLO error budget holds through degrade -> recover",
    )
    chaos_parser.add_argument(
        "--scenario",
        default=None,
        help=f"restrict to one scenario ({', '.join(sorted(SCENARIOS))})",
    )
    chaos_parser.add_argument(
        "--fault",
        default=None,
        help=f"restrict to one fault program ({', '.join(sorted(FAULTS))})",
    )
    chaos_parser.add_argument(
        "--label", default="dev", help="artifact label (BENCH_chaos_<label>.json)"
    )
    chaos_parser.add_argument(
        "--out", default="results", help="output directory (default results/)"
    )
    chaos_parser.add_argument(
        "--budget-ms",
        type=float,
        default=FRAME_BUDGET_MS,
        help="per-frame deadline for SLO evaluation (default 33.33 ms = 30 fps)",
    )
    _add_list_flag(chaos_parser)
    chaos_parser.set_defaults(func=_cmd_chaos)

    why_parser = subparsers.add_parser(
        "why",
        help="explain deadline misses: per-frame critical-path waterfalls"
        " and a ranked miss-cause table for a bench suite",
    )
    why_parser.add_argument(
        "suite",
        nargs="?",
        default="fleet",
        help=f"suite to analyze ({', '.join(sorted(SUITES))})",
    )
    why_parser.add_argument(
        "--scenario", default=None, help="restrict to one suite cell"
    )
    why_parser.add_argument(
        "--session", type=int, default=None, help="show only this session's misses"
    )
    why_parser.add_argument(
        "--frame", type=int, default=None, help="show only this frame's miss"
    )
    why_parser.add_argument(
        "--label", default="dev", help="report label (WHY_<suite>_<label>.md)"
    )
    why_parser.add_argument(
        "--out",
        default=None,
        help="also write WHY_<suite>_<label>.md into this directory",
    )
    why_parser.add_argument(
        "--budget-ms",
        type=float,
        default=FRAME_BUDGET_MS,
        help="per-frame deadline for miss attribution (default 33.33 ms = 30 fps)",
    )
    _add_list_flag(why_parser)
    why_parser.set_defaults(func=_cmd_why)

    tenants_parser = subparsers.add_parser(
        "tenants",
        help="run the multi-tenant serving suite: weighted-fair admission,"
        " per-tenant metering, autoscaling, premium-isolation certification",
    )
    tenants_parser.add_argument(
        "--label", default="dev", help="artifact label (BENCH_tenants_<label>.json)"
    )
    tenants_parser.add_argument(
        "--out", default="results", help="output directory (default results/)"
    )
    tenants_parser.add_argument(
        "--budget-ms",
        type=float,
        default=FRAME_BUDGET_MS,
        help="per-frame deadline for SLO evaluation (default 33.33 ms = 30 fps)",
    )
    _add_list_flag(tenants_parser)
    tenants_parser.set_defaults(func=_cmd_tenants)

    list_parser = subparsers.add_parser("list", help="list available names")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError, FileNotFoundError) as exc:
        # Unknown suite/scenario/fault names and missing artifact paths
        # are user errors: one clear line on stderr, not a traceback.
        if isinstance(exc, OSError):
            message = f"{exc.strerror}: {exc.filename}"
        else:
            message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
