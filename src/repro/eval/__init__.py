"""Experiment harness, reporting helpers and the oil-field case study."""

from .experiments import (
    ABLATION_NAMES,
    SYSTEM_NAMES,
    ExperimentOutcome,
    ExperimentSpec,
    build_client,
    run_experiment,
    run_grid,
)
from .reporting import SCHEMA_VERSION, Table, format_cdf, result_payload, save_json
from .field_study import FieldDevice, FieldStudyResult, run_field_study
from .trajectory_metrics import TrajectoryErrors, evaluate_trajectory, umeyama_alignment

__all__ = [
    "ABLATION_NAMES",
    "SYSTEM_NAMES",
    "ExperimentOutcome",
    "ExperimentSpec",
    "build_client",
    "run_experiment",
    "run_grid",
    "SCHEMA_VERSION",
    "Table",
    "format_cdf",
    "result_payload",
    "save_json",
    "FieldDevice",
    "FieldStudyResult",
    "run_field_study",
    "TrajectoryErrors",
    "evaluate_trajectory",
    "umeyama_alignment",
]
