"""Discrete-event mobile/edge runtime: pipeline, metrics and the mobile
resource/power models."""

from .interface import ClientFrameOutput, ClientSystem, OffloadRequest
from .pipeline import EdgeServer, FrameMetric, Pipeline, RunResult
from .multi import ClientSession, MultiClientPipeline
from .resources import (
    DEVICE_POWER,
    DevicePowerProfile,
    ResourceMonitor,
    ResourceTrace,
)

__all__ = [
    "ClientFrameOutput",
    "ClientSystem",
    "OffloadRequest",
    "EdgeServer",
    "ClientSession",
    "MultiClientPipeline",
    "FrameMetric",
    "Pipeline",
    "RunResult",
    "DEVICE_POWER",
    "DevicePowerProfile",
    "ResourceMonitor",
    "ResourceTrace",
]
