"""Multi-client pipeline: several devices sharing edge inference.

The paper's field deployment connects *eight* mobile devices to a single
Jetson AGX Xavier (Section VI-G).  :class:`MultiClientPipeline` interleaves
any number of (video, client, channel) sessions against either

* one bare :class:`~repro.runtime.pipeline.EdgeServer` — the paper's
  deployment topology: a single-inference-at-a-time FIFO queue, unbounded
  and deadline-blind; or
* a :class:`~repro.serve.scheduler.FleetScheduler` — the ``repro.serve``
  policy layer: N server replicas, pluggable placement, bounded
  deadline-checked admission, shedding, and MAMT-fallback degradation
  (see ``docs/serving.md``).

Either way the pipeline owns the frame clock and the channels; the
scheduler path routes every offload through admission and hands back
completions/sheds at each tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..encoding.mask_codec import encoded_size_bytes
from ..image.masks import InstanceMask, mask_iou
from ..network.channel import Channel
from ..obs.trace import NULL_TRACER, RequestContext, Tracer
from ..synthetic.world import SyntheticVideo
from .interface import ClientSystem
from .pipeline import (
    RESULT_HEADER_BYTES,
    EdgeServer,
    FrameMetric,
    PipelineMetrics,
    RunResult,
    _channel_transfer_attrs,
    _PendingDelivery,
)

__all__ = ["ClientSession", "MultiClientPipeline"]


@dataclass
class ClientSession:
    """One device in the fleet."""

    video: SyntheticVideo
    client: ClientSystem
    channel: Channel
    # Mutable run state:
    busy_until_ms: float = 0.0
    last_masks: list[InstanceMask] = field(default_factory=list)
    pending: list[_PendingDelivery] = field(default_factory=list)
    metrics: list[FrameMetric] = field(default_factory=list)
    offload_count: int = 0
    # Trace lane names (set by the pipeline from the session index).
    client_lane: str = "client"
    channel_lane: str = "channel"


class MultiClientPipeline:
    """Drive N clients frame-locked against shared edge inference."""

    def __init__(
        self,
        sessions: list[ClientSession],
        server,
        warmup_frames: int = 45,
        min_gt_area: int = 200,
        tracer: Tracer | None = None,
        deadline_budget_ms: float | None = None,
        sampler=None,
        chaos=None,
        autoscaler=None,
    ):
        if not sessions:
            raise ValueError("MultiClientPipeline needs at least one session")
        lengths = {len(s.video) for s in sessions}
        if len(lengths) != 1:
            raise ValueError("all session videos must have the same length")
        rates = {s.video.fps for s in sessions}
        if len(rates) != 1:
            raise ValueError(
                "all session videos must share the same fps; got "
                f"{sorted(rates)} — the frame clock is fleet-wide, so a "
                "mixed-fps fleet would mis-time every session but the first"
            )
        self.sessions = sessions
        # ``server`` is either a bare EdgeServer (legacy FIFO topology)
        # or a repro.serve FleetScheduler (duck-typed: anything with
        # submit/advance/stats is treated as a scheduler).
        self.scheduler = server if hasattr(server, "advance") else None
        self.server = None if self.scheduler is not None else server
        self.warmup_frames = warmup_frames
        self.min_gt_area = min_gt_area
        # Per-frame display deadline; None = one frame interval.
        self.deadline_budget_ms = deadline_budget_ms
        self.tracer = tracer if tracer is not None else NULL_TRACER
        backend = self.scheduler if self.scheduler is not None else self.server
        if self.tracer.enabled and not backend.tracer.enabled:
            backend.attach_tracer(self.tracer)
        # Optional repro.obs.timeline.TimelineSampler, ticked once per
        # frame tick so fleet gauges become fixed-interval time series.
        self.sampler = sampler
        # Optional repro.chaos.ChaosInjector, ticked at the top of every
        # frame tick so faults land at deterministic sim-clock instants.
        self.chaos = chaos
        # Optional repro.tenancy.Autoscaler, ticked right after chaos so
        # capacity reacts to faults within the same simulated frame.
        self.autoscaler = autoscaler
        # Tenant attribution for contexts minted on the client lanes
        # (the scheduler stamps its own); None outside tenancy runs.
        directory = getattr(self.scheduler, "tenancy", None)
        self._tenant_of = (
            directory.tenant_of if directory is not None else lambda index: None
        )
        # The scheduler's per-tenant meter (downlink bytes are only
        # known here, after the result is encoded for delivery).
        self._meter = getattr(self.scheduler, "meter", None)
        # Same instrument names as the single-client pipeline, by
        # construction (one shared registration helper).
        self.pm = PipelineMetrics.register(self.tracer.metrics)
        self._latency_ewma: float | None = None
        # One client+channel lane pair per device, one shared server lane.
        for index, session in enumerate(self.sessions):
            session.client_lane = f"client{index}"
            session.channel_lane = f"channel{index}"
        # Last offload-mode pushed to each client (scheduler path only).
        self._offload_enabled = [True] * len(self.sessions)
        self._frame_interval = 1000.0 / self.sessions[0].video.fps

    @property
    def _server_busy_ms(self) -> float:
        if self.scheduler is not None:
            return self.scheduler.busy_ms_total
        return self.server.busy_ms_total

    def run(self) -> list[RunResult]:
        num_frames = len(self.sessions[0].video)
        frame_interval = self._frame_interval

        for frame_index in range(num_frames):
            now = frame_index * frame_interval
            self.tracer.set_now(now)
            if self.chaos is not None:
                self.chaos.tick(now)
            if self.autoscaler is not None:
                self.autoscaler.tick(now)
            if self.scheduler is not None:
                self._service_scheduler(now)
            for session_index, session in enumerate(self.sessions):
                self._step_session(
                    session, session_index, frame_index, now, frame_interval
                )
            self.pm.pending.set(
                sum(len(session.pending) for session in self.sessions)
            )
            if self.sampler is not None:
                self.sampler.tick(now)

        duration = num_frames * frame_interval
        return [
            RunResult(
                system=session.client.name,
                frames=session.metrics,
                warmup_frames=self.warmup_frames,
                offload_count=session.offload_count,
                bytes_up=session.channel.bytes_up,
                bytes_down=session.channel.bytes_down,
                server_busy_ms=self._server_busy_ms,
                duration_ms=duration,
            )
            for session in self.sessions
        ]

    # ------------------------------------------------------------------
    # Scheduler plumbing
    # ------------------------------------------------------------------
    def _service_scheduler(self, now: float) -> None:
        """Drain the fleet scheduler and apply its verdicts: deliver
        completions through each session's downlink, notify clients of
        sheds, and push degrade/recover mode flips to the clients."""
        tracer = self.tracer
        for outcome in self.scheduler.advance(now):
            session = self.sessions[outcome.item.session_index]
            if outcome.kind == "shed":
                self._notify_offload_failed(
                    session, outcome.item.frame_index, now
                )
                continue
            result_bytes = encoded_size_bytes(outcome.masks) + RESULT_HEADER_BYTES
            if self._meter is not None and outcome.item.tenant is not None:
                self._meter.add(
                    outcome.item.tenant, "bytes_down", float(result_bytes)
                )
            downlink = session.channel.downlink_ms(
                result_bytes, now_ms=outcome.completion_ms
            )
            if tracer.enabled:
                tracer.add_span(
                    "channel.downlink",
                    lane=session.channel_lane,
                    frame=outcome.item.frame_index,
                    start_ms=outcome.completion_ms,
                    dur_ms=downlink,
                    ctx=outcome.item.ctx,
                    payload_bytes=int(result_bytes),
                    num_masks=len(outcome.masks),
                    server=outcome.server_index,
                    **_channel_transfer_attrs(session.channel),
                )
            session.pending.append(
                _PendingDelivery(
                    arrive_ms=outcome.completion_ms + downlink,
                    frame_index=outcome.item.frame_index,
                    masks=outcome.masks,
                )
            )

        for index, session in enumerate(self.sessions):
            enabled = not self.scheduler.is_degraded(index)
            if enabled != self._offload_enabled[index]:
                self._offload_enabled[index] = enabled
                setter = getattr(session.client, "set_offload_enabled", None)
                if setter is not None:
                    setter(enabled)
            if enabled and self.scheduler.take_keyframe_request(index):
                keyframe = getattr(session.client, "request_keyframe", None)
                if keyframe is not None:
                    keyframe()

    def _notify_offload_failed(self, session, frame_index: int, now: float) -> None:
        """Tell a client its offload died (rejected or shed) so it frees
        the in-flight slot and keeps rendering through MAMT."""
        rejected = getattr(session.client, "offload_rejected", None)
        if rejected is not None:
            rejected(frame_index, now)

    # ------------------------------------------------------------------
    def _step_session(
        self, session, session_index, frame_index, now, frame_interval
    ) -> None:
        frame, truth = session.video.frame_at(frame_index)
        tracer = self.tracer

        ready = [d for d in session.pending if d.arrive_ms <= now]
        session.pending = [d for d in session.pending if d.arrive_ms > now]
        for delivery in sorted(ready, key=lambda d: d.arrive_ms):
            integration = session.client.receive_result(
                delivery.frame_index, delivery.masks, now
            )
            integration_start = max(session.busy_until_ms, now)
            session.busy_until_ms = integration_start + integration
            if tracer.enabled:
                delivery_ctx = RequestContext(
                    session_index,
                    delivery.frame_index,
                    tenant=self._tenant_of(session_index),
                )
                tracer.event(
                    "client.result_delivered",
                    lane=session.client_lane,
                    frame=delivery.frame_index,
                    ctx=delivery_ctx,
                    arrive_ms=round(delivery.arrive_ms, 6),
                    num_masks=len(delivery.masks),
                )
                tracer.add_span(
                    "client.integrate",
                    lane=session.client_lane,
                    frame=delivery.frame_index,
                    start_ms=integration_start,
                    dur_ms=integration,
                    ctx=delivery_ctx,
                )

        offloaded = False
        frame_ctx = RequestContext(
            session_index, frame_index, tenant=self._tenant_of(session_index)
        )
        if session.busy_until_ms <= now:
            with tracer.span(
                "client.process",
                lane=session.client_lane,
                frame=frame_index,
                start_ms=now,
                ctx=frame_ctx,
            ) as span:
                output = session.client.process_frame(frame, truth, now)
                span.dur_ms = output.compute_ms
            session.busy_until_ms = now + output.compute_ms
            session.last_masks = output.masks
            latency = output.compute_ms
            processed = True
            if output.offload is not None:
                offloaded = True
                session.offload_count += 1
                self._dispatch(
                    session,
                    session_index,
                    output.offload,
                    now + output.compute_ms,
                    now,
                )
        else:
            latency = (session.busy_until_ms - now) + frame_interval
            processed = False
            tracer.add_span(
                "client.stale_wait",
                lane=session.client_lane,
                frame=frame_index,
                start_ms=now,
                dur_ms=latency,
                ctx=frame_ctx,
                busy_until_ms=round(session.busy_until_ms, 6),
            )

        deadline_ms = (
            self.deadline_budget_ms
            if self.deadline_budget_ms is not None
            else frame_interval
        )
        self.pm.frames.inc()
        self.pm.frame_latency.observe(latency)
        if self._latency_ewma is None:
            self._latency_ewma = latency
        else:
            self._latency_ewma += 0.2 * (latency - self._latency_ewma)
        self.pm.latency_ewma.set(self._latency_ewma)
        if latency > deadline_ms:
            self.pm.deadline_miss.inc()
            if tracer.enabled:
                tracer.event(
                    "frame.deadline_miss",
                    lane=session.client_lane,
                    frame=frame_index,
                    ctx=frame_ctx,
                    latency_ms=round(latency, 6),
                    budget_ms=round(deadline_ms, 6),
                    over_ms=round(latency - deadline_ms, 6),
                    processed=processed,
                )

        rendered = {m.instance_id: m for m in session.last_masks}
        object_ious, object_areas = {}, {}
        for gt in truth.masks:
            if gt.area < self.min_gt_area:
                continue
            prediction = rendered.get(gt.instance_id)
            object_ious[gt.instance_id] = (
                mask_iou(prediction.mask, gt.mask) if prediction is not None else 0.0
            )
            object_areas[gt.instance_id] = gt.area
        session.metrics.append(
            FrameMetric(
                frame_index=frame_index,
                object_ious=object_ious,
                object_areas=object_areas,
                latency_ms=latency,
                client_processed=processed,
                offloaded=offloaded,
                num_rendered=len(session.last_masks),
            )
        )

    def _dispatch(self, session, session_index, request, send_time_ms, now) -> None:
        frame, truth = session.video.frame_at(request.frame_index)
        tracer = self.tracer
        ctx = RequestContext(
            session_index, request.frame_index, tenant=self._tenant_of(session_index)
        )
        if tracer.enabled:
            tracer.event(
                "offload.dispatch",
                lane=session.channel_lane,
                ts_ms=send_time_ms,
                frame=request.frame_index,
                ctx=ctx,
                reason=request.reason,
                payload_bytes=int(request.payload_bytes),
                encode_ms=round(request.encode_ms, 6),
            )
        uplink = session.channel.uplink_ms(
            request.payload_bytes, now_ms=send_time_ms + request.encode_ms
        )
        arrive = send_time_ms + request.encode_ms + uplink

        if self.scheduler is not None:
            backend_free = self.scheduler.is_free_at(arrive)
        else:
            backend_free = self.server.is_free_at(arrive)
        if tracer.enabled:
            tracer.add_span(
                "channel.uplink",
                lane=session.channel_lane,
                frame=request.frame_index,
                start_ms=send_time_ms + request.encode_ms,
                dur_ms=uplink,
                ctx=ctx,
                payload_bytes=int(request.payload_bytes),
                server_free_on_arrival=backend_free,
                **_channel_transfer_attrs(session.channel),
            )

        if self.scheduler is not None:
            budget_ms = (
                self.deadline_budget_ms
                if self.deadline_budget_ms is not None
                else self._frame_interval
            )
            admitted, _status = self.scheduler.submit(
                session_index,
                request,
                truth.masks,
                frame.shape,
                send_time_ms,
                arrive,
                budget_ms,
                now,
            )
            if not admitted:
                self._notify_offload_failed(session, request.frame_index, now)
            return

        completion, detections = self.server.submit(
            request, truth.masks, frame.shape, arrive, ctx=ctx
        )
        result_bytes = encoded_size_bytes(detections) + RESULT_HEADER_BYTES
        downlink = session.channel.downlink_ms(result_bytes, now_ms=completion)
        if tracer.enabled:
            tracer.add_span(
                "channel.downlink",
                lane=session.channel_lane,
                frame=request.frame_index,
                start_ms=completion,
                dur_ms=downlink,
                ctx=ctx,
                payload_bytes=int(result_bytes),
                num_masks=len(detections),
                **_channel_transfer_attrs(session.channel),
            )
        session.pending.append(
            _PendingDelivery(
                arrive_ms=completion + downlink,
                frame_index=request.frame_index,
                masks=detections,
            )
        )
