"""Multi-client pipeline: several devices sharing one edge server.

The paper's field deployment connects *eight* mobile devices to a single
Jetson AGX Xavier (Section VI-G).  :class:`MultiClientPipeline` interleaves
any number of (video, client, channel) sessions against one
:class:`~repro.runtime.pipeline.EdgeServer`, whose single-inference-at-a-
time queue then serializes the whole fleet's offloads — reproducing the
contention that separates a shared deployment from per-device lab runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..encoding.mask_codec import encoded_size_bytes
from ..image.masks import InstanceMask, mask_iou
from ..network.channel import Channel
from ..synthetic.world import SyntheticVideo
from .interface import ClientSystem
from .pipeline import (
    RESULT_HEADER_BYTES,
    EdgeServer,
    FrameMetric,
    RunResult,
    _PendingDelivery,
)

__all__ = ["ClientSession", "MultiClientPipeline"]


@dataclass
class ClientSession:
    """One device in the fleet."""

    video: SyntheticVideo
    client: ClientSystem
    channel: Channel
    # Mutable run state:
    busy_until_ms: float = 0.0
    last_masks: list[InstanceMask] = field(default_factory=list)
    pending: list[_PendingDelivery] = field(default_factory=list)
    metrics: list[FrameMetric] = field(default_factory=list)
    offload_count: int = 0


class MultiClientPipeline:
    """Drive N clients frame-locked against one shared edge server."""

    def __init__(
        self,
        sessions: list[ClientSession],
        server: EdgeServer,
        warmup_frames: int = 45,
        min_gt_area: int = 200,
    ):
        if not sessions:
            raise ValueError("MultiClientPipeline needs at least one session")
        lengths = {len(s.video) for s in sessions}
        if len(lengths) != 1:
            raise ValueError("all session videos must have the same length")
        self.sessions = sessions
        self.server = server
        self.warmup_frames = warmup_frames
        self.min_gt_area = min_gt_area

    def run(self) -> list[RunResult]:
        num_frames = len(self.sessions[0].video)
        fps = self.sessions[0].video.fps
        frame_interval = 1000.0 / fps

        for frame_index in range(num_frames):
            now = frame_index * frame_interval
            for session in self.sessions:
                self._step_session(session, frame_index, now, frame_interval)

        duration = num_frames * frame_interval
        return [
            RunResult(
                system=session.client.name,
                frames=session.metrics,
                warmup_frames=self.warmup_frames,
                offload_count=session.offload_count,
                bytes_up=session.channel.bytes_up,
                bytes_down=session.channel.bytes_down,
                server_busy_ms=self.server.busy_ms_total,
                duration_ms=duration,
            )
            for session in self.sessions
        ]

    # ------------------------------------------------------------------
    def _step_session(self, session, frame_index, now, frame_interval) -> None:
        frame, truth = session.video.frame_at(frame_index)

        ready = [d for d in session.pending if d.arrive_ms <= now]
        session.pending = [d for d in session.pending if d.arrive_ms > now]
        for delivery in sorted(ready, key=lambda d: d.arrive_ms):
            integration = session.client.receive_result(
                delivery.frame_index, delivery.masks, now
            )
            session.busy_until_ms = max(session.busy_until_ms, now) + integration

        offloaded = False
        if session.busy_until_ms <= now:
            output = session.client.process_frame(frame, truth, now)
            session.busy_until_ms = now + output.compute_ms
            session.last_masks = output.masks
            latency = output.compute_ms
            processed = True
            if output.offload is not None:
                offloaded = True
                session.offload_count += 1
                self._dispatch(session, output.offload, now + output.compute_ms)
        else:
            latency = (session.busy_until_ms - now) + frame_interval
            processed = False

        rendered = {m.instance_id: m for m in session.last_masks}
        object_ious, object_areas = {}, {}
        for gt in truth.masks:
            if gt.area < self.min_gt_area:
                continue
            prediction = rendered.get(gt.instance_id)
            object_ious[gt.instance_id] = (
                mask_iou(prediction.mask, gt.mask) if prediction is not None else 0.0
            )
            object_areas[gt.instance_id] = gt.area
        session.metrics.append(
            FrameMetric(
                frame_index=frame_index,
                object_ious=object_ious,
                object_areas=object_areas,
                latency_ms=latency,
                client_processed=processed,
                offloaded=offloaded,
                num_rendered=len(session.last_masks),
            )
        )

    def _dispatch(self, session, request, send_time_ms) -> None:
        frame, truth = session.video.frame_at(request.frame_index)
        uplink = session.channel.uplink_ms(request.payload_bytes)
        arrive = send_time_ms + request.encode_ms + uplink
        completion, detections = self.server.submit(
            request, truth.masks, frame.shape, arrive
        )
        downlink = session.channel.downlink_ms(
            encoded_size_bytes(detections) + RESULT_HEADER_BYTES
        )
        session.pending.append(
            _PendingDelivery(
                arrive_ms=completion + downlink,
                frame_index=request.frame_index,
                masks=detections,
            )
        )
