"""Client-system interface for the mobile/edge pipeline.

Every compared system (edgeIS, EAAR, EdgeDuet, best-effort, mobile-only)
implements :class:`ClientSystem`; the :class:`~repro.runtime.pipeline.Pipeline`
owns the clock, the channel, and the edge server, and drives the client
frame by frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..encoding.tiles import EncodedFrame
from ..image.frame import VideoFrame
from ..image.masks import InstanceMask
from ..model.acceleration import InferenceInstruction
from ..synthetic.world import GroundTruth

__all__ = ["OffloadRequest", "ClientFrameOutput", "ClientSystem"]


@dataclass
class OffloadRequest:
    """A frame the client wants segmented by the edge."""

    frame_index: int
    payload_bytes: int
    encode_ms: float
    instructions: list[InferenceInstruction] | None = None
    use_dynamic_anchors: bool = True
    use_roi_pruning: bool = True
    encoded: EncodedFrame | None = None  # for per-box fidelity lookups
    reason: str = ""


@dataclass
class ClientFrameOutput:
    """What the client produced for one captured frame."""

    masks: list[InstanceMask]
    compute_ms: float
    offload: OffloadRequest | None = None


@runtime_checkable
class ClientSystem(Protocol):
    """A mobile-side system under test."""

    name: str

    def process_frame(
        self, frame: VideoFrame, truth: GroundTruth, now_ms: float
    ) -> ClientFrameOutput:
        """Handle a captured frame; return display masks + offload intent.

        ``truth`` is available *only* for sanctioned simulation paths
        (oracle feature frontend, on-device model simulation) — never for
        producing display masks directly.
        """
        ...

    def receive_result(
        self, frame_index: int, masks: list[InstanceMask], now_ms: float
    ) -> float:
        """Integrate a segmentation result from the edge.

        Returns the integration cost in ms (added to the client's busy
        time).
        """
        ...

    def memory_bytes(self) -> int:
        """Approximate live client memory (for the resource study)."""
        ...

    def offload_rejected(self, frame_index: int, now_ms: float) -> None:
        """The serving layer dropped this offload (admission reject or
        deadline shed) — release any in-flight accounting and carry on
        rendering from local state.  No result will arrive."""
        ...
