"""The mobile/edge pipeline: a per-frame discrete-event simulation.

Timeline per captured frame (camera at ``fps``):

1. pending edge results whose downlink completed are delivered;
2. if the client is free, it processes the frame (tracker / VO / local
   model), yielding display masks, a compute time, and possibly an offload;
   if it is still busy with an earlier frame, the *previous* display masks
   are re-rendered (that is the paper's "latency accumulates and results in
   a delayed mask rendering");
3. an offload is encoded, shipped over the channel, queued on the edge
   (one inference at a time), run through the simulated model and shipped
   back.

Per-frame metrics record the IoU of whatever was on screen against the
frame's ground truth — the exact quantity behind every accuracy figure in
the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..encoding.mask_codec import encoded_size_bytes
from ..image.masks import InstanceMask, mask_iou
from ..model.degrade import degrade_mask_to_iou
from ..model.maskrcnn import SimulatedSegmentationModel
from ..network.channel import Channel
from ..obs.trace import NULL_TRACER, RequestContext, Tracer
from ..synthetic.world import SyntheticVideo
from .interface import ClientSystem, OffloadRequest

__all__ = [
    "FrameMetric",
    "RunResult",
    "EdgeServer",
    "Pipeline",
    "PipelineMetrics",
]

RESULT_HEADER_BYTES = 200  # transport/container overhead per result


@dataclass
class PipelineMetrics:
    """The ``pipeline.*`` instruments shared by every pipeline flavor.

    Registered through one helper so the single-client
    (:class:`Pipeline`) and multi-client
    (:class:`~repro.runtime.multi.MultiClientPipeline`) paths can never
    drift on counter/gauge names — dashboards and BENCH counters see one
    vocabulary regardless of topology.
    """

    frames: object
    deadline_miss: object
    frame_latency: object
    latency_ewma: object
    pending: object

    @classmethod
    def register(cls, metrics) -> "PipelineMetrics":
        return cls(
            frames=metrics.counter("pipeline.frames"),
            deadline_miss=metrics.counter("pipeline.deadline_miss"),
            frame_latency=metrics.histogram("pipeline.frame_latency_ms"),
            # Live gauges the timeline sampler snapshots: an EWMA of
            # display latency and the number of results still in flight.
            latency_ewma=metrics.gauge("pipeline.frame_latency_ewma_ms"),
            pending=metrics.gauge("pipeline.pending_deliveries"),
        )


def _channel_transfer_attrs(channel: Channel) -> dict:
    """Span attrs describing the channel's most recent transfer: the
    stall the partition window added (when any) and the carrying link
    (only when a scheduled handoff moved it off the base profile)."""
    attrs = {}
    if channel.last_stall_ms > 0.0:
        attrs["stall_ms"] = round(channel.last_stall_ms, 6)
    if channel.last_link != channel.profile.name:
        attrs["link"] = channel.last_link
    return attrs


@dataclass
class FrameMetric:
    """Everything measured for one displayed frame."""

    frame_index: int
    object_ious: dict[int, float]
    object_areas: dict[int, int]
    latency_ms: float
    client_processed: bool  # False = client was busy, stale display
    offloaded: bool
    num_rendered: int

    @property
    def mean_iou(self) -> float:
        if not self.object_ious:
            return 1.0  # empty scene, nothing to segment
        return float(np.mean(list(self.object_ious.values())))


@dataclass
class RunResult:
    """Aggregated outcome of one pipeline run."""

    system: str
    frames: list[FrameMetric]
    warmup_frames: int
    offload_count: int
    bytes_up: int
    bytes_down: int
    server_busy_ms: float
    duration_ms: float

    def _measured(self) -> list[FrameMetric]:
        return [f for f in self.frames if f.frame_index >= self.warmup_frames]

    def per_object_ious(self) -> np.ndarray:
        values = [
            iou for f in self._measured() for iou in f.object_ious.values()
        ]
        return np.asarray(values) if values else np.zeros(0)

    def mean_iou(self) -> float:
        ious = self.per_object_ious()
        return float(ious.mean()) if len(ious) else 1.0

    def false_rate(self, threshold: float = 0.75) -> float:
        ious = self.per_object_ious()
        if len(ious) == 0:
            return 0.0
        return float((ious < threshold).mean())

    def mean_latency_ms(self) -> float:
        measured = self._measured()
        if not measured:
            return 0.0
        return float(np.mean([f.latency_ms for f in measured]))

    def iou_cdf(self, grid: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(grid, P[IoU <= grid]) over measured per-object IoUs."""
        ious = self.per_object_ious()
        if grid is None:
            grid = np.linspace(0.0, 1.0, 101)
        if len(ious) == 0:
            return grid, np.zeros_like(grid)
        cdf = np.array([(ious <= g).mean() for g in grid])
        return grid, cdf

    def server_utilization(self) -> float:
        return self.server_busy_ms / max(self.duration_ms, 1e-9)

    def to_dict(self, include_frames: bool = False) -> dict:
        """JSON-serializable summary (optionally with the per-frame trace)."""
        payload = {
            "system": self.system,
            "warmup_frames": self.warmup_frames,
            "num_frames": len(self.frames),
            "mean_iou": self.mean_iou(),
            "false_rate_75": self.false_rate(0.75),
            "false_rate_50": self.false_rate(0.5),
            "mean_latency_ms": self.mean_latency_ms(),
            "offload_count": self.offload_count,
            "bytes_up": self.bytes_up,
            "bytes_down": self.bytes_down,
            "server_utilization": self.server_utilization(),
        }
        if include_frames:
            payload["frames"] = [
                {
                    "frame": f.frame_index,
                    "ious": {str(k): v for k, v in f.object_ious.items()},
                    "latency_ms": f.latency_ms,
                    "processed": f.client_processed,
                    "offloaded": f.offloaded,
                }
                for f in self.frames
            ]
        return payload


@dataclass
class _PendingDelivery:
    arrive_ms: float
    frame_index: int
    masks: list[InstanceMask]


class EdgeServer:
    """A single-GPU edge node running the (simulated) segmentation model."""

    def __init__(
        self,
        model: SimulatedSegmentationModel,
        rng: np.random.Generator | None = None,
        tracer: Tracer | None = None,
    ):
        self.model = model
        self._rng = rng or np.random.default_rng(7)
        self.free_at_ms = 0.0
        self.busy_ms_total = 0.0
        # Runtime service-time multiplier — the chaos straggler fault
        # flips this mid-run (1.0 = exact pre-chaos latency, since
        # ``x * 1.0 == x`` for every finite float).
        self.latency_scale = 1.0
        # Trace lane; a ServerPool renames its replicas server0..serverN.
        self.lane = "server"
        self.attach_tracer(tracer if tracer is not None else NULL_TRACER)

    def attach_tracer(self, tracer: Tracer) -> None:
        """(Re)bind a tracer — pipelines wire their own through here."""
        self.tracer = tracer
        metrics = tracer.metrics
        self._m_requests = metrics.counter("server.requests")
        self._h_queue_wait = metrics.histogram("server.queue_wait_ms")
        self._h_infer = metrics.histogram("server.infer_ms")
        self.model.attach_metrics(metrics)

    def batch_setup_ms(self) -> float:
        """Fixed per-call cost of one inference pass on this device.

        Calibrates the batched latency model ``setup + k * n**alpha``:
        the fixed RPN/backbone and second-stage entry costs are paid once
        per batch, the per-item work ``k`` amortizes sub-linearly.
        """
        return self.model.device.scale(
            self.model.cost.rpn_fixed_ms + self.model.cost.inference_fixed_ms
        )

    def _infer_one(
        self,
        request: OffloadRequest,
        truth_masks: list[InstanceMask],
        image_shape: tuple[int, int],
    ):
        """Model pass + encoded-fidelity degradation for one request."""
        result = self.model.infer(
            truth_masks,
            image_shape,
            instructions=request.instructions,
            use_dynamic_anchors=request.use_dynamic_anchors,
            use_roi_pruning=request.use_roi_pruning,
        )
        detections = result.masks
        # Coarsely-encoded object tiles cost the model boundary accuracy.
        if request.encoded is not None:
            degraded = []
            for detection in detections:
                box = detection.box
                if box is None:
                    continue
                fidelity = request.encoded.fidelity_for_box(box)
                if fidelity < 0.98:
                    target = 0.55 + 0.45 * fidelity
                    detection = InstanceMask(
                        instance_id=detection.instance_id,
                        class_label=detection.class_label,
                        mask=degrade_mask_to_iou(
                            detection.mask, target, self._rng
                        ),
                        score=detection.score,
                    )
                degraded.append(detection)
            detections = degraded
        return result, detections

    def submit(
        self,
        request: OffloadRequest,
        truth_masks: list[InstanceMask],
        image_shape: tuple[int, int],
        arrive_ms: float,
        ctx: RequestContext | None = None,
    ) -> tuple[float, list[InstanceMask]]:
        """Run inference; returns (completion time ms, detections)."""
        start = max(arrive_ms, self.free_at_ms)
        tracer = self.tracer
        if tracer.enabled:
            if 0.0 < self.free_at_ms < arrive_ms:
                tracer.add_span(
                    "server.idle",
                    lane=self.lane,
                    start_ms=self.free_at_ms,
                    dur_ms=arrive_ms - self.free_at_ms,
                )
            tracer.event(
                "server.queue_enter",
                lane=self.lane,
                ts_ms=arrive_ms,
                frame=request.frame_index,
                ctx=ctx,
                was_free=self.is_free_at(arrive_ms),
            )
        result, detections = self._infer_one(request, truth_masks, image_shape)
        service_ms = result.total_ms * self.latency_scale
        completion = start + service_ms
        self.free_at_ms = completion
        self.busy_ms_total += service_ms
        self._m_requests.inc()
        self._h_queue_wait.observe(start - arrive_ms)
        self._h_infer.observe(service_ms)
        if tracer.enabled:
            tracer.event(
                "server.queue_exit",
                lane=self.lane,
                ts_ms=start,
                frame=request.frame_index,
                ctx=ctx,
                queue_wait_ms=round(start - arrive_ms, 6),
            )
            attrs = {
                "rpn_ms": round(result.rpn_ms, 6),
                "inference_ms": round(result.inference_ms, 6),
                "anchors_evaluated": result.anchors_evaluated,
                "num_proposals": result.num_proposals,
                "num_rois": result.num_rois,
                "num_detections": len(detections),
                "location_fraction": round(result.location_fraction, 6),
            }
            if result.pruning is not None:
                attrs["rois_pruned_dominated"] = result.pruning.num_pruned_dominated
                attrs["rois_pruned_nms"] = result.pruning.num_pruned_nms
            tracer.add_span(
                "server.infer",
                lane=self.lane,
                frame=request.frame_index,
                start_ms=start,
                dur_ms=service_ms,
                ctx=ctx,
                **attrs,
            )
        return completion, detections

    def submit_batch(
        self,
        entries: list[tuple],
        start_ms: float,
        alpha: float,
    ) -> tuple[float, list[list[InstanceMask]], list[float]]:
        """Serve several requests as one batched inference call.

        ``entries`` are ``(request, truth_masks, image_shape, arrive_ms,
        ctx)`` tuples (``ctx`` a :class:`RequestContext` or None);
        ``start_ms`` is when the scheduler dispatches the batch.
        Latency follows the calibrated sub-linear model::

            batch_ms = setup + k * n**alpha,   k = mean(solo_ms) - setup

        where ``setup`` (:meth:`batch_setup_ms`) is the device-scaled
        fixed cost paid once per call and ``solo_ms`` are the per-item
        latencies the cost model charges when served alone — so a batch
        of one reproduces the solo latency exactly.  Returns
        ``(completion_ms, per-item detections, per-item solo_ms)``; every
        item completes when the batch does.
        """
        if not entries:
            raise ValueError("submit_batch needs at least one entry")
        start = max(start_ms, self.free_at_ms)
        tracer = self.tracer
        results = []
        all_detections: list[list[InstanceMask]] = []
        for request, truth_masks, image_shape, arrive_ms, ctx in entries:
            if tracer.enabled:
                tracer.event(
                    "server.queue_enter",
                    lane=self.lane,
                    ts_ms=arrive_ms,
                    frame=request.frame_index,
                    ctx=ctx,
                    was_free=self.is_free_at(arrive_ms),
                )
            result, detections = self._infer_one(
                request, truth_masks, image_shape
            )
            results.append(result)
            all_detections.append(detections)
        solo_ms = [result.total_ms for result in results]
        setup = self.batch_setup_ms()
        size = len(entries)
        per_item = max(sum(solo_ms) / size - setup, 0.0)
        batch_ms = (setup + per_item * size**alpha) * self.latency_scale
        completion = start + batch_ms
        self.free_at_ms = completion
        self.busy_ms_total += batch_ms
        for (request, _, _, arrive_ms, ctx), result in zip(entries, results):
            self._m_requests.inc()
            self._h_queue_wait.observe(start - arrive_ms)
            if tracer.enabled:
                tracer.event(
                    "server.queue_exit",
                    lane=self.lane,
                    ts_ms=start,
                    frame=request.frame_index,
                    ctx=ctx,
                    queue_wait_ms=round(start - arrive_ms, 6),
                )
        self._h_infer.observe(batch_ms)
        if tracer.enabled:
            member_traces = [
                entry[4].trace_id for entry in entries if entry[4] is not None
            ]
            tracer.add_span(
                "server.infer",
                lane=self.lane,
                frame=entries[0][0].frame_index,
                start_ms=start,
                dur_ms=batch_ms,
                ctx=entries[0][4],
                batch_size=size,
                setup_ms=round(setup, 6),
                solo_total_ms=round(sum(solo_ms), 6),
                traces=member_traces,
            )
        return completion, all_detections, solo_ms

    def is_free_at(self, now_ms: float) -> bool:
        """True when a request arriving at ``now_ms`` would start at once
        instead of queueing behind an earlier inference."""
        return self.free_at_ms <= now_ms


class Pipeline:
    """Drives one client system over one video through one channel."""

    def __init__(
        self,
        video: SyntheticVideo,
        client: ClientSystem,
        channel: Channel,
        server: EdgeServer,
        warmup_frames: int = 45,
        min_gt_area: int = 200,
        tracer: Tracer | None = None,
        deadline_budget_ms: float | None = None,
        sampler=None,
    ):
        self.video = video
        self.client = client
        self.channel = channel
        self.server = server
        self.warmup_frames = warmup_frames
        # Optional repro.obs.timeline.TimelineSampler, ticked once per
        # frame so gauges/counters become fixed-interval time series.
        self.sampler = sampler
        # Ground-truth slivers below this pixel count are not measured —
        # video-segmentation datasets do not annotate barely-visible
        # occlusion remnants either.
        self.min_gt_area = min_gt_area
        # Per-frame display deadline; None = one frame interval (the
        # paper's 30 fps real-time budget at the default frame rate).
        self.deadline_budget_ms = deadline_budget_ms
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled and not server.tracer.enabled:
            server.attach_tracer(self.tracer)
        self.pm = PipelineMetrics.register(self.tracer.metrics)
        self._latency_ewma: float | None = None
        self._pending_list: list[_PendingDelivery] = []

    _EWMA_ALPHA = 0.2

    def _observe_latency(self, latency: float, pending_count: int) -> None:
        """Fold one frame's display latency into the live gauges."""
        if self._latency_ewma is None:
            self._latency_ewma = latency
        else:
            self._latency_ewma += self._EWMA_ALPHA * (latency - self._latency_ewma)
        self.pm.latency_ewma.set(self._latency_ewma)
        self.pm.pending.set(pending_count)

    def run(self) -> RunResult:
        frame_interval = 1000.0 / self.video.fps
        deadline_ms = (
            self.deadline_budget_ms
            if self.deadline_budget_ms is not None
            else frame_interval
        )
        client_busy_until = 0.0
        last_masks: list[InstanceMask] = []
        metrics: list[FrameMetric] = []
        offload_count = 0
        tracer = self.tracer

        for frame, truth in self.video:
            now = frame.index * frame_interval
            tracer.set_now(now)

            # 1. deliver completed edge results.
            pending = self._pending_list
            ready = [d for d in pending if d.arrive_ms <= now]
            pending[:] = [d for d in pending if d.arrive_ms > now]
            for delivery in sorted(ready, key=lambda d: d.arrive_ms):
                integration_ms = self.client.receive_result(
                    delivery.frame_index, delivery.masks, now
                )
                integration_start = max(client_busy_until, now)
                client_busy_until = integration_start + integration_ms
                if tracer.enabled:
                    delivery_ctx = RequestContext(0, delivery.frame_index)
                    tracer.event(
                        "client.result_delivered",
                        lane="client",
                        frame=delivery.frame_index,
                        ctx=delivery_ctx,
                        arrive_ms=round(delivery.arrive_ms, 6),
                        num_masks=len(delivery.masks),
                    )
                    tracer.add_span(
                        "client.integrate",
                        lane="client",
                        frame=delivery.frame_index,
                        start_ms=integration_start,
                        dur_ms=integration_ms,
                        ctx=delivery_ctx,
                    )

            # 2. client turn.
            offloaded = False
            frame_ctx = RequestContext(0, frame.index)
            if client_busy_until <= now:
                with tracer.span(
                    "client.process",
                    lane="client",
                    frame=frame.index,
                    start_ms=now,
                    ctx=frame_ctx,
                ) as span:
                    output = self.client.process_frame(frame, truth, now)
                    span.dur_ms = output.compute_ms
                client_busy_until = now + output.compute_ms
                last_masks = output.masks
                latency = output.compute_ms
                processed = True
                if output.offload is not None:
                    offloaded = True
                    offload_count += 1
                    self._dispatch(output.offload, now + output.compute_ms)
            else:
                latency = (client_busy_until - now) + frame_interval
                processed = False
                tracer.add_span(
                    "client.stale_wait",
                    lane="client",
                    frame=frame.index,
                    start_ms=now,
                    dur_ms=latency,
                    ctx=frame_ctx,
                    busy_until_ms=round(client_busy_until, 6),
                )

            # 3. deadline accounting: a displayed frame later than one
            # budget behind capture is a first-class miss event.
            self.pm.frames.inc()
            self.pm.frame_latency.observe(latency)
            self._observe_latency(latency, len(self._pending_list))
            if latency > deadline_ms:
                self.pm.deadline_miss.inc()
                if tracer.enabled:
                    tracer.event(
                        "frame.deadline_miss",
                        lane="client",
                        frame=frame.index,
                        ctx=frame_ctx,
                        latency_ms=round(latency, 6),
                        budget_ms=round(deadline_ms, 6),
                        over_ms=round(latency - deadline_ms, 6),
                        processed=processed,
                    )

            # 4. measure what is on screen against this frame's truth.
            rendered = {m.instance_id: m for m in last_masks}
            object_ious = {}
            object_areas = {}
            for gt in truth.masks:
                if gt.area < self.min_gt_area:
                    continue
                prediction = rendered.get(gt.instance_id)
                object_ious[gt.instance_id] = (
                    mask_iou(prediction.mask, gt.mask) if prediction is not None else 0.0
                )
                object_areas[gt.instance_id] = gt.area
            metrics.append(
                FrameMetric(
                    frame_index=frame.index,
                    object_ious=object_ious,
                    object_areas=object_areas,
                    latency_ms=latency,
                    client_processed=processed,
                    offloaded=offloaded,
                    num_rendered=len(last_masks),
                )
            )
            if self.sampler is not None:
                self.sampler.tick(now)

        # Flush deliveries for bookkeeping completeness (not measured).
        duration = len(self.video) * frame_interval
        return RunResult(
            system=self.client.name,
            frames=metrics,
            warmup_frames=self.warmup_frames,
            offload_count=offload_count,
            bytes_up=self.channel.bytes_up,
            bytes_down=self.channel.bytes_down,
            server_busy_ms=self.server.busy_ms_total,
            duration_ms=duration,
        )

    # ------------------------------------------------------------------
    def _dispatch(self, request: OffloadRequest, send_time_ms: float) -> None:
        frame, truth = self.video.frame_at(request.frame_index)
        tracer = self.tracer
        ctx = RequestContext(0, request.frame_index)
        if tracer.enabled:
            tracer.event(
                "offload.dispatch",
                lane="channel",
                ts_ms=send_time_ms,
                frame=request.frame_index,
                ctx=ctx,
                reason=request.reason,
                payload_bytes=int(request.payload_bytes),
                encode_ms=round(request.encode_ms, 6),
            )
        uplink = self.channel.uplink_ms(
            request.payload_bytes, now_ms=send_time_ms + request.encode_ms
        )
        arrive = send_time_ms + request.encode_ms + uplink
        if tracer.enabled:
            tracer.add_span(
                "channel.uplink",
                lane="channel",
                frame=request.frame_index,
                start_ms=send_time_ms + request.encode_ms,
                dur_ms=uplink,
                ctx=ctx,
                payload_bytes=int(request.payload_bytes),
                server_free_on_arrival=self.server.is_free_at(arrive),
                **_channel_transfer_attrs(self.channel),
            )
        completion, detections = self.server.submit(
            request, truth.masks, frame.shape, arrive, ctx=ctx
        )
        result_bytes = encoded_size_bytes(detections) + RESULT_HEADER_BYTES
        downlink = self.channel.downlink_ms(result_bytes, now_ms=completion)
        if tracer.enabled:
            tracer.add_span(
                "channel.downlink",
                lane="channel",
                frame=request.frame_index,
                start_ms=completion,
                dur_ms=downlink,
                ctx=ctx,
                payload_bytes=int(result_bytes),
                num_masks=len(detections),
                **_channel_transfer_attrs(self.channel),
            )
        self._deliver(request.frame_index, detections, completion + downlink)

    def _deliver(self, frame_index: int, masks: list[InstanceMask], at_ms: float) -> None:
        # Bound method split out so tests can intercept deliveries.
        self._pending_list.append(
            _PendingDelivery(arrive_ms=at_ms, frame_index=frame_index, masks=masks)
        )
