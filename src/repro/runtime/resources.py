"""Mobile resource and power models (Fig. 15 and Section VI-F2).

CPU utilization is the fraction of each frame interval the client spends
computing; memory follows the client's own estimate (dominated by the VO
map and keyframe cache, which the map's clearing algorithm bounds); energy
integrates a simple power model: a busy-CPU wattage plus camera/display
floor plus per-byte radio cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DevicePowerProfile", "DEVICE_POWER", "ResourceTrace", "ResourceMonitor"]


@dataclass(frozen=True)
class DevicePowerProfile:
    """Power constants of a phone-class device."""

    name: str
    battery_wh: float
    idle_watts: float  # screen + camera + sensor floor while the app runs
    cpu_busy_watts: float  # marginal cost of a saturated big core
    radio_joules_per_mb: float


DEVICE_POWER: dict[str, DevicePowerProfile] = {
    "iphone_11": DevicePowerProfile("iphone_11", 11.9, 1.1, 2.4, 0.45),
    "galaxy_s10": DevicePowerProfile("galaxy_s10", 13.1, 1.3, 3.0, 0.55),
}


@dataclass
class ResourceTrace:
    """Per-frame resource samples of one run."""

    times_s: list[float] = field(default_factory=list)
    cpu_fraction: list[float] = field(default_factory=list)
    memory_bytes: list[int] = field(default_factory=list)
    energy_joules: float = 0.0

    def cpu_percent_mean(self) -> float:
        return 100.0 * float(np.mean(self.cpu_fraction)) if self.cpu_fraction else 0.0

    def memory_mb_series(self) -> np.ndarray:
        return np.asarray(self.memory_bytes, dtype=float) / (1024 * 1024)

    def memory_growth_mb_per_s(self) -> float:
        """Linear-fit growth rate over the first half of the trace (before
        the clearing algorithm kicks in)."""
        if len(self.times_s) < 4:
            return 0.0
        half = max(len(self.times_s) // 2, 2)
        times = np.asarray(self.times_s[:half])
        memory = self.memory_mb_series()[:half]
        slope = np.polyfit(times, memory, 1)[0]
        return float(slope)

    def battery_percent(self, profile: DevicePowerProfile) -> float:
        capacity_j = profile.battery_wh * 3600.0
        return 100.0 * self.energy_joules / capacity_j


class ResourceMonitor:
    """Accumulates a :class:`ResourceTrace` while a pipeline runs."""

    def __init__(self, power: DevicePowerProfile, fps: float = 30.0):
        self.power = power
        self.fps = fps
        self.trace = ResourceTrace()

    def sample(
        self, frame_index: int, compute_ms: float, memory_bytes: int, bytes_sent: int
    ) -> None:
        interval_ms = 1000.0 / self.fps
        busy = min(compute_ms / interval_ms, 1.0)
        self.trace.times_s.append(frame_index / self.fps)
        self.trace.cpu_fraction.append(busy)
        self.trace.memory_bytes.append(int(memory_bytes))
        interval_s = interval_ms / 1000.0
        self.trace.energy_joules += (
            self.power.idle_watts * interval_s
            + self.power.cpu_busy_watts * busy * interval_s
            + self.power.radio_joules_per_mb * bytes_sent / 1e6
        )

    def extrapolate_battery_percent(self, minutes: float) -> float:
        """Battery drain over ``minutes`` at the observed average power."""
        if not self.trace.times_s:
            return 0.0
        observed_s = max(self.trace.times_s[-1], 1e-9)
        average_watts = self.trace.energy_joules / observed_s
        capacity_j = self.power.battery_wh * 3600.0
        return 100.0 * average_watts * minutes * 60.0 / capacity_j
