"""Video frame container and basic raster operations.

This module stands in for the slice of OpenCV the paper's client uses for
"feeding video frames at fixed 30 fps" — grayscale conversion, Gaussian
smoothing, gradients and pyramids, all in numpy/scipy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

__all__ = [
    "VideoFrame",
    "to_grayscale",
    "gaussian_blur",
    "sobel_gradients",
    "downsample",
    "image_entropy",
    "block_entropy",
]


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """ITU-R BT.601 luma conversion to float32 in [0, 255]."""
    image = np.asarray(image)
    if image.ndim == 2:
        return image.astype(np.float32)
    if image.ndim == 3 and image.shape[2] == 3:
        weights = np.array([0.299, 0.587, 0.114], dtype=np.float32)
        return image.astype(np.float32) @ weights
    raise ValueError(f"expected (H, W) or (H, W, 3) image, got {image.shape}")


def gaussian_blur(image: np.ndarray, sigma: float = 1.0) -> np.ndarray:
    return ndimage.gaussian_filter(np.asarray(image, dtype=np.float32), sigma=sigma)


def sobel_gradients(gray: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(gx, gy) Sobel gradients of a grayscale image."""
    gray = np.asarray(gray, dtype=np.float32)
    gx = ndimage.sobel(gray, axis=1)
    gy = ndimage.sobel(gray, axis=0)
    return gx, gy


def downsample(gray: np.ndarray, factor: int = 2) -> np.ndarray:
    """Anti-aliased decimation for image pyramids."""
    if factor <= 1:
        return np.asarray(gray, dtype=np.float32)
    blurred = gaussian_blur(gray, sigma=0.5 * factor)
    return blurred[::factor, ::factor]


def resize_bilinear(gray: np.ndarray, scale: float) -> np.ndarray:
    """Bilinear resize by an arbitrary scale factor (ORB pyramid levels)."""
    gray = np.asarray(gray, dtype=np.float32)
    if scale == 1.0:
        return gray.copy()
    if scale < 1.0:
        gray = gaussian_blur(gray, sigma=0.5 / scale - 0.5)
    out_h = max(int(round(gray.shape[0] * scale)), 1)
    out_w = max(int(round(gray.shape[1] * scale)), 1)
    ys = np.linspace(0, gray.shape[0] - 1, out_h)
    xs = np.linspace(0, gray.shape[1] - 1, out_w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, gray.shape[0] - 1)
    x1 = np.minimum(x0 + 1, gray.shape[1] - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    top = gray[np.ix_(y0, x0)] * (1 - wx) + gray[np.ix_(y0, x1)] * wx
    bottom = gray[np.ix_(y1, x0)] * (1 - wx) + gray[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bottom * wy


def image_entropy(gray: np.ndarray, bins: int = 32) -> float:
    """Shannon entropy of the intensity histogram, in bits.

    The tile encoder's rate model treats entropy as a proxy for how many
    bits a region costs to encode at a given quality.
    """
    gray = np.asarray(gray, dtype=np.float32)
    if gray.size == 0:
        return 0.0
    hist, _ = np.histogram(gray, bins=bins, range=(0.0, 255.0))
    total = hist.sum()
    if total == 0:
        return 0.0
    probabilities = hist[hist > 0] / total
    return float(-np.sum(probabilities * np.log2(probabilities)))


def block_entropy(gray: np.ndarray, block: int) -> np.ndarray:
    """Per-block entropy map of a grayscale image.

    Returns an array of shape ``(ceil(H/block), ceil(W/block))``.
    """
    gray = np.asarray(gray, dtype=np.float32)
    rows = int(np.ceil(gray.shape[0] / block))
    cols = int(np.ceil(gray.shape[1] / block))
    out = np.zeros((rows, cols), dtype=np.float32)
    for r in range(rows):
        for c in range(cols):
            tile = gray[r * block : (r + 1) * block, c * block : (c + 1) * block]
            out[r, c] = image_entropy(tile)
    return out


@dataclass
class VideoFrame:
    """One frame of a 30 fps stream.

    Attributes
    ----------
    index:
        Sequence number in the video.
    timestamp:
        Capture time in seconds (index / fps for synthetic streams).
    image:
        (H, W, 3) uint8 RGB raster.
    """

    index: int
    timestamp: float
    image: np.ndarray
    _gray: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        self.image = np.asarray(self.image)
        if self.image.ndim != 3 or self.image.shape[2] != 3:
            raise ValueError("VideoFrame.image must be (H, W, 3)")

    @property
    def height(self) -> int:
        return int(self.image.shape[0])

    @property
    def width(self) -> int:
        return int(self.image.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.height, self.width)

    @property
    def gray(self) -> np.ndarray:
        """Cached float32 grayscale raster."""
        if self._gray is None:
            self._gray = to_grayscale(self.image)
        return self._gray
