"""Mask-overlay drawing and image export.

The mobile client of the paper "renders masks and visual effects on the
screen" via OpenCV; these helpers provide that rendering path for the
examples and for debugging — colored translucent mask overlays, contour
outlines, and a dependency-free PPM/PGM writer so frames can be saved and
inspected without any imaging library.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .contours import mask_boundary
from .masks import InstanceMask

__all__ = ["instance_color", "overlay_masks", "draw_boxes", "save_ppm", "save_pgm"]

_PALETTE = np.array(
    [
        (230, 80, 60),
        (70, 140, 230),
        (90, 200, 90),
        (240, 200, 60),
        (180, 100, 220),
        (80, 210, 210),
        (240, 130, 180),
        (160, 160, 80),
    ],
    dtype=np.float32,
)


def instance_color(instance_id: int) -> np.ndarray:
    """Stable RGB color for an instance id."""
    return _PALETTE[instance_id % len(_PALETTE)]


def overlay_masks(
    image: np.ndarray,
    masks: list[InstanceMask],
    alpha: float = 0.45,
    outline: bool = True,
) -> np.ndarray:
    """Blend instance masks over an RGB image; returns a new uint8 array."""
    canvas = np.asarray(image, dtype=np.float32).copy()
    if canvas.ndim == 2:
        canvas = np.repeat(canvas[..., None], 3, axis=2)
    for instance in masks:
        color = instance_color(instance.instance_id)
        region = instance.mask
        if region.shape != canvas.shape[:2]:
            raise ValueError("mask shape does not match image")
        canvas[region] = (1 - alpha) * canvas[region] + alpha * color
        if outline:
            border = mask_boundary(region)
            canvas[border] = color
    return np.clip(canvas, 0, 255).astype(np.uint8)


def draw_boxes(
    image: np.ndarray, boxes: list[tuple[int, int, int, int]], instance_ids=None
) -> np.ndarray:
    """Draw 1-px rectangle outlines; returns a new uint8 array."""
    canvas = np.asarray(image, dtype=np.float32).copy()
    if canvas.ndim == 2:
        canvas = np.repeat(canvas[..., None], 3, axis=2)
    height, width = canvas.shape[:2]
    for index, box in enumerate(boxes):
        x0, y0, x1, y1 = (int(v) for v in box)
        x0, y0 = max(x0, 0), max(y0, 0)
        x1, y1 = min(x1, width), min(y1, height)
        if x1 <= x0 or y1 <= y0:
            continue
        color = instance_color(
            instance_ids[index] if instance_ids is not None else index
        )
        canvas[y0, x0:x1] = color
        canvas[y1 - 1, x0:x1] = color
        canvas[y0:y1, x0] = color
        canvas[y0:y1, x1 - 1] = color
    return np.clip(canvas, 0, 255).astype(np.uint8)


def save_ppm(path: str | Path, image: np.ndarray) -> None:
    """Write an (H, W, 3) uint8 array as a binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("save_ppm expects an (H, W, 3) image")
    image = image.astype(np.uint8)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{image.shape[1]} {image.shape[0]}\n255\n".encode())
        handle.write(image.tobytes())


def save_pgm(path: str | Path, gray: np.ndarray) -> None:
    """Write an (H, W) array as a binary PGM (P5), clipped to uint8."""
    gray = np.asarray(gray)
    if gray.ndim != 2:
        raise ValueError("save_pgm expects an (H, W) image")
    gray = np.clip(gray, 0, 255).astype(np.uint8)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(f"P5\n{gray.shape[1]} {gray.shape[0]}\n255\n".encode())
        handle.write(gray.tobytes())
