"""Image substrate: frames, contour tracing (findContours equivalent),
polygon rasterization, instance masks and the IoU metric (Eq. 8)."""

from .frame import (
    VideoFrame,
    block_entropy,
    downsample,
    gaussian_blur,
    resize_bilinear,
    image_entropy,
    sobel_gradients,
    to_grayscale,
)
from .contours import (
    contour_to_mask,
    fill_contour,
    find_contours,
    largest_contour,
    mask_boundary,
    resample_contour,
)
from .draw import draw_boxes, instance_color, overlay_masks, save_pgm, save_ppm
from .masks import (
    InstanceMask,
    bounding_box,
    box_iou,
    label_map_to_masks,
    mask_area,
    mask_iou,
    masks_to_label_map,
)

__all__ = [
    "VideoFrame",
    "block_entropy",
    "downsample",
    "gaussian_blur",
    "resize_bilinear",
    "image_entropy",
    "sobel_gradients",
    "to_grayscale",
    "contour_to_mask",
    "fill_contour",
    "find_contours",
    "largest_contour",
    "mask_boundary",
    "resample_contour",
    "draw_boxes",
    "instance_color",
    "overlay_masks",
    "save_pgm",
    "save_ppm",
    "InstanceMask",
    "bounding_box",
    "box_iou",
    "label_map_to_masks",
    "mask_area",
    "mask_iou",
    "masks_to_label_map",
]
