"""Instance masks and the IoU metric.

A mask is a boolean ``(H, W)`` numpy array.  An :class:`InstanceMask` pairs
the raster with the instance identity and class label that edgeIS carries
through its whole pipeline (labeled map points, transferred masks, RoI
pruning priors).

The IoU here is Eq. (8) of the paper — the pixel-set intersection over
union used for every accuracy number in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "InstanceMask",
    "mask_iou",
    "box_iou",
    "bounding_box",
    "mask_area",
    "masks_to_label_map",
    "label_map_to_masks",
]


def mask_iou(mask_a: np.ndarray, mask_b: np.ndarray) -> float:
    """Pixel IoU between two boolean masks (Eq. 8).

    Two empty masks are in perfect agreement (IoU 1.0); one empty mask
    against a non-empty one scores 0.0.
    """
    mask_a = np.asarray(mask_a, dtype=bool)
    mask_b = np.asarray(mask_b, dtype=bool)
    if mask_a.shape != mask_b.shape:
        raise ValueError(f"mask shapes differ: {mask_a.shape} vs {mask_b.shape}")
    intersection = np.logical_and(mask_a, mask_b).sum()
    union = np.logical_or(mask_a, mask_b).sum()
    if union == 0:
        return 1.0
    return float(intersection) / float(union)


def box_iou(box_a: np.ndarray, box_b: np.ndarray) -> float:
    """IoU of two axis-aligned boxes ``(x0, y0, x1, y1)`` (exclusive max)."""
    box_a = np.asarray(box_a, dtype=float)
    box_b = np.asarray(box_b, dtype=float)
    ix0 = max(box_a[0], box_b[0])
    iy0 = max(box_a[1], box_b[1])
    ix1 = min(box_a[2], box_b[2])
    iy1 = min(box_a[3], box_b[3])
    inter = max(0.0, ix1 - ix0) * max(0.0, iy1 - iy0)
    area_a = max(0.0, box_a[2] - box_a[0]) * max(0.0, box_a[3] - box_a[1])
    area_b = max(0.0, box_b[2] - box_b[0]) * max(0.0, box_b[3] - box_b[1])
    union = area_a + area_b - inter
    if union <= 0.0:
        return 0.0
    return inter / union


def bounding_box(mask: np.ndarray) -> tuple[int, int, int, int] | None:
    """Tight ``(x0, y0, x1, y1)`` box around True pixels, or None if empty.

    ``x1``/``y1`` are exclusive, so the box of a single pixel at (r, c)
    is ``(c, r, c + 1, r + 1)``.
    """
    mask = np.asarray(mask, dtype=bool)
    rows = np.flatnonzero(mask.any(axis=1))
    if len(rows) == 0:
        return None
    cols = np.flatnonzero(mask.any(axis=0))
    return int(cols[0]), int(rows[0]), int(cols[-1]) + 1, int(rows[-1]) + 1


def mask_area(mask: np.ndarray) -> int:
    return int(np.asarray(mask, dtype=bool).sum())


@dataclass
class InstanceMask:
    """A segmentation mask with instance identity.

    Attributes
    ----------
    instance_id:
        Stable identity of the object across frames (the renderer and the
        VO map agree on these ids).
    class_label:
        Semantic class name, e.g. ``"car"`` or ``"oil_separator"``.
    mask:
        Boolean (H, W) raster.
    score:
        Model confidence in [0, 1]; ground-truth masks use 1.0.
    """

    instance_id: int
    class_label: str
    mask: np.ndarray
    score: float = 1.0

    def __post_init__(self):
        self.mask = np.asarray(self.mask, dtype=bool)

    @property
    def area(self) -> int:
        return mask_area(self.mask)

    @property
    def box(self) -> tuple[int, int, int, int] | None:
        return bounding_box(self.mask)

    @property
    def is_empty(self) -> bool:
        return not self.mask.any()

    def iou(self, other: "InstanceMask | np.ndarray") -> float:
        other_mask = other.mask if isinstance(other, InstanceMask) else other
        return mask_iou(self.mask, other_mask)

    def copy(self) -> "InstanceMask":
        return InstanceMask(
            instance_id=self.instance_id,
            class_label=self.class_label,
            mask=self.mask.copy(),
            score=self.score,
        )


def masks_to_label_map(masks: list[InstanceMask], shape: tuple[int, int]) -> np.ndarray:
    """Rasterize instance masks into an int32 id map (0 = background).

    Later masks in the list overwrite earlier ones where they overlap,
    matching painter's order.
    """
    label_map = np.zeros(shape, dtype=np.int32)
    for instance in masks:
        if instance.mask.shape != shape:
            raise ValueError("mask shape does not match label map shape")
        label_map[instance.mask] = instance.instance_id
    return label_map


def label_map_to_masks(
    label_map: np.ndarray, class_of: dict[int, str] | None = None
) -> list[InstanceMask]:
    """Split an instance-id map back into per-instance masks."""
    class_of = class_of or {}
    out = []
    for instance_id in np.unique(label_map):
        if instance_id == 0:
            continue
        out.append(
            InstanceMask(
                instance_id=int(instance_id),
                class_label=class_of.get(int(instance_id), "object"),
                mask=label_map == instance_id,
            )
        )
    return out
