"""Contour extraction and rasterization.

edgeIS's mask transfer hinges on the observation that "the shape of a mask
is determined by its contour" (Section III-C): it extracts the contour of
the source mask with OpenCV's ``findContours``, reprojects the contour
pixels and re-rasterizes.  This module provides both halves from scratch:

* :func:`find_contours` — Moore-neighbour boundary tracing with Jacob's
  stopping criterion, returning outer contours of each connected component
  (the ``findContours`` equivalent).
* :func:`fill_contour` — scanline polygon fill turning a traced (or
  reprojected) contour back into a mask.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "find_contours",
    "largest_contour",
    "fill_contour",
    "contour_to_mask",
    "mask_boundary",
    "resample_contour",
]

# Moore neighbourhood in clockwise order starting from west.
_MOORE = [(0, -1), (-1, -1), (-1, 0), (-1, 1), (0, 1), (1, 1), (1, 0), (1, -1)]


def _trace_boundary(mask: np.ndarray, start: tuple[int, int]) -> np.ndarray:
    """Moore-neighbour tracing of one outer boundary, clockwise."""
    rows, cols = mask.shape
    boundary = [start]
    # Backtrack starts pointing west of the start pixel (scan order found it
    # entering from the left).
    backtrack_dir = 0
    current = start
    first_move: tuple[int, int] | None = None
    max_steps = 4 * mask.size  # hard stop for pathological inputs
    for _ in range(max_steps):
        found = False
        for step in range(8):
            direction = (backtrack_dir + step) % 8
            dr, dc = _MOORE[direction]
            r, c = current[0] + dr, current[1] + dc
            if 0 <= r < rows and 0 <= c < cols and mask[r, c]:
                # Jacob's criterion: stop on re-entering the start pixel
                # with the same move as the first one.
                move = (r, c)
                if current == start and first_move is not None and move == first_move:
                    return np.asarray(boundary)
                if first_move is None:
                    first_move = move
                boundary.append(move)
                current = move
                # New backtrack: the neighbour we examined just before the
                # hit, i.e. rotate back by one.
                backtrack_dir = (direction + 5) % 8
                found = True
                break
        if not found:
            # Isolated pixel.
            return np.asarray(boundary)
    return np.asarray(boundary)  # pragma: no cover - loop guard


def find_contours(mask: np.ndarray, min_length: int = 1) -> list[np.ndarray]:
    """Outer contours of every connected component of a boolean mask.

    Returns a list of ``(N, 2)`` integer arrays of (row, col) boundary
    pixels, one per component, ordered clockwise.  Components smaller than
    ``min_length`` boundary pixels are dropped.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError("find_contours expects a 2-D mask")
    # 8-connectivity, matching OpenCV's findContours component notion.
    labeled, count = ndimage.label(mask, structure=np.ones((3, 3), dtype=bool))
    contours = []
    for component in range(1, count + 1):
        component_mask = labeled == component
        rows = np.flatnonzero(component_mask.any(axis=1))
        first_row = rows[0]
        first_col = int(np.argmax(component_mask[first_row]))
        contour = _trace_boundary(component_mask, (int(first_row), first_col))
        if len(contour) >= min_length:
            contours.append(contour)
    return contours


def largest_contour(mask: np.ndarray) -> np.ndarray | None:
    """The contour of the largest connected component, or None if empty."""
    contours = find_contours(mask)
    if not contours:
        return None
    return max(contours, key=len)


def fill_contour(contour: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Scanline-fill a closed contour of (row, col) points into a mask.

    The contour need not be integer valued — reprojected contours land on
    sub-pixel positions.  Uses the even-odd rule with half-pixel sampling,
    then unions the contour pixels themselves so thin shapes survive.
    """
    contour = np.asarray(contour, dtype=float)
    out = np.zeros(shape, dtype=bool)
    if len(contour) == 0:
        return out
    if len(contour) < 3:
        _stamp_points(out, contour)
        return out

    ys = contour[:, 0]
    xs = contour[:, 1]
    y_min = max(int(np.floor(ys.min())), 0)
    y_max = min(int(np.ceil(ys.max())), shape[0] - 1)

    x_start = np.roll(xs, -1)
    y_start = np.roll(ys, -1)
    for row in range(y_min, y_max + 1):
        sample_y = row + 0.0  # sample at pixel centers in row coordinates
        # Edges crossing this scanline (half-open to avoid double counts).
        crosses = (ys <= sample_y) != (y_start <= sample_y)
        if not crosses.any():
            continue
        denom = y_start[crosses] - ys[crosses]
        t = (sample_y - ys[crosses]) / denom
        x_cross = xs[crosses] + t * (x_start[crosses] - xs[crosses])
        x_cross.sort()
        for i in range(0, len(x_cross) - 1, 2):
            left = max(int(np.ceil(x_cross[i])), 0)
            right = min(int(np.floor(x_cross[i + 1])), shape[1] - 1)
            if right >= left:
                out[row, left : right + 1] = True
    _stamp_points(out, contour)
    return out


def _stamp_points(mask: np.ndarray, points: np.ndarray) -> None:
    """Mark the (rounded, in-bounds) points themselves as foreground."""
    rounded = np.round(points).astype(int)
    keep = (
        (rounded[:, 0] >= 0)
        & (rounded[:, 0] < mask.shape[0])
        & (rounded[:, 1] >= 0)
        & (rounded[:, 1] < mask.shape[1])
    )
    rounded = rounded[keep]
    mask[rounded[:, 0], rounded[:, 1]] = True


def contour_to_mask(contour: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Alias of :func:`fill_contour` matching the paper's vocabulary."""
    return fill_contour(contour, shape)


def mask_boundary(mask: np.ndarray) -> np.ndarray:
    """Boolean raster of boundary pixels (foreground with a background
    4-neighbour), the 'pixels on the contour' the paper treats as the most
    representative features of an object's shape."""
    mask = np.asarray(mask, dtype=bool)
    eroded = ndimage.binary_erosion(mask, structure=np.array(
        [[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool
    ), border_value=0)
    return mask & ~eroded


def resample_contour(contour: np.ndarray, num_points: int) -> np.ndarray:
    """Resample a closed contour to ``num_points`` by arc length.

    Used to bound the per-frame cost of contour reprojection regardless of
    object size.
    """
    contour = np.asarray(contour, dtype=float)
    if len(contour) == 0 or num_points <= 0:
        return np.zeros((0, 2))
    if len(contour) <= 2:
        reps = int(np.ceil(num_points / len(contour)))
        return np.tile(contour, (reps, 1))[:num_points]
    closed = np.vstack([contour, contour[:1]])
    deltas = np.diff(closed, axis=0)
    seg_lengths = np.linalg.norm(deltas, axis=1)
    cumulative = np.concatenate([[0.0], np.cumsum(seg_lengths)])
    total = cumulative[-1]
    if total < 1e-12:
        return np.tile(contour[:1], (num_points, 1))
    targets = np.linspace(0.0, total, num_points, endpoint=False)
    indices = np.searchsorted(cumulative, targets, side="right") - 1
    indices = np.clip(indices, 0, len(seg_lengths) - 1)
    local = (targets - cumulative[indices]) / np.maximum(seg_lengths[indices], 1e-12)
    return closed[indices] + deltas[indices] * local[:, None]
