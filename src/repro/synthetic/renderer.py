"""Z-buffer software renderer.

Produces, for each requested camera pose and time, the three rasters the
rest of the system consumes:

* an RGB frame (the "camera image"),
* a pixel-perfect instance-id map (the ground-truth segmentation the
  paper's IoU metric needs),
* a depth map (used for oracle feature visibility checks).

Triangle rasterization uses perspective-correct barycentric interpolation
and Sutherland-Hodgman clipping against the near plane, all vectorized per
triangle with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.camera import PinholeCamera
from ..geometry.se3 import SE3
from ..image.frame import VideoFrame
from .objects import SceneObject

__all__ = ["RenderResult", "Renderer"]

_NEAR_PLANE = 0.05


@dataclass
class RenderResult:
    """Everything the simulator knows about one rendered frame."""

    frame: VideoFrame
    label_map: np.ndarray  # (H, W) int32 instance ids, 0 = background
    depth: np.ndarray  # (H, W) float32, inf where nothing was drawn
    pose_cw: SE3
    object_poses_wo: dict[int, SE3]
    time: float

    def instance_mask(self, instance_id: int) -> np.ndarray:
        return self.label_map == instance_id

    @property
    def visible_instance_ids(self) -> list[int]:
        ids = np.unique(self.label_map)
        return [int(i) for i in ids if i != 0]


def _clip_polygon_near(
    points_camera: np.ndarray, uvs: np.ndarray, near: float
) -> tuple[np.ndarray, np.ndarray]:
    """Sutherland-Hodgman clip of a polygon against the z=near plane.

    Interpolates UVs along clipped edges.  Returns possibly-empty arrays.
    """
    output_points: list[np.ndarray] = []
    output_uvs: list[np.ndarray] = []
    count = len(points_camera)
    for i in range(count):
        current, current_uv = points_camera[i], uvs[i]
        nxt, next_uv = points_camera[(i + 1) % count], uvs[(i + 1) % count]
        current_in = current[2] >= near
        next_in = nxt[2] >= near
        if current_in:
            output_points.append(current)
            output_uvs.append(current_uv)
        if current_in != next_in:
            t = (near - current[2]) / (nxt[2] - current[2])
            output_points.append(current + t * (nxt - current))
            output_uvs.append(current_uv + t * (next_uv - current_uv))
    if not output_points:
        return np.zeros((0, 3)), np.zeros((0, 2))
    return np.asarray(output_points), np.asarray(output_uvs)


class Renderer:
    """Renders a list of :class:`SceneObject` through a pinhole camera."""

    def __init__(self, camera: PinholeCamera, objects: list[SceneObject]):
        self.camera = camera
        self.objects = objects

    def render(self, pose_cw: SE3, time: float, frame_index: int = 0) -> RenderResult:
        height, width = self.camera.height, self.camera.width
        color = np.full((height, width, 3), 110.0, dtype=np.float32)  # sky/haze
        depth = np.full((height, width), np.inf, dtype=np.float32)
        label_map = np.zeros((height, width), dtype=np.int32)

        object_poses: dict[int, SE3] = {}
        for scene_object in self.objects:
            # Time-varying textures (e.g. the chaos lighting shift) get
            # the frame time before any of their texels are sampled.
            set_time = getattr(scene_object.texture, "set_time", None)
            if set_time is not None:
                set_time(time)
        for scene_object in self.objects:
            pose_wo = scene_object.pose_wo(time)
            if not scene_object.is_background:
                object_poses[scene_object.instance_id] = pose_wo
            pose_co = pose_cw @ pose_wo  # object -> camera
            self._draw_object(scene_object, pose_co, color, depth, label_map)

        image = np.clip(color, 0.0, 255.0).astype(np.uint8)
        return RenderResult(
            frame=VideoFrame(index=frame_index, timestamp=time, image=image),
            label_map=label_map,
            depth=depth,
            pose_cw=pose_cw,
            object_poses_wo=object_poses,
            time=time,
        )

    # ------------------------------------------------------------------
    def _draw_object(
        self,
        scene_object: SceneObject,
        pose_co: SE3,
        color: np.ndarray,
        depth: np.ndarray,
        label_map: np.ndarray,
    ) -> None:
        mesh = scene_object.mesh
        vertices_camera = pose_co.transform(mesh.vertices)
        # Per-face Lambert-ish shading from the camera-frame normal gives
        # faces distinct brightness, like real diffuse lighting.
        for face_index in range(mesh.num_faces):
            tri_camera = vertices_camera[mesh.faces[face_index]]
            if (tri_camera[:, 2] < _NEAR_PLANE).all():
                continue
            tri_uv = mesh.face_uvs[face_index]
            if (tri_camera[:, 2] < _NEAR_PLANE).any():
                tri_camera, tri_uv = _clip_polygon_near(tri_camera, tri_uv, _NEAR_PLANE)
                if len(tri_camera) < 3:
                    continue
            normal = np.cross(tri_camera[1] - tri_camera[0], tri_camera[2] - tri_camera[0])
            norm = np.linalg.norm(normal)
            shade = 0.65 + 0.35 * abs(normal[2]) / max(norm, 1e-12)
            # Fan-triangulate the clipped polygon.
            for k in range(1, len(tri_camera) - 1):
                self._raster_triangle(
                    tri_camera[[0, k, k + 1]],
                    tri_uv[[0, k, k + 1]],
                    scene_object,
                    shade,
                    color,
                    depth,
                    label_map,
                )

    def _raster_triangle(
        self,
        tri_camera: np.ndarray,
        tri_uv: np.ndarray,
        scene_object: SceneObject,
        shade: float,
        color: np.ndarray,
        depth: np.ndarray,
        label_map: np.ndarray,
    ) -> None:
        camera = self.camera
        pixels, z = camera.project(tri_camera)
        x0 = max(int(np.floor(pixels[:, 0].min())), 0)
        x1 = min(int(np.ceil(pixels[:, 0].max())) + 1, camera.width)
        y0 = max(int(np.floor(pixels[:, 1].min())), 0)
        y1 = min(int(np.ceil(pixels[:, 1].max())) + 1, camera.height)
        if x1 <= x0 or y1 <= y0:
            return

        ax, ay = pixels[0]
        bx, by = pixels[1]
        cx, cy = pixels[2]
        area = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
        if abs(area) < 1e-9:
            return

        xs = np.arange(x0, x1) + 0.5
        ys = np.arange(y0, y1) + 0.5
        grid_x, grid_y = np.meshgrid(xs, ys)

        # Barycentric weights: compute two by signed sub-areas, infer the third.
        w_c = ((bx - ax) * (grid_y - ay) - (by - ay) * (grid_x - ax)) / area
        w_b = ((grid_x - ax) * (cy - ay) - (grid_y - ay) * (cx - ax)) / area
        w_a = 1.0 - w_b - w_c
        inside = (w_a >= -1e-9) & (w_b >= -1e-9) & (w_c >= -1e-9)
        if not inside.any():
            return

        inv_z = w_a * (1.0 / z[0]) + w_b * (1.0 / z[1]) + w_c * (1.0 / z[2])
        pixel_z = 1.0 / np.maximum(inv_z, 1e-12)

        region_depth = depth[y0:y1, x0:x1]
        closer = inside & (pixel_z < region_depth) & (pixel_z > _NEAR_PLANE)
        if not closer.any():
            return

        # Perspective-correct UV interpolation.
        u_over_z = (
            w_a * (tri_uv[0, 0] / z[0])
            + w_b * (tri_uv[1, 0] / z[1])
            + w_c * (tri_uv[2, 0] / z[2])
        )
        v_over_z = (
            w_a * (tri_uv[0, 1] / z[0])
            + w_b * (tri_uv[1, 1] / z[1])
            + w_c * (tri_uv[2, 1] / z[2])
        )
        u = u_over_z[closer] * pixel_z[closer]
        v = v_over_z[closer] * pixel_z[closer]
        texel = scene_object.texture.sample(u, v) * shade

        region_depth[closer] = pixel_z[closer]
        color[y0:y1, x0:x1][closer] = texel
        label_map[y0:y1, x0:x1][closer] = scene_object.instance_id
