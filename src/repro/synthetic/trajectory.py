"""Camera trajectories for the mobile device.

The robustness study (Fig. 12) records "videos of the same route with
people walking, striding and jogging"; :class:`WalkTrajectory` models
exactly that — a piecewise-linear route walked at a configurable speed
with speed-proportional handheld sway and bob.
"""

from __future__ import annotations

import numpy as np

from ..geometry.se3 import SE3

__all__ = ["CameraTrajectory", "WalkTrajectory", "OrbitTrajectory", "MOTION_PRESETS"]

# Speed multiplier and sway amplitude for the Fig. 12 motion grades.
# ``whip`` is the adversarial chaos grade (docs/scenarios.md): fast
# translation plus violent yaw oscillation — the view whips across the
# scene around once a second, so feature tracks die between frames and
# the VO frontend is starved (the simulator's motion-blur surrogate).
# The yaw keys are read with defaults, so the Fig. 12 grades are
# byte-identical to their pre-chaos behavior.
MOTION_PRESETS: dict[str, dict[str, float]] = {
    "walk": {"speed_scale": 1.0, "sway": 0.01, "bob_hz": 1.6},
    "stride": {"speed_scale": 2.0, "sway": 0.025, "bob_hz": 2.2},
    "jog": {"speed_scale": 3.5, "sway": 0.055, "bob_hz": 3.0},
    "whip": {
        "speed_scale": 2.5,
        "sway": 0.04,
        "bob_hz": 2.6,
        "yaw_amp": 0.85,
        "yaw_hz": 0.9,
    },
}


class CameraTrajectory:
    """Base interface: camera-from-world pose at time ``t``."""

    def pose_cw(self, t: float) -> SE3:  # pragma: no cover - interface
        raise NotImplementedError


class WalkTrajectory(CameraTrajectory):
    """A person carrying the device along a route of waypoints.

    The camera looks toward a point ahead on the route (or a fixed target)
    and sways laterally/vertically as the carrier moves.
    """

    def __init__(
        self,
        waypoints: np.ndarray,
        speed: float = 0.8,
        look_target: np.ndarray | None = None,
        motion_grade: str = "walk",
        look_ahead: float = 3.0,
    ):
        self.waypoints = np.asarray(waypoints, dtype=float).reshape(-1, 3)
        if len(self.waypoints) < 2:
            raise ValueError("WalkTrajectory needs >= 2 waypoints")
        preset = MOTION_PRESETS.get(motion_grade)
        if preset is None:
            raise ValueError(
                f"unknown motion grade {motion_grade!r}; pick from {sorted(MOTION_PRESETS)}"
            )
        self.speed = speed * preset["speed_scale"]
        self.sway = preset["sway"]
        self.bob_hz = preset["bob_hz"]
        self.yaw_amp = preset.get("yaw_amp", 0.0)
        self.yaw_hz = preset.get("yaw_hz", 0.0)
        self.look_target = (
            None if look_target is None else np.asarray(look_target, dtype=float)
        )
        self.look_ahead = look_ahead
        segments = np.diff(self.waypoints, axis=0)
        self._segment_lengths = np.linalg.norm(segments, axis=1)
        self._cumulative = np.concatenate([[0.0], np.cumsum(self._segment_lengths)])

    @property
    def total_length(self) -> float:
        return float(self._cumulative[-1])

    def _position_at_arclength(self, s: float) -> np.ndarray:
        s = float(np.clip(s, 0.0, self.total_length))
        index = int(np.searchsorted(self._cumulative, s, side="right") - 1)
        index = min(index, len(self._segment_lengths) - 1)
        local = (s - self._cumulative[index]) / max(self._segment_lengths[index], 1e-12)
        return (1 - local) * self.waypoints[index] + local * self.waypoints[index + 1]

    def pose_cw(self, t: float) -> SE3:
        s = self.speed * t
        position = self._position_at_arclength(s)
        # Handheld shake grows with motion grade.
        phase = 2 * np.pi * self.bob_hz * t
        position = position + np.array(
            [
                self.sway * np.sin(phase),
                self.sway * 0.6 * np.sin(2.1 * phase + 0.7),
                self.sway * np.cos(0.9 * phase),
            ]
        )
        if self.look_target is not None:
            target = self.look_target
        else:
            target = self._position_at_arclength(s + self.look_ahead)
            if np.linalg.norm(target - position) < 0.2:
                # End of route: keep the last heading.
                direction = self.waypoints[-1] - self.waypoints[-2]
                target = position + direction / max(np.linalg.norm(direction), 1e-9)
        if self.yaw_amp:
            # Whip-pan: rotate the gaze direction about the vertical axis
            # (y points down) by an oscillating yaw — guarded so grades
            # without yaw keys stay bit-identical to the pre-chaos path.
            yaw = self.yaw_amp * np.sin(2 * np.pi * self.yaw_hz * t)
            gaze = target - position
            cos_y, sin_y = np.cos(yaw), np.sin(yaw)
            target = position + np.array(
                [
                    cos_y * gaze[0] + sin_y * gaze[2],
                    gaze[1],
                    -sin_y * gaze[0] + cos_y * gaze[2],
                ]
            )
        return SE3.look_at(position, target)


class OrbitTrajectory(CameraTrajectory):
    """Camera orbiting a fixed point at constant height, always facing it."""

    def __init__(
        self,
        center: np.ndarray,
        radius: float,
        height: float,
        angular_speed: float = 0.15,
        phase: float = 0.0,
    ):
        self.center = np.asarray(center, dtype=float).reshape(3)
        self.radius = radius
        self.height = height
        self.angular_speed = angular_speed
        self.phase = phase

    def pose_cw(self, t: float) -> SE3:
        angle = self.phase + self.angular_speed * t
        eye = self.center + np.array(
            [
                self.radius * np.cos(angle),
                self.height,
                self.radius * np.sin(angle),
            ]
        )
        return SE3.look_at(eye, self.center)
