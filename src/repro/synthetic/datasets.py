"""Dataset catalog.

The paper evaluates on DAVIS, KITTI, Xiph and a self-labeled AR dataset.
Here each becomes a synthetic scene family with the same *character*:

* ``davis_like``   — one/two large salient objects, handheld side-on camera
                     (DAVIS is single-object video segmentation footage);
* ``kitti_like``   — a street corridor with parked and oncoming vehicles,
                     forward ego-motion (KITTI's driving setting);
* ``xiph_like``    — a cluttered static scene, orbiting camera (Xiph test
                     clips are generic scenes);
* ``ar_indoor``    — a desk/room scene matching the paper's self-recorded
                     indoor AR clips;
* ``oilfield``     — cylinders (separators) and pipe runs for the Fig. 17
                     case-study scenario.

Scene complexity grades (Fig. 13): ``easy`` (<= 3 objects), ``medium``
(~10 objects) and ``hard`` (objects move during the sequence) are exposed
through :func:`make_complexity_scene`.
"""

from __future__ import annotations

import numpy as np

from ..geometry.camera import PinholeCamera
from ..geometry.se3 import SE3
from .objects import (
    LinearMotion,
    OrbitMotion,
    ProceduralTexture,
    SceneObject,
    StaticMotion,
    WaypointMotion,
    make_box_mesh,
    make_cylinder_mesh,
    make_plane_mesh,
)
from .trajectory import WalkTrajectory
from .world import SyntheticVideo, World

__all__ = [
    "DATASET_NAMES",
    "COMPLEXITY_LEVELS",
    "make_dataset",
    "make_complexity_scene",
    "default_camera",
]

DATASET_NAMES = ("davis_like", "kitti_like", "xiph_like", "ar_indoor", "oilfield")
COMPLEXITY_LEVELS = ("easy", "medium", "hard")

_PALETTE = [
    (188, 92, 72), (84, 136, 180), (112, 164, 96), (180, 152, 84),
    (140, 100, 168), (96, 168, 168), (176, 112, 140), (128, 128, 96),
]


def default_camera(resolution: tuple[int, int] = (320, 240)) -> PinholeCamera:
    """A phone-like camera at the given (width, height)."""
    width, height = resolution
    return PinholeCamera.with_fov(width, height, horizontal_fov_deg=64.0)


def _floor(seed: int, extent: float = 40.0) -> SceneObject:
    return SceneObject(
        instance_id=0,
        class_label="background",
        mesh=make_plane_mesh(extent, extent, uv_repeat=extent / 2.0),
        texture=ProceduralTexture((120, 118, 112), seed=seed, num_dots=110),
    )


def _back_wall(seed: int, z: float, extent: float = 40.0) -> SceneObject:
    """A vertical wall behind the scene (a plane rotated upright)."""
    mesh = make_plane_mesh(extent, extent / 2.0, uv_repeat=extent / 3.0)
    # Rotate the XZ-plane mesh to stand vertically facing -z, then push it
    # to depth z and lift it so it spans the floor upward (negative y).
    rotation = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, -1.0], [0.0, 1.0, 0.0]])
    vertices = mesh.vertices @ rotation.T + np.array([0.0, -extent / 8.0, z])
    mesh.vertices = vertices
    return SceneObject(
        instance_id=0,
        class_label="background",
        mesh=mesh,
        texture=ProceduralTexture((136, 130, 122), seed=seed + 1, num_dots=90),
    )


def _standing_box(
    instance_id: int,
    class_label: str,
    position_xz: tuple[float, float],
    size: tuple[float, float, float],
    seed: int,
    motion=None,
) -> SceneObject:
    """A box resting on the floor at (x, z).  y points down, so the box
    center sits at y = -height/2."""
    x, z = position_xz
    pose = SE3(np.eye(3), np.array([x, -size[1] / 2.0, z]))
    return SceneObject(
        instance_id=instance_id,
        class_label=class_label,
        mesh=make_box_mesh(size),
        texture=ProceduralTexture(_PALETTE[instance_id % len(_PALETTE)], seed=seed),
        motion=motion if motion is not None else StaticMotion(pose),
    )


def _standing_cylinder(
    instance_id: int,
    class_label: str,
    position_xz: tuple[float, float],
    radius: float,
    height: float,
    seed: int,
) -> SceneObject:
    x, z = position_xz
    pose = SE3(np.eye(3), np.array([x, -height / 2.0, z]))
    return SceneObject(
        instance_id=instance_id,
        class_label=class_label,
        mesh=make_cylinder_mesh(radius, height),
        texture=ProceduralTexture(_PALETTE[instance_id % len(_PALETTE)], seed=seed),
        motion=StaticMotion(pose),
    )


# ----------------------------------------------------------------------
# Scene builders
# ----------------------------------------------------------------------
def _davis_like_world(seed: int, dynamic: bool) -> World:
    objects = [_floor(seed), _back_wall(seed, z=12.0)]
    if dynamic:
        # A "dancer": large box drifting slowly across the scene.
        start = SE3(np.eye(3), np.array([-1.5, -0.9, 5.0]))
        motion = LinearMotion(start, velocity=np.array([0.18, 0.0, 0.0]),
                              angular_velocity=np.array([0.0, 0.12, 0.0]))
        objects.append(
            _standing_box(1, "person", (-1.5, 5.0), (0.8, 1.8, 0.6), seed + 10, motion)
        )
    else:
        objects.append(
            _standing_box(1, "person", (-0.5, 5.0), (0.8, 1.8, 0.6), seed + 10)
        )
    objects.append(_standing_box(2, "bench", (1.8, 6.0), (2.0, 0.9, 0.8), seed + 11))
    return World(objects, seed=seed)


def _kitti_like_world(seed: int, dynamic: bool) -> World:
    objects = [_floor(seed, extent=60.0)]
    # Parked cars on both sides of a corridor.
    for i, z in enumerate((4.0, 9.0, 14.0)):
        objects.append(
            _standing_box(i + 1, "car", (-2.6, z), (1.8, 1.4, 4.0), seed + 20 + i)
        )
    objects.append(_standing_box(4, "car", (2.6, 7.0), (1.8, 1.4, 4.0), seed + 24))
    if dynamic:
        start = SE3(np.eye(3), np.array([2.6, -0.7, 18.0]))
        objects.append(
            SceneObject(
                instance_id=5,
                class_label="car",
                mesh=make_box_mesh((1.8, 1.4, 4.0)),
                texture=ProceduralTexture(_PALETTE[5], seed=seed + 25),
                motion=LinearMotion(start, velocity=np.array([0.0, 0.0, -1.6])),
            )
        )
    objects.append(
        _standing_box(6, "building", (-7.0, 12.0), (4.0, 6.0, 10.0), seed + 26)
    )
    objects.append(
        _standing_box(7, "building", (7.0, 10.0), (4.0, 5.0, 10.0), seed + 27)
    )
    return World(objects, seed=seed)


def _xiph_like_world(seed: int, dynamic: bool) -> World:
    objects = [_floor(seed), _back_wall(seed, z=14.0)]
    layout = [
        ((-2.0, 5.0), (1.2, 1.2, 1.2), "crate"),
        ((0.3, 6.5), (0.9, 1.6, 0.9), "cabinet"),
        ((2.2, 5.5), (1.4, 0.8, 1.0), "table"),
        ((-0.8, 8.0), (1.0, 1.0, 1.0), "crate"),
    ]
    for i, (xz, size, label) in enumerate(layout):
        objects.append(_standing_box(i + 1, label, xz, size, seed + 30 + i))
    if dynamic:
        objects.append(
            SceneObject(
                instance_id=9,
                class_label="person",
                mesh=make_box_mesh((0.6, 1.7, 0.5)),
                texture=ProceduralTexture(_PALETTE[1], seed=seed + 39),
                motion=OrbitMotion(
                    center=np.array([0.5, -0.85, 6.0]), radius=2.8, angular_speed=0.25
                ),
            )
        )
    return World(objects, seed=seed)


def _ar_indoor_world(seed: int, dynamic: bool) -> World:
    objects = [_floor(seed, extent=20.0), _back_wall(seed, z=9.0, extent=20.0)]
    layout = [
        ((-1.6, 4.0), (1.6, 0.9, 0.9), "desk"),
        ((0.9, 4.5), (0.5, 1.1, 0.5), "chair"),
        ((2.2, 5.5), (0.9, 1.9, 0.5), "shelf"),
    ]
    for i, (xz, size, label) in enumerate(layout):
        objects.append(_standing_box(i + 1, label, xz, size, seed + 40 + i))
    if dynamic:
        times = np.array([0.0, 4.0, 8.0, 12.0])
        positions = np.array(
            [[-2.5, -0.85, 6.5], [0.0, -0.85, 7.0], [2.5, -0.85, 6.5], [-2.5, -0.85, 6.5]]
        )
        objects.append(
            SceneObject(
                instance_id=8,
                class_label="person",
                mesh=make_box_mesh((0.6, 1.7, 0.5)),
                texture=ProceduralTexture(_PALETTE[4], seed=seed + 48),
                motion=WaypointMotion(times, positions),
            )
        )
    return World(objects, seed=seed)


def _oilfield_world(seed: int, dynamic: bool) -> World:
    objects = [_floor(seed, extent=50.0)]
    objects.append(_standing_cylinder(1, "oil_separator", (-2.5, 6.0), 1.0, 3.0, seed + 50))
    objects.append(_standing_cylinder(2, "oil_separator", (2.5, 7.0), 1.0, 3.0, seed + 51))
    objects.append(_standing_cylinder(3, "storage_tank", (0.0, 12.0), 2.2, 4.0, seed + 52))
    # A horizontal pipe run modeled as a long thin box between separators.
    objects.append(_standing_box(4, "tube", (0.0, 6.5), (4.2, 0.4, 0.4), seed + 53))
    objects.append(_standing_box(5, "pump_skid", (-4.5, 9.0), (1.6, 1.2, 2.0), seed + 54))
    if dynamic:
        times = np.array([0.0, 6.0, 12.0])
        positions = np.array([[4.0, -0.85, 4.0], [0.0, -0.85, 9.0], [-4.0, -0.85, 4.0]])
        objects.append(
            SceneObject(
                instance_id=9,
                class_label="worker",
                mesh=make_box_mesh((0.6, 1.7, 0.5)),
                texture=ProceduralTexture(_PALETTE[6], seed=seed + 59),
                motion=WaypointMotion(times, positions),
            )
        )
    return World(objects, seed=seed)


_WORLD_BUILDERS = {
    "davis_like": _davis_like_world,
    "kitti_like": _kitti_like_world,
    "xiph_like": _xiph_like_world,
    "ar_indoor": _ar_indoor_world,
    "oilfield": _oilfield_world,
}


def _trajectory_for(name: str, motion_grade: str) -> WalkTrajectory:
    if name == "kitti_like":
        waypoints = np.array([[0.0, -1.5, -6.0], [0.0, -1.5, 6.0]])
        return WalkTrajectory(
            waypoints, speed=1.2, motion_grade=motion_grade, look_ahead=8.0
        )
    if name == "oilfield":
        waypoints = np.array(
            [[-4.0, -1.6, -2.0], [0.0, -1.6, -3.0], [4.0, -1.6, -2.0]]
        )
        return WalkTrajectory(
            waypoints, speed=0.8, look_target=np.array([0.0, -1.2, 7.0]),
            motion_grade=motion_grade,
        )
    # Side-on pass in front of the scene, eyes on its center.
    waypoints = np.array([[-3.0, -1.6, -1.5], [3.0, -1.6, -1.5]])
    return WalkTrajectory(
        waypoints, speed=0.7, look_target=np.array([0.0, -1.0, 5.5]),
        motion_grade=motion_grade,
    )


def make_dataset(
    name: str,
    num_frames: int = 120,
    resolution: tuple[int, int] = (320, 240),
    motion_grade: str = "walk",
    dynamic: bool | None = None,
    seed: int = 0,
    fps: float = 30.0,
) -> SyntheticVideo:
    """Build one of the catalog sequences.

    ``dynamic`` defaults to the dataset's natural character (davis/kitti
    contain moving objects; the others are static unless asked).
    """
    builder = _WORLD_BUILDERS.get(name)
    if builder is None:
        raise ValueError(f"unknown dataset {name!r}; pick from {DATASET_NAMES}")
    if dynamic is None:
        dynamic = name in ("davis_like", "kitti_like")
    world = builder(seed, dynamic)
    trajectory = _trajectory_for(name, motion_grade)
    return SyntheticVideo(
        world=world,
        trajectory=trajectory,
        camera=default_camera(resolution),
        num_frames=num_frames,
        fps=fps,
        name=f"{name}[{motion_grade}{',dyn' if dynamic else ''}]",
    )


def make_complexity_scene(
    level: str,
    num_frames: int = 120,
    resolution: tuple[int, int] = (320, 240),
    seed: int = 0,
) -> SyntheticVideo:
    """The Fig. 13 scene-complexity grades.

    ``easy`` has 3 objects, ``medium`` ~10, ``hard`` has medium clutter
    plus objects that move during the sequence.
    """
    if level not in COMPLEXITY_LEVELS:
        raise ValueError(f"unknown complexity {level!r}; pick from {COMPLEXITY_LEVELS}")
    objects = [_floor(seed), _back_wall(seed, z=14.0)]
    rng = np.random.default_rng(seed + 7)
    count = 3 if level == "easy" else 9
    # Jittered grid placement keeps every object visible and mostly
    # unoccluded — like the paper's manually arranged scenes.
    cells = [(col, row) for row in range(3) for col in range(3)]
    rng.shuffle(cells)
    for i in range(count):
        col, row = cells[i % len(cells)]
        x = -3.0 + col * 3.0 + float(rng.uniform(-0.5, 0.5))
        z = 4.0 + row * 2.2 + float(rng.uniform(-0.4, 0.4))
        size = (
            float(rng.uniform(0.9, 1.5)),
            float(rng.uniform(1.0, 1.8)),
            float(rng.uniform(0.9, 1.5)),
        )
        objects.append(_standing_box(i + 1, "object", (x, z), size, seed + 60 + i))
    if level == "hard":
        objects.append(
            SceneObject(
                instance_id=20,
                class_label="person",
                mesh=make_box_mesh((0.6, 1.7, 0.5)),
                texture=ProceduralTexture(_PALETTE[3], seed=seed + 70),
                motion=OrbitMotion(
                    center=np.array([0.0, -0.85, 7.0]), radius=3.0, angular_speed=0.3
                ),
            )
        )
        start = SE3(np.eye(3), np.array([-3.0, -0.6, 5.0]))
        objects.append(
            SceneObject(
                instance_id=21,
                class_label="cart",
                mesh=make_box_mesh((0.9, 1.2, 0.9)),
                texture=ProceduralTexture(_PALETTE[5], seed=seed + 71),
                motion=LinearMotion(start, velocity=np.array([0.25, 0.0, 0.1])),
            )
        )
    world = World(objects, seed=seed)
    trajectory = _trajectory_for("complexity", "walk")
    return SyntheticVideo(
        world=world,
        trajectory=trajectory,
        camera=default_camera(resolution),
        num_frames=num_frames,
        name=f"complexity[{level}]",
    )
