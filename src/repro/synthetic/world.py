"""Worlds: object collections, oracle feature sites and video sequences.

Coordinate convention (matches the CV camera frame): **y points down**.
The floor lies at y = 0 and things above the floor have negative y; an
eye-level camera sits at y ~= -1.6.

Besides rendering, the world exposes *feature sites* — stable, textured
3-D points on object surfaces with per-site identities.  They power the
deterministic ``oracle`` feature mode of the VO frontend (see
``repro.vo.frontend``): instead of re-detecting FAST corners per frame,
the extractor projects the sites visible in the depth buffer and emits
descriptors derived from the site identity plus bit noise.  This keeps
the full matching/triangulation/PnP machinery honest while making the
large experiment grids fast and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..geometry.camera import PinholeCamera
from ..geometry.se3 import SE3
from ..image.masks import InstanceMask
from .objects import SceneObject
from .renderer import Renderer, RenderResult
from .trajectory import CameraTrajectory

__all__ = ["FeatureSite", "World", "GroundTruth", "SyntheticVideo"]


@dataclass(frozen=True)
class FeatureSite:
    """A stable surface point with identity, for oracle feature extraction."""

    site_id: int
    instance_id: int  # 0 = background structure
    owner_index: int  # index into World.objects of the owning object
    position_object: np.ndarray  # in the owning object's frame


@dataclass
class GroundTruth:
    """Per-frame ground truth emitted alongside each rendered frame."""

    label_map: np.ndarray
    masks: list[InstanceMask]
    pose_cw: SE3
    object_poses_wo: dict[int, SE3]
    depth: np.ndarray

    def mask_for(self, instance_id: int) -> InstanceMask | None:
        for mask in self.masks:
            if mask.instance_id == instance_id:
                return mask
        return None


class World:
    """A scene: background structure plus labeled object instances."""

    def __init__(
        self,
        objects: list[SceneObject],
        sites_per_sqm: float = 14.0,
        max_sites_per_object: int = 260,
        seed: int = 0,
    ):
        ids = [o.instance_id for o in objects if not o.is_background]
        if len(ids) != len(set(ids)):
            raise ValueError("instance ids must be unique")
        self.objects = objects
        self._by_id = {o.instance_id: o for o in objects if not o.is_background}
        self._sites = self._generate_sites(sites_per_sqm, max_sites_per_object, seed)

    # ------------------------------------------------------------------
    def _generate_sites(
        self, sites_per_sqm: float, max_sites_per_object: int, seed: int
    ) -> list[FeatureSite]:
        rng = np.random.default_rng(seed)
        sites: list[FeatureSite] = []
        next_id = 0
        for owner_index, scene_object in enumerate(self.objects):
            area = float(scene_object.mesh.face_areas().sum())
            count = int(np.clip(area * sites_per_sqm, 8, max_sites_per_object))
            points = scene_object.mesh.sample_surface_points(count, rng)
            for point in points:
                sites.append(
                    FeatureSite(
                        site_id=next_id,
                        instance_id=scene_object.instance_id,
                        owner_index=owner_index,
                        position_object=point,
                    )
                )
                next_id += 1
        return sites

    @property
    def feature_sites(self) -> list[FeatureSite]:
        return self._sites

    @property
    def instance_ids(self) -> list[int]:
        return sorted(self._by_id)

    @property
    def dynamic_instance_ids(self) -> list[int]:
        return sorted(i for i, o in self._by_id.items() if o.is_dynamic)

    def object_by_id(self, instance_id: int) -> SceneObject:
        return self._by_id[instance_id]

    def class_of(self, instance_id: int) -> str:
        return self._by_id[instance_id].class_label

    def site_world_positions(self, time: float) -> np.ndarray:
        """World positions of all feature sites at time ``t`` (moving
        objects carry their sites along)."""
        poses = [scene_object.pose_wo(time) for scene_object in self.objects]
        positions = np.zeros((len(self._sites), 3))
        for i, site in enumerate(self._sites):
            positions[i] = poses[site.owner_index].transform(site.position_object)
        return positions

    def ground_truth_from_render(self, result: RenderResult) -> GroundTruth:
        masks = [
            InstanceMask(
                instance_id=instance_id,
                class_label=self.class_of(instance_id),
                mask=result.instance_mask(instance_id),
            )
            for instance_id in result.visible_instance_ids
        ]
        return GroundTruth(
            label_map=result.label_map,
            masks=masks,
            pose_cw=result.pose_cw,
            object_poses_wo=result.object_poses_wo,
            depth=result.depth,
        )


class SyntheticVideo:
    """A 30 fps video stream rendered from a world and a trajectory.

    Iterating yields ``(VideoFrame, GroundTruth)`` pairs.  Rendering is
    lazy and cached per index so that a mobile client and an "offline
    ground truth" consumer can both walk the same sequence cheaply.
    """

    def __init__(
        self,
        world: World,
        trajectory: CameraTrajectory,
        camera: PinholeCamera,
        num_frames: int,
        fps: float = 30.0,
        name: str = "synthetic",
    ):
        self.world = world
        self.trajectory = trajectory
        self.camera = camera
        self.num_frames = num_frames
        self.fps = fps
        self.name = name
        self._renderer = Renderer(camera, world.objects)
        self._cache: dict[int, tuple] = {}
        self._cache_order: list[int] = []
        self._cache_capacity = 48

    def __len__(self) -> int:
        return self.num_frames

    def frame_at(self, index: int):
        """Render (or fetch cached) frame ``index`` -> (frame, ground truth)."""
        if index < 0 or index >= self.num_frames:
            raise IndexError(f"frame index {index} out of range [0, {self.num_frames})")
        if index in self._cache:
            return self._cache[index]
        time = index / self.fps
        pose_cw = self.trajectory.pose_cw(time)
        result = self._renderer.render(pose_cw, time, frame_index=index)
        truth = self.world.ground_truth_from_render(result)
        value = (result.frame, truth)
        self._cache[index] = value
        self._cache_order.append(index)
        if len(self._cache_order) > self._cache_capacity:
            evict = self._cache_order.pop(0)
            self._cache.pop(evict, None)
        return value

    def __iter__(self) -> Iterator[tuple]:
        for index in range(self.num_frames):
            yield self.frame_at(index)
