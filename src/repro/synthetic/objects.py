"""Scene objects: textured triangle meshes with motion models.

The experiment datasets of the paper (DAVIS/KITTI/Xiph + a self-recorded
AR set) are replaced by synthetic 3-D scenes.  Every scene object is a
triangle mesh with a procedural dot-field texture (dense blob texture so
the FAST detector finds plenty of corners on it, like real-world surface
texture) and a motion model giving its object-to-world pose over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.se3 import SE3, so3_exp

__all__ = [
    "ProceduralTexture",
    "TriangleMesh",
    "MotionModel",
    "StaticMotion",
    "LinearMotion",
    "WaypointMotion",
    "OrbitMotion",
    "SceneObject",
    "make_box_mesh",
    "make_plane_mesh",
    "make_cylinder_mesh",
]


class ProceduralTexture:
    """A tileable dot-field texture, sampled by UV coordinates.

    The tile is generated once per object from its seed: a base color with
    darker/brighter dots and mild value noise.  Dots give the renderer's
    output the corner-rich statistics FAST/BRIEF need.
    """

    def __init__(
        self,
        base_color: tuple[int, int, int],
        seed: int,
        tile_size: int = 96,
        num_dots: int = 70,
        contrast: float = 90.0,
    ):
        self.base_color = np.array(base_color, dtype=np.float32)
        self.tile_size = tile_size
        rng = np.random.default_rng(seed)
        luminance = np.zeros((tile_size, tile_size), dtype=np.float32)
        rr, cc = np.mgrid[0:tile_size, 0:tile_size]
        for _ in range(num_dots):
            r = rng.integers(0, tile_size)
            c = rng.integers(0, tile_size)
            radius = rng.integers(2, 5)
            value = float(rng.choice([-contrast, contrast]))
            # Wrap-around stamping keeps the tile seamless.
            dr = np.minimum(np.abs(rr - r), tile_size - np.abs(rr - r))
            dc = np.minimum(np.abs(cc - c), tile_size - np.abs(cc - c))
            luminance[dr**2 + dc**2 <= radius**2] = value
        luminance += rng.normal(scale=3.0, size=luminance.shape).astype(np.float32)
        self._tile = luminance

    def sample(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Sample RGB values (float32, 0..255) at UV coordinates (tiles)."""
        u = np.asarray(u, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        cols = (np.floor(u * self.tile_size).astype(int)) % self.tile_size
        rows = (np.floor(v * self.tile_size).astype(int)) % self.tile_size
        luminance = self._tile[rows, cols]
        rgb = self.base_color[None, :] + luminance[..., None]
        return np.clip(rgb, 0.0, 255.0)


@dataclass
class TriangleMesh:
    """Triangle mesh in object coordinates.

    Attributes
    ----------
    vertices:
        (V, 3) float vertex positions.
    faces:
        (F, 3) int vertex indices, counter-clockwise seen from outside.
    face_uvs:
        (F, 3, 2) per-corner UV coordinates used for texturing.
    """

    vertices: np.ndarray
    faces: np.ndarray
    face_uvs: np.ndarray

    def __post_init__(self):
        self.vertices = np.asarray(self.vertices, dtype=float)
        self.faces = np.asarray(self.faces, dtype=int)
        self.face_uvs = np.asarray(self.face_uvs, dtype=float)
        if self.face_uvs.shape != (len(self.faces), 3, 2):
            raise ValueError("face_uvs must be (F, 3, 2)")

    @property
    def num_faces(self) -> int:
        return len(self.faces)

    def face_areas(self) -> np.ndarray:
        tri = self.vertices[self.faces]
        cross = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
        return 0.5 * np.linalg.norm(cross, axis=1)

    def sample_surface_points(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform-by-area random points on the surface (object frame)."""
        areas = self.face_areas()
        probabilities = areas / max(areas.sum(), 1e-12)
        face_choice = rng.choice(self.num_faces, size=count, p=probabilities)
        tri = self.vertices[self.faces[face_choice]]
        r1 = np.sqrt(rng.uniform(size=count))
        r2 = rng.uniform(size=count)
        a = 1.0 - r1
        b = r1 * (1.0 - r2)
        c = r1 * r2
        return (
            tri[:, 0] * a[:, None] + tri[:, 1] * b[:, None] + tri[:, 2] * c[:, None]
        )


# ----------------------------------------------------------------------
# Motion models: object-to-world pose as a function of time.
# ----------------------------------------------------------------------
class MotionModel:
    """Base class: pose of the object in the world at time ``t`` seconds."""

    def pose_wo(self, t: float) -> SE3:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def is_dynamic(self) -> bool:
        return True


class StaticMotion(MotionModel):
    """A fixed pose — background structure and parked objects."""

    def __init__(self, pose_wo: SE3 | None = None):
        self._pose = pose_wo or SE3.identity()

    def pose_wo(self, t: float) -> SE3:
        return self._pose

    @property
    def is_dynamic(self) -> bool:
        return False


class LinearMotion(MotionModel):
    """Constant-velocity translation with optional constant spin."""

    def __init__(
        self,
        start_pose_wo: SE3,
        velocity: np.ndarray,
        angular_velocity: np.ndarray | None = None,
        start_time: float = 0.0,
    ):
        self.start_pose = start_pose_wo
        self.velocity = np.asarray(velocity, dtype=float).reshape(3)
        self.angular_velocity = (
            np.zeros(3)
            if angular_velocity is None
            else np.asarray(angular_velocity, dtype=float).reshape(3)
        )
        self.start_time = start_time

    def pose_wo(self, t: float) -> SE3:
        dt = t - self.start_time
        rotation = so3_exp(self.angular_velocity * dt) @ self.start_pose.rotation
        translation = self.start_pose.translation + self.velocity * dt
        return SE3(rotation, translation)


class WaypointMotion(MotionModel):
    """Piecewise-linear interpolation through timed waypoints."""

    def __init__(self, times: np.ndarray, positions: np.ndarray, base_rotation: np.ndarray | None = None):
        self.times = np.asarray(times, dtype=float)
        self.positions = np.asarray(positions, dtype=float)
        if len(self.times) != len(self.positions) or len(self.times) < 2:
            raise ValueError("WaypointMotion needs >= 2 timed waypoints")
        self.base_rotation = np.eye(3) if base_rotation is None else base_rotation

    def pose_wo(self, t: float) -> SE3:
        t = float(np.clip(t, self.times[0], self.times[-1]))
        index = int(np.searchsorted(self.times, t, side="right") - 1)
        index = min(index, len(self.times) - 2)
        span = self.times[index + 1] - self.times[index]
        alpha = (t - self.times[index]) / max(span, 1e-12)
        position = (1 - alpha) * self.positions[index] + alpha * self.positions[index + 1]
        return SE3(self.base_rotation, position)


class OrbitMotion(MotionModel):
    """Circular orbit around a center in the XZ plane (e.g. a patrol)."""

    def __init__(self, center: np.ndarray, radius: float, angular_speed: float, phase: float = 0.0):
        self.center = np.asarray(center, dtype=float).reshape(3)
        self.radius = radius
        self.angular_speed = angular_speed
        self.phase = phase

    def pose_wo(self, t: float) -> SE3:
        angle = self.phase + self.angular_speed * t
        offset = np.array(
            [self.radius * np.cos(angle), 0.0, self.radius * np.sin(angle)]
        )
        rotation = so3_exp(np.array([0.0, -angle, 0.0]))
        return SE3(rotation, self.center + offset)


@dataclass
class SceneObject:
    """One object in the world.

    ``instance_id`` 0 is reserved for background structure (floors, walls)
    which is rendered but produces no instance mask.
    """

    instance_id: int
    class_label: str
    mesh: TriangleMesh
    texture: ProceduralTexture
    motion: MotionModel = field(default_factory=StaticMotion)

    @property
    def is_background(self) -> bool:
        return self.instance_id == 0

    @property
    def is_dynamic(self) -> bool:
        return self.motion.is_dynamic

    def pose_wo(self, t: float) -> SE3:
        return self.motion.pose_wo(t)

    def world_vertices(self, t: float) -> np.ndarray:
        return self.pose_wo(t).transform(self.mesh.vertices)


# ----------------------------------------------------------------------
# Mesh primitives
# ----------------------------------------------------------------------
def make_box_mesh(size: tuple[float, float, float]) -> TriangleMesh:
    """Axis-aligned box centered at the origin, UV-mapped per face."""
    sx, sy, sz = (s / 2.0 for s in size)
    vertices = np.array(
        [
            [-sx, -sy, -sz], [sx, -sy, -sz], [sx, sy, -sz], [-sx, sy, -sz],
            [-sx, -sy, sz], [sx, -sy, sz], [sx, sy, sz], [-sx, sy, sz],
        ]
    )
    # Each face as two triangles; outward winding.
    quads = [
        (0, 3, 2, 1),  # -z
        (4, 5, 6, 7),  # +z
        (0, 1, 5, 4),  # -y
        (2, 3, 7, 6),  # +y
        (0, 4, 7, 3),  # -x
        (1, 2, 6, 5),  # +x
    ]
    faces = []
    uvs = []
    quad_uv = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
    for a, b, c, d in quads:
        faces.append((a, b, c))
        uvs.append(quad_uv[[0, 1, 2]])
        faces.append((a, c, d))
        uvs.append(quad_uv[[0, 2, 3]])
    return TriangleMesh(vertices, np.asarray(faces), np.asarray(uvs))


def make_plane_mesh(
    width: float, depth: float, uv_repeat: float = 4.0
) -> TriangleMesh:
    """Horizontal rectangle in the XZ plane at y=0, facing +y (downward
    camera convention: the floor)."""
    hw, hd = width / 2.0, depth / 2.0
    vertices = np.array(
        [[-hw, 0.0, -hd], [hw, 0.0, -hd], [hw, 0.0, hd], [-hw, 0.0, hd]]
    )
    faces = np.array([[0, 1, 2], [0, 2, 3]])
    quad_uv = np.array(
        [[0.0, 0.0], [uv_repeat, 0.0], [uv_repeat, uv_repeat], [0.0, uv_repeat]]
    )
    uvs = np.stack([quad_uv[[0, 1, 2]], quad_uv[[0, 2, 3]]])
    return TriangleMesh(vertices, faces, uvs)


def make_cylinder_mesh(
    radius: float, height: float, segments: int = 12
) -> TriangleMesh:
    """Vertical cylinder centered at the origin (the oil-field separators
    and tubes of the case study)."""
    angles = np.linspace(0.0, 2 * np.pi, segments, endpoint=False)
    bottom = np.stack(
        [radius * np.cos(angles), np.full(segments, -height / 2), radius * np.sin(angles)],
        axis=1,
    )
    top = bottom + np.array([0.0, height, 0.0])
    vertices = np.vstack([bottom, top, [[0.0, -height / 2, 0.0]], [[0.0, height / 2, 0.0]]])
    bottom_center = 2 * segments
    top_center = 2 * segments + 1

    faces = []
    uvs = []
    for i in range(segments):
        j = (i + 1) % segments
        u0, u1 = i / segments * 3.0, (i + 1) / segments * 3.0
        # Side quad -> two triangles.
        faces.append((i, j, segments + j))
        uvs.append([[u0, 0.0], [u1, 0.0], [u1, 1.0]])
        faces.append((i, segments + j, segments + i))
        uvs.append([[u0, 0.0], [u1, 1.0], [u0, 1.0]])
        # Caps.
        faces.append((bottom_center, j, i))
        uvs.append([[0.5, 0.5], [u1, 0.0], [u0, 0.0]])
        faces.append((top_center, segments + i, segments + j))
        uvs.append([[0.5, 0.5], [u0, 1.0], [u1, 1.0]])
    return TriangleMesh(vertices, np.asarray(faces), np.asarray(uvs, dtype=float))
