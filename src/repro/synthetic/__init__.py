"""Synthetic world substrate: textured 3-D scenes, camera trajectories and
a z-buffer renderer producing frames with pixel-perfect ground truth.

Substitutes for the paper's DAVIS/KITTI/Xiph/self-labeled datasets (see
DESIGN.md section 2 for the substitution rationale)."""

from .objects import (
    LinearMotion,
    MotionModel,
    OrbitMotion,
    ProceduralTexture,
    SceneObject,
    StaticMotion,
    TriangleMesh,
    WaypointMotion,
    make_box_mesh,
    make_cylinder_mesh,
    make_plane_mesh,
)
from .renderer import Renderer, RenderResult
from .trajectory import MOTION_PRESETS, CameraTrajectory, OrbitTrajectory, WalkTrajectory
from .world import FeatureSite, GroundTruth, SyntheticVideo, World
from .datasets import (
    COMPLEXITY_LEVELS,
    DATASET_NAMES,
    default_camera,
    make_complexity_scene,
    make_dataset,
)

__all__ = [
    "LinearMotion",
    "MotionModel",
    "OrbitMotion",
    "ProceduralTexture",
    "SceneObject",
    "StaticMotion",
    "TriangleMesh",
    "WaypointMotion",
    "make_box_mesh",
    "make_cylinder_mesh",
    "make_plane_mesh",
    "Renderer",
    "RenderResult",
    "MOTION_PRESETS",
    "CameraTrajectory",
    "OrbitTrajectory",
    "WalkTrajectory",
    "FeatureSite",
    "GroundTruth",
    "SyntheticVideo",
    "World",
    "COMPLEXITY_LEVELS",
    "DATASET_NAMES",
    "default_camera",
    "make_complexity_scene",
    "make_dataset",
]
