"""Local trackers used by the compared systems.

EAAR tracks cached results with motion vectors; EdgeDuet uses KCF.  Both
are *shift-only* trackers — exactly why the paper finds them "too coarse
for segmentation": they move a cached mask rigidly and cannot follow
contour deformation, rotation or scale change.

* :class:`MotionVectorTracker` — per-object block matching (sum of
  absolute differences over a search window), the encoder-motion-vector
  stand-in.
* :class:`MosseTracker` — a single-channel correlation-filter tracker
  (MOSSE), the closest cheap relative of KCF, with the same failure modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..image.masks import InstanceMask

__all__ = ["shift_mask", "block_match_shift", "MotionVectorTracker", "MosseTracker"]


def shift_mask(mask: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Translate a boolean mask, filling the vacated border with False."""
    out = np.zeros_like(mask)
    h, w = mask.shape
    src_y = slice(max(-dy, 0), min(h - dy, h))
    src_x = slice(max(-dx, 0), min(w - dx, w))
    dst_y = slice(max(dy, 0), min(h + dy, h))
    dst_x = slice(max(dx, 0), min(w + dx, w))
    out[dst_y, dst_x] = mask[src_y, src_x]
    return out


def block_match_shift(
    previous_gray: np.ndarray,
    current_gray: np.ndarray,
    box: tuple[int, int, int, int],
    search_radius: int = 10,
    step: int = 2,
) -> tuple[int, int]:
    """(dy, dx) that best aligns the box patch from previous to current.

    Coarse-to-fine SAD search: ``step``-strided sweep, then +-1 refine.
    """
    x0, y0, x1, y1 = box
    h, w = previous_gray.shape
    x0, y0 = max(x0, 0), max(y0, 0)
    x1, y1 = min(x1, w), min(y1, h)
    if x1 - x0 < 4 or y1 - y0 < 4:
        return 0, 0
    template = previous_gray[y0:y1, x0:x1]

    def sad(dy: int, dx: int) -> float:
        sy0, sy1 = y0 + dy, y1 + dy
        sx0, sx1 = x0 + dx, x1 + dx
        if sy0 < 0 or sx0 < 0 or sy1 > h or sx1 > w:
            return np.inf
        window = current_gray[sy0:sy1, sx0:sx1]
        return float(np.mean(np.abs(window - template)))

    best = (0, 0)
    best_cost = sad(0, 0)
    for dy in range(-search_radius, search_radius + 1, step):
        for dx in range(-search_radius, search_radius + 1, step):
            cost = sad(dy, dx)
            if cost < best_cost:
                best_cost = cost
                best = (dy, dx)
    # Refine around the coarse optimum.
    base = best
    for dy in range(base[0] - 1, base[0] + 2):
        for dx in range(base[1] - 1, base[1] + 2):
            cost = sad(dy, dx)
            if cost < best_cost:
                best_cost = cost
                best = (dy, dx)
    return best


@dataclass
class _TrackedMask:
    mask: InstanceMask
    box: tuple[int, int, int, int]


class MotionVectorTracker:
    """EAAR-style cached-result tracker: per-object block-matched shifts."""

    def __init__(self, search_radius: int = 10):
        self.search_radius = search_radius
        self._tracked: dict[int, _TrackedMask] = {}
        self._previous_gray: np.ndarray | None = None

    def reset(self, masks: list[InstanceMask], gray: np.ndarray) -> None:
        """Install fresh cached results (a new edge update)."""
        self._tracked = {}
        for mask in masks:
            box = mask.box
            if box is None:
                continue
            self._tracked[mask.instance_id] = _TrackedMask(mask.copy(), box)
        self._previous_gray = np.asarray(gray, dtype=np.float32)

    def update(self, gray: np.ndarray) -> list[InstanceMask]:
        """Advance all cached masks to the new frame."""
        gray = np.asarray(gray, dtype=np.float32)
        if self._previous_gray is None:
            return [t.mask for t in self._tracked.values()]
        for tracked in self._tracked.values():
            dy, dx = block_match_shift(
                self._previous_gray, gray, tracked.box, self.search_radius
            )
            if dy or dx:
                tracked.mask = InstanceMask(
                    instance_id=tracked.mask.instance_id,
                    class_label=tracked.mask.class_label,
                    mask=shift_mask(tracked.mask.mask, dy, dx),
                    score=tracked.mask.score,
                )
                new_box = tracked.mask.box
                if new_box is not None:
                    tracked.box = new_box
        self._previous_gray = gray
        return [t.mask for t in self._tracked.values()]

    @property
    def masks(self) -> list[InstanceMask]:
        return [t.mask for t in self._tracked.values()]


class MosseTracker:
    """Minimal MOSSE correlation-filter tracker (the KCF stand-in).

    One filter per object, trained on the grayscale patch under the mask's
    box against a Gaussian response peak; each update locates the
    correlation maximum and shifts the cached mask accordingly.
    """

    def __init__(self, learning_rate: float = 0.125, sigma: float = 2.0):
        self.learning_rate = learning_rate
        self.sigma = sigma
        self._filters: dict[int, dict] = {}
        self._masks: dict[int, InstanceMask] = {}

    @staticmethod
    def _preprocess(patch: np.ndarray) -> np.ndarray:
        patch = np.log(patch.astype(np.float32) + 1.0)
        patch = (patch - patch.mean()) / (patch.std() + 1e-5)
        window = np.outer(
            np.hanning(patch.shape[0]), np.hanning(patch.shape[1])
        )
        return patch * window

    def _target_response(self, shape: tuple[int, int]) -> np.ndarray:
        ys, xs = np.mgrid[0 : shape[0], 0 : shape[1]]
        cy, cx = shape[0] // 2, shape[1] // 2
        response = np.exp(
            -((ys - cy) ** 2 + (xs - cx) ** 2) / (2.0 * self.sigma**2)
        )
        return np.fft.fft2(response)

    def reset(self, masks: list[InstanceMask], gray: np.ndarray) -> None:
        gray = np.asarray(gray, dtype=np.float32)
        self._filters = {}
        self._masks = {}
        for mask in masks:
            box = mask.box
            if box is None:
                continue
            x0, y0, x1, y1 = box
            patch = gray[y0:y1, x0:x1]
            if patch.shape[0] < 8 or patch.shape[1] < 8:
                continue
            processed = self._preprocess(patch)
            forward = np.fft.fft2(processed)
            target = self._target_response(patch.shape)
            self._filters[mask.instance_id] = {
                "numerator": target * np.conj(forward),
                "denominator": forward * np.conj(forward) + 1e-2,
                "box": box,
            }
            self._masks[mask.instance_id] = mask.copy()

    def update(self, gray: np.ndarray) -> list[InstanceMask]:
        gray = np.asarray(gray, dtype=np.float32)
        h, w = gray.shape
        for instance_id, state in self._filters.items():
            x0, y0, x1, y1 = state["box"]
            x0, y0 = max(x0, 0), max(y0, 0)
            x1, y1 = min(x1, w), min(y1, h)
            patch = gray[y0:y1, x0:x1]
            expected = (
                state["numerator"].shape
                if hasattr(state["numerator"], "shape")
                else None
            )
            if patch.shape != expected:
                continue
            processed = self._preprocess(patch)
            forward = np.fft.fft2(processed)
            correlation_filter = state["numerator"] / state["denominator"]
            response = np.real(np.fft.ifft2(correlation_filter * forward))
            peak = np.unravel_index(np.argmax(response), response.shape)
            cy, cx = patch.shape[0] // 2, patch.shape[1] // 2
            dy = int((peak[0] - cy + patch.shape[0] // 2) % patch.shape[0] - patch.shape[0] // 2)
            dx = int((peak[1] - cx + patch.shape[1] // 2) % patch.shape[1] - patch.shape[1] // 2)
            if dy or dx:
                mask = self._masks[instance_id]
                self._masks[instance_id] = InstanceMask(
                    instance_id=mask.instance_id,
                    class_label=mask.class_label,
                    mask=shift_mask(mask.mask, dy, dx),
                    score=mask.score,
                )
                state["box"] = (x0 + dx, y0 + dy, x1 + dx, y1 + dy)
            # Online filter adaptation at the new location.
            bx0, by0, bx1, by1 = state["box"]
            if bx0 >= 0 and by0 >= 0 and bx1 <= w and by1 <= h:
                patch = gray[by0:by1, bx0:bx1]
                if patch.shape == processed.shape:
                    processed = self._preprocess(patch)
                    forward = np.fft.fft2(processed)
                    target = self._target_response(patch.shape)
                    rate = self.learning_rate
                    state["numerator"] = (
                        (1 - rate) * state["numerator"]
                        + rate * target * np.conj(forward)
                    )
                    state["denominator"] = (
                        (1 - rate) * state["denominator"]
                        + rate * (forward * np.conj(forward) + 1e-2)
                    )
        return list(self._masks.values())

    @property
    def masks(self) -> list[InstanceMask]:
        return list(self._masks.values())
