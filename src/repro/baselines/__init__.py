"""Compared systems: local trackers (motion-vector, MOSSE/KCF-class) and
the four baseline clients of Section VI-B."""

from .trackers import (
    MosseTracker,
    MotionVectorTracker,
    block_match_shift,
    shift_mask,
)
from .systems import (
    BestEffortEdgeClient,
    EAARClient,
    EdgeDuetClient,
    MobileOnlyClient,
)

__all__ = [
    "MosseTracker",
    "MotionVectorTracker",
    "block_match_shift",
    "shift_mask",
    "BestEffortEdgeClient",
    "EAARClient",
    "EdgeDuetClient",
    "MobileOnlyClient",
]
