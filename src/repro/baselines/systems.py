"""The compared systems (Section VI-B).

* :class:`MobileOnlyClient` — the whole DL model on the phone (TFLite):
  seconds per frame, so almost every displayed frame is stale.
* :class:`BestEffortEdgeClient` — ship frames to the edge whenever the
  previous answer came back, track the cached masks locally with motion
  vectors in between.
* :class:`EAARClient` — EAAR's per-object motion-vector tracker and
  motion-predicted RoI encoding (object boxes high quality, background
  medium), full-frame Mask R-CNN on the edge.
* :class:`EdgeDuetClient` — EdgeDuet's KCF-class correlation tracker and
  tile-level offloading that prioritizes *small* objects in high quality
  (the paper notes this harms large objects), full-frame Mask R-CNN.

Per-frame compute costs are explicit constants calibrated to the paper's
mobile-side latency comparison (Fig. 11: EAAR ~41 ms, EdgeDuet ~49 ms
against edgeIS ~28 ms).
"""

from __future__ import annotations

import numpy as np

from ..encoding.tiles import TileGrid, TileQuality, encode_frame
from ..image.masks import InstanceMask
from ..model.maskrcnn import SimulatedSegmentationModel
from ..runtime.interface import ClientFrameOutput, OffloadRequest
from .trackers import MosseTracker, MotionVectorTracker

__all__ = [
    "MobileOnlyClient",
    "BestEffortEdgeClient",
    "EAARClient",
    "EdgeDuetClient",
]


class MobileOnlyClient:
    """Run the segmentation model on the device itself (TFLite baseline)."""

    name = "mobile_only"

    def __init__(self, rng: np.random.Generator | None = None):
        self.model = SimulatedSegmentationModel(
            "mask_rcnn_r101", "mobile_npu", rng or np.random.default_rng(11)
        )

    def process_frame(self, frame, truth, now_ms) -> ClientFrameOutput:
        result = self.model.infer(truth.masks, frame.shape)
        return ClientFrameOutput(masks=result.masks, compute_ms=result.total_ms)

    def receive_result(self, frame_index, masks, now_ms) -> float:
        return 0.0  # never offloads

    def offload_rejected(self, frame_index, now_ms) -> None:
        pass  # never offloads, nothing in flight

    def memory_bytes(self) -> int:
        return 350 * 1024 * 1024  # resident model weights


class _TrackedOffloadClient:
    """Shared machinery: local tracker + one-in-flight offloading."""

    # Per-frame compute model (ms); subclasses override.
    tracker_base_ms = 8.0
    tracker_per_object_ms = 2.0
    encode_ms = 12.0
    integrate_ms = 8.0

    def __init__(self, frame_shape: tuple[int, int], rng=None):
        self.grid = TileGrid(frame_shape[0], frame_shape[1], 16)
        self._rng = rng or np.random.default_rng(13)
        self._outstanding = 0
        self._last_gray = None

    # subclasses provide: self.tracker, _encode(frame, gray) -> EncodedFrame
    def _tracker_update(self, gray) -> list[InstanceMask]:
        return self.tracker.update(gray)

    def process_frame(self, frame, truth, now_ms) -> ClientFrameOutput:
        gray = frame.gray
        masks = self._tracker_update(gray)
        compute = self.tracker_base_ms + self.tracker_per_object_ms * len(masks)
        offload = None
        if self._outstanding == 0:
            encoded = self._encode(frame, gray, masks)
            offload = OffloadRequest(
                frame_index=frame.index,
                payload_bytes=encoded.total_bytes,
                encode_ms=self.encode_ms,
                instructions=None,  # no CIIA in the compared systems
                use_dynamic_anchors=False,
                use_roi_pruning=False,
                encoded=encoded,
                reason="best-effort",
            )
            compute += self.encode_ms
            self._outstanding += 1
        self._last_gray = gray
        return ClientFrameOutput(masks=masks, compute_ms=compute, offload=offload)

    def receive_result(self, frame_index, masks, now_ms) -> float:
        self._outstanding = max(0, self._outstanding - 1)
        if self._last_gray is not None:
            self.tracker.reset(masks, self._last_gray)
        return self.integrate_ms

    def offload_rejected(self, frame_index, now_ms) -> None:
        # Free the slot; the tracker keeps coasting on its current state.
        self._outstanding = max(0, self._outstanding - 1)

    def memory_bytes(self) -> int:
        return 80 * 1024 * 1024

    # ------------------------------------------------------------------
    def _encode(self, frame, gray, masks):  # pragma: no cover - abstract
        raise NotImplementedError


class BestEffortEdgeClient:
    """Send frames at full quality as fast as the pipe allows and render
    whatever masks last came back, unmodified.

    No local adaptation at all: the displayed result is always one
    round-trip (plus queueing) stale, which is why the paper measures a
    60% false rate for this strategy.
    """

    name = "edge_best_effort"
    render_ms = 6.0
    encode_ms = 14.0  # full-quality whole frame
    integrate_ms = 5.0
    max_outstanding = 3  # naive pipelining: an in-flight queue builds up

    def __init__(self, frame_shape, rng=None):
        self.grid = TileGrid(frame_shape[0], frame_shape[1], 16)
        self._rng = rng or np.random.default_rng(13)
        self._outstanding = 0
        self._masks: list[InstanceMask] = []

    def process_frame(self, frame, truth, now_ms) -> ClientFrameOutput:
        compute = self.render_ms
        offload = None
        if self._outstanding < self.max_outstanding:
            qualities = np.full(
                (self.grid.rows, self.grid.cols), int(TileQuality.HIGH), dtype=int
            )
            encoded = encode_frame(frame.gray, qualities, self.grid, frame.index)
            offload = OffloadRequest(
                frame_index=frame.index,
                payload_bytes=encoded.total_bytes,
                encode_ms=self.encode_ms,
                use_dynamic_anchors=False,
                use_roi_pruning=False,
                encoded=encoded,
                reason="best-effort",
            )
            compute += self.encode_ms
            self._outstanding += 1
        return ClientFrameOutput(
            masks=list(self._masks), compute_ms=compute, offload=offload
        )

    def receive_result(self, frame_index, masks, now_ms) -> float:
        self._outstanding = max(0, self._outstanding - 1)
        self._masks = masks
        return self.integrate_ms

    def offload_rejected(self, frame_index, now_ms) -> None:
        # Free the slot; keep rendering the last delivered masks.
        self._outstanding = max(0, self._outstanding - 1)

    def memory_bytes(self) -> int:
        return 60 * 1024 * 1024


class EAARClient(_TrackedOffloadClient):
    """EAAR: motion-vector tracker + motion-predicted RoI encoding."""

    name = "eaar"
    tracker_base_ms = 12.0
    tracker_per_object_ms = 6.5  # per-object block matching, Fig. 11: ~41 ms
    encode_ms = 10.0

    def __init__(self, frame_shape, rng=None):
        super().__init__(frame_shape, rng)
        self.tracker = MotionVectorTracker()

    def _encode(self, frame, gray, masks):
        # Object areas (predicted by the tracker's boxes) in high quality,
        # background medium — EAAR's RoI prediction is box-coarse, leaving
        # "room for further compression" (Section VI-C3).
        qualities = np.full(
            (self.grid.rows, self.grid.cols), int(TileQuality.MEDIUM), dtype=int
        )
        for mask in masks:
            box = mask.box
            if box is None:
                continue
            rows, cols = self.grid.tiles_overlapping_box(box)
            qualities[rows, cols] = int(TileQuality.HIGH)
        return encode_frame(gray, qualities, self.grid, frame.index)


class EdgeDuetClient(_TrackedOffloadClient):
    """EdgeDuet: KCF-class tracker + small-object-priority tile offloading."""

    name = "edgeduet"
    tracker_base_ms = 16.0
    tracker_per_object_ms = 7.0  # correlation filters, Fig. 11: ~49 ms
    encode_ms = 9.0
    small_object_area = 1200  # px: objects below this ship in high quality

    def __init__(self, frame_shape, rng=None):
        super().__init__(frame_shape, rng)
        self.tracker = MosseTracker()

    def _encode(self, frame, gray, masks):
        # Small objects high, everything else (including *large* objects)
        # low — the behaviour the paper calls out as harming large-object
        # accuracy (Section VI-C3).
        qualities = np.full(
            (self.grid.rows, self.grid.cols), int(TileQuality.LOW), dtype=int
        )
        for mask in masks:
            box = mask.box
            if box is None:
                continue
            rows, cols = self.grid.tiles_overlapping_box(box)
            if mask.area <= self.small_object_area:
                qualities[rows, cols] = int(TileQuality.HIGH)
        return encode_frame(gray, qualities, self.grid, frame.index)
