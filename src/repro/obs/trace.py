"""Frame-level span tracer for the mobile/edge pipeline.

The pipeline is a discrete-event simulation: every duration of interest
(client stages, uplink/downlink, server queueing, inference) is a
*simulated* number of milliseconds, so spans carry explicit
``start_ms``/``dur_ms`` on the simulation clock rather than sampling a
wall clock.  That makes traces fully deterministic — two identical runs
produce byte-identical exports — and lets them be diffed across
commits.  An optional wall-clock mode additionally records real elapsed
time per span for profiling the simulator itself.

Usage::

    tracer = Tracer()
    tracer.set_now(now_ms)                      # once per simulated frame
    with tracer.span("mamt.predict", frame=ix, dur_ms=4.4):
        ...                                     # nested spans attach here
    tracer.event("offload.decision", frame=ix, reason="new-content")

Instrumented modules default to :data:`NULL_TRACER`, whose methods do
nothing and allocate nothing, so tracing is off unless a real tracer is
injected (near-zero overhead when disabled).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "RequestContext",
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


@dataclass(frozen=True)
class RequestContext:
    """Causal identity of one frame's journey through the system.

    A context is minted when a frame enters the pipeline (``session`` is
    the client index, 0 for single-client runs; ``frame`` the capture
    index) and travels with the request across every layer — client,
    channel, scheduler, replica, delivery — so spans and events recorded
    on different lanes share one ``trace_id`` and can be stitched back
    into a lineage (:mod:`repro.obs.lineage`).  Both derived identifiers
    are pure functions of ``(session, frame)``: byte-stable across runs
    and processes, never derived from object identity.

    ``tenant`` is the optional tenancy attribution
    (:mod:`repro.tenancy`): multi-tenant fleets stamp the owning
    tenant's name so every span/event/lineage of the request can be
    grouped per tenant.  It is deliberately excluded from ``trace_id``
    — the causal identity of a frame does not change when tenancy is
    switched on.
    """

    session: int
    frame: int
    tenant: str | None = None

    @property
    def trace_id(self) -> str:
        return f"s{self.session}-f{self.frame}"

    @property
    def flow_id(self) -> int:
        """Deterministic integer id for Chrome trace flow events."""
        return self.session * 1_000_000 + self.frame + 1


@dataclass
class Span:
    """One completed operation on one timeline lane."""

    seq: int  # export order (assigned when the span closes)
    span_id: int
    parent_id: int | None
    name: str
    lane: str
    start_ms: float
    dur_ms: float
    frame: int | None = None
    attrs: dict = field(default_factory=dict)
    wall_ms: float | None = None  # only in wall-clock mode
    ctx: RequestContext | None = None

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.dur_ms

    def to_record(self) -> dict:
        record = {
            "type": "span",
            "seq": self.seq,
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "lane": self.lane,
            "start_ms": round(self.start_ms, 6),
            "dur_ms": round(self.dur_ms, 6),
        }
        if self.frame is not None:
            record["frame"] = self.frame
        if self.ctx is not None:
            record["session"] = self.ctx.session
            record["trace"] = self.ctx.trace_id
            if self.ctx.tenant is not None:
                record["tenant"] = self.ctx.tenant
        if self.attrs:
            record["attrs"] = self.attrs
        if self.wall_ms is not None:
            record["wall_ms"] = self.wall_ms
        return record


@dataclass
class TraceEvent:
    """One instantaneous structured event (offload decision, queue edge,
    state transition, delivery...)."""

    seq: int
    name: str
    lane: str
    ts_ms: float
    frame: int | None = None
    attrs: dict = field(default_factory=dict)
    ctx: RequestContext | None = None

    def to_record(self) -> dict:
        record = {
            "type": "event",
            "seq": self.seq,
            "name": self.name,
            "lane": self.lane,
            "ts_ms": round(self.ts_ms, 6),
        }
        if self.frame is not None:
            record["frame"] = self.frame
        if self.ctx is not None:
            record["session"] = self.ctx.session
            record["trace"] = self.ctx.trace_id
            if self.ctx.tenant is not None:
                record["tenant"] = self.ctx.tenant
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _ActiveSpan:
    """Context manager handed out by :meth:`Tracer.span`.

    The simulated duration can be assigned inside the ``with`` block
    (``sp.dur_ms = output.compute_ms``) when it is only known after the
    work ran.
    """

    __slots__ = ("_tracer", "span", "_wall_start")

    def __init__(self, tracer: Tracer, span: Span):
        self._tracer = tracer
        self.span = span
        self._wall_start: float | None = None

    @property
    def dur_ms(self) -> float:
        return self.span.dur_ms

    @dur_ms.setter
    def dur_ms(self, value: float) -> None:
        self.span.dur_ms = float(value)

    def set_sim(self, start_ms: float | None = None, dur_ms: float | None = None):
        if start_ms is not None:
            self.span.start_ms = float(start_ms)
        if dur_ms is not None:
            self.span.dur_ms = float(dur_ms)
        return self

    def annotate(self, **attrs) -> None:
        self.span.attrs.update(attrs)

    def __enter__(self):
        self._tracer._stack.append(self.span.span_id)
        if self._tracer.wall_clock:
            self._wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._wall_start is not None:
            self.span.wall_ms = (time.perf_counter() - self._wall_start) * 1000.0
        stack = self._tracer._stack
        if stack and stack[-1] == self.span.span_id:
            stack.pop()
        self._tracer._finish_span(self.span)
        return False


class Tracer:
    """Records spans + events on named lanes of a simulated timeline."""

    enabled = True

    def __init__(
        self,
        wall_clock: bool = False,
        metrics: MetricsRegistry | None = None,
    ):
        self.wall_clock = wall_clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self.now_ms = 0.0
        self._stack: list[int] = []
        self._next_id = 1
        self._next_seq = 0

    # ------------------------------------------------------------------
    def set_now(self, now_ms: float) -> None:
        """Advance the tracer's idea of 'current simulated time'; spans
        and events that do not pass explicit timestamps anchor here."""
        self.now_ms = float(now_ms)

    def span(
        self,
        name: str,
        *,
        lane: str = "client",
        frame: int | None = None,
        start_ms: float | None = None,
        dur_ms: float = 0.0,
        ctx: RequestContext | None = None,
        **attrs,
    ) -> _ActiveSpan:
        span = Span(
            seq=-1,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            lane=lane,
            start_ms=self.now_ms if start_ms is None else float(start_ms),
            dur_ms=float(dur_ms),
            frame=frame,
            attrs=attrs,
            ctx=ctx,
        )
        self._next_id += 1
        return _ActiveSpan(self, span)

    def add_span(
        self,
        name: str,
        *,
        lane: str = "client",
        frame: int | None = None,
        start_ms: float | None = None,
        dur_ms: float = 0.0,
        ctx: RequestContext | None = None,
        **attrs,
    ) -> Span:
        """Record an already-complete span (pure simulated duration)."""
        span = Span(
            seq=-1,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            lane=lane,
            start_ms=self.now_ms if start_ms is None else float(start_ms),
            dur_ms=float(dur_ms),
            frame=frame,
            attrs=attrs,
            ctx=ctx,
        )
        self._next_id += 1
        self._finish_span(span)
        return span

    def event(
        self,
        name: str,
        *,
        lane: str = "client",
        ts_ms: float | None = None,
        frame: int | None = None,
        ctx: RequestContext | None = None,
        **attrs,
    ) -> TraceEvent:
        record = TraceEvent(
            seq=self._next_seq,
            name=name,
            lane=lane,
            ts_ms=self.now_ms if ts_ms is None else float(ts_ms),
            frame=frame,
            attrs=attrs,
            ctx=ctx,
        )
        self._next_seq += 1
        self.events.append(record)
        return record

    # ------------------------------------------------------------------
    def _finish_span(self, span: Span) -> None:
        span.seq = self._next_seq
        self._next_seq += 1
        self.spans.append(span)

    def records(self) -> list[dict]:
        """All spans + events, merged in deterministic (seq) order."""
        merged = [s.to_record() for s in self.spans]
        merged.extend(e.to_record() for e in self.events)
        merged.sort(key=lambda r: r["seq"])
        return merged

    def lanes(self) -> list[str]:
        """Lane names in first-appearance order."""
        seen: dict[str, None] = {}
        for record in sorted(
            self.spans + self.events, key=lambda r: r.seq
        ):
            seen.setdefault(record.lane)
        return list(seen)


class _NullSpan:
    """Reusable do-nothing span context manager.

    API parity with :class:`_ActiveSpan` is a contract (enforced by
    ``tests/test_obs.py``): instrumented code must never branch on the
    tracer type, so every public attribute of the live span exists here
    too.  ``span`` hands out a shared throwaway :class:`Span` sink —
    anything written to it is garbage by design.
    """

    __slots__ = ()
    dur_ms = 0.0

    @property
    def span(self) -> Span:
        return _NULL_SPAN_RECORD

    def set_sim(self, start_ms=None, dur_ms=None):
        return self

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __setattr__(self, name, value):  # swallow `sp.dur_ms = ...`
        pass


# The sink behind ``_NullSpan.span``: one shared, never-exported record.
_NULL_SPAN_RECORD = Span(
    seq=-1, span_id=0, parent_id=None, name="null", lane="null",
    start_ms=0.0, dur_ms=0.0,
)

_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every method is a no-op.

    Shared as the module-level :data:`NULL_TRACER` singleton; its span
    and event stores are immutable empties, so a run against it provably
    records nothing.
    """

    enabled = False
    wall_clock = False
    metrics = NULL_METRICS
    spans: tuple = ()
    events: tuple = ()
    now_ms = 0.0

    __slots__ = ()

    def set_now(self, now_ms: float) -> None:
        pass

    def span(self, name, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name, **kwargs) -> None:
        return None

    def event(self, name, **kwargs) -> None:
        return None

    def records(self) -> list:
        return []

    def lanes(self) -> list:
        return []


NULL_TRACER = NullTracer()
