"""Causal lineage reconstruction for per-frame offload requests.

Every span/event the pipeline records for an offloaded frame carries a
:class:`~repro.obs.trace.RequestContext` (``(session, frame)``), so one
frame's journey — dispatch, uplink, admission, queue, batch, inference,
downlink, delivery, integration — can be stitched back into a single
:class:`RequestLineage` even though the pieces live on different lanes
(clientN / channelN / serve / serverM).

The decomposition is **exact by construction**: every segment is a
difference of adjacent boundary timestamps taken from the raw (unrounded)
span floats, so the segments telescope — their sum equals the lineage's
end-to-end latency to float precision, never "approximately".  That is
the invariant :mod:`repro.obs.critical` builds its miss attribution on,
and what ``tests/test_lineage.py`` asserts to ±1e-6 ms.

Batch membership does not rely on timestamp coincidence: batched
``server.infer`` spans and ``serve.batch.dispatch`` events carry an
explicit ``traces`` attr listing member trace ids, so a member whose
context is not the span's own still finds its service interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .trace import Span, TraceEvent, Tracer

__all__ = [
    "SEGMENT_ORDER",
    "RequestLineage",
    "build_lineages",
    "server_index_for_lane",
]

# Exclusive, adjacent segments of one delivered request, in causal order.
SEGMENT_ORDER = (
    "device_compute",
    "serialize",
    "uplink",
    "queue_wait",
    "batch_wait",
    "service",
    "downlink",
    "delivery_wait",
    "integration",
)


def server_index_for_lane(lane: str) -> int:
    """Replica index encoded in a server lane name (``server`` -> 0,
    ``server3`` -> 3); -1 for non-server lanes."""
    if not lane.startswith("server"):
        return -1
    suffix = lane[len("server"):]
    return int(suffix) if suffix else 0


@dataclass
class RequestLineage:
    """One offloaded frame's reconstructed end-to-end journey."""

    session: int
    frame: int
    trace_id: str
    # Tenancy attribution (multi-tenant fleets; None otherwise).
    tenant: str | None = None
    # Raw trace material, stitched by context (None = never happened):
    process: Span | None = None  # client.process that produced the offload
    dispatch: TraceEvent | None = None  # offload.dispatch
    uplink: Span | None = None  # channel.uplink
    admit: TraceEvent | None = None  # serve.admit
    reject: TraceEvent | None = None  # serve.reject
    shed: TraceEvent | None = None  # serve.shed
    queue_enter: TraceEvent | None = None  # server.queue_enter
    queue_exit: TraceEvent | None = None  # server.queue_exit
    batch: TraceEvent | None = None  # serve.batch.dispatch (member of)
    infer: Span | None = None  # server.infer (solo or shared batch span)
    downlink: Span | None = None  # channel.downlink
    delivered: TraceEvent | None = None  # client.result_delivered
    integrate: Span | None = None  # client.integrate
    # Derived:
    outcome: str = "in-flight"  # delivered | shed | rejected | in-flight
    server: int = -1
    start_ms: float = 0.0
    end_ms: float = 0.0
    segments: dict[str, float] = field(default_factory=dict)

    @property
    def e2e_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def complete(self) -> bool:
        """A lineage is complete when its causal chain has no gaps for
        its outcome: every request must at least have a dispatch and an
        uplink; a delivered one the full chain through integration; a
        shed/rejected one its terminating serve event."""
        if self.dispatch is None or self.uplink is None:
            return False
        if self.outcome == "delivered":
            return None not in (self.infer, self.downlink, self.integrate)
        if self.outcome == "shed":
            return self.shed is not None
        if self.outcome == "rejected":
            return self.reject is not None
        return True

    @property
    def stall_ms(self) -> float:
        """Partition-window hold time across both transfers."""
        total = 0.0
        for span in (self.uplink, self.downlink):
            if span is not None:
                total += float(span.attrs.get("stall_ms", 0.0))
        return total

    @property
    def handoff_link(self) -> str | None:
        """The non-base link that carried a transfer, if any."""
        for span in (self.uplink, self.downlink):
            if span is not None and "link" in span.attrs:
                return str(span.attrs["link"])
        return None

    def _finalize(self) -> None:
        """Derive outcome, boundaries and the exclusive segments."""
        segments: dict[str, float] = {}
        dispatch_ts = (
            self.dispatch.ts_ms
            if self.dispatch is not None
            else (self.uplink.start_ms if self.uplink is not None else 0.0)
        )
        self.start_ms = (
            self.process.start_ms if self.process is not None else dispatch_ts
        )
        segments["device_compute"] = dispatch_ts - self.start_ms

        if self.uplink is None:
            self.end_ms = dispatch_ts
            self.segments = segments
            return
        segments["serialize"] = self.uplink.start_ms - dispatch_ts
        segments["uplink"] = self.uplink.dur_ms
        arrive = self.uplink.end_ms

        if self.reject is not None:
            self.outcome = "rejected"
            self.end_ms = arrive
            self.segments = segments
            return
        if self.shed is not None:
            self.outcome = "shed"
            # kill_replica sheds at the fault tick, which can precede the
            # item's uplink arrival on the sim clock — clamp so the
            # queue_wait segment stays a non-negative telescoping step.
            self.end_ms = max(arrive, self.shed.ts_ms)
            segments["queue_wait"] = self.end_ms - arrive
            self.segments = segments
            return

        service_start = None
        if self.queue_exit is not None:
            service_start = self.queue_exit.ts_ms
        elif self.infer is not None:
            service_start = self.infer.start_ms
        if service_start is None or self.infer is None:
            self.outcome = "in-flight"
            self.end_ms = arrive
            self.segments = segments
            return

        held = service_start - arrive
        batch_wait = 0.0
        if self.batch is not None:
            # The batch window opened at pick (= dispatch event ts minus
            # its recorded wait); time past max(arrive, pick) is the
            # price of joining the batch, the rest is plain queueing.
            pick = self.batch.ts_ms - float(self.batch.attrs.get("wait_ms", 0.0))
            batch_wait = min(held, max(0.0, service_start - max(arrive, pick)))
        segments["queue_wait"] = held - batch_wait
        segments["batch_wait"] = batch_wait

        if self.downlink is None:
            self.outcome = "in-flight"
            segments["service"] = self.infer.end_ms - service_start
            self.end_ms = self.infer.end_ms
            self.segments = segments
            return
        segments["service"] = self.downlink.start_ms - service_start
        segments["downlink"] = self.downlink.dur_ms

        if self.integrate is None:
            self.outcome = "in-flight"
            self.end_ms = self.downlink.end_ms
            self.segments = segments
            return
        self.outcome = "delivered"
        segments["delivery_wait"] = self.integrate.start_ms - self.downlink.end_ms
        segments["integration"] = self.integrate.dur_ms
        self.end_ms = self.integrate.end_ms
        self.segments = segments


def build_lineages(tracer: Tracer) -> dict[str, RequestLineage]:
    """Stitch every offloaded request of a traced run into its lineage.

    Returns ``trace_id -> RequestLineage`` in deterministic
    ``(session, frame)`` order.  Only frames that dispatched an offload
    get a lineage (non-offloaded frames have no cross-lane journey to
    reconstruct); batched service spans are attached to every member
    listed in their ``traces`` attr.
    """
    lineages: dict[str, RequestLineage] = {}

    def lineage_for(ctx) -> RequestLineage:
        lineage = lineages.get(ctx.trace_id)
        if lineage is None:
            lineage = lineages[ctx.trace_id] = RequestLineage(
                session=ctx.session,
                frame=ctx.frame,
                trace_id=ctx.trace_id,
                tenant=ctx.tenant,
            )
        return lineage

    span_slots = {
        "channel.uplink": "uplink",
        "channel.downlink": "downlink",
        "client.integrate": "integrate",
    }
    event_slots = {
        "offload.dispatch": "dispatch",
        "serve.admit": "admit",
        "serve.reject": "reject",
        "serve.shed": "shed",
        "server.queue_enter": "queue_enter",
        "server.queue_exit": "queue_exit",
        "client.result_delivered": "delivered",
    }

    # Seed lineages from dispatch events so ordering follows causality
    # even when spans surface out of (session, frame) order.
    for event in tracer.events:
        if event.name == "offload.dispatch" and event.ctx is not None:
            lineage_for(event.ctx)

    for event in tracer.events:
        if event.ctx is None:
            continue
        if event.name == "serve.batch.dispatch":
            for trace_id in event.attrs.get("traces", ()):
                if trace_id in lineages:
                    lineages[trace_id].batch = event
            continue
        slot = event_slots.get(event.name)
        if slot is None or event.ctx.trace_id not in lineages:
            continue
        lineage = lineages[event.ctx.trace_id]
        if getattr(lineage, slot) is None:
            setattr(lineage, slot, event)

    for span in tracer.spans:
        if span.name == "server.infer":
            members = span.attrs.get("traces")
            if members:
                for trace_id in members:
                    if trace_id in lineages and lineages[trace_id].infer is None:
                        lineages[trace_id].infer = span
            elif span.ctx is not None and span.ctx.trace_id in lineages:
                lineage = lineages[span.ctx.trace_id]
                if lineage.infer is None:
                    lineage.infer = span
            continue
        if span.ctx is None or span.ctx.trace_id not in lineages:
            continue
        lineage = lineages[span.ctx.trace_id]
        if span.name == "client.process":
            # The process span of the *capture* frame (same index as the
            # request); integrate spans share the context but differ by name.
            if lineage.process is None:
                lineage.process = span
            continue
        slot = span_slots.get(span.name)
        if slot is not None and getattr(lineage, slot) is None:
            setattr(lineage, slot, span)

    for lineage in lineages.values():
        source = lineage.queue_exit or lineage.queue_enter
        if source is not None:
            lineage.server = server_index_for_lane(source.lane)
        elif lineage.infer is not None:
            lineage.server = server_index_for_lane(lineage.infer.lane)
        elif lineage.admit is not None:
            lineage.server = int(lineage.admit.attrs.get("server", -1))
        lineage._finalize()

    return dict(
        sorted(lineages.items(), key=lambda kv: (kv[1].session, kv[1].frame))
    )
