"""SLO error budgets, rolling burn rates, and session state timelines.

:mod:`repro.obs.slo` scores a run after the fact as one scalar miss
rate; an operator (or the ROADMAP's autoscaler/chaos harness) needs the
SRE framing instead: a run is *allowed* some miss fraction (the SLO
target), which over N measured frames is an **error budget** of
``target * N`` misses, and what matters over time is the **burn rate**
— the windowed miss rate divided by the target.  Burn 1.0 spends the
budget exactly at end of run; burn 10 exhausts it in a tenth of the
run.  Two windows, SRE-style: a *fast* window that catches sharp
regressions within a few frame intervals and a *slow* window that
catches simmering ones without flapping.

Everything is computed from the simulated-clock frame spans (one
deadline verdict per measured frame), so two identical runs produce
byte-identical budget reports.

The module also reconstructs per-session **state timelines** from the
``serve.*`` trace events — each client's admit/reject/shed activity and
its degrade -> recover trajectory — which the ops report renders as one
state strip per session.
"""

from __future__ import annotations

import math
from collections import deque

from .slo import FRAME_BUDGET_MS, frame_latency_spans

__all__ = [
    "DEFAULT_SLO_TARGET",
    "FAST_BURN_WINDOW_MS",
    "SLOW_BURN_WINDOW_MS",
    "BurnRateTracker",
    "evaluate_error_budget",
    "session_timelines",
    "detect_budget_exhaustion",
]

# Allowed frame-deadline miss fraction: the paper claims hard real time,
# but a synthetic fleet at saturation is certified against a small
# non-zero allowance (the fleet baseline sits at ~1-2% miss).
DEFAULT_SLO_TARGET = 0.05

# Burn windows on the simulated clock.  Runs here are seconds long, so
# the windows are proportionally tighter than SRE's hours: fast catches
# a burst within ~15 frames, slow integrates over ~2 s of simulated time.
FAST_BURN_WINDOW_MS = 500.0
SLOW_BURN_WINDOW_MS = 2000.0


class BurnRateTracker:
    """Rolling miss-rate-over-target across one sliding window."""

    def __init__(self, window_ms: float, target: float):
        if window_ms <= 0.0:
            raise ValueError("window_ms must be positive")
        if not 0.0 < target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        self.window_ms = float(window_ms)
        self.target = float(target)
        self._samples: deque[tuple[float, bool]] = deque()
        self._misses_in_window = 0

    def record(self, ts_ms: float, missed: bool) -> float:
        """Add one frame verdict; returns the burn rate at ``ts_ms``."""
        self._samples.append((ts_ms, missed))
        if missed:
            self._misses_in_window += 1
        cutoff = ts_ms - self.window_ms
        while self._samples and self._samples[0][0] <= cutoff:
            _, old_missed = self._samples.popleft()
            if old_missed:
                self._misses_in_window -= 1
        return self.burn_rate

    @property
    def burn_rate(self) -> float:
        if not self._samples:
            return 0.0
        return (self._misses_in_window / len(self._samples)) / self.target


def evaluate_error_budget(
    tracer,
    budget_ms: float = FRAME_BUDGET_MS,
    target: float = DEFAULT_SLO_TARGET,
    warmup_frames: int = 0,
    fast_window_ms: float = FAST_BURN_WINDOW_MS,
    slow_window_ms: float = SLOW_BURN_WINDOW_MS,
) -> dict:
    """Fold a traced run into an error-budget report.

    Returns a JSON-clean dict: the budget arithmetic (allowed misses,
    consumed fraction, remaining fraction, the simulated instant the
    budget ran out — or None), the peak and final fast/slow burn rates,
    and a ``burn_series`` (per-frame timestamps with both windowed burn
    rates) for charting.  Consumers embedding the report in a lean
    artifact drop the series (``dict`` minus ``"burn_series"``).

    NaN policy matches :func:`~repro.obs.slo.exact_percentile`: with no
    measured frames the rates and fractions are ``math.nan``, counts are
    honest zeros.
    """
    spans = frame_latency_spans(tracer, warmup_frames=warmup_frames)
    frames = len(spans)
    allowed = target * frames
    fast = BurnRateTracker(fast_window_ms, target)
    slow = BurnRateTracker(slow_window_ms, target)

    misses = 0
    max_fast = 0.0
    max_slow = 0.0
    exhausted_at: float | None = None
    times: list[float] = []
    fast_series: list[float] = []
    slow_series: list[float] = []
    for span in sorted(spans, key=lambda s: (s.start_ms, s.lane)):
        ts = span.start_ms
        missed = span.dur_ms > budget_ms
        if missed:
            misses += 1
            if exhausted_at is None and misses > allowed:
                exhausted_at = ts
        fast_rate = fast.record(ts, missed)
        slow_rate = slow.record(ts, missed)
        max_fast = max(max_fast, fast_rate)
        max_slow = max(max_slow, slow_rate)
        times.append(round(ts, 6))
        fast_series.append(round(fast_rate, 6))
        slow_series.append(round(slow_rate, 6))

    if frames:
        consumed = misses / allowed if allowed else math.inf
        remaining = max(0.0, 1.0 - consumed)
    else:
        consumed = math.nan
        remaining = math.nan
    return {
        "target_miss_rate": round(target, 6),
        "budget_ms": round(budget_ms, 6),
        "frames": frames,
        "misses": misses,
        "allowed_misses": round(allowed, 6),
        "consumed_fraction": round(consumed, 6),
        "remaining_fraction": round(remaining, 6),
        "exhausted_at_ms": (
            round(exhausted_at, 6) if exhausted_at is not None else None
        ),
        "fast_window_ms": round(fast_window_ms, 6),
        "slow_window_ms": round(slow_window_ms, 6),
        "fast_burn_rate": fast_series[-1] if fast_series else math.nan,
        "slow_burn_rate": slow_series[-1] if slow_series else math.nan,
        "max_fast_burn_rate": round(max_fast, 6) if frames else math.nan,
        "max_slow_burn_rate": round(max_slow, 6) if frames else math.nan,
        "burn_series": {
            "times_ms": times,
            "fast": fast_series,
            "slow": slow_series,
        },
    }


def detect_budget_exhaustion(
    budget_report: dict, tracer=None, emit: bool = False
) -> list[dict]:
    """The budget-exhaustion anomaly: the first simulated instant the
    run's cumulative misses exceeded its whole error budget."""
    exhausted_at = budget_report.get("exhausted_at_ms")
    if exhausted_at is None:
        return []
    anomaly = {
        "type": "budget_exhausted",
        "lane": "obs",
        "ts_ms": exhausted_at,
        "target_miss_rate": budget_report["target_miss_rate"],
        "allowed_misses": budget_report["allowed_misses"],
        "consumed_fraction": budget_report["consumed_fraction"],
        "severity": budget_report["consumed_fraction"],
    }
    if emit and tracer is not None and getattr(tracer, "enabled", False):
        tracer.event(
            "anomaly.budget_exhausted",
            lane="obs",
            ts_ms=exhausted_at,
            target_miss_rate=anomaly["target_miss_rate"],
            consumed_fraction=anomaly["consumed_fraction"],
        )
    return [anomaly]


# ----------------------------------------------------------------------
# Per-session state timelines from serve.* events
# ----------------------------------------------------------------------
_ACTIVITY_EVENTS = {
    "serve.admit": "admits",
    "serve.reject": "rejects",
    "serve.shed": "sheds",
}


def session_timelines(tracer, duration_ms: float | None = None) -> list[dict]:
    """Reconstruct each session's serving trajectory from the trace.

    Every ``serve.*`` event carrying a ``session`` attribute feeds one
    per-session record: activity counts (admits/rejects/sheds), the
    degrade -> recover transition list (each session starts ``normal``
    at t=0), time spent degraded, and the final state.  Sessions appear
    in index order; a fleet whose trace has no ``serve.*`` events yields
    an empty list.
    """
    sessions: dict[int, dict] = {}

    def entry(index: int) -> dict:
        record = sessions.get(index)
        if record is None:
            record = sessions[index] = {
                "session": index,
                "admits": 0,
                "rejects": 0,
                "sheds": 0,
                "degrades": 0,
                "recovers": 0,
                "transitions": [{"ts_ms": 0.0, "state": "normal"}],
            }
        return record

    for event in sorted(tracer.events, key=lambda e: (e.ts_ms, e.seq)):
        index = event.attrs.get("session")
        if index is None or not event.name.startswith("serve."):
            continue
        record = entry(int(index))
        counter_key = _ACTIVITY_EVENTS.get(event.name)
        if counter_key is not None:
            record[counter_key] += 1
        elif event.name == "serve.degrade":
            record["degrades"] += 1
            record["transitions"].append(
                {"ts_ms": round(event.ts_ms, 6), "state": "degraded"}
            )
        elif event.name == "serve.recover":
            record["recovers"] += 1
            record["transitions"].append(
                {"ts_ms": round(event.ts_ms, 6), "state": "normal"}
            )

    timelines = []
    for index in sorted(sessions):
        record = sessions[index]
        transitions = record["transitions"]
        record["final_state"] = transitions[-1]["state"]
        if duration_ms is not None:
            degraded_ms = 0.0
            for pos, transition in enumerate(transitions):
                if transition["state"] != "degraded":
                    continue
                end = (
                    transitions[pos + 1]["ts_ms"]
                    if pos + 1 < len(transitions)
                    else duration_ms
                )
                degraded_ms += max(0.0, end - transition["ts_ms"])
            record["degraded_ms"] = round(degraded_ms, 6)
            record["degraded_fraction"] = round(
                degraded_ms / duration_ms if duration_ms else 0.0, 6
            )
        timelines.append(record)
    return timelines
