"""Frame-deadline SLO evaluation over a recorded trace.

The paper's headline requirement is hard real time: 30 fps end to end,
i.e. every displayed frame must fit a ~33.3 ms budget.  This module turns
one :class:`~repro.obs.trace.Tracer` into a deadline report:

* **miss rate** — fraction of measured frames whose display latency
  exceeded the budget;
* **worst streak** — the longest run of *consecutive* missed frames (a
  3-frame stutter is far more visible than three isolated misses);
* **attribution** — for each missed deadline, the stage that "ate" the
  budget: the largest child stage of that frame's ``client.process``
  span, or ``client.stale_wait`` when the client never got to the frame
  at all.

Everything is computed from the simulated-clock spans, so two identical
runs produce byte-identical SLO reports.
"""

from __future__ import annotations

import math

from .export import FRAME_LATENCY_SPANS
from .trace import Span, Tracer

__all__ = [
    "FRAME_BUDGET_MS",
    "exact_percentile",
    "frame_latency_spans",
    "evaluate_slo",
]

# The paper's real-time target: 30 fps, one frame interval per frame.
FRAME_BUDGET_MS = 1000.0 / 30.0


def exact_percentile(samples, pct: float) -> float:
    """Exact p-th percentile (linear interpolation) of a sample list.

    Unlike :meth:`Histogram.percentile` this retains every sample, so it
    is exact; use it where the sample set is small enough to keep (one
    entry per frame or per stage invocation).

    An empty sample set has no percentiles: the result is ``math.nan``,
    never an ``IndexError`` and never a fabricated 0.0 (which would read
    as "zero latency" in a report).  A single sample is every percentile
    of itself.
    """
    if not samples:
        return math.nan
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    pct = min(max(pct, 0.0), 100.0)
    rank = (len(ordered) - 1) * (pct / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return float(ordered[low] + (ordered[high] - ordered[low]) * fraction)


def frame_latency_spans(
    tracer: Tracer,
    warmup_frames: int = 0,
    sessions: set[int] | None = None,
) -> list[Span]:
    """Top-level client-lane spans carrying one frame's display latency,
    ordered by frame index (same selection as ``mean_frame_latency_ms``).

    ``sessions`` restricts the selection to those client sessions — the
    per-tenant SLO slice of a multi-tenant fleet run."""
    spans = [
        span
        for span in tracer.spans
        if span.parent_id is None
        and span.name in FRAME_LATENCY_SPANS
        and span.frame is not None
        and span.frame >= warmup_frames
        and span.lane.startswith("client")
        and (
            sessions is None
            or (span.ctx is not None and span.ctx.session in sessions)
        )
    ]
    spans.sort(key=lambda s: (s.lane, s.frame))
    return spans


def _blame_stage(span: Span, children: dict[int, list[Span]]) -> str:
    """The stage charged for a missed deadline: the longest child stage
    of the frame's top-level span, or the span itself when it has none
    (stale frames, baseline clients without stage instrumentation)."""
    stage_spans = children.get(span.span_id)
    if not stage_spans:
        return span.name
    return min(stage_spans, key=lambda s: (-s.dur_ms, s.name)).name


def evaluate_slo(
    tracer: Tracer,
    budget_ms: float = FRAME_BUDGET_MS,
    warmup_frames: int = 0,
    sessions: set[int] | None = None,
) -> dict:
    """Evaluate the frame-deadline SLO over a traced run.

    Returns a JSON-clean dict: frame/miss counts, miss rate, worst
    consecutive-miss streak, total/max overshoot, exact latency
    percentiles, and per-stage attribution counts for the misses.
    ``sessions`` evaluates the SLO over a subset of client sessions
    (one tenant's slice of a multi-tenant fleet).
    """
    spans = frame_latency_spans(
        tracer, warmup_frames=warmup_frames, sessions=sessions
    )
    children: dict[int, list[Span]] = {}
    for span in tracer.spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    latencies = [span.dur_ms for span in spans]
    misses = 0
    streak = 0
    worst_streak = 0
    total_over = 0.0
    max_over = 0.0
    attribution: dict[str, int] = {}
    for span in spans:
        if span.dur_ms > budget_ms:
            misses += 1
            streak += 1
            worst_streak = max(worst_streak, streak)
            over = span.dur_ms - budget_ms
            total_over += over
            max_over = max(max_over, over)
            stage = _blame_stage(span, children)
            attribution[stage] = attribution.get(stage, 0) + 1
        else:
            streak = 0

    frames = len(spans)
    # NaN policy: rates and percentiles of an empty trace are undefined
    # (math.nan), matching exact_percentile — counts stay honest zeros.
    return {
        "budget_ms": round(budget_ms, 6),
        "frames": frames,
        "misses": misses,
        "miss_rate": round(misses / frames, 6) if frames else math.nan,
        "worst_streak": worst_streak,
        "total_over_ms": round(total_over, 6),
        "max_over_ms": round(max_over, 6),
        "latency_p50_ms": round(exact_percentile(latencies, 50.0), 6),
        "latency_p90_ms": round(exact_percentile(latencies, 90.0), 6),
        "latency_p99_ms": round(exact_percentile(latencies, 99.0), 6),
        "attribution": {name: attribution[name] for name in sorted(attribution)},
    }
