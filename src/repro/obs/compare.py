"""Noise-aware BENCH comparison and trajectory aggregation.

:func:`compare_payloads` classifies every gated metric of two BENCH
artifacts as **improved / regressed / neutral** using per-metric
relative thresholds *and* minimum-effect floors, so a 3% wobble on a
0.2 ms stage or a one-byte payload change never trips the gate.  The
``repro bench compare`` command exits non-zero when anything regresses,
naming the offending metric path (which embeds the stage name).

:func:`render_trend_markdown` folds every ``BENCH_*.json`` in a results
directory into a markdown trend table — the repo's machine-readable perf
trajectory (``repro bench trend`` regenerates ``results/README.md``
from it).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "MetricPolicy",
    "policy_for",
    "iter_metric_paths",
    "compare_payloads",
    "render_comparison",
    "load_bench_dir",
    "render_trend_markdown",
    "write_trend_report",
]


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric is gated."""

    higher_is_better: bool
    rel_threshold: float  # minimum relative change to flag
    min_effect: float  # minimum absolute change to flag (noise floor)


# Policies are matched on the final path component.  Latencies gate at
# 5% with a 0.25 ms floor; rates at an absolute 2-point floor; bytes at
# 10%/2 KiB; IoU (higher-is-better) at 2%/0.005.  Error-budget burn
# gates at a coarse grain (burn rates are ratios of small counts, so
# they get a wide 0.5 absolute floor; consumed fraction a 5-point one).
_MS_POLICY = MetricPolicy(False, 0.05, 0.25)
_RATE_POLICY = MetricPolicy(False, 0.10, 0.02)
_BYTES_POLICY = MetricPolicy(False, 0.10, 2048.0)
_STREAK_POLICY = MetricPolicy(False, 0.25, 2.0)
_IOU_POLICY = MetricPolicy(True, 0.02, 0.005)
_BUDGET_POLICY = MetricPolicy(False, 0.10, 0.05)
_BURN_POLICY = MetricPolicy(False, 0.25, 0.5)
# Kernel speedups are wall-clock ratios: noise partially cancels in the
# ratio, but CI machines still wobble — gate only a real collapse (a
# >=60% relative drop, and at least 1x absolute).  A reverted
# vectorization drops a 3x+ ratio to ~1 (-67% or worse), which flags;
# cross-host noise halving a speedup does not.  Note the micro gate must
# run at threshold scale 1: a drop in a positive ratio is bounded at
# -100%, so any scale >= 2 makes it ungateable.
_SPEEDUP_POLICY = MetricPolicy(True, 0.60, 1.0)
# Miss-cause accounting: unclassified misses must stay at zero (any
# growth is a classifier hole — tight 0.5 absolute floor); per-cause
# counts are small integers, so gate only a real shift (>=25% and >=2
# misses moving to a cause).
_UNCLASSIFIED_POLICY = MetricPolicy(False, 0.25, 0.5)
_CAUSE_COUNT_POLICY = MetricPolicy(False, 0.25, 2.0)
# Certification verdicts (chaos cells, tenant suites) are booleans cast
# to 0/1: any flip from certified to not is a full-size change, so the
# 0.5 floors flag exactly that and nothing else.
_CERTIFIED_POLICY = MetricPolicy(True, 0.5, 0.5)


def policy_for(path: str) -> MetricPolicy | None:
    """Gating policy for a metric path; None = informational only."""
    leaf = path.rsplit(".", 1)[-1]
    if ".miss_causes." in path:
        if leaf == "unclassified":
            return _UNCLASSIFIED_POLICY
        return _CAUSE_COUNT_POLICY
    if leaf == "certified":
        return _CERTIFIED_POLICY
    if ".tenants.per_tenant." in path and leaf in ("shed", "displaced"):
        return _CAUSE_COUNT_POLICY
    if leaf == "mean_iou":
        return _IOU_POLICY
    if leaf == "worst_streak":
        return _STREAK_POLICY
    if leaf in ("bytes_up", "bytes_down"):
        return _BYTES_POLICY
    if leaf == "consumed_fraction":
        return _BUDGET_POLICY
    if leaf.endswith("_burn_rate"):
        return _BURN_POLICY
    if leaf == "miss_rate" or leaf.startswith("false_rate"):
        return _RATE_POLICY
    if leaf == "speedup_x":
        return _SPEEDUP_POLICY
    if leaf.endswith("_ms"):
        return _MS_POLICY
    return None


def iter_metric_paths(payload: dict):
    """Yield ``(path, value)`` for every gated metric of a BENCH payload.

    Paths look like ``wifi5-walk.stages.server/server.infer.p50_ms`` —
    the scenario and stage names ride along so a regression report names
    the stage that regressed.
    """
    for scenario_name in sorted(payload.get("scenarios", {})):
        scenario = payload["scenarios"][scenario_name]
        result = scenario.get("result", {})
        for key in (
            "mean_iou",
            "false_rate_75",
            "false_rate_50",
            "mean_latency_ms",
            "bytes_up",
            "bytes_down",
        ):
            if key in result:
                yield f"{scenario_name}.result.{key}", float(result[key])
        slo = scenario.get("slo", {})
        for key in (
            "miss_rate",
            "worst_streak",
            "total_over_ms",
            "max_over_ms",
            "latency_p50_ms",
            "latency_p90_ms",
            "latency_p99_ms",
        ):
            if key in slo:
                yield f"{scenario_name}.slo.{key}", float(slo[key])
        budget = scenario.get("budget", {})
        for key in (
            "consumed_fraction",
            "max_fast_burn_rate",
            "max_slow_burn_rate",
        ):
            # NaN (empty trace) is not comparable — skip it.
            if key in budget and budget[key] == budget[key]:
                yield f"{scenario_name}.budget.{key}", float(budget[key])
        causes = scenario.get("miss_causes", {})
        if causes:
            yield (
                f"{scenario_name}.miss_causes.unclassified",
                float(causes.get("unclassified", 0)),
            )
            for cause in sorted(causes.get("causes", {})):
                yield (
                    f"{scenario_name}.miss_causes.causes.{cause}",
                    float(causes["causes"][cause]),
                )
        for stage_name in sorted(scenario.get("stages", {})):
            stats = scenario["stages"][stage_name]
            for key in ("mean_ms", "p50_ms", "p90_ms", "p99_ms"):
                if key in stats:
                    yield f"{scenario_name}.stages.{stage_name}.{key}", float(
                        stats[key]
                    )
        kernel = scenario.get("kernel", {})
        if "speedup_x" in kernel:
            yield f"{scenario_name}.kernel.speedup_x", float(kernel["speedup_x"])
        tenants = scenario.get("tenants", {})
        for tenant_name in sorted(tenants.get("per_tenant", {})):
            entry = tenants["per_tenant"][tenant_name]
            prefix = f"{scenario_name}.tenants.per_tenant.{tenant_name}"
            for key in ("shed", "displaced"):
                if key in entry:
                    yield f"{prefix}.{key}", float(entry[key])
            tenant_slo = entry.get("slo", {})
            for key in (
                "miss_rate",
                "worst_streak",
                "latency_p50_ms",
                "latency_p99_ms",
            ):
                value = tenant_slo.get(key)
                # NaN (tenant with no measured frames) is not comparable.
                if value is not None and value == value:
                    yield f"{prefix}.slo.{key}", float(value)
        chaos = scenario.get("chaos", {})
        if "certified" in chaos:
            yield (
                f"{scenario_name}.chaos.certified",
                float(bool(chaos["certified"])),
            )
    certification = payload.get("certification")
    if certification is not None:
        yield (
            "certification.certified",
            float(bool(certification.get("certified"))),
        )


def _classify(
    old: float, new: float, policy: MetricPolicy, threshold_scale: float
) -> tuple[str, float]:
    """(classification, relative change).  Both the relative threshold
    and the absolute floor must be cleared to leave 'neutral'."""
    delta = new - old
    relative = delta / abs(old) if old else (float("inf") if delta else 0.0)
    if (
        abs(delta) < policy.min_effect * threshold_scale
        or abs(relative) < policy.rel_threshold * threshold_scale
    ):
        return "neutral", relative
    worse = delta < 0 if policy.higher_is_better else delta > 0
    return ("regressed" if worse else "improved"), relative


def compare_payloads(
    old: dict, new: dict, threshold_scale: float = 1.0
) -> dict:
    """Compare two BENCH payloads metric by metric.

    ``threshold_scale`` loosens (>1) or tightens (<1) every policy
    uniformly — the CI gate runs loose so only real regressions fail it.
    Raises ``ValueError`` on schema mismatch.
    """
    old_version = old.get("schema_version")
    new_version = new.get("schema_version")
    if old_version != new_version:
        raise ValueError(
            f"schema_version mismatch: old={old_version!r} new={new_version!r}"
            " — regenerate the baseline artifact"
        )
    old_metrics = dict(iter_metric_paths(old))
    new_metrics = dict(iter_metric_paths(new))
    entries = []
    regressed, improved = [], []
    for path in sorted(old_metrics.keys() & new_metrics.keys()):
        policy = policy_for(path)
        if policy is None:
            continue
        classification, relative = _classify(
            old_metrics[path], new_metrics[path], policy, threshold_scale
        )
        entries.append(
            {
                "metric": path,
                "old": old_metrics[path],
                "new": new_metrics[path],
                "relative": relative,
                "classification": classification,
            }
        )
        if classification == "regressed":
            regressed.append(path)
        elif classification == "improved":
            improved.append(path)
    return {
        "schema_version": old_version,
        "threshold_scale": threshold_scale,
        "old_label": old.get("label"),
        "new_label": new.get("label"),
        "metrics": entries,
        "regressed": regressed,
        "improved": improved,
        "neutral_count": sum(
            1 for e in entries if e["classification"] == "neutral"
        ),
        "missing": sorted(old_metrics.keys() - new_metrics.keys()),
        "added": sorted(new_metrics.keys() - old_metrics.keys()),
    }


def render_comparison(report: dict):
    """Non-neutral rows as a text table (plus a one-line summary)."""
    # Imported here: ``repro.eval`` imports the runtime, which imports
    # this package — a module-level import would be circular.
    from ..eval.reporting import Table

    table = Table(
        f"bench comparison — {report.get('old_label')} vs {report.get('new_label')} "
        f"(threshold x{report.get('threshold_scale')})",
        ["metric", "old", "new", "rel %", "verdict"],
    )
    for entry in report["metrics"]:
        if entry["classification"] == "neutral":
            continue
        table.add_row(
            entry["metric"],
            entry["old"],
            entry["new"],
            entry["relative"] * 100.0,
            entry["classification"].upper(),
        )
    return table


# ----------------------------------------------------------------------
# Trajectory aggregation
# ----------------------------------------------------------------------
def load_bench_dir(results_dir: str | Path) -> list[tuple[str, dict]]:
    """All ``BENCH_*.json`` artifacts in a directory, sorted by filename
    for a deterministic trend report."""
    results_dir = Path(results_dir)
    entries = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        entries.append((path.name, json.loads(path.read_text())))
    return entries


def render_trend_markdown(entries: list[tuple[str, dict]]) -> str:
    """Fold BENCH artifacts into the markdown trend report."""
    lines = [
        "# Benchmark trajectory",
        "",
        "Machine-readable perf history of this repo: one row per"
        " (artifact, scenario) from every `BENCH_*.json` in this"
        " directory.",
        "",
        "*Generated by `python -m repro.eval.cli bench trend` — do not"
        " edit by hand.  See [docs/observability.md](../docs/observability.md)"
        " for the BENCH schema and SLO semantics.*",
        "",
    ]
    if not entries:
        lines.append("No `BENCH_*.json` artifacts found.")
        lines.append("")
        return "\n".join(lines)
    header = (
        "| artifact | suite | label | scenario | mean IoU | frame p50 ms |"
        " frame p99 ms | miss rate | worst streak | offloads | KiB up |"
    )
    lines.append(header)
    lines.append("|" + "---|" * 11)
    kernel_rows = []
    for filename, payload in entries:
        for scenario_name in sorted(payload.get("scenarios", {})):
            scenario = payload["scenarios"][scenario_name]
            kernel = scenario.get("kernel")
            if kernel is not None:
                kernel_rows.append(
                    "| {file} | {name} | {n} | {vec} | {ref} | {speed} |"
                    " {equiv} |".format(
                        file=filename,
                        name=kernel.get("name", scenario_name),
                        n=kernel.get("n", 0),
                        vec=kernel.get("vectorized_us", "-"),
                        ref=kernel.get("reference_us", "-"),
                        speed=kernel.get("speedup_x", "-"),
                        equiv="yes" if kernel.get("equivalent") else "NO",
                    )
                )
                continue
            result = scenario.get("result", {})
            slo = scenario.get("slo", {})
            offload = scenario.get("offload", {})
            lines.append(
                "| {file} | {suite} | {label} | {scen} | {iou:.3f} |"
                " {p50:.2f} | {p99:.2f} | {miss:.3f} | {streak} |"
                " {offloads} | {kib:.1f} |".format(
                    file=filename,
                    suite=payload.get("suite", "?"),
                    label=payload.get("label", "?"),
                    scen=scenario_name,
                    iou=result.get("mean_iou", 0.0),
                    p50=slo.get("latency_p50_ms", 0.0),
                    p99=slo.get("latency_p99_ms", 0.0),
                    miss=slo.get("miss_rate", 0.0),
                    streak=slo.get("worst_streak", 0),
                    offloads=offload.get("offload_count", 0),
                    kib=offload.get("bytes_up", 0) / 1024.0,
                )
            )
    if kernel_rows:
        lines.append("")
        lines.append("## Kernel micro-benchmarks")
        lines.append("")
        lines.append(
            "Vectorized hot paths vs their scalar `_reference`"
            " implementations (see [docs/performance.md]"
            "(../docs/performance.md))."
        )
        lines.append("")
        lines.append(
            "| artifact | kernel | n | vectorized µs | reference µs |"
            " speedup | equivalent |"
        )
        lines.append("|" + "---|" * 7)
        lines.extend(kernel_rows)
    lines.append("")
    return "\n".join(lines)


def write_trend_report(
    results_dir: str | Path, out_path: str | Path | None = None
) -> Path:
    """Regenerate the trend report from a results directory."""
    results_dir = Path(results_dir)
    out_path = (
        Path(out_path) if out_path is not None else results_dir / "README.md"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(render_trend_markdown(load_bench_dir(results_dir)))
    return out_path
