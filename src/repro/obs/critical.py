"""Critical-path analysis and deadline-miss root-cause attribution.

Built on :mod:`repro.obs.lineage`: given a traced run, every
``frame.deadline_miss`` event is classified into exactly one cause from
:data:`CAUSES` by walking the frame's blocking chain —

* a *processed* miss (the client ran and still blew the budget) is
  on-device compute, attributed to degrade-mode residency when the
  session was degraded at capture;
* a *stale* miss (the client was busy) is attributed to the span that
  kept it busy: a long local compute, or the integration of an earlier
  offload — in which case the **producing request's lineage** is
  inspected in priority order (channel stall -> handoff -> straggler
  window -> batch-join penalty -> dominant exclusive segment).

The classifier is total: every miss maps to a concrete cause, never
``unknown`` — the acceptance bar ``repro why`` enforces with its exit
code.  All outputs are pure functions of the simulated-clock trace, so
re-rendering a report is byte-identical.
"""

from __future__ import annotations

from pathlib import Path

from .lineage import SEGMENT_ORDER, RequestLineage, build_lineages
from .trace import Tracer

__all__ = [
    "CAUSES",
    "classify_misses",
    "miss_causes",
    "render_waterfall",
    "build_why",
    "render_why_markdown",
    "why_filename",
    "write_why",
]

# The closed cause taxonomy, most specific first.
CAUSE_DEGRADE = "degrade-residency"
CAUSE_DEVICE = "device-compute-overrun"
CAUSE_STALL = "channel-stall"
CAUSE_HANDOFF = "channel-handoff"
CAUSE_STRAGGLER = "straggler-replica"
CAUSE_BATCH = "batch-join-penalty"
CAUSE_QUEUE = "queue-wait"
CAUSE_SERVICE = "server-service"
CAUSE_NETWORK = "network-transfer"
CAUSE_DELIVERY = "delivery-tick-wait"
CAUSE_INTEGRATION = "integration-backlog"
CAUSE_CLIENT = "client-backlog"

CAUSES = (
    CAUSE_DEGRADE,
    CAUSE_DEVICE,
    CAUSE_STALL,
    CAUSE_HANDOFF,
    CAUSE_STRAGGLER,
    CAUSE_BATCH,
    CAUSE_QUEUE,
    CAUSE_SERVICE,
    CAUSE_NETWORK,
    CAUSE_DELIVERY,
    CAUSE_INTEGRATION,
    CAUSE_CLIENT,
)

_EPS = 1e-6

# Dominant-segment fallback: lineage segment -> cause, in tie-break
# priority order (earlier wins on equal time).
_SEGMENT_CAUSES = (
    ("queue_wait", CAUSE_QUEUE),
    ("service", CAUSE_SERVICE),
    ("uplink", CAUSE_NETWORK),
    ("downlink", CAUSE_NETWORK),
    ("delivery_wait", CAUSE_DELIVERY),
    ("integration", CAUSE_INTEGRATION),
    ("device_compute", CAUSE_DEVICE),
    ("serialize", CAUSE_DEVICE),
    ("batch_wait", CAUSE_BATCH),
)


def _degrade_windows(tracer: Tracer) -> dict[int, list[tuple[float, float]]]:
    """Per-session MAMT-fallback residency windows from the
    ``serve.degrade`` / ``serve.recover`` event stream (an unclosed
    window extends to the end of the run)."""
    windows: dict[int, list[tuple[float, float]]] = {}
    for event in tracer.events:
        if event.name == "serve.degrade":
            session = int(event.attrs.get("session", -1))
            windows.setdefault(session, []).append((event.ts_ms, float("inf")))
        elif event.name == "serve.recover":
            session = int(event.attrs.get("session", -1))
            spans = windows.get(session)
            if spans and spans[-1][1] == float("inf"):
                spans[-1] = (spans[-1][0], event.ts_ms)
    return windows


def _straggler_windows(tracer: Tracer) -> dict[int, list[tuple[float, float]]]:
    """Per-server straggler-fault windows from ``chaos.straggler_on`` /
    ``chaos.straggler_off`` (falling back to the scheduled ``until_ms``
    when the run ends mid-fault)."""
    windows: dict[int, list[tuple[float, float]]] = {}
    for event in tracer.events:
        if event.name == "chaos.straggler_on":
            server = int(event.attrs.get("server", -1))
            until = float(event.attrs.get("until_ms", float("inf")))
            windows.setdefault(server, []).append((event.ts_ms, until))
        elif event.name == "chaos.straggler_off":
            server = int(event.attrs.get("server", -1))
            spans = windows.get(server)
            if spans:
                spans[-1] = (spans[-1][0], min(spans[-1][1], event.ts_ms))
    return windows


def _in_window(windows: list[tuple[float, float]], at_ms: float) -> bool:
    return any(start <= at_ms < end for start, end in windows)


def _overlaps(windows: list[tuple[float, float]], start: float, end: float) -> bool:
    return any(start < w_end and end > w_start for w_start, w_end in windows)


def _classify_lineage(
    lineage: RequestLineage,
    stragglers: dict[int, list[tuple[float, float]]],
) -> str:
    """Root cause of one producing request's latency, priority order."""
    if lineage.stall_ms > 0.0:
        return CAUSE_STALL
    if lineage.handoff_link is not None:
        return CAUSE_HANDOFF
    if lineage.infer is not None and _overlaps(
        stragglers.get(lineage.server, []),
        lineage.infer.start_ms,
        lineage.infer.end_ms,
    ):
        return CAUSE_STRAGGLER
    segments = lineage.segments
    batch_wait = segments.get("batch_wait", 0.0)
    if batch_wait > _EPS and batch_wait >= segments.get("queue_wait", 0.0):
        return CAUSE_BATCH
    best_cause, best_value = CAUSE_INTEGRATION, -1.0
    for key, cause in _SEGMENT_CAUSES:
        value = segments.get(key, 0.0)
        if value > best_value + _EPS:
            best_cause, best_value = cause, value
    return best_cause


def classify_misses(tracer: Tracer, warmup_frames: int = 0) -> list[dict]:
    """Classify every measured ``frame.deadline_miss`` of a traced run.

    Returns one record per miss (deterministic event order):
    ``{session, frame, ts_ms, latency_ms, over_ms, processed, cause,
    blocker_frame?, trace?}``.  ``blocker_frame``/``trace`` point at the
    producing request when the miss was blamed on an earlier offload.
    """
    lineages = build_lineages(tracer)
    degraded = _degrade_windows(tracer)
    stragglers = _straggler_windows(tracer)

    # Client-lane blocking material, grouped by lane for the stale walk.
    by_lane: dict[str, list] = {}
    for span in tracer.spans:
        if span.name in ("client.process", "client.integrate"):
            by_lane.setdefault(span.lane, []).append(span)
    stale_spans = {
        (span.ctx.session, span.ctx.frame): span
        for span in tracer.spans
        if span.name == "client.stale_wait" and span.ctx is not None
    }

    misses: list[dict] = []
    for event in tracer.events:
        if event.name != "frame.deadline_miss" or event.ctx is None:
            continue
        if event.ctx.frame < warmup_frames:
            continue
        now = event.ts_ms
        record = {
            "session": event.ctx.session,
            "frame": event.ctx.frame,
            "ts_ms": round(now, 6),
            "latency_ms": float(event.attrs.get("latency_ms", 0.0)),
            "over_ms": float(event.attrs.get("over_ms", 0.0)),
            "processed": bool(event.attrs.get("processed", False)),
        }
        if event.ctx.tenant is not None:
            record["tenant"] = event.ctx.tenant
        session_windows = degraded.get(event.ctx.session, [])

        if record["processed"]:
            record["cause"] = (
                CAUSE_DEGRADE
                if _in_window(session_windows, now)
                else CAUSE_DEVICE
            )
            misses.append(record)
            continue

        stale = stale_spans.get((event.ctx.session, event.ctx.frame))
        busy_until = (
            float(stale.attrs.get("busy_until_ms", now))
            if stale is not None
            else now
        )
        blockers = [
            span
            for span in by_lane.get(event.lane, [])
            if span.end_ms > now + _EPS and span.start_ms < busy_until + _EPS
        ]
        if not blockers:
            record["cause"] = CAUSE_CLIENT
            misses.append(record)
            continue
        primary = min(blockers, key=lambda s: (-s.dur_ms, s.start_ms, s.seq))
        if primary.name == "client.process":
            record["cause"] = (
                CAUSE_DEGRADE
                if _in_window(session_windows, primary.start_ms)
                else CAUSE_DEVICE
            )
            if primary.ctx is not None:
                record["blocker_frame"] = primary.ctx.frame
            misses.append(record)
            continue
        # The blocker is the integration of an earlier offload: inspect
        # the producing request's lineage for the true critical path.
        lineage = (
            lineages.get(primary.ctx.trace_id) if primary.ctx is not None else None
        )
        if lineage is None:
            record["cause"] = CAUSE_INTEGRATION
        else:
            record["cause"] = _classify_lineage(lineage, stragglers)
            record["blocker_frame"] = lineage.frame
            record["trace"] = lineage.trace_id
        misses.append(record)
    return misses


def miss_causes(
    tracer: Tracer, budget_ms: float, warmup_frames: int = 0
) -> dict:
    """The BENCH ``miss_causes`` section: ranked cause counts for every
    measured deadline miss of a traced run (JSON-clean, deterministic)."""
    misses = classify_misses(tracer, warmup_frames)
    causes: dict[str, int] = {}
    for miss in misses:
        causes[miss["cause"]] = causes.get(miss["cause"], 0) + 1
    classified = sum(
        count for cause, count in causes.items() if cause in CAUSES
    )
    top_cause = None
    if causes:
        top_cause = min(causes.items(), key=lambda kv: (-kv[1], kv[0]))[0]
    return {
        "budget_ms": round(budget_ms, 6),
        "misses": len(misses),
        "classified": classified,
        "unclassified": len(misses) - classified,
        "causes": dict(sorted(causes.items())),
        "top_cause": top_cause,
    }


def render_waterfall(lineage: RequestLineage, width: int = 28) -> list[str]:
    """One request's exclusive segments as fixed-width bar lines."""
    total = lineage.e2e_ms
    lines = []
    for name in SEGMENT_ORDER:
        if name not in lineage.segments:
            continue
        value = lineage.segments[name]
        cells = int(round(value / total * width)) if total > 0.0 else 0
        if value > _EPS and cells == 0:
            cells = 1
        lines.append(
            f"    {name:<15}|{'#' * cells:<{width}}| {value:9.3f} ms"
        )
    lines.append(
        f"    {'end-to-end':<15}|{'=' * width}| {total:9.3f} ms"
        f"  ({lineage.outcome}, server {lineage.server})"
    )
    return lines


def why_filename(suite: str, label: str) -> str:
    return f"WHY_{suite}_{label}.md"


def build_why(
    suite: str,
    label: str = "why",
    scenario: str | None = None,
    session: int | None = None,
    frame: int | None = None,
    budget_ms: float | None = None,
    max_waterfalls: int = 3,
) -> dict:
    """Run a bench suite traced and build the ``repro why`` report.

    Returns ``{"markdown": str, "unclassified": int, "scenarios":
    {name: miss_causes section}}`` — the caller turns a non-zero
    ``unclassified`` into a failing exit code.
    """
    # Imported here: bench pulls in the experiment harness, which imports
    # this package — a module-level import would be circular.
    from .bench import SUITES, KernelBenchScenario, run_scenario_observed
    from .slo import FRAME_BUDGET_MS

    if suite not in SUITES:
        raise KeyError(
            f"unknown suite {suite!r}; available: {', '.join(sorted(SUITES))}"
        )
    budget = FRAME_BUDGET_MS if budget_ms is None else float(budget_ms)
    cells = [
        cell
        for cell in SUITES[suite]
        if not isinstance(cell, KernelBenchScenario)
        and (scenario is None or cell.name == scenario)
    ]
    if not cells:
        raise ValueError(
            f"no traceable scenario named {scenario!r} in suite {suite!r}"
        )

    sections: list[str] = []
    summaries: dict[str, dict] = {}
    total_unclassified = 0
    for cell in cells:
        _payload, observed = run_scenario_observed(cell, budget_ms=budget)
        tracer = observed["tracer"]
        misses = classify_misses(tracer, cell.warmup_frames)
        lineages = build_lineages(tracer)
        summary = miss_causes(tracer, budget, cell.warmup_frames)
        summaries[cell.name] = summary
        total_unclassified += summary["unclassified"]
        sections.extend(
            _render_scenario_section(
                cell.name, summary, misses, lineages, session, frame,
                max_waterfalls,
            )
        )

    markdown = render_why_markdown(suite, label, budget, sections)
    return {
        "markdown": markdown,
        "unclassified": total_unclassified,
        "scenarios": summaries,
    }


def _render_scenario_section(
    name: str,
    summary: dict,
    misses: list[dict],
    lineages: dict[str, RequestLineage],
    session: int | None,
    frame: int | None,
    max_waterfalls: int,
) -> list[str]:
    lines = [f"## {name}", ""]
    lines.append(
        f"deadline misses (measured): {summary['misses']} · "
        f"classified: {summary['classified']} · "
        f"unclassified: {summary['unclassified']}"
    )
    lines.append("")
    if summary["causes"]:
        lines.append("| rank | cause | count | share |")
        lines.append("|---|---|---|---|")
        ranked = sorted(summary["causes"].items(), key=lambda kv: (-kv[1], kv[0]))
        for rank, (cause, count) in enumerate(ranked, start=1):
            share = count / summary["misses"] * 100.0
            lines.append(f"| {rank} | {cause} | {count} | {share:.1f}% |")
        lines.append("")
    else:
        lines.append("No deadline misses — nothing to attribute.")
        lines.append("")

    selected = [
        miss
        for miss in misses
        if (session is None or miss["session"] == session)
        and (frame is None or miss["frame"] == frame)
    ]
    if session is None and frame is None:
        selected = sorted(
            selected, key=lambda m: (-m["over_ms"], m["session"], m["frame"])
        )[:max_waterfalls]
    for miss in selected:
        title = (
            f"### s{miss['session']}-f{miss['frame']} · "
            f"+{miss['over_ms']:.3f} ms over budget · cause: {miss['cause']}"
        )
        if "tenant" in miss:
            title += f" · tenant: {miss['tenant']}"
        lines.append(title)
        lines.append("")
        trace_id = miss.get("trace", f"s{miss['session']}-f{miss['frame']}")
        lineage = lineages.get(trace_id)
        lines.append("```")
        if "blocker_frame" in miss:
            lines.append(
                f"  blocked by frame {miss['blocker_frame']} "
                f"({'offload ' + trace_id if lineage else 'on-device compute'})"
            )
        if lineage is not None:
            lines.extend(render_waterfall(lineage))
        else:
            lines.append("  no offload lineage — latency is on-device.")
        lines.append("```")
        lines.append("")
    return lines


def render_why_markdown(
    suite: str, label: str, budget_ms: float, sections: list[str]
) -> str:
    lines = [
        f"# repro why — suite `{suite}` ({label})",
        "",
        f"Frame budget: {budget_ms:.3f} ms.  Every deadline miss is"
        " attributed to exactly one cause by critical-path analysis of"
        " the frame's causal lineage (see docs/observability.md).",
        "",
        "Waterfall segments are exclusive and telescoping: they sum to"
        " the request's end-to-end latency.",
        "",
    ]
    lines.extend(sections)
    return "\n".join(lines).rstrip("\n") + "\n"


def write_why(markdown: str, out_dir: str | Path, suite: str, label: str) -> Path:
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / why_filename(suite, label)
    path.write_text(markdown)
    return path
