"""Zero-dependency observability: metrics registry, span tracer and
trace exporters for the mobile/edge pipeline.

Everything here is process-local and deterministic in simulated-time
mode; see ``docs/observability.md`` for the API tour and export formats.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import NULL_TRACER, NullTracer, Span, TraceEvent, Tracer
from .export import (
    FRAME_LATENCY_SPANS,
    chrome_trace,
    mean_frame_latency_ms,
    stage_summary,
    stage_table,
    to_jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from .slo import FRAME_BUDGET_MS, evaluate_slo, exact_percentile, frame_latency_spans
from .bench import (
    SUITES,
    BenchScenario,
    FleetBenchScenario,
    bench_filename,
    dump_bench,
    run_scenario,
    run_suite,
    stage_percentiles,
    write_bench,
)
from .compare import (
    compare_payloads,
    load_bench_dir,
    render_comparison,
    render_trend_markdown,
    write_trend_report,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "FRAME_LATENCY_SPANS",
    "chrome_trace",
    "mean_frame_latency_ms",
    "stage_summary",
    "stage_table",
    "to_jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
    "FRAME_BUDGET_MS",
    "evaluate_slo",
    "exact_percentile",
    "frame_latency_spans",
    "SUITES",
    "BenchScenario",
    "FleetBenchScenario",
    "bench_filename",
    "dump_bench",
    "run_scenario",
    "run_suite",
    "stage_percentiles",
    "write_bench",
    "compare_payloads",
    "load_bench_dir",
    "render_comparison",
    "render_trend_markdown",
    "write_trend_report",
]
