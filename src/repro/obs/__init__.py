"""Zero-dependency observability: metrics registry, span tracer and
trace exporters for the mobile/edge pipeline.

Everything here is process-local and deterministic in simulated-time
mode; see ``docs/observability.md`` for the API tour and export formats.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import NULL_TRACER, NullTracer, Span, TraceEvent, Tracer
from .export import (
    FRAME_LATENCY_SPANS,
    chrome_trace,
    mean_frame_latency_ms,
    stage_summary,
    stage_table,
    to_jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "FRAME_LATENCY_SPANS",
    "chrome_trace",
    "mean_frame_latency_ms",
    "stage_summary",
    "stage_table",
    "to_jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
]
