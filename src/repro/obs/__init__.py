"""Zero-dependency observability: metrics registry, span tracer and
trace exporters for the mobile/edge pipeline.

Everything here is process-local and deterministic in simulated-time
mode; see ``docs/observability.md`` for the API tour and export formats.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import NULL_TRACER, NullTracer, Span, TraceEvent, Tracer
from .export import (
    FRAME_LATENCY_SPANS,
    chrome_trace,
    mean_frame_latency_ms,
    stage_summary,
    stage_table,
    to_jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from .slo import FRAME_BUDGET_MS, evaluate_slo, exact_percentile, frame_latency_spans
from .timeline import (
    DEFAULT_SAMPLE_INTERVAL_MS,
    TimelineSampler,
    TimelineSeries,
    detect_latency_spikes,
    detect_queue_growth,
)
from .budget import (
    DEFAULT_SLO_TARGET,
    FAST_BURN_WINDOW_MS,
    SLOW_BURN_WINDOW_MS,
    BurnRateTracker,
    detect_budget_exhaustion,
    evaluate_error_budget,
    session_timelines,
)
from .bench import (
    SUITES,
    BenchScenario,
    ChaosBenchScenario,
    FleetBenchScenario,
    KernelBenchScenario,
    bench_filename,
    dump_bench,
    run_scenario,
    run_scenario_observed,
    run_suite,
    stage_percentiles,
    write_bench,
)
from .report import (
    build_report,
    render_report_html,
    render_report_markdown,
    report_filename,
    write_report,
)
from .compare import (
    compare_payloads,
    load_bench_dir,
    render_comparison,
    render_trend_markdown,
    write_trend_report,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "FRAME_LATENCY_SPANS",
    "chrome_trace",
    "mean_frame_latency_ms",
    "stage_summary",
    "stage_table",
    "to_jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
    "FRAME_BUDGET_MS",
    "evaluate_slo",
    "exact_percentile",
    "frame_latency_spans",
    "DEFAULT_SAMPLE_INTERVAL_MS",
    "TimelineSampler",
    "TimelineSeries",
    "detect_latency_spikes",
    "detect_queue_growth",
    "DEFAULT_SLO_TARGET",
    "FAST_BURN_WINDOW_MS",
    "SLOW_BURN_WINDOW_MS",
    "BurnRateTracker",
    "detect_budget_exhaustion",
    "evaluate_error_budget",
    "session_timelines",
    "SUITES",
    "BenchScenario",
    "ChaosBenchScenario",
    "FleetBenchScenario",
    "KernelBenchScenario",
    "bench_filename",
    "dump_bench",
    "run_scenario",
    "run_scenario_observed",
    "run_suite",
    "stage_percentiles",
    "write_bench",
    "build_report",
    "render_report_html",
    "render_report_markdown",
    "report_filename",
    "write_report",
    "compare_payloads",
    "load_bench_dir",
    "render_comparison",
    "render_trend_markdown",
    "write_trend_report",
]
