"""Per-kernel micro-benchmarks: vectorized hot paths vs their scalar
references.

Every vectorized kernel in the repo keeps its pre-vectorization
implementation as a ``*_reference`` function; this module times both on
representative inputs, checks equivalence, and emits one JSON-clean cell
per kernel for the ``micro`` bench suite (``BENCH_micro_*.json``).  The
``speedup_x`` field is the gated metric — ``repro bench compare`` fails
CI when a kernel's speedup collapses (see
:func:`repro.obs.compare.policy_for`).

Wall-clock timings (``vectorized_us`` / ``reference_us`` / ``speedup_x``)
are the only non-deterministic fields of a BENCH artifact;
:data:`TIMING_KEYS` names them so :func:`repro.obs.bench.strip_timing`
can carve them out of the byte-identity contract.  The
``serve.batch_latency`` cell is fully deterministic — it evaluates the
calibrated batch latency model, not the wall clock.

Imports of the kernels under test live inside the runner functions:
``repro.obs`` must stay importable without the model/geometry packages
(they import ``repro.obs`` themselves).
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["KERNEL_NAMES", "TIMING_KEYS", "run_kernel"]

# The wall-clock fields of a kernel cell — everything else in a BENCH
# artifact is deterministic and byte-identical across runs.
TIMING_KEYS = ("vectorized_us", "reference_us", "speedup_x")


def _best_us(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time in microseconds (the standard
    micro-benchmark estimator: the minimum is the least noisy sample of
    the true cost)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e6


def _cell(
    name: str,
    n: int,
    repeats: int,
    vec_fn,
    ref_fn,
    max_abs_err: float,
    atol: float,
) -> dict:
    vectorized_us = _best_us(vec_fn, repeats)
    reference_us = _best_us(ref_fn, repeats)
    return {
        "name": name,
        "n": n,
        "repeats": repeats,
        "equivalent": bool(max_abs_err <= atol),
        "max_abs_err": float(max_abs_err),
        "atol": float(atol),
        "vectorized_us": round(vectorized_us, 3),
        "reference_us": round(reference_us, 3),
        "speedup_x": round(reference_us / vectorized_us, 3)
        if vectorized_us
        else 0.0,
    }


# ----------------------------------------------------------------------
# Kernel runners
# ----------------------------------------------------------------------
def _kernel_fast_arc_run(seed: int, repeats: int) -> dict:
    from ..features.fast import _max_consecutive_true_reference, arc_run_at_least

    rng = np.random.default_rng(seed)
    # QVGA-sized flag stack at a sparsity where the count prefilter keeps
    # a realistic few-percent candidate set (P[Bin(16, .3) >= 9] ~ 2%).
    flags = rng.random((16, 240 * 320)) < 0.3
    arc = 9
    vec = arc_run_at_least(flags, arc)
    ref = _max_consecutive_true_reference(flags) >= arc
    err = float(np.abs(vec.astype(int) - ref.astype(int)).max()) if vec.size else 0.0
    return _cell(
        "fast.arc_run",
        flags.shape[1],
        repeats,
        lambda: arc_run_at_least(flags, arc),
        lambda: _max_consecutive_true_reference(flags) >= arc,
        err,
        0.0,
    )


def _kernel_rpn_assemble(seed: int, repeats: int) -> dict:
    from ..model.rpn import _assemble_proposals_reference

    rng = np.random.default_rng(seed)
    n = 4000
    boxes = rng.uniform(0.0, 320.0, (n, 4))
    scores = rng.uniform(0.0, 1.0, n)
    best_index = rng.integers(0, 6, n)
    best_iou = rng.uniform(0.0, 1.0, n)

    def vectorized():
        return np.where(best_iou >= 0.3, best_index, -1).astype(np.int64)

    proposals = _assemble_proposals_reference(boxes, scores, best_index, best_iou)
    err = float(
        np.abs(
            vectorized() - np.array([p.best_gt_index for p in proposals])
        ).max()
    )
    return _cell(
        "rpn.assemble",
        n,
        repeats,
        vectorized,
        lambda: _assemble_proposals_reference(boxes, scores, best_index, best_iou),
        err,
        0.0,
    )


def _kernel_rpn_confidence(seed: int, repeats: int) -> dict:
    from types import SimpleNamespace

    from ..model.acceleration import InferenceInstruction
    from ..model.maskrcnn import SimulatedSegmentationModel
    from ..model.rpn import _assemble_proposals_reference

    rng = np.random.default_rng(seed)
    n = 3000
    classes = ["person", "car", "chair", "dog", "cat", "plant"]
    gt_instances = [SimpleNamespace(class_label=c) for c in classes]
    instructions = [
        InferenceInstruction(box=np.array([0.0, 0.0, 32.0, 32.0]), class_label=c)
        for c in classes[:3]
    ]
    boxes = rng.uniform(0.0, 320.0, (n, 4))
    scores = rng.uniform(0.0, 1.0, n)
    best_index = rng.integers(0, len(classes), n)
    best_iou = rng.uniform(0.0, 1.0, n)
    gt_index = np.where(best_iou >= 0.3, best_index, -1).astype(np.int64)
    proposals = _assemble_proposals_reference(boxes, scores, best_index, best_iou)

    # Bound methods over a stub carrying only the RNG the heads consume;
    # fresh same-seeded streams make the two paths comparable.
    def vectorized():
        stub = SimpleNamespace(_rng=np.random.default_rng(seed + 1))
        return SimulatedSegmentationModel._class_confidences(
            stub, best_iou, gt_index, instructions, gt_instances
        )

    def reference():
        stub = SimpleNamespace(_rng=np.random.default_rng(seed + 1))
        return SimulatedSegmentationModel._class_confidences_reference(
            stub, proposals, instructions, gt_instances
        )

    err = float(np.abs(vectorized() - reference()).max())
    return _cell("rpn.confidence", n, repeats, vectorized, reference, err, 0.0)


def _kernel_ba_jacobian(seed: int, repeats: int) -> dict:
    from ..geometry.bundle_adjustment import (
        _residuals_and_jacobian,
        _residuals_and_jacobian_reference,
    )
    from ..geometry.camera import PinholeCamera
    from ..geometry.se3 import SE3

    rng = np.random.default_rng(seed)
    camera = PinholeCamera(fx=500.0, fy=500.0, cx=320.0, cy=240.0, width=640, height=480)
    pose = SE3.exp(rng.normal(scale=0.05, size=6))
    n = 800
    points = np.column_stack(
        [
            rng.uniform(-2.0, 2.0, n),
            rng.uniform(-1.5, 1.5, n),
            rng.uniform(2.0, 8.0, n),
        ]
    )
    pixels = rng.uniform((0.0, 0.0), (640.0, 480.0), (n, 2))
    res_v, jac_v, _ = _residuals_and_jacobian(camera, pose, points, pixels)
    res_r, jac_r, _ = _residuals_and_jacobian_reference(camera, pose, points, pixels)
    err = float(
        max(np.abs(res_v - res_r).max(), np.abs(jac_v - jac_r).max())
    )
    return _cell(
        "ba.jacobian",
        n,
        repeats,
        lambda: _residuals_and_jacobian(camera, pose, points, pixels),
        lambda: _residuals_and_jacobian_reference(camera, pose, points, pixels),
        err,
        0.0,
    )


def _kernel_ba_ransac_score(seed: int, repeats: int) -> dict:
    from ..geometry.bundle_adjustment import _score_hypotheses_reference
    from ..geometry.se3 import SE3
    from ..geometry.triangulation import reprojection_errors_batch

    rng = np.random.default_rng(seed)
    camera_matrix = np.array(
        [[500.0, 0.0, 320.0], [0.0, 500.0, 240.0], [0.0, 0.0, 1.0]]
    )
    poses = [SE3.exp(rng.normal(scale=0.1, size=6)) for _ in range(32)]
    n = 400
    points = np.column_stack(
        [
            rng.uniform(-2.0, 2.0, n),
            rng.uniform(-1.5, 1.5, n),
            rng.uniform(2.0, 8.0, n),
        ]
    )
    pixels = rng.uniform((0.0, 0.0), (640.0, 480.0), (n, 2))
    vec = reprojection_errors_batch(camera_matrix, poses, points, pixels)
    ref = _score_hypotheses_reference(camera_matrix, poses, points, pixels)
    err = float(np.abs(vec - ref).max())
    return _cell(
        "ba.ransac_score",
        len(poses) * n,
        repeats,
        lambda: reprojection_errors_batch(camera_matrix, poses, points, pixels),
        lambda: _score_hypotheses_reference(camera_matrix, poses, points, pixels),
        err,
        0.0,
    )


def _kernel_ba_dlt_rows(seed: int, repeats: int) -> dict:
    from ..geometry.bundle_adjustment import _dlt_rows, _dlt_rows_reference

    rng = np.random.default_rng(seed)
    n = 300
    normalized = rng.normal(size=(n, 2))
    homogeneous = np.column_stack([rng.normal(size=(n, 3)), np.ones(n)])
    err = float(
        np.abs(
            _dlt_rows(normalized, homogeneous)
            - _dlt_rows_reference(normalized, homogeneous)
        ).max()
    )
    return _cell(
        "ba.dlt_rows",
        n,
        repeats,
        lambda: _dlt_rows(normalized, homogeneous),
        lambda: _dlt_rows_reference(normalized, homogeneous),
        err,
        0.0,
    )


def _kernel_transfer_contour_depth(seed: int, repeats: int) -> dict:
    from ..transfer.mask_transfer import _contour_depths_reference, contour_depths

    rng = np.random.default_rng(seed)
    contour_uv = rng.uniform((0.0, 0.0), (640.0, 480.0), (192, 2))
    feature_pixels = rng.uniform((0.0, 0.0), (640.0, 480.0), (500, 2))
    depths = rng.uniform(2.0, 8.0, 500)
    k = 5
    vec = contour_depths(contour_uv, feature_pixels, depths, k)
    ref = _contour_depths_reference(contour_uv, feature_pixels, depths, k)
    err = float(np.abs(vec - ref).max())
    return _cell(
        "transfer.contour_depth",
        len(contour_uv),
        repeats,
        lambda: contour_depths(contour_uv, feature_pixels, depths, k),
        lambda: _contour_depths_reference(contour_uv, feature_pixels, depths, k),
        err,
        1e-9,
    )


def _kernel_serve_batch_latency(seed: int, repeats: int) -> dict:
    """Deterministic cell: the calibrated batch latency model at the
    fleet's operating point (TX2-scaled fixed cost, the admission
    controller's solo prior).  ``speedup_x`` is the amortization factor
    of a full batch — total solo time over batch time."""
    from ..model.costs import DEVICES, MODEL_COSTS
    from ..serve.admission import AdmissionConfig
    from ..serve.batching import BatchConfig, estimate_batch_ms

    cfg = BatchConfig()
    cost = MODEL_COSTS["mask_rcnn_r101"]
    device = DEVICES["jetson_tx2"]
    setup_ms = device.scale(cost.rpn_fixed_ms + cost.inference_fixed_ms)
    solo_ms = AdmissionConfig().est_infer_prior_ms
    by_size = {
        str(size): round(estimate_batch_ms(solo_ms, setup_ms, size, cfg.alpha), 6)
        for size in range(1, cfg.max_size + 1)
    }
    full = estimate_batch_ms(solo_ms, setup_ms, cfg.max_size, cfg.alpha)
    return {
        "name": "serve.batch_latency",
        "n": cfg.max_size,
        "alpha": cfg.alpha,
        "setup_ms": round(setup_ms, 6),
        "solo_ms": round(solo_ms, 6),
        "batch_ms_by_size": by_size,
        # A batch of one must reproduce the solo latency exactly — the
        # max_size=1 byte-identity contract of the fleet scheduler.
        "equivalent": estimate_batch_ms(solo_ms, setup_ms, 1, cfg.alpha)
        == solo_ms,
        "speedup_x": round(cfg.max_size * solo_ms / full, 3),
    }


_KERNELS = {
    "fast.arc_run": _kernel_fast_arc_run,
    "rpn.assemble": _kernel_rpn_assemble,
    "rpn.confidence": _kernel_rpn_confidence,
    "ba.jacobian": _kernel_ba_jacobian,
    "ba.ransac_score": _kernel_ba_ransac_score,
    "ba.dlt_rows": _kernel_ba_dlt_rows,
    "transfer.contour_depth": _kernel_transfer_contour_depth,
    "serve.batch_latency": _kernel_serve_batch_latency,
}

KERNEL_NAMES = tuple(sorted(_KERNELS))


def run_kernel(name: str, seed: int = 0, repeats: int = 7) -> dict:
    """Run one registered kernel cell and return its JSON-clean payload."""
    if name not in _KERNELS:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(KERNEL_NAMES)}"
        )
    return _KERNELS[name](seed, repeats)
