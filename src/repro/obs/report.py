"""`repro report`: one run -> a deterministic markdown + HTML ops console.

The benchmark harness answers "did the numbers move"; this module
answers "what happened during the run" in a form an operator can read:

* per-scenario SLO + error-budget summary (miss rate, burn rates,
  budget consumed/remaining, exhaustion instant);
* **timeline sparklines** for every sampled gauge series and the
  interesting counters (queue depth, degrade population, latency EWMA,
  outstanding deliveries) from the :class:`~repro.obs.timeline.TimelineSampler`;
* a **burn-rate chart** (fast/slow windows against the burn = 1 line);
* **per-session state strips** reconstructing each client's
  admit/degrade/recover trajectory from the ``serve.*`` trace events;
* the **top anomalies** (latency spikes, monotonic queue growth,
  budget exhaustion), which are also emitted back into the run's
  tracer as first-class ``anomaly.*`` events.

Both renderings are pure functions of the simulated run: no wall clock,
no randomness, sorted iteration everywhere — two identical runs produce
**byte-identical** ``REPORT_<suite>_<label>.md`` / ``.html`` files, so
reports can be committed, diffed and rendered as CI artifacts.
"""

from __future__ import annotations

from pathlib import Path

from .budget import (
    DEFAULT_SLO_TARGET,
    detect_budget_exhaustion,
    session_timelines,
)
from .slo import FRAME_BUDGET_MS
from .timeline import (
    DEFAULT_SAMPLE_INTERVAL_MS,
    detect_latency_spikes,
    detect_queue_growth,
)

__all__ = [
    "REPORT_COUNTER_SERIES",
    "build_report",
    "render_report_markdown",
    "render_report_html",
    "report_filename",
    "write_report",
    "sparkline",
]

# Counter series worth a sparkline (cumulative totals; everything else
# sampled from counters is too flat to read).  Gauge series are always
# rendered — they are the live signals the sampler exists for.
REPORT_COUNTER_SERIES = (
    "pipeline.deadline_miss",
    "serve.shed",
    "serve.submitted",
)

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


# ----------------------------------------------------------------------
# Build
# ----------------------------------------------------------------------
def build_report(
    suite: str,
    label: str,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
    slo_target: float = DEFAULT_SLO_TARGET,
    sample_interval_ms: float = DEFAULT_SAMPLE_INTERVAL_MS,
) -> dict:
    """Run every cell of ``suite`` observed and fold the timelines,
    budgets, session trajectories and anomalies into one report payload
    (a superset of the BENCH scenario sections)."""
    from ..eval.reporting import SCHEMA_VERSION
    from .bench import (
        SUITES,
        KernelBenchScenario,
        environment_fingerprint,
        run_scenario_observed,
    )

    if suite not in SUITES:
        raise KeyError(
            f"unknown suite {suite!r}; available: {', '.join(sorted(SUITES))}"
        )
    scenarios: dict[str, dict] = {}
    for scenario in SUITES[suite]:
        if isinstance(scenario, KernelBenchScenario):
            # Kernel micro cells are gated by `bench compare`, not the
            # ops console — and their wall-clock fields would break the
            # report's byte-determinism contract.
            continue
        payload, observed = run_scenario_observed(
            scenario,
            degrade=degrade,
            budget_ms=budget_ms,
            slo_target=slo_target,
            sample_interval_ms=sample_interval_ms,
        )
        tracer = observed["tracer"]
        sampler = observed["sampler"]
        duration_ms = observed["duration_ms"]
        anomalies = detect_latency_spikes(
            tracer, warmup_frames=scenario.warmup_frames, emit=True
        )
        anomalies += detect_queue_growth(sampler, tracer=tracer, emit=True)
        anomalies += detect_budget_exhaustion(
            observed["budget"], tracer=tracer, emit=True
        )
        anomalies.sort(key=lambda a: (-a.get("severity", 0.0), a["ts_ms"], a["type"]))
        scenarios[scenario.name] = {
            **payload,
            "budget": observed["budget"],  # full form, with burn_series
            "timeline": sampler.to_dict() if sampler is not None else None,
            "sessions": session_timelines(tracer, duration_ms=duration_ms),
            "anomalies": anomalies,
            "duration_ms": round(duration_ms, 6),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "report",
        "suite": suite,
        "label": label,
        "budget_ms": round(budget_ms, 6),
        "slo_target": round(slo_target, 6),
        "degrade": degrade,
        "sample_interval_ms": round(sample_interval_ms, 6),
        "environment": environment_fingerprint(),
        "scenarios": scenarios,
    }


# ----------------------------------------------------------------------
# Shared rendering helpers
# ----------------------------------------------------------------------
def sparkline(values, width: int = 48) -> str:
    """Unicode sparkline of a series, bucket-averaged down to ``width``."""
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        bucketed = []
        for index in range(width):
            lo = index * len(values) // width
            hi = max(lo + 1, (index + 1) * len(values) // width)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0.0:
        return SPARK_LEVELS[0] * len(values)
    top = len(SPARK_LEVELS) - 1
    return "".join(
        SPARK_LEVELS[min(top, int((v - lo) / span * top + 0.5))] for v in values
    )


def _fmt(value, digits: int = 2) -> str:
    """Stable numeric formatting ('—' for None/NaN)."""
    if value is None:
        return "—"
    if isinstance(value, float) and value != value:  # NaN
        return "—"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _timeline_rows(scenario: dict) -> list[dict]:
    """The series worth rendering: every gauge + the selected counters."""
    timeline = scenario.get("timeline")
    if not timeline:
        return []
    rows = []
    for name in sorted(timeline["series"]):
        series = timeline["series"][name]
        if series["kind"] != "gauge" and name not in REPORT_COUNTER_SERIES:
            continue
        if not series["values"]:
            continue
        rows.append(series)
    return rows


def _session_strip(session: dict, duration_ms: float, width: int = 48) -> str:
    """One character per time bucket: '·' normal, '█' degraded."""
    transitions = session["transitions"]
    chars = []
    for bucket in range(width):
        ts = (bucket + 0.5) / width * duration_ms
        state = "normal"
        for transition in transitions:
            if transition["ts_ms"] <= ts:
                state = transition["state"]
            else:
                break
        chars.append("█" if state == "degraded" else "·")
    return "".join(chars)


def _anomaly_detail(anomaly: dict) -> str:
    if anomaly["type"] == "latency_spike":
        return (
            f"{_fmt(anomaly['latency_ms'])} ms vs baseline "
            f"{_fmt(anomaly['baseline_ms'])} ms"
        )
    if anomaly["type"] == "queue_growth":
        return (
            f"{anomaly['series']} grew {_fmt(anomaly['from_depth'], 0)} -> "
            f"{_fmt(anomaly['to_depth'], 0)} over {anomaly['samples']} samples"
        )
    if anomaly["type"] == "budget_exhausted":
        return (
            f"budget consumed {_fmt(anomaly['consumed_fraction'] * 100.0, 1)}% "
            f"(target miss rate {_fmt(anomaly['target_miss_rate'] * 100.0, 1)}%)"
        )
    return ""


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def render_report_markdown(report: dict, top_anomalies: int = 10) -> str:
    lines = [
        f"# Ops report — {report['suite']} [{report['label']}]",
        "",
        "*Generated by `python -m repro.eval.cli report` from a fully"
        " deterministic simulated run — two runs with the same seed are"
        " byte-identical.*",
        "",
        f"- frame budget: {_fmt(report['budget_ms'])} ms, SLO target:"
        f" {_fmt(report['slo_target'] * 100.0, 1)}% miss",
        f"- sample interval: {_fmt(report['sample_interval_ms'], 0)} ms,"
        f" degrade factor: {_fmt(report['degrade'], 2)}",
        "- environment: {python} ({implementation}) on {platform}/{machine},"
        " numpy {numpy}".format(**report["environment"]),
        "",
    ]
    for name in sorted(report["scenarios"]):
        scenario = report["scenarios"][name]
        lines += _scenario_markdown(name, scenario, top_anomalies)
    return "\n".join(lines)


def _scenario_markdown(name: str, scenario: dict, top_anomalies: int) -> list[str]:
    spec = scenario["spec"]
    slo = scenario["slo"]
    budget = scenario["budget"]
    lines = [f"## Scenario `{name}`", ""]
    topology = ""
    if "num_clients" in spec:
        policy = spec.get("policy", "fifo")
        topology = (
            f", {spec['num_clients']} clients, {policy}"
            f" x{spec.get('num_servers', 1)} server(s)"
        )
    lines.append(
        f"{spec['system']} on {spec['dataset']} over {spec['network']}"
        f" ({spec['frames']} frames{topology})"
    )
    lines.append("")

    lines += [
        "### SLO & error budget",
        "",
        "| metric | value |",
        "|---|---|",
        f"| frames measured | {slo['frames']} |",
        f"| deadline misses | {slo['misses']}"
        f" ({_fmt(slo['miss_rate'] * 100.0, 2)}%) |",
        f"| worst streak | {slo['worst_streak']} |",
        f"| latency p50 / p90 / p99 | {_fmt(slo['latency_p50_ms'])} /"
        f" {_fmt(slo['latency_p90_ms'])} / {_fmt(slo['latency_p99_ms'])} ms |",
        f"| error budget | {_fmt(budget['allowed_misses'], 1)} misses allowed,"
        f" {_fmt(budget['consumed_fraction'] * 100.0, 1)}% consumed |",
        f"| budget remaining | {_fmt(budget['remaining_fraction'] * 100.0, 1)}% |",
        f"| burn rate (fast/slow, final) | {_fmt(budget['fast_burn_rate'])} /"
        f" {_fmt(budget['slow_burn_rate'])} |",
        f"| burn rate (fast/slow, max) | {_fmt(budget['max_fast_burn_rate'])} /"
        f" {_fmt(budget['max_slow_burn_rate'])} |",
        f"| budget exhausted at | {_fmt(budget['exhausted_at_ms'])}"
        f"{' ms' if budget['exhausted_at_ms'] is not None else ''} |",
        "",
    ]

    burn = budget.get("burn_series") or {}
    if burn.get("times_ms"):
        lines += [
            "### Burn rate",
            "",
            "```",
            f"fast ({_fmt(budget['fast_window_ms'], 0)} ms) "
            f"{sparkline(burn['fast'])}  max {_fmt(budget['max_fast_burn_rate'])}",
            f"slow ({_fmt(budget['slow_window_ms'], 0)} ms) "
            f"{sparkline(burn['slow'])}  max {_fmt(budget['max_slow_burn_rate'])}",
            "```",
            "",
        ]

    rows = _timeline_rows(scenario)
    if rows:
        lines += [
            "### Timelines",
            "",
            "| series | sparkline | min | max | last |",
            "|---|---|---|---|---|",
        ]
        for series in rows:
            values = series["values"]
            lines.append(
                f"| `{series['name']}` | `{sparkline(values)}` |"
                f" {_fmt(min(values))} | {_fmt(max(values))} |"
                f" {_fmt(values[-1])} |"
            )
        lines.append("")

    sessions = scenario.get("sessions") or []
    if sessions:
        lines += ["### Sessions", "", "```"]
        for session in sessions:
            strip = _session_strip(session, scenario["duration_ms"])
            lines.append(
                f"s{session['session']} {strip}  "
                f"admits={session['admits']} rejects={session['rejects']} "
                f"sheds={session['sheds']} degrades={session['degrades']} "
                f"recovers={session['recovers']} "
                f"degraded={_fmt(session.get('degraded_fraction', 0.0) * 100.0, 1)}%"
            )
        lines += ["```", ""]

    anomalies = scenario.get("anomalies") or []
    lines += ["### Top anomalies", ""]
    if not anomalies:
        lines += ["None detected.", ""]
    else:
        lines += [
            "| # | type | t (ms) | lane | severity | detail |",
            "|---|---|---|---|---|---|",
        ]
        for rank, anomaly in enumerate(anomalies[:top_anomalies], start=1):
            lines.append(
                f"| {rank} | {anomaly['type']} | {_fmt(anomaly['ts_ms'], 1)} |"
                f" {anomaly.get('lane', '—')} |"
                f" {_fmt(anomaly.get('severity'))} | {_anomaly_detail(anomaly)} |"
            )
        if len(anomalies) > top_anomalies:
            lines.append("")
            lines.append(
                f"*… and {len(anomalies) - top_anomalies} more.*"
            )
        lines.append("")
    return lines


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------
_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 62rem; color: #1f2430; }
h1, h2, h3 { font-weight: 600; }
h2 { border-bottom: 1px solid #d8dce4; padding-bottom: .25rem; }
table { border-collapse: collapse; margin: .5rem 0 1rem; }
th, td { border: 1px solid #d8dce4; padding: .25rem .6rem;
         font-size: .85rem; text-align: left; }
th { background: #f2f4f8; }
code, .mono { font-family: ui-monospace, 'SF Mono', Menlo, monospace; }
.meta { color: #5a6172; font-size: .85rem; }
.spark { vertical-align: middle; }
.strip-label { display: inline-block; width: 2.5rem; }
.badge { padding: 0 .4rem; border-radius: .5rem; font-size: .8rem; }
.badge.ok { background: #d8f2dc; } .badge.bad { background: #f8d7d7; }
""".strip()


def _svg_polyline(values, width=240, height=36, color="#3566c4", bold=False):
    if not values:
        return f'<svg class="spark" width="{width}" height="{height}"></svg>'
    lo, hi = min(values), max(values)
    span = hi - lo if hi > lo else 1.0
    count = len(values)
    points = []
    for index, value in enumerate(values):
        x = 2.0 + (index / (count - 1) if count > 1 else 0.5) * (width - 4.0)
        y = height - 3.0 - (value - lo) / span * (height - 6.0)
        points.append(f"{x:.2f},{y:.2f}")
    stroke = 2.0 if bold else 1.2
    return (
        f'<svg class="spark" width="{width}" height="{height}">'
        f'<polyline fill="none" stroke="{color}" stroke-width="{stroke}" '
        f'points="{" ".join(points)}"/></svg>'
    )


def _svg_burn_chart(budget: dict, width=560, height=130) -> str:
    burn = budget.get("burn_series") or {}
    times = burn.get("times_ms") or []
    if not times:
        return ""
    fast, slow = burn["fast"], burn["slow"]
    hi = max(1.0, max(fast, default=0.0), max(slow, default=0.0))
    t_lo, t_hi = times[0], times[-1]
    t_span = t_hi - t_lo if t_hi > t_lo else 1.0

    def path(series):
        points = []
        for ts, value in zip(times, series):
            x = 4.0 + (ts - t_lo) / t_span * (width - 8.0)
            y = height - 16.0 - value / hi * (height - 26.0)
            points.append(f"{x:.2f},{y:.2f}")
        return " ".join(points)

    budget_y = height - 16.0 - 1.0 / hi * (height - 26.0)
    return (
        f'<svg width="{width}" height="{height}">'
        f'<line x1="4" y1="{budget_y:.2f}" x2="{width - 4}" y2="{budget_y:.2f}"'
        f' stroke="#b8bec9" stroke-dasharray="4 3"/>'
        f'<text x="6" y="{budget_y - 3:.2f}" font-size="9" fill="#5a6172">'
        f"burn = 1.0</text>"
        f'<polyline fill="none" stroke="#c2452f" stroke-width="1.6"'
        f' points="{path(fast)}"/>'
        f'<polyline fill="none" stroke="#3566c4" stroke-width="1.6"'
        f' points="{path(slow)}"/>'
        f'<text x="6" y="12" font-size="10" fill="#c2452f">fast'
        f" ({_fmt(budget['fast_window_ms'], 0)} ms)</text>"
        f'<text x="110" y="12" font-size="10" fill="#3566c4">slow'
        f" ({_fmt(budget['slow_window_ms'], 0)} ms)</text>"
        f"</svg>"
    )


def _svg_session_strip(
    session: dict, duration_ms: float, width=480, height=14
) -> str:
    transitions = session["transitions"]
    rects = []
    for pos, transition in enumerate(transitions):
        start = transition["ts_ms"]
        end = (
            transitions[pos + 1]["ts_ms"]
            if pos + 1 < len(transitions)
            else duration_ms
        )
        if end <= start:
            continue
        x = start / duration_ms * width if duration_ms else 0.0
        rect_width = (end - start) / duration_ms * width if duration_ms else width
        color = "#c2452f" if transition["state"] == "degraded" else "#cfe3cf"
        rects.append(
            f'<rect x="{x:.2f}" y="1" width="{rect_width:.2f}"'
            f' height="{height - 2}" fill="{color}"/>'
        )
    return (
        f'<svg width="{width}" height="{height}">'
        f'<rect x="0" y="1" width="{width}" height="{height - 2}"'
        f' fill="#eef1f5"/>{"".join(rects)}</svg>'
    )


def render_report_html(report: dict, top_anomalies: int = 10) -> str:
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        f"<title>Ops report — {report['suite']} [{report['label']}]</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Ops report — {report['suite']} [{report['label']}]</h1>",
        '<p class="meta">Generated by <code>repro report</code> from a'
        " deterministic simulated run. Frame budget"
        f" {_fmt(report['budget_ms'])} ms · SLO target"
        f" {_fmt(report['slo_target'] * 100.0, 1)}% miss · sample interval"
        f" {_fmt(report['sample_interval_ms'], 0)} ms · environment:"
        " {python} ({implementation}) on {platform}/{machine}, numpy"
        " {numpy}</p>".format(**report["environment"]),
    ]
    for name in sorted(report["scenarios"]):
        scenario = report["scenarios"][name]
        parts += _scenario_html(name, scenario, top_anomalies)
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def _scenario_html(name: str, scenario: dict, top_anomalies: int) -> list[str]:
    spec = scenario["spec"]
    slo = scenario["slo"]
    budget = scenario["budget"]
    ok = budget["exhausted_at_ms"] is None
    badge = (
        '<span class="badge ok">budget ok</span>'
        if ok
        else '<span class="badge bad">budget exhausted</span>'
    )
    parts = [
        f"<h2><code>{name}</code> {badge}</h2>",
        f'<p class="meta">{spec["system"]} on {spec["dataset"]} over'
        f' {spec["network"]} ({spec["frames"]} frames)</p>',
        "<h3>SLO &amp; error budget</h3>",
        "<table><tr><th>metric</th><th>value</th></tr>",
        f"<tr><td>frames measured</td><td>{slo['frames']}</td></tr>",
        f"<tr><td>deadline misses</td><td>{slo['misses']}"
        f" ({_fmt(slo['miss_rate'] * 100.0, 2)}%)</td></tr>",
        f"<tr><td>worst streak</td><td>{slo['worst_streak']}</td></tr>",
        f"<tr><td>latency p50 / p90 / p99</td><td>{_fmt(slo['latency_p50_ms'])}"
        f" / {_fmt(slo['latency_p90_ms'])} / {_fmt(slo['latency_p99_ms'])}"
        " ms</td></tr>",
        f"<tr><td>error budget</td><td>{_fmt(budget['allowed_misses'], 1)}"
        f" misses allowed, {_fmt(budget['consumed_fraction'] * 100.0, 1)}%"
        " consumed</td></tr>",
        f"<tr><td>burn rate (fast/slow, max)</td><td>"
        f"{_fmt(budget['max_fast_burn_rate'])} /"
        f" {_fmt(budget['max_slow_burn_rate'])}</td></tr>",
        f"<tr><td>budget exhausted at</td><td>{_fmt(budget['exhausted_at_ms'])}"
        f"{' ms' if budget['exhausted_at_ms'] is not None else ''}</td></tr>",
        "</table>",
    ]

    chart = _svg_burn_chart(budget)
    if chart:
        parts += ["<h3>Burn rate</h3>", chart]

    rows = _timeline_rows(scenario)
    if rows:
        parts += [
            "<h3>Timelines</h3>",
            "<table><tr><th>series</th><th>sparkline</th><th>min</th>"
            "<th>max</th><th>last</th></tr>",
        ]
        for series in rows:
            values = series["values"]
            parts.append(
                f"<tr><td><code>{series['name']}</code></td>"
                f"<td>{_svg_polyline(values)}</td>"
                f"<td>{_fmt(min(values))}</td><td>{_fmt(max(values))}</td>"
                f"<td>{_fmt(values[-1])}</td></tr>"
            )
        parts.append("</table>")

    sessions = scenario.get("sessions") or []
    if sessions:
        parts += [
            "<h3>Sessions</h3>",
            "<table><tr><th>session</th><th>timeline (red = degraded)</th>"
            "<th>admits</th><th>rejects</th><th>sheds</th>"
            "<th>degraded</th></tr>",
        ]
        for session in sessions:
            strip = _svg_session_strip(session, scenario["duration_ms"])
            parts.append(
                f"<tr><td class=\"mono\">s{session['session']}</td>"
                f"<td>{strip}</td><td>{session['admits']}</td>"
                f"<td>{session['rejects']}</td><td>{session['sheds']}</td>"
                f"<td>{_fmt(session.get('degraded_fraction', 0.0) * 100.0, 1)}%"
                "</td></tr>"
            )
        parts.append("</table>")

    anomalies = scenario.get("anomalies") or []
    parts.append("<h3>Top anomalies</h3>")
    if not anomalies:
        parts.append('<p class="meta">None detected.</p>')
    else:
        parts.append(
            "<table><tr><th>#</th><th>type</th><th>t (ms)</th><th>lane</th>"
            "<th>severity</th><th>detail</th></tr>"
        )
        for rank, anomaly in enumerate(anomalies[:top_anomalies], start=1):
            parts.append(
                f"<tr><td>{rank}</td><td>{anomaly['type']}</td>"
                f"<td>{_fmt(anomaly['ts_ms'], 1)}</td>"
                f"<td>{anomaly.get('lane', '—')}</td>"
                f"<td>{_fmt(anomaly.get('severity'))}</td>"
                f"<td>{_anomaly_detail(anomaly)}</td></tr>"
            )
        parts.append("</table>")
        if len(anomalies) > top_anomalies:
            parts.append(
                f'<p class="meta">… and {len(anomalies) - top_anomalies}'
                " more.</p>"
            )
    return parts


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def report_filename(suite: str, label: str, fmt: str) -> str:
    return f"REPORT_{suite}_{label}.{fmt}"


def write_report(
    report: dict, out_dir: str | Path, formats=("md", "html")
) -> list[Path]:
    """Write the selected renderings; returns the paths written."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for fmt in formats:
        if fmt == "md":
            text = render_report_markdown(report)
        elif fmt == "html":
            text = render_report_html(report)
        else:
            raise ValueError(f"unknown report format {fmt!r}")
        path = out_dir / report_filename(report["suite"], report["label"], fmt)
        path.write_text(text)
        written.append(path)
    return written
