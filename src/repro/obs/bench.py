"""Benchmark-suite runner: named scenarios -> versioned BENCH artifacts.

One suite is a tuple of :class:`BenchScenario` cells; running it executes
each cell through the experiment harness with tracing on and folds the
trace into a machine-readable ``BENCH_<suite>_<label>.json`` containing:

* the shared ``result_payload`` summary (IoU, false rates, latency,
  bytes) per scenario;
* per-stage latency percentiles — exact p50/p90/p99 from the full
  per-span sample sets, plus the fixed-bucket
  :meth:`Histogram.percentile` estimate so the two can be reconciled;
* the frame-deadline SLO report (:mod:`repro.obs.slo`): miss rate,
  worst streak, per-stage budget attribution;
* offload/bandwidth counters (CFRS decisions, server requests, bytes);
* an environment fingerprint.

Because the pipeline runs on a simulated clock, a suite is fully
deterministic: two runs on the same machine produce **byte-identical**
artifacts, so BENCH files can be committed, diffed and regression-gated
(see :mod:`repro.obs.compare` and ``repro bench compare``).

The ``degrade`` knob synthetically slows the edge server by the given
factor (device speed divided by it) — the self-test for the regression
gate: a degraded run must make ``repro bench compare`` fail, naming the
``server.infer`` stage.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .metrics import Histogram
from .slo import FRAME_BUDGET_MS, evaluate_slo, exact_percentile
from .trace import Tracer

__all__ = [
    "BenchScenario",
    "SUITES",
    "environment_fingerprint",
    "stage_percentiles",
    "run_scenario",
    "run_suite",
    "bench_filename",
    "dump_bench",
    "write_bench",
]


@dataclass(frozen=True)
class BenchScenario:
    """One named cell of a benchmark suite."""

    name: str
    dataset: str = "xiph_like"
    network: str = "wifi_5ghz"
    motion: str = "walk"
    system: str = "edgeis"
    frames: int = 150
    resolution: tuple[int, int] = (320, 240)
    warmup_frames: int = 45
    seed: int = 0
    server_device: str = "jetson_tx2"


# Suite sizing: ``micro`` is one small cell for unit tests and quick local
# sanity runs; ``smoke`` is the CI perf gate (two networks, ~30 s total);
# ``full`` mirrors the paper-figure trace scenarios.
SUITES: dict[str, tuple[BenchScenario, ...]] = {
    "micro": (
        BenchScenario(
            "wifi5-walk", frames=80, resolution=(160, 120), warmup_frames=30
        ),
    ),
    "smoke": (
        BenchScenario(
            "wifi5-walk", frames=96, resolution=(224, 168), warmup_frames=24
        ),
        BenchScenario(
            "lte-walk",
            network="lte",
            frames=96,
            resolution=(224, 168),
            warmup_frames=24,
        ),
    ),
    "full": (
        BenchScenario("fig9-wifi5"),
        BenchScenario("fig10-wifi24", network="wifi_2.4ghz"),
        BenchScenario("fig10-lte", network="lte"),
        BenchScenario("fig12-jog", dataset="kitti_like", motion="jog"),
    ),
}


def environment_fingerprint() -> dict:
    """Where the suite ran — stable across runs on one machine, so it
    does not break byte-identical artifacts; differs across machines so
    cross-host comparisons are explainable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": np.__version__,
    }


def stage_percentiles(tracer: Tracer) -> dict[str, dict]:
    """``"lane/stage" -> latency stats`` over every span of the trace.

    p50/p90/p99 are exact (full sample set retained); ``hist_p90_ms`` /
    ``hist_p99_ms`` are the fixed-bucket :meth:`Histogram.percentile`
    estimates of the same distribution, kept alongside so drift between
    the streaming estimator and ground truth is itself observable.
    """
    samples: dict[str, list[float]] = {}
    for span in tracer.spans:
        samples.setdefault(f"{span.lane}/{span.name}", []).append(span.dur_ms)
    stages: dict[str, dict] = {}
    for key in sorted(samples):
        durations = samples[key]
        hist = Histogram(key)
        for value in durations:
            hist.observe(value)
        stages[key] = {
            "count": len(durations),
            "total_ms": round(sum(durations), 6),
            "mean_ms": round(sum(durations) / len(durations), 6),
            "p50_ms": round(exact_percentile(durations, 50.0), 6),
            "p90_ms": round(exact_percentile(durations, 90.0), 6),
            "p99_ms": round(exact_percentile(durations, 99.0), 6),
            "max_ms": round(max(durations), 6),
            "hist_p90_ms": round(hist.percentile(90.0), 6),
            "hist_p99_ms": round(hist.percentile(99.0), 6),
        }
    return stages


def run_scenario(
    scenario: BenchScenario,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
) -> dict:
    """Run one scenario traced and fold it into its JSON payload."""
    # Imported here: ``repro.eval`` imports the runtime, which imports
    # this package — a module-level import would be circular.
    from ..eval.experiments import ExperimentSpec, run_experiment
    from ..eval.reporting import result_payload

    spec = ExperimentSpec(
        system=scenario.system,
        dataset=scenario.dataset,
        network=scenario.network,
        num_frames=scenario.frames,
        resolution=scenario.resolution,
        motion_grade=scenario.motion,
        warmup_frames=scenario.warmup_frames,
        seed=scenario.seed,
        server_device=scenario.server_device,
        server_latency_scale=degrade,
        trace=True,
    )
    outcome = run_experiment(spec)
    tracer = outcome.tracer
    counters = tracer.metrics.snapshot()["counters"]
    return {
        "spec": {
            "system": scenario.system,
            "dataset": scenario.dataset,
            "network": scenario.network,
            "motion": scenario.motion,
            "frames": scenario.frames,
            "resolution": list(scenario.resolution),
            "warmup_frames": scenario.warmup_frames,
            "seed": scenario.seed,
            "server_device": scenario.server_device,
            "degrade": degrade,
        },
        "result": result_payload(outcome.result),
        "stages": stage_percentiles(tracer),
        "slo": evaluate_slo(
            tracer, budget_ms=budget_ms, warmup_frames=scenario.warmup_frames
        ),
        "offload": {
            "offload_count": int(outcome.result.offload_count),
            "bytes_up": int(outcome.result.bytes_up),
            "bytes_down": int(outcome.result.bytes_down),
            "counters": dict(sorted(counters.items())),
        },
    }


def run_suite(
    suite: str,
    label: str,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
) -> dict:
    """Run every scenario of a named suite into one BENCH payload."""
    from ..eval.reporting import SCHEMA_VERSION

    if suite not in SUITES:
        raise KeyError(
            f"unknown suite {suite!r}; available: {', '.join(sorted(SUITES))}"
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "suite": suite,
        "label": label,
        "budget_ms": round(budget_ms, 6),
        "degrade": degrade,
        "environment": environment_fingerprint(),
        "scenarios": {
            scenario.name: run_scenario(scenario, degrade, budget_ms)
            for scenario in SUITES[suite]
        },
    }


def bench_filename(suite: str, label: str) -> str:
    return f"BENCH_{suite}_{label}.json"


def _json_default(obj):
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)}")


def dump_bench(payload: dict) -> str:
    """Canonical serialized form — sorted keys, so equal payloads are
    byte-identical files."""
    return (
        json.dumps(payload, sort_keys=True, indent=2, default=_json_default)
        + "\n"
    )


def write_bench(payload: dict, out_dir: str | Path) -> Path:
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / bench_filename(payload["suite"], payload["label"])
    path.write_text(dump_bench(payload))
    return path
