"""Benchmark-suite runner: named scenarios -> versioned BENCH artifacts.

One suite is a tuple of :class:`BenchScenario` cells; running it executes
each cell through the experiment harness with tracing on and folds the
trace into a machine-readable ``BENCH_<suite>_<label>.json`` containing:

* the shared ``result_payload`` summary (IoU, false rates, latency,
  bytes) per scenario;
* per-stage latency percentiles — exact p50/p90/p99 from the full
  per-span sample sets, plus the fixed-bucket
  :meth:`Histogram.percentile` estimate so the two can be reconciled;
* the frame-deadline SLO report (:mod:`repro.obs.slo`): miss rate,
  worst streak, per-stage budget attribution;
* offload/bandwidth counters (CFRS decisions, server requests, bytes);
* an environment fingerprint.

Because the pipeline runs on a simulated clock, a suite is fully
deterministic: two runs on the same machine produce **byte-identical**
artifacts, so BENCH files can be committed, diffed and regression-gated
(see :mod:`repro.obs.compare` and ``repro bench compare``).

The ``degrade`` knob synthetically slows the edge server by the given
factor (device speed divided by it) — the self-test for the regression
gate: a degraded run must make ``repro bench compare`` fail, naming the
``server.infer`` stage.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .budget import DEFAULT_SLO_TARGET, evaluate_error_budget
from .critical import miss_causes
from .metrics import Histogram
from .slo import FRAME_BUDGET_MS, evaluate_slo, exact_percentile
from .trace import Tracer

__all__ = [
    "BenchScenario",
    "FleetBenchScenario",
    "KernelBenchScenario",
    "ChaosBenchScenario",
    "SUITES",
    "environment_fingerprint",
    "stage_percentiles",
    "run_scenario",
    "run_scenario_observed",
    "run_suite",
    "bench_filename",
    "dump_bench",
    "strip_timing",
    "write_bench",
]


@dataclass(frozen=True)
class BenchScenario:
    """One named cell of a benchmark suite."""

    name: str
    dataset: str = "xiph_like"
    network: str = "wifi_5ghz"
    motion: str = "walk"
    system: str = "edgeis"
    frames: int = 150
    resolution: tuple[int, int] = (320, 240)
    warmup_frames: int = 45
    seed: int = 0
    server_device: str = "jetson_tx2"


@dataclass(frozen=True)
class FleetBenchScenario(BenchScenario):
    """A multi-client serving cell (run through ``repro.serve``).

    Subclasses :class:`BenchScenario` so fleet cells slot into the same
    suites/artifacts; the extra fields configure the fleet topology and
    the scheduler.  ``scheduler=False`` reproduces the paper's bare
    deployment — one FIFO server, no admission control — which is the
    regression baseline the deadline-aware cells are gated against.
    """

    num_clients: int = 8
    num_servers: int = 1
    scheduler: bool = True
    policy: str = "edf"
    queue_limit: int = 4
    deadline_horizon: float = 12.0
    degrade_enabled: bool = True
    degrade_failure_threshold: int = 2
    degrade_min_ms: float = 300.0
    # Cross-session batching (max_batch_size=1 disables it).
    batch_window_ms: float = 0.0
    max_batch_size: int = 1
    batch_alpha: float = 0.8


@dataclass(frozen=True)
class ChaosBenchScenario(FleetBenchScenario):
    """One adversarial-scenario x fault cell (:mod:`repro.chaos`).

    Runs a fleet cell where the scene comes from the chaos scenario
    registry and a named fault program injects serving faults on the
    simulated clock.  The certified claim: through degrade -> recover the
    cell's SLO error budget holds (``budget.consumed_fraction < 1.0`` at
    the cell's looser ``slo_target``).  The extra ``chaos`` payload
    section records the scenario, the fault program and the injector's
    event log (all sim-clock deterministic, so it is part of the
    byte-identity contract).
    """

    chaos_scenario: str = ""
    fault: str = "none"
    # Adversarial cells run against a looser per-cell miss-rate target
    # than DEFAULT_SLO_TARGET: the certification is "the fleet survives
    # inside an explicit, budgeted degradation", not "chaos is free".
    slo_target: float = 0.25


@dataclass(frozen=True)
class KernelBenchScenario(BenchScenario):
    """One vectorized-kernel micro cell (:mod:`repro.obs.kernelbench`).

    Times a vectorized hot-path kernel against its scalar ``*_reference``
    implementation and emits a ``kernel`` payload section whose
    ``speedup_x`` is regression-gated.  Wall-clock fields are excluded
    from the artifact byte-identity contract via :func:`strip_timing`.
    """

    kernel: str = ""
    repeats: int = 7


# Suite sizing: ``micro`` is one small cell for unit tests and quick local
# sanity runs; ``smoke`` is the CI perf gate (two networks, ~30 s total);
# ``full`` mirrors the paper-figure trace scenarios; ``fleet`` is the
# 8-client saturation study for the serving layer (FIFO baseline vs
# deadline-aware policies — see docs/serving.md).
SUITES: dict[str, tuple[BenchScenario, ...]] = {
    "micro": (
        BenchScenario(
            "wifi5-walk", frames=80, resolution=(160, 120), warmup_frames=30
        ),
        # One cell per vectorized hot-path kernel (docs/performance.md):
        # speedup over the scalar reference is the gated metric.
        KernelBenchScenario("fast.arc_run", kernel="fast.arc_run"),
        KernelBenchScenario("rpn.assemble", kernel="rpn.assemble"),
        KernelBenchScenario("rpn.confidence", kernel="rpn.confidence"),
        KernelBenchScenario("ba.jacobian", kernel="ba.jacobian"),
        KernelBenchScenario("ba.ransac_score", kernel="ba.ransac_score"),
        KernelBenchScenario("ba.dlt_rows", kernel="ba.dlt_rows"),
        KernelBenchScenario(
            "transfer.contour_depth", kernel="transfer.contour_depth"
        ),
        KernelBenchScenario("serve.batch_latency", kernel="serve.batch_latency"),
    ),
    "smoke": (
        BenchScenario(
            "wifi5-walk", frames=96, resolution=(224, 168), warmup_frames=24
        ),
        BenchScenario(
            "lte-walk",
            network="lte",
            frames=96,
            resolution=(224, 168),
            warmup_frames=24,
        ),
    ),
    "full": (
        BenchScenario("fig9-wifi5"),
        BenchScenario("fig10-wifi24", network="wifi_2.4ghz"),
        BenchScenario("fig10-lte", network="lte"),
        BenchScenario("fig12-jog", dataset="kitti_like", motion="jog"),
    ),
    "fleet": (
        # The paper's deployment: 8 clients, one FIFO server, no policy.
        FleetBenchScenario(
            "fifo-1srv",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            scheduler=False,
        ),
        # Deadline-aware EDF with bounded queues + MAMT-fallback degrade:
        # must beat fifo-1srv on frame-deadline miss rate.
        FleetBenchScenario(
            "edf-1srv-degrade",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            policy="edf",
            queue_limit=6,
            deadline_horizon=36.0,
        ),
        # EDF plus cross-session batching: one GPU amortizes its fixed
        # per-call cost over requests of different clients.  Same config
        # as edf-1srv-degrade apart from the batching window; spends less
        # server busy-ms per completed frame at an equal miss rate (see
        # tests/test_serve.py::TestBatchingFleet).
        FleetBenchScenario(
            "edf-1srv-batch",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            policy="edf",
            queue_limit=6,
            deadline_horizon=36.0,
            batch_window_ms=20.0,
            max_batch_size=3,
        ),
        # Horizontal scaling: two replicas behind least-queue placement.
        FleetBenchScenario(
            "lq-2srv",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            policy="least_queue",
            num_servers=2,
        ),
    ),
    # Adversarial scenario x fault matrix (docs/scenarios.md): every
    # registry scenario against every fault program, certified to hold
    # its SLO error budget through degrade -> recover.  The name lists
    # are hard-coded (not imported from repro.chaos) to keep this module
    # import-light; tests/test_chaos.py asserts they stay in sync with
    # the registries.
    "chaos": tuple(
        ChaosBenchScenario(
            f"{scenario_name}+{fault_name}",
            system="baseline+mamt",
            frames=56,
            resolution=(128, 96),
            warmup_frames=8,
            num_clients=4,
            num_servers=2,
            policy="edf",
            queue_limit=6,
            deadline_horizon=36.0,
            chaos_scenario=scenario_name,
            fault=fault_name,
        )
        for scenario_name in (
            "crowded-occlusion",
            "whip-pan",
            "transit",
            "lighting-flip",
            "wifi-to-lte",
        )
        for fault_name in ("none", "replica-outage", "straggler", "uplink-stall")
    ),
}


def environment_fingerprint() -> dict:
    """Where the suite ran — stable across runs on one machine, so it
    does not break byte-identical artifacts; differs across machines so
    cross-host comparisons are explainable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": np.__version__,
    }


def stage_percentiles(tracer: Tracer) -> dict[str, dict]:
    """``"lane/stage" -> latency stats`` over every span of the trace.

    p50/p90/p99 are exact (full sample set retained); ``hist_p90_ms`` /
    ``hist_p99_ms`` are the fixed-bucket :meth:`Histogram.percentile`
    estimates of the same distribution, kept alongside so drift between
    the streaming estimator and ground truth is itself observable.
    """
    samples: dict[str, list[float]] = {}
    for span in tracer.spans:
        samples.setdefault(f"{span.lane}/{span.name}", []).append(span.dur_ms)
    stages: dict[str, dict] = {}
    for key in sorted(samples):
        durations = samples[key]
        hist = Histogram(key)
        for value in durations:
            hist.observe(value)
        stages[key] = {
            "count": len(durations),
            "total_ms": round(sum(durations), 6),
            "mean_ms": round(sum(durations) / len(durations), 6),
            "p50_ms": round(exact_percentile(durations, 50.0), 6),
            "p90_ms": round(exact_percentile(durations, 90.0), 6),
            "p99_ms": round(exact_percentile(durations, 99.0), 6),
            "max_ms": round(max(durations), 6),
            "hist_p90_ms": round(hist.percentile(90.0), 6),
            "hist_p99_ms": round(hist.percentile(99.0), 6),
        }
    return stages


def _lean_budget(budget_report: dict) -> dict:
    """The artifact-embedded form: scalars only, no burn series."""
    return {k: v for k, v in budget_report.items() if k != "burn_series"}


def run_scenario(
    scenario: BenchScenario,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
    slo_target: float = DEFAULT_SLO_TARGET,
) -> dict:
    """Run one scenario traced and fold it into its JSON payload."""
    payload, _ = run_scenario_observed(
        scenario, degrade=degrade, budget_ms=budget_ms, slo_target=slo_target
    )
    return payload


def run_scenario_observed(
    scenario: BenchScenario,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
    slo_target: float = DEFAULT_SLO_TARGET,
    sample_interval_ms: float | None = None,
) -> tuple[dict, dict]:
    """Run one scenario and return ``(payload, observed)``.

    ``payload`` is the BENCH scenario section (including the lean
    error-budget scalars).  ``observed`` carries what the ops report
    needs beyond the artifact: the live tracer and timeline sampler,
    the full budget report (with its burn series) and the simulated run
    duration.
    """
    # Imported here: ``repro.eval`` imports the runtime, which imports
    # this package — a module-level import would be circular.
    from ..eval.experiments import ExperimentSpec, run_experiment
    from ..eval.reporting import result_payload

    if isinstance(scenario, KernelBenchScenario):
        return _run_kernel_scenario(scenario), {}
    if isinstance(scenario, FleetBenchScenario):
        return _run_fleet_scenario(
            scenario, degrade, budget_ms, slo_target, sample_interval_ms
        )

    spec = ExperimentSpec(
        system=scenario.system,
        dataset=scenario.dataset,
        network=scenario.network,
        num_frames=scenario.frames,
        resolution=scenario.resolution,
        motion_grade=scenario.motion,
        warmup_frames=scenario.warmup_frames,
        seed=scenario.seed,
        server_device=scenario.server_device,
        server_latency_scale=degrade,
        trace=True,
        sample_interval_ms=sample_interval_ms,
    )
    outcome = run_experiment(spec)
    tracer = outcome.tracer
    counters = tracer.metrics.snapshot()["counters"]
    budget_report = evaluate_error_budget(
        tracer,
        budget_ms=budget_ms,
        target=slo_target,
        warmup_frames=scenario.warmup_frames,
    )
    payload = {
        "spec": {
            "system": scenario.system,
            "dataset": scenario.dataset,
            "network": scenario.network,
            "motion": scenario.motion,
            "frames": scenario.frames,
            "resolution": list(scenario.resolution),
            "warmup_frames": scenario.warmup_frames,
            "seed": scenario.seed,
            "server_device": scenario.server_device,
            "degrade": degrade,
        },
        "result": result_payload(outcome.result),
        "stages": stage_percentiles(tracer),
        "slo": evaluate_slo(
            tracer, budget_ms=budget_ms, warmup_frames=scenario.warmup_frames
        ),
        "budget": _lean_budget(budget_report),
        "miss_causes": miss_causes(
            tracer, budget_ms, warmup_frames=scenario.warmup_frames
        ),
        "offload": {
            "offload_count": int(outcome.result.offload_count),
            "bytes_up": int(outcome.result.bytes_up),
            "bytes_down": int(outcome.result.bytes_down),
            "counters": dict(sorted(counters.items())),
        },
    }
    observed = {
        "tracer": tracer,
        "sampler": outcome.sampler,
        "budget": budget_report,
        "duration_ms": outcome.result.duration_ms,
    }
    return payload, observed


def _run_kernel_scenario(scenario: KernelBenchScenario) -> dict:
    """Run one vectorized-kernel micro cell into its payload section."""
    from .kernelbench import run_kernel

    return {
        "spec": {
            "kernel": scenario.kernel,
            "repeats": scenario.repeats,
            "seed": scenario.seed,
        },
        "kernel": run_kernel(
            scenario.kernel, seed=scenario.seed, repeats=scenario.repeats
        ),
    }


def _run_fleet_scenario(
    scenario: FleetBenchScenario,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
    slo_target: float = DEFAULT_SLO_TARGET,
    sample_interval_ms: float | None = None,
) -> tuple[dict, dict]:
    """Run one fleet cell and fold it into the BENCH scenario payload.

    The ``result`` section keeps the single-run key names (so the same
    compare policies gate it): quality/latency keys are means over the
    fleet's sessions, byte/offload counters are fleet totals, and
    ``server_utilization`` is normalized by the number of replicas.  The
    extra ``serve`` section carries the scheduler's admit/shed/degrade
    accounting (informational — not gated).
    """
    from ..eval.experiments import FleetSpec, run_fleet

    is_chaos = isinstance(scenario, ChaosBenchScenario)
    network = scenario.network
    if is_chaos:
        from ..chaos import make_scenario

        # Chaos cells certify against their own (looser) miss-rate
        # target; the suite-level target still governs plain cells.
        slo_target = scenario.slo_target
        # The scenario registry owns the channel choice.
        network = make_scenario(scenario.chaos_scenario).network
    spec = FleetSpec(
        num_clients=scenario.num_clients,
        system=scenario.system,
        dataset=scenario.dataset,
        network=scenario.network,
        num_frames=scenario.frames,
        resolution=scenario.resolution,
        motion_grade=scenario.motion,
        server_device=scenario.server_device,
        server_latency_scale=degrade,
        scheduler=scenario.scheduler,
        num_servers=scenario.num_servers,
        policy=scenario.policy,
        queue_limit=scenario.queue_limit,
        deadline_horizon=scenario.deadline_horizon,
        degrade=scenario.degrade_enabled,
        degrade_failure_threshold=scenario.degrade_failure_threshold,
        degrade_min_ms=scenario.degrade_min_ms,
        batch_window_ms=scenario.batch_window_ms,
        max_batch_size=scenario.max_batch_size,
        batch_alpha=scenario.batch_alpha,
        warmup_frames=scenario.warmup_frames,
        seed=scenario.seed,
        trace=True,
        sample_interval_ms=sample_interval_ms,
        scenario=scenario.chaos_scenario if is_chaos else None,
        faults=scenario.fault if is_chaos else "none",
    )
    outcome = run_fleet(spec)
    tracer = outcome.tracer
    results = outcome.results
    counters = tracer.metrics.snapshot()["counters"]
    budget_report = evaluate_error_budget(
        tracer,
        budget_ms=budget_ms,
        target=slo_target,
        warmup_frames=scenario.warmup_frames,
    )
    count = len(results)
    offload_count = sum(r.offload_count for r in results)
    bytes_up = sum(r.bytes_up for r in results)
    bytes_down = sum(r.bytes_down for r in results)
    busy_ms = results[0].server_busy_ms if results else 0.0
    duration = outcome.duration_ms
    if scenario.scheduler:
        serve = {"scheduler": True, **outcome.scheduler.stats(duration)}
    else:
        serve = {"scheduler": False, "policy": "fifo", "num_servers": 1}
    payload = {
        "spec": {
            "system": scenario.system,
            "dataset": scenario.dataset,
            "network": network,
            "motion": scenario.motion,
            "frames": scenario.frames,
            "resolution": list(scenario.resolution),
            "warmup_frames": scenario.warmup_frames,
            "seed": scenario.seed,
            "server_device": scenario.server_device,
            "degrade": degrade,
            "num_clients": scenario.num_clients,
            "num_servers": scenario.num_servers,
            "scheduler": scenario.scheduler,
            "policy": scenario.policy if scenario.scheduler else "fifo",
            "queue_limit": scenario.queue_limit,
            "deadline_horizon": scenario.deadline_horizon,
            "degrade_enabled": scenario.degrade_enabled,
            "batch_window_ms": scenario.batch_window_ms,
            "max_batch_size": scenario.max_batch_size,
        },
        "result": {
            "schema_version": _result_schema_version(),
            "system": results[0].system,
            "num_clients": count,
            "mean_iou": float(sum(r.mean_iou() for r in results) / count),
            "false_rate_75": float(
                sum(r.false_rate(0.75) for r in results) / count
            ),
            "false_rate_50": float(
                sum(r.false_rate(0.5) for r in results) / count
            ),
            "mean_latency_ms": float(
                sum(r.mean_latency_ms() for r in results) / count
            ),
            "offload_count": int(offload_count),
            "bytes_up": int(bytes_up),
            "bytes_down": int(bytes_down),
            "server_utilization": float(
                busy_ms / (duration * scenario.num_servers) if duration else 0.0
            ),
        },
        "stages": stage_percentiles(tracer),
        "slo": evaluate_slo(
            tracer, budget_ms=budget_ms, warmup_frames=scenario.warmup_frames
        ),
        "budget": _lean_budget(budget_report),
        "miss_causes": miss_causes(
            tracer, budget_ms, warmup_frames=scenario.warmup_frames
        ),
        "offload": {
            "offload_count": int(offload_count),
            "bytes_up": int(bytes_up),
            "bytes_down": int(bytes_down),
            "counters": dict(sorted(counters.items())),
        },
        "serve": serve,
    }
    if is_chaos:
        # Chaos-only keys live in their own section (and two spec keys)
        # so plain fleet cells stay byte-identical to their pre-chaos
        # artifacts.
        payload["spec"]["chaos_scenario"] = scenario.chaos_scenario
        payload["spec"]["fault"] = scenario.fault
        payload["chaos"] = {
            "scenario": scenario.chaos_scenario,
            "fault": scenario.fault,
            "slo_target": round(scenario.slo_target, 6),
            "events": list(outcome.chaos.log) if outcome.chaos is not None else [],
            "certified": bool(
                budget_report["consumed_fraction"] < 1.0
            ),
        }
    observed = {
        "tracer": tracer,
        "sampler": outcome.sampler,
        "budget": budget_report,
        "duration_ms": duration,
    }
    return payload, observed


def _result_schema_version() -> int:
    from ..eval.reporting import SCHEMA_VERSION

    return SCHEMA_VERSION


def run_suite(
    suite: str,
    label: str,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
    slo_target: float = DEFAULT_SLO_TARGET,
) -> dict:
    """Run every scenario of a named suite into one BENCH payload."""
    from ..eval.reporting import SCHEMA_VERSION

    if suite not in SUITES:
        raise KeyError(
            f"unknown suite {suite!r}; available: {', '.join(sorted(SUITES))}"
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "suite": suite,
        "label": label,
        "budget_ms": round(budget_ms, 6),
        "slo_target": round(slo_target, 6),
        "degrade": degrade,
        "environment": environment_fingerprint(),
        "scenarios": {
            scenario.name: run_scenario(
                scenario, degrade, budget_ms, slo_target=slo_target
            )
            for scenario in SUITES[suite]
        },
    }


def bench_filename(suite: str, label: str) -> str:
    return f"BENCH_{suite}_{label}.json"


def _json_default(obj):
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)}")


def dump_bench(payload: dict) -> str:
    """Canonical serialized form — sorted keys, so equal payloads are
    byte-identical files."""
    return (
        json.dumps(payload, sort_keys=True, indent=2, default=_json_default)
        + "\n"
    )


def strip_timing(payload: dict) -> dict:
    """A deep copy of a BENCH payload without the wall-clock fields of
    kernel cells — the part of the artifact covered by the byte-identity
    contract (everything a simulated-clock run fully determines)."""
    from copy import deepcopy

    from .kernelbench import TIMING_KEYS

    stripped = deepcopy(payload)
    for scenario in stripped.get("scenarios", {}).values():
        kernel = scenario.get("kernel")
        if kernel:
            for key in TIMING_KEYS:
                kernel.pop(key, None)
    return stripped


def write_bench(payload: dict, out_dir: str | Path) -> Path:
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / bench_filename(payload["suite"], payload["label"])
    path.write_text(dump_bench(payload))
    return path
