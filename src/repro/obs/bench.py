"""Benchmark-suite runner: named scenarios -> versioned BENCH artifacts.

One suite is a tuple of :class:`BenchScenario` cells; running it executes
each cell through the experiment harness with tracing on and folds the
trace into a machine-readable ``BENCH_<suite>_<label>.json`` containing:

* the shared ``result_payload`` summary (IoU, false rates, latency,
  bytes) per scenario;
* per-stage latency percentiles — exact p50/p90/p99 from the full
  per-span sample sets, plus the fixed-bucket
  :meth:`Histogram.percentile` estimate so the two can be reconciled;
* the frame-deadline SLO report (:mod:`repro.obs.slo`): miss rate,
  worst streak, per-stage budget attribution;
* offload/bandwidth counters (CFRS decisions, server requests, bytes);
* an environment fingerprint.

Because the pipeline runs on a simulated clock, a suite is fully
deterministic: two runs on the same machine produce **byte-identical**
artifacts, so BENCH files can be committed, diffed and regression-gated
(see :mod:`repro.obs.compare` and ``repro bench compare``).

The ``degrade`` knob synthetically slows the edge server by the given
factor (device speed divided by it) — the self-test for the regression
gate: a degraded run must make ``repro bench compare`` fail, naming the
``server.infer`` stage.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .budget import DEFAULT_SLO_TARGET, evaluate_error_budget
from .critical import miss_causes
from .metrics import Histogram
from .slo import FRAME_BUDGET_MS, evaluate_slo, exact_percentile
from .trace import Tracer

__all__ = [
    "BenchScenario",
    "FleetBenchScenario",
    "KernelBenchScenario",
    "ChaosBenchScenario",
    "TenantBenchScenario",
    "SUITES",
    "environment_fingerprint",
    "stage_percentiles",
    "run_scenario",
    "run_scenario_observed",
    "run_suite",
    "bench_filename",
    "dump_bench",
    "strip_timing",
    "write_bench",
]


@dataclass(frozen=True)
class BenchScenario:
    """One named cell of a benchmark suite."""

    name: str
    dataset: str = "xiph_like"
    network: str = "wifi_5ghz"
    motion: str = "walk"
    system: str = "edgeis"
    frames: int = 150
    resolution: tuple[int, int] = (320, 240)
    warmup_frames: int = 45
    seed: int = 0
    server_device: str = "jetson_tx2"


@dataclass(frozen=True)
class FleetBenchScenario(BenchScenario):
    """A multi-client serving cell (run through ``repro.serve``).

    Subclasses :class:`BenchScenario` so fleet cells slot into the same
    suites/artifacts; the extra fields configure the fleet topology and
    the scheduler.  ``scheduler=False`` reproduces the paper's bare
    deployment — one FIFO server, no admission control — which is the
    regression baseline the deadline-aware cells are gated against.
    """

    num_clients: int = 8
    num_servers: int = 1
    scheduler: bool = True
    policy: str = "edf"
    queue_limit: int = 4
    deadline_horizon: float = 12.0
    degrade_enabled: bool = True
    degrade_failure_threshold: int = 2
    degrade_min_ms: float = 300.0
    # Cross-session batching (max_batch_size=1 disables it).
    batch_window_ms: float = 0.0
    max_batch_size: int = 1
    batch_alpha: float = 0.8


@dataclass(frozen=True)
class ChaosBenchScenario(FleetBenchScenario):
    """One adversarial-scenario x fault cell (:mod:`repro.chaos`).

    Runs a fleet cell where the scene comes from the chaos scenario
    registry and a named fault program injects serving faults on the
    simulated clock.  The certified claim: through degrade -> recover the
    cell's SLO error budget holds (``budget.consumed_fraction < 1.0`` at
    the cell's looser ``slo_target``).  The extra ``chaos`` payload
    section records the scenario, the fault program and the injector's
    event log (all sim-clock deterministic, so it is part of the
    byte-identity contract).
    """

    chaos_scenario: str = ""
    fault: str = "none"
    # Adversarial cells run against a looser per-cell miss-rate target
    # than DEFAULT_SLO_TARGET: the certification is "the fleet survives
    # inside an explicit, budgeted degradation", not "chaos is free".
    slo_target: float = 0.25


@dataclass(frozen=True)
class TenantBenchScenario(FleetBenchScenario):
    """One multi-tenant serving cell (:mod:`repro.tenancy`).

    A fleet cell whose sessions are partitioned into QoS-classed tenants
    (``tenants`` is the ``name:qos:count`` directory string).  The cell
    emits a ``tenants`` payload section — per-tenant meters, per-tenant
    SLO slices and the exact reconciliation against the fleet-level
    ``serve.*`` counters — plus an ``autoscale`` section when the
    queue-driven autoscaler is on.  The ``role`` marks how the suite
    certification consumes the cell: ``reference`` is the unsaturated
    premium-only baseline, ``certify`` is the saturated mixed-QoS cell
    whose premium miss rate is held against the reference.
    """

    tenants: str = ""
    role: str = "reference"  # "reference" | "certify" | "exhibit"
    # Certified ceiling for the premium tenant's frame-deadline miss
    # rate in the saturated cell.
    premium_slo_target: float = 0.15
    # Queue-driven autoscaling (repro.tenancy.Autoscaler).
    autoscale: bool = False
    autoscale_min: int = 1
    autoscale_max: int = 4
    autoscale_up_depth: float = 2.0
    autoscale_down_depth: float = 0.0
    autoscale_warmup_ms: float = 200.0
    autoscale_hold_ms: float = 1000.0
    autoscale_cooldown_ms: float = 100.0


@dataclass(frozen=True)
class KernelBenchScenario(BenchScenario):
    """One vectorized-kernel micro cell (:mod:`repro.obs.kernelbench`).

    Times a vectorized hot-path kernel against its scalar ``*_reference``
    implementation and emits a ``kernel`` payload section whose
    ``speedup_x`` is regression-gated.  Wall-clock fields are excluded
    from the artifact byte-identity contract via :func:`strip_timing`.
    """

    kernel: str = ""
    repeats: int = 7


# Suite sizing: ``micro`` is one small cell for unit tests and quick local
# sanity runs; ``smoke`` is the CI perf gate (two networks, ~30 s total);
# ``full`` mirrors the paper-figure trace scenarios; ``fleet`` is the
# 8-client saturation study for the serving layer (FIFO baseline vs
# deadline-aware policies — see docs/serving.md).
SUITES: dict[str, tuple[BenchScenario, ...]] = {
    "micro": (
        BenchScenario(
            "wifi5-walk", frames=80, resolution=(160, 120), warmup_frames=30
        ),
        # One cell per vectorized hot-path kernel (docs/performance.md):
        # speedup over the scalar reference is the gated metric.
        KernelBenchScenario("fast.arc_run", kernel="fast.arc_run"),
        KernelBenchScenario("rpn.assemble", kernel="rpn.assemble"),
        KernelBenchScenario("rpn.confidence", kernel="rpn.confidence"),
        KernelBenchScenario("ba.jacobian", kernel="ba.jacobian"),
        KernelBenchScenario("ba.ransac_score", kernel="ba.ransac_score"),
        KernelBenchScenario("ba.dlt_rows", kernel="ba.dlt_rows"),
        KernelBenchScenario(
            "transfer.contour_depth", kernel="transfer.contour_depth"
        ),
        KernelBenchScenario("serve.batch_latency", kernel="serve.batch_latency"),
    ),
    "smoke": (
        BenchScenario(
            "wifi5-walk", frames=96, resolution=(224, 168), warmup_frames=24
        ),
        BenchScenario(
            "lte-walk",
            network="lte",
            frames=96,
            resolution=(224, 168),
            warmup_frames=24,
        ),
    ),
    "full": (
        BenchScenario("fig9-wifi5"),
        BenchScenario("fig10-wifi24", network="wifi_2.4ghz"),
        BenchScenario("fig10-lte", network="lte"),
        BenchScenario("fig12-jog", dataset="kitti_like", motion="jog"),
    ),
    "fleet": (
        # The paper's deployment: 8 clients, one FIFO server, no policy.
        FleetBenchScenario(
            "fifo-1srv",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            scheduler=False,
        ),
        # Deadline-aware EDF with bounded queues + MAMT-fallback degrade:
        # must beat fifo-1srv on frame-deadline miss rate.
        FleetBenchScenario(
            "edf-1srv-degrade",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            policy="edf",
            queue_limit=6,
            deadline_horizon=36.0,
        ),
        # EDF plus cross-session batching: one GPU amortizes its fixed
        # per-call cost over requests of different clients.  Same config
        # as edf-1srv-degrade apart from the batching window; spends less
        # server busy-ms per completed frame at an equal miss rate (see
        # tests/test_serve.py::TestBatchingFleet).
        FleetBenchScenario(
            "edf-1srv-batch",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            policy="edf",
            queue_limit=6,
            deadline_horizon=36.0,
            batch_window_ms=20.0,
            max_batch_size=3,
        ),
        # Horizontal scaling: two replicas behind least-queue placement.
        FleetBenchScenario(
            "lq-2srv",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            policy="least_queue",
            num_servers=2,
        ),
    ),
    # Multi-tenant serving (docs/tenancy.md): the certified claim is
    # that with a best-effort tenant saturating the fleet, the premium
    # tenant's frame-deadline miss rate stays within its SLO target and
    # within 2x of the unsaturated premium-only reference, while the
    # best-effort tenant absorbs every shed/displacement and all the
    # degradation growth.  The best-effort tenant deliberately owns the
    # *lowest* session indices (it submits first every tick and fills
    # the queues), so premium isolation is earned through weighted-fair
    # displacement, not submission-order luck.  deadline_horizon=72
    # keeps every request feasible (one service fits the deadline), so
    # queue contention — not infeasibility — is the binding constraint.
    "tenants": (
        # Unsaturated reference: the premium tenant alone on the fleet.
        TenantBenchScenario(
            "premium-only",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            num_clients=2,
            tenants="gold:premium:2",
            role="reference",
            policy="edf",
            queue_limit=3,
            deadline_horizon=72.0,
        ),
        # The certified cell: the same premium tenant, plus a
        # best-effort tenant large enough to saturate the single
        # replica on its own.
        TenantBenchScenario(
            "mixed-saturate",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            num_clients=10,
            tenants="bulk:best_effort:8,gold:premium:2",
            role="certify",
            policy="edf",
            queue_limit=3,
            deadline_horizon=72.0,
        ),
        # All three QoS classes under the same saturation with the
        # queue-driven autoscaler on: standby replicas absorb the burst
        # after the warm-up lag, and the replica-count series is part
        # of the byte-identity contract.
        TenantBenchScenario(
            "autoscale-burst",
            system="baseline+mamt",
            frames=60,
            resolution=(160, 120),
            warmup_frames=10,
            num_clients=10,
            tenants="bulk:best_effort:6,silver:standard:2,gold:premium:2",
            role="exhibit",
            policy="edf",
            queue_limit=3,
            deadline_horizon=72.0,
            autoscale=True,
            autoscale_min=1,
            autoscale_max=3,
            autoscale_up_depth=1.5,
            autoscale_warmup_ms=150.0,
            autoscale_hold_ms=800.0,
        ),
    ),
    # Adversarial scenario x fault matrix (docs/scenarios.md): every
    # registry scenario against every fault program, certified to hold
    # its SLO error budget through degrade -> recover.  The name lists
    # are hard-coded (not imported from repro.chaos) to keep this module
    # import-light; tests/test_chaos.py asserts they stay in sync with
    # the registries.
    "chaos": tuple(
        ChaosBenchScenario(
            f"{scenario_name}+{fault_name}",
            system="baseline+mamt",
            frames=56,
            resolution=(128, 96),
            warmup_frames=8,
            num_clients=4,
            num_servers=2,
            policy="edf",
            queue_limit=6,
            deadline_horizon=36.0,
            chaos_scenario=scenario_name,
            fault=fault_name,
        )
        for scenario_name in (
            "crowded-occlusion",
            "whip-pan",
            "transit",
            "lighting-flip",
            "wifi-to-lte",
        )
        for fault_name in ("none", "replica-outage", "straggler", "uplink-stall")
    ),
}


def environment_fingerprint() -> dict:
    """Where the suite ran — stable across runs on one machine, so it
    does not break byte-identical artifacts; differs across machines so
    cross-host comparisons are explainable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": np.__version__,
    }


def stage_percentiles(tracer: Tracer) -> dict[str, dict]:
    """``"lane/stage" -> latency stats`` over every span of the trace.

    p50/p90/p99 are exact (full sample set retained); ``hist_p90_ms`` /
    ``hist_p99_ms`` are the fixed-bucket :meth:`Histogram.percentile`
    estimates of the same distribution, kept alongside so drift between
    the streaming estimator and ground truth is itself observable.
    """
    samples: dict[str, list[float]] = {}
    for span in tracer.spans:
        samples.setdefault(f"{span.lane}/{span.name}", []).append(span.dur_ms)
    stages: dict[str, dict] = {}
    for key in sorted(samples):
        durations = samples[key]
        hist = Histogram(key)
        for value in durations:
            hist.observe(value)
        stages[key] = {
            "count": len(durations),
            "total_ms": round(sum(durations), 6),
            "mean_ms": round(sum(durations) / len(durations), 6),
            "p50_ms": round(exact_percentile(durations, 50.0), 6),
            "p90_ms": round(exact_percentile(durations, 90.0), 6),
            "p99_ms": round(exact_percentile(durations, 99.0), 6),
            "max_ms": round(max(durations), 6),
            "hist_p90_ms": round(hist.percentile(90.0), 6),
            "hist_p99_ms": round(hist.percentile(99.0), 6),
        }
    return stages


def _lean_budget(budget_report: dict) -> dict:
    """The artifact-embedded form: scalars only, no burn series."""
    return {k: v for k, v in budget_report.items() if k != "burn_series"}


def run_scenario(
    scenario: BenchScenario,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
    slo_target: float = DEFAULT_SLO_TARGET,
) -> dict:
    """Run one scenario traced and fold it into its JSON payload."""
    payload, _ = run_scenario_observed(
        scenario, degrade=degrade, budget_ms=budget_ms, slo_target=slo_target
    )
    return payload


def run_scenario_observed(
    scenario: BenchScenario,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
    slo_target: float = DEFAULT_SLO_TARGET,
    sample_interval_ms: float | None = None,
) -> tuple[dict, dict]:
    """Run one scenario and return ``(payload, observed)``.

    ``payload`` is the BENCH scenario section (including the lean
    error-budget scalars).  ``observed`` carries what the ops report
    needs beyond the artifact: the live tracer and timeline sampler,
    the full budget report (with its burn series) and the simulated run
    duration.
    """
    # Imported here: ``repro.eval`` imports the runtime, which imports
    # this package — a module-level import would be circular.
    from ..eval.experiments import ExperimentSpec, run_experiment
    from ..eval.reporting import result_payload

    if isinstance(scenario, KernelBenchScenario):
        return _run_kernel_scenario(scenario), {}
    if isinstance(scenario, FleetBenchScenario):
        return _run_fleet_scenario(
            scenario, degrade, budget_ms, slo_target, sample_interval_ms
        )

    spec = ExperimentSpec(
        system=scenario.system,
        dataset=scenario.dataset,
        network=scenario.network,
        num_frames=scenario.frames,
        resolution=scenario.resolution,
        motion_grade=scenario.motion,
        warmup_frames=scenario.warmup_frames,
        seed=scenario.seed,
        server_device=scenario.server_device,
        server_latency_scale=degrade,
        trace=True,
        sample_interval_ms=sample_interval_ms,
    )
    outcome = run_experiment(spec)
    tracer = outcome.tracer
    counters = tracer.metrics.snapshot()["counters"]
    budget_report = evaluate_error_budget(
        tracer,
        budget_ms=budget_ms,
        target=slo_target,
        warmup_frames=scenario.warmup_frames,
    )
    payload = {
        "spec": {
            "system": scenario.system,
            "dataset": scenario.dataset,
            "network": scenario.network,
            "motion": scenario.motion,
            "frames": scenario.frames,
            "resolution": list(scenario.resolution),
            "warmup_frames": scenario.warmup_frames,
            "seed": scenario.seed,
            "server_device": scenario.server_device,
            "degrade": degrade,
        },
        "result": result_payload(outcome.result),
        "stages": stage_percentiles(tracer),
        "slo": evaluate_slo(
            tracer, budget_ms=budget_ms, warmup_frames=scenario.warmup_frames
        ),
        "budget": _lean_budget(budget_report),
        "miss_causes": miss_causes(
            tracer, budget_ms, warmup_frames=scenario.warmup_frames
        ),
        "offload": {
            "offload_count": int(outcome.result.offload_count),
            "bytes_up": int(outcome.result.bytes_up),
            "bytes_down": int(outcome.result.bytes_down),
            "counters": dict(sorted(counters.items())),
        },
    }
    observed = {
        "tracer": tracer,
        "sampler": outcome.sampler,
        "budget": budget_report,
        "duration_ms": outcome.result.duration_ms,
    }
    return payload, observed


def _run_kernel_scenario(scenario: KernelBenchScenario) -> dict:
    """Run one vectorized-kernel micro cell into its payload section."""
    from .kernelbench import run_kernel

    return {
        "spec": {
            "kernel": scenario.kernel,
            "repeats": scenario.repeats,
            "seed": scenario.seed,
        },
        "kernel": run_kernel(
            scenario.kernel, seed=scenario.seed, repeats=scenario.repeats
        ),
    }


def _run_fleet_scenario(
    scenario: FleetBenchScenario,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
    slo_target: float = DEFAULT_SLO_TARGET,
    sample_interval_ms: float | None = None,
) -> tuple[dict, dict]:
    """Run one fleet cell and fold it into the BENCH scenario payload.

    The ``result`` section keeps the single-run key names (so the same
    compare policies gate it): quality/latency keys are means over the
    fleet's sessions, byte/offload counters are fleet totals, and
    ``server_utilization`` is normalized by the number of replicas.  The
    extra ``serve`` section carries the scheduler's admit/shed/degrade
    accounting (informational — not gated).
    """
    from ..eval.experiments import FleetSpec, run_fleet

    is_chaos = isinstance(scenario, ChaosBenchScenario)
    is_tenant = isinstance(scenario, TenantBenchScenario)
    tenant_kwargs = {}
    if is_tenant:
        tenant_kwargs = dict(
            tenants=scenario.tenants,
            autoscale=scenario.autoscale,
            autoscale_min=scenario.autoscale_min,
            autoscale_max=scenario.autoscale_max,
            autoscale_up_depth=scenario.autoscale_up_depth,
            autoscale_down_depth=scenario.autoscale_down_depth,
            autoscale_warmup_ms=scenario.autoscale_warmup_ms,
            autoscale_hold_ms=scenario.autoscale_hold_ms,
            autoscale_cooldown_ms=scenario.autoscale_cooldown_ms,
        )
    network = scenario.network
    if is_chaos:
        from ..chaos import make_scenario

        # Chaos cells certify against their own (looser) miss-rate
        # target; the suite-level target still governs plain cells.
        slo_target = scenario.slo_target
        # The scenario registry owns the channel choice.
        network = make_scenario(scenario.chaos_scenario).network
    spec = FleetSpec(
        num_clients=scenario.num_clients,
        system=scenario.system,
        dataset=scenario.dataset,
        network=scenario.network,
        num_frames=scenario.frames,
        resolution=scenario.resolution,
        motion_grade=scenario.motion,
        server_device=scenario.server_device,
        server_latency_scale=degrade,
        scheduler=scenario.scheduler,
        num_servers=scenario.num_servers,
        policy=scenario.policy,
        queue_limit=scenario.queue_limit,
        deadline_horizon=scenario.deadline_horizon,
        degrade=scenario.degrade_enabled,
        degrade_failure_threshold=scenario.degrade_failure_threshold,
        degrade_min_ms=scenario.degrade_min_ms,
        batch_window_ms=scenario.batch_window_ms,
        max_batch_size=scenario.max_batch_size,
        batch_alpha=scenario.batch_alpha,
        warmup_frames=scenario.warmup_frames,
        seed=scenario.seed,
        trace=True,
        sample_interval_ms=sample_interval_ms,
        scenario=scenario.chaos_scenario if is_chaos else None,
        faults=scenario.fault if is_chaos else "none",
        **tenant_kwargs,
    )
    outcome = run_fleet(spec)
    tracer = outcome.tracer
    results = outcome.results
    counters = tracer.metrics.snapshot()["counters"]
    budget_report = evaluate_error_budget(
        tracer,
        budget_ms=budget_ms,
        target=slo_target,
        warmup_frames=scenario.warmup_frames,
    )
    count = len(results)
    offload_count = sum(r.offload_count for r in results)
    bytes_up = sum(r.bytes_up for r in results)
    bytes_down = sum(r.bytes_down for r in results)
    busy_ms = results[0].server_busy_ms if results else 0.0
    duration = outcome.duration_ms
    if scenario.scheduler:
        serve = {"scheduler": True, **outcome.scheduler.stats(duration)}
    else:
        serve = {"scheduler": False, "policy": "fifo", "num_servers": 1}
    payload = {
        "spec": {
            "system": scenario.system,
            "dataset": scenario.dataset,
            "network": network,
            "motion": scenario.motion,
            "frames": scenario.frames,
            "resolution": list(scenario.resolution),
            "warmup_frames": scenario.warmup_frames,
            "seed": scenario.seed,
            "server_device": scenario.server_device,
            "degrade": degrade,
            "num_clients": scenario.num_clients,
            "num_servers": scenario.num_servers,
            "scheduler": scenario.scheduler,
            "policy": scenario.policy if scenario.scheduler else "fifo",
            "queue_limit": scenario.queue_limit,
            "deadline_horizon": scenario.deadline_horizon,
            "degrade_enabled": scenario.degrade_enabled,
            "batch_window_ms": scenario.batch_window_ms,
            "max_batch_size": scenario.max_batch_size,
        },
        "result": {
            "schema_version": _result_schema_version(),
            "system": results[0].system,
            "num_clients": count,
            "mean_iou": float(sum(r.mean_iou() for r in results) / count),
            "false_rate_75": float(
                sum(r.false_rate(0.75) for r in results) / count
            ),
            "false_rate_50": float(
                sum(r.false_rate(0.5) for r in results) / count
            ),
            "mean_latency_ms": float(
                sum(r.mean_latency_ms() for r in results) / count
            ),
            "offload_count": int(offload_count),
            "bytes_up": int(bytes_up),
            "bytes_down": int(bytes_down),
            "server_utilization": float(
                busy_ms / (duration * scenario.num_servers) if duration else 0.0
            ),
        },
        "stages": stage_percentiles(tracer),
        "slo": evaluate_slo(
            tracer, budget_ms=budget_ms, warmup_frames=scenario.warmup_frames
        ),
        "budget": _lean_budget(budget_report),
        "miss_causes": miss_causes(
            tracer, budget_ms, warmup_frames=scenario.warmup_frames
        ),
        "offload": {
            "offload_count": int(offload_count),
            "bytes_up": int(bytes_up),
            "bytes_down": int(bytes_down),
            "counters": dict(sorted(counters.items())),
        },
        "serve": serve,
    }
    if is_chaos:
        # Chaos-only keys live in their own section (and two spec keys)
        # so plain fleet cells stay byte-identical to their pre-chaos
        # artifacts.
        payload["spec"]["chaos_scenario"] = scenario.chaos_scenario
        payload["spec"]["fault"] = scenario.fault
        payload["chaos"] = {
            "scenario": scenario.chaos_scenario,
            "fault": scenario.fault,
            "slo_target": round(scenario.slo_target, 6),
            "events": list(outcome.chaos.log) if outcome.chaos is not None else [],
            "certified": bool(
                budget_report["consumed_fraction"] < 1.0
            ),
        }
    if is_tenant:
        # Tenant-only keys live in their own sections (plus spec keys)
        # so plain fleet cells keep their pre-tenancy shape.
        payload["spec"]["tenants"] = scenario.tenants
        payload["spec"]["role"] = scenario.role
        payload["spec"]["premium_slo_target"] = round(
            scenario.premium_slo_target, 6
        )
        payload["spec"]["autoscale"] = scenario.autoscale
        payload["tenants"] = _tenant_section(scenario, outcome, budget_ms)
        if outcome.autoscaler is not None:
            payload["autoscale"] = outcome.autoscaler.stats()
    observed = {
        "tracer": tracer,
        "sampler": outcome.sampler,
        "budget": budget_report,
        "duration_ms": duration,
    }
    return payload, observed


def _tenant_section(
    scenario: TenantBenchScenario, outcome, budget_ms: float
) -> dict:
    """The per-tenant slice of one tenant cell's payload.

    Carries the tenant directory, one entry per tenant (meter counters,
    session assignment, degrade-event count and the tenant's own SLO
    evaluated over just its sessions), the fair-queue state, and the
    reconciliation proof: per-tenant request counters must sum to the
    fleet-level ``serve.*`` counts *exactly*, and metered server
    milliseconds must match the pool's busy time to float tolerance.
    """
    from ..tenancy.metering import REQUEST_COUNTERS

    scheduler = outcome.scheduler
    directory = scheduler.tenancy
    tracer = outcome.tracer
    meter_stats = scheduler.meter.stats()

    degrade_by_session: dict[int, int] = {}
    for event in tracer.events:
        if event.name == "serve.degrade":
            session = int(event.attrs.get("session", -1))
            degrade_by_session[session] = degrade_by_session.get(session, 0) + 1

    per_tenant = {}
    for name in directory.tenants:
        sessions = directory.sessions_of(name)
        entry = dict(meter_stats[name])
        entry["sessions"] = list(sessions)
        entry["degrade_events"] = sum(
            degrade_by_session.get(s, 0) for s in sessions
        )
        entry["slo"] = evaluate_slo(
            tracer,
            budget_ms=budget_ms,
            warmup_frames=scenario.warmup_frames,
            sessions=set(sessions),
        )
        per_tenant[name] = entry

    totals = scheduler.meter.totals()
    requests = {}
    requests_exact = True
    for key in REQUEST_COUNTERS:
        tenant_sum = int(totals[key])
        fleet = int(scheduler.counts[key])
        requests[key] = {"tenant_sum": tenant_sum, "fleet": fleet}
        requests_exact = requests_exact and tenant_sum == fleet
    server_ms_tenants = sum(
        scheduler.meter.counts[name]["server_ms"] for name in directory.tenants
    )
    server_ms_pool = sum(
        replica.server.busy_ms_total for replica in scheduler.pool.replicas
    )
    server_ms_delta = abs(server_ms_tenants - server_ms_pool)
    return {
        "directory": directory.describe(),
        "per_tenant": per_tenant,
        "fair": scheduler.fair.stats(),
        "reconciliation": {
            "requests_exact": bool(requests_exact),
            "requests": requests,
            "server_ms_tenants": round(server_ms_tenants, 6),
            "server_ms_pool": round(server_ms_pool, 6),
            "server_ms_delta": round(server_ms_delta, 6),
            "server_ms_ok": bool(server_ms_delta <= 1e-6),
        },
    }


def _result_schema_version() -> int:
    from ..eval.reporting import SCHEMA_VERSION

    return SCHEMA_VERSION


def _certify_tenants(payload: dict) -> dict:
    """Suite-level certification of the multi-tenant isolation claim.

    Checks, against the ``certify`` (saturated-mix) cell and the
    ``reference`` (unsaturated premium-only) cell:

    * the premium tenant's miss rate stays within its SLO target;
    * it also stays within 2x of the unsaturated reference (an absolute
      floor keeps a 0.0-reference from demanding perfection);
    * no premium request is ever shed or displaced;
    * saturation adds no premium degradation: premium's degrade-event
      count under saturation stays at or below the reference cell's;
    * the best-effort tenant absorbs every shed/displacement and all
      non-premium degradation;
    * per-tenant metering reconciles exactly in every cell, and the
      autoscale exhibit actually scaled up.
    """
    floor = 0.02  # absolute slack when the reference miss rate is ~0
    scenarios = payload["scenarios"]
    reference = next(
        (c for c in scenarios.values() if c["spec"].get("role") == "reference"),
        None,
    )
    certify = next(
        (c for c in scenarios.values() if c["spec"].get("role") == "certify"),
        None,
    )
    if reference is None or certify is None:
        return {"certified": False, "error": "missing reference/certify cell"}

    def names_by_qos(cell: dict, qos: str) -> list[str]:
        return [
            t["name"]
            for t in cell["tenants"]["directory"]
            if t["qos"] == qos
        ]

    def tenant_sum(cell: dict, names: list[str], key: str) -> float:
        return sum(cell["tenants"]["per_tenant"][n][key] for n in names)

    def premium_miss(cell: dict) -> float:
        rates = [
            cell["tenants"]["per_tenant"][n]["slo"]["miss_rate"]
            for n in names_by_qos(cell, "premium")
        ]
        return max(rates) if rates else 0.0

    premium = names_by_qos(certify, "premium")
    best_effort = names_by_qos(certify, "best_effort")
    miss = premium_miss(certify)
    ref_miss = premium_miss(reference)
    target = float(certify["spec"]["premium_slo_target"])
    limit = max(2.0 * ref_miss, floor)

    fleet_shed = int(certify["serve"]["shed"])
    fleet_displaced = int(certify["serve"]["displaced"])
    fleet_degrades = int(
        tenant_sum(certify, list(certify["tenants"]["per_tenant"]), "degrade_events")
    )
    premium_degrades = int(tenant_sum(certify, premium, "degrade_events"))
    reference_premium_degrades = int(
        tenant_sum(reference, names_by_qos(reference, "premium"), "degrade_events")
    )
    be_shed = int(tenant_sum(certify, best_effort, "shed"))
    be_displaced = int(tenant_sum(certify, best_effort, "displaced"))
    be_degrades = int(tenant_sum(certify, best_effort, "degrade_events"))

    reconciliation_ok = all(
        cell["tenants"]["reconciliation"]["requests_exact"]
        and cell["tenants"]["reconciliation"]["server_ms_ok"]
        for cell in scenarios.values()
        if "tenants" in cell
    )
    autoscale_cells = [c for c in scenarios.values() if "autoscale" in c]
    autoscale_ok = all(
        int(c["autoscale"]["scale_ups"]) >= 1 for c in autoscale_cells
    )

    checks = {
        "premium_within_slo": {
            "ok": bool(miss <= target),
            "miss_rate": round(miss, 6),
            "target": round(target, 6),
        },
        "premium_within_2x_reference": {
            "ok": bool(miss <= limit),
            "miss_rate": round(miss, 6),
            "reference_miss_rate": round(ref_miss, 6),
            "limit": round(limit, 6),
        },
        "premium_never_shed": {
            "ok": bool(
                tenant_sum(certify, premium, "shed") == 0
                and tenant_sum(certify, premium, "displaced") == 0
            ),
            "shed": int(tenant_sum(certify, premium, "shed")),
            "displaced": int(tenant_sum(certify, premium, "displaced")),
        },
        "premium_degrade_shielded": {
            "ok": bool(premium_degrades <= reference_premium_degrades),
            "degrade_events": premium_degrades,
            "reference_degrade_events": reference_premium_degrades,
        },
        "best_effort_absorbs": {
            "ok": bool(
                be_shed == fleet_shed
                and be_displaced == fleet_displaced
                and be_degrades == fleet_degrades - premium_degrades
            ),
            "best_effort_shed": be_shed,
            "fleet_shed": fleet_shed,
            "best_effort_displaced": be_displaced,
            "fleet_displaced": fleet_displaced,
            "best_effort_degrades": be_degrades,
            "non_premium_degrades": fleet_degrades - premium_degrades,
        },
        "metering_reconciles": {"ok": bool(reconciliation_ok)},
        "autoscaler_engaged": {
            "ok": bool(autoscale_ok),
            "cells": len(autoscale_cells),
        },
    }
    return {
        "certified": bool(all(c["ok"] for c in checks.values())),
        "checks": checks,
    }


# Suites whose artifacts carry a suite-level ``certification`` section,
# computed over the finished cells (so ``repro bench run`` and the
# dedicated CLI verb produce identical artifacts).
_SUITE_CERTIFIERS = {"tenants": _certify_tenants}


def run_suite(
    suite: str,
    label: str,
    degrade: float = 1.0,
    budget_ms: float = FRAME_BUDGET_MS,
    slo_target: float = DEFAULT_SLO_TARGET,
) -> dict:
    """Run every scenario of a named suite into one BENCH payload."""
    from ..eval.reporting import SCHEMA_VERSION

    if suite not in SUITES:
        raise KeyError(
            f"unknown suite {suite!r}; available: {', '.join(sorted(SUITES))}"
        )
    payload = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "suite": suite,
        "label": label,
        "budget_ms": round(budget_ms, 6),
        "slo_target": round(slo_target, 6),
        "degrade": degrade,
        "environment": environment_fingerprint(),
        "scenarios": {
            scenario.name: run_scenario(
                scenario, degrade, budget_ms, slo_target=slo_target
            )
            for scenario in SUITES[suite]
        },
    }
    certifier = _SUITE_CERTIFIERS.get(suite)
    if certifier is not None:
        payload["certification"] = certifier(payload)
    return payload


def bench_filename(suite: str, label: str) -> str:
    return f"BENCH_{suite}_{label}.json"


def _json_default(obj):
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)}")


def dump_bench(payload: dict) -> str:
    """Canonical serialized form — sorted keys, so equal payloads are
    byte-identical files."""
    return (
        json.dumps(payload, sort_keys=True, indent=2, default=_json_default)
        + "\n"
    )


def strip_timing(payload: dict) -> dict:
    """A deep copy of a BENCH payload without the wall-clock fields of
    kernel cells — the part of the artifact covered by the byte-identity
    contract (everything a simulated-clock run fully determines)."""
    from copy import deepcopy

    from .kernelbench import TIMING_KEYS

    stripped = deepcopy(payload)
    for scenario in stripped.get("scenarios", {}).values():
        kernel = scenario.get("kernel")
        if kernel:
            for key in TIMING_KEYS:
                kernel.pop(key, None)
    return stripped


def write_bench(payload: dict, out_dir: str | Path) -> Path:
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / bench_filename(payload["suite"], payload["label"])
    path.write_text(dump_bench(payload))
    return path
