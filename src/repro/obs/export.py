"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, latency tables.

Three consumers of one :class:`~repro.obs.trace.Tracer`:

* :func:`write_jsonl` — the raw structured stream (one span/event per
  line, deterministic order) for diffing and ad-hoc analysis;
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format; load the file in ``chrome://tracing`` or
  https://ui.perfetto.dev to see the client/channel/server lanes of a
  pipeline run as a timeline;
* :func:`stage_table` / :func:`stage_summary` — per-stage latency
  aggregates (count, total, mean, p50/p95, max) as a plain-text table.

:func:`mean_frame_latency_ms` recomputes the run's mean display latency
purely from top-level client-lane spans, so a trace can be reconciled
against :meth:`RunResult.mean_latency_ms` (they must agree — the trace
is the same simulation, just finer-grained).
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import Histogram
from .trace import Tracer

__all__ = [
    "to_jsonl_lines",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "stage_summary",
    "stage_table",
    "mean_frame_latency_ms",
    "FRAME_LATENCY_SPANS",
]

# Top-level client-lane spans that carry one frame's display latency:
# exactly one of these exists per captured frame.
FRAME_LATENCY_SPANS = ("client.process", "client.stale_wait")


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def to_jsonl_lines(tracer: Tracer) -> list[str]:
    """One compact JSON object per span/event, in deterministic order."""
    return [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in tracer.records()
    ]


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(to_jsonl_lines(tracer)) + "\n")
    return path


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def _lane_order_key(lane: str) -> tuple[int, str]:
    # Client lanes on top, then channel, then server — matches how a
    # request flows downward through the system.
    for rank, prefix in enumerate(("client", "channel", "server")):
        if lane.startswith(prefix):
            return rank, lane
    return 3, lane


def chrome_trace(tracer: Tracer, process_name: str = "edgeis") -> dict:
    """Render the trace in Chrome ``trace_event`` format (JSON object
    with a ``traceEvents`` array; timestamps in microseconds)."""
    lanes = sorted(tracer.lanes(), key=_lane_order_key)
    tids = {lane: index + 1 for index, lane in enumerate(lanes)}
    trace_events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for lane in lanes:
        trace_events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tids[lane],
                "name": "thread_name",
                "args": {"name": lane},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tids[lane],
                "name": "thread_sort_index",
                "args": {"sort_index": tids[lane]},
            }
        )
    for span in tracer.spans:
        args = dict(span.attrs)
        if span.frame is not None:
            args["frame"] = span.frame
        if span.ctx is not None:
            args["trace"] = span.ctx.trace_id
        if span.wall_ms is not None:
            args["wall_ms"] = round(span.wall_ms, 3)
        trace_events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tids[span.lane],
                "name": span.name,
                "cat": span.lane,
                "ts": round(span.start_ms * 1000.0, 3),
                "dur": round(span.dur_ms * 1000.0, 3),
                "args": args,
            }
        )
    for event in tracer.events:
        args = dict(event.attrs)
        if event.frame is not None:
            args["frame"] = event.frame
        if event.ctx is not None:
            args["trace"] = event.ctx.trace_id
        trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": 1,
                "tid": tids[event.lane],
                "name": event.name,
                "cat": event.lane,
                "ts": round(event.ts_ms * 1000.0, 3),
                "args": args,
            }
        )
    trace_events.extend(_lineage_flow_events(tracer, tids))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _lineage_flow_events(tracer: Tracer, tids: dict[str, int]) -> list[dict]:
    """Flow events stitching each request's spans across lanes.

    One flow per :class:`~repro.obs.trace.RequestContext` (start ->
    steps -> end at the request's spans, in causal order), so Perfetto
    draws arrows client -> channel -> server -> channel -> client.  Flow
    ids come from ``RequestContext.flow_id`` — a pure function of
    ``(session, frame)``, byte-stable across processes (never ``id()``).
    """
    groups: dict[tuple[int, int], list] = {}
    for span in tracer.spans:
        if span.ctx is not None:
            groups.setdefault((span.ctx.session, span.ctx.frame), []).append(span)
    flow_events: list[dict] = []
    for key in sorted(groups):
        spans = sorted(groups[key], key=lambda s: (s.start_ms, s.seq))
        if len(spans) < 2:
            continue
        for index, span in enumerate(spans):
            phase = "s" if index == 0 else ("f" if index == len(spans) - 1 else "t")
            record = {
                "ph": phase,
                "pid": 1,
                "tid": tids[span.lane],
                "name": "request",
                "cat": "lineage",
                "id": span.ctx.flow_id,
                "ts": round(span.start_ms * 1000.0, 3),
                "args": {"trace": span.ctx.trace_id},
            }
            if phase == "f":
                record["bp"] = "e"
            flow_events.append(record)
    return flow_events


def write_chrome_trace(
    tracer: Tracer, path: str | Path, process_name: str = "edgeis"
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(tracer, process_name), sort_keys=True)
    )
    return path


# ----------------------------------------------------------------------
# Per-stage latency aggregation
# ----------------------------------------------------------------------
def stage_summary(tracer: Tracer) -> dict[tuple[str, str], dict]:
    """(lane, stage) -> {count, total_ms, mean_ms, p50_ms, p95_ms, max_ms}.

    Aggregates every span by name; nested stages appear alongside their
    parents (use the parent/child ids in the JSONL to reconstruct
    containment).  A tracer with no spans (fresh, disabled, or a run
    that recorded nothing) yields an empty dict — never an error.
    """
    if not tracer.spans:
        return {}
    histograms: dict[tuple[str, str], Histogram] = {}
    for span in tracer.spans:
        key = (span.lane, span.name)
        hist = histograms.get(key)
        if hist is None:
            hist = histograms[key] = Histogram(span.name)
        hist.observe(span.dur_ms)
    return {
        key: {
            "count": hist.count,
            "total_ms": hist.total,
            "mean_ms": hist.mean,
            "p50_ms": hist.quantile(0.5),
            "p95_ms": hist.quantile(0.95),
            "max_ms": hist.max_value,
        }
        for key, hist in sorted(histograms.items(), key=lambda kv: _stage_sort(kv[0]))
    }


def _stage_sort(key: tuple[str, str]) -> tuple:
    lane, name = key
    return (*_lane_order_key(lane), name)


def stage_table(tracer: Tracer, title: str = "per-stage latency"):
    """Render :func:`stage_summary` as a text table; on a span-less
    tracer this is a header-only table, not an error."""
    # Imported here: ``repro.eval`` imports the runtime, which imports
    # this package — a module-level import would be circular.
    from ..eval.reporting import Table

    table = Table(
        title,
        ["lane", "stage", "count", "total ms", "mean ms", "p50 ms", "p95 ms", "max ms"],
    )
    for (lane, name), stats in stage_summary(tracer).items():
        table.add_row(
            lane,
            name,
            stats["count"],
            stats["total_ms"],
            stats["mean_ms"],
            stats["p50_ms"],
            stats["p95_ms"],
            stats["max_ms"],
        )
    return table


def mean_frame_latency_ms(tracer: Tracer, warmup_frames: int = 0) -> float:
    """Mean display latency recomputed from the trace alone.

    Each captured frame contributes exactly one top-level client-lane
    span (``client.process`` when the client ran, ``client.stale_wait``
    when it was busy); averaging their durations over the measured
    frames must reconcile with ``RunResult.mean_latency_ms()``.  A trace
    with no such spans yields 0.0, mirroring an empty ``RunResult``.
    """
    durations = [
        span.dur_ms
        for span in tracer.spans
        if span.parent_id is None
        and span.name in FRAME_LATENCY_SPANS
        and span.frame is not None
        and span.frame >= warmup_frames
        and span.lane.startswith("client")
    ]
    if not durations:
        return 0.0
    return sum(durations) / len(durations)
