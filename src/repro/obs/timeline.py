"""Fixed-interval time-series sampling of the metrics registry.

Scalar metrics answer "what happened over the whole run"; the ROADMAP's
autoscaling and chaos items need "what was happening at t".  This module
adds that axis without touching the hot path: a
:class:`TimelineSampler` is ticked once per simulated frame by the
pipeline and, whenever the simulated clock crosses a fixed sampling
boundary, snapshots every registered counter and gauge into
ring-buffered :class:`TimelineSeries`.

Everything runs on the simulated clock, so two identical runs produce
byte-identical timelines.  Sample timestamps sit on the fixed grid
``t0 + k * interval_ms`` regardless of frame jitter, which makes series
from different runs directly comparable column by column.

On top of the series sit the anomaly detectors — latency spikes against
an EWMA baseline and sustained monotonic queue growth — which emit
first-class ``anomaly.*`` trace events when handed a live tracer, so
anomalies land in the same JSONL/Chrome exports as the signals that
caused them (:mod:`repro.obs.budget` adds the budget-exhaustion
detector).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import MetricsRegistry

__all__ = [
    "DEFAULT_SAMPLE_INTERVAL_MS",
    "TimelineSeries",
    "TimelineSampler",
    "detect_latency_spikes",
    "detect_queue_growth",
]

# Three samples per 30 fps frame interval would oversample a per-frame
# simulation; one sample per ~3 frames keeps series compact while still
# resolving queue ramps and degrade episodes.
DEFAULT_SAMPLE_INTERVAL_MS = 100.0


@dataclass
class TimelineSeries:
    """One instrument's ring-buffered fixed-interval sample history."""

    name: str
    kind: str  # "counter" | "gauge"
    interval_ms: float
    capacity: int
    times_ms: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    dropped: int = 0  # samples evicted by the ring bound

    def append(self, ts_ms: float, value: float) -> None:
        self.times_ms.append(float(ts_ms))
        self.values.append(float(value))
        if len(self.values) > self.capacity:
            del self.times_ms[0]
            del self.values[0]
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def to_dict(self) -> dict:
        """JSON-clean form (timestamps/values rounded for stable files)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "interval_ms": round(self.interval_ms, 6),
            "capacity": self.capacity,
            "dropped": self.dropped,
            "times_ms": [round(t, 6) for t in self.times_ms],
            "values": [round(v, 6) for v in self.values],
        }


class TimelineSampler:
    """Snapshots the registry's counters and gauges on a fixed grid.

    The pipeline calls :meth:`tick` with the current simulated time once
    per frame; the sampler takes one snapshot per crossed sampling
    boundary (timestamped *on* the boundary, so the grid is exact even
    when frame times straddle it).  Series appear lazily the first time
    their instrument exists at a boundary; earlier boundaries are not
    backfilled.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        interval_ms: float = DEFAULT_SAMPLE_INTERVAL_MS,
        capacity: int = 2048,
    ):
        if interval_ms <= 0.0:
            raise ValueError("interval_ms must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.metrics = metrics
        self.interval_ms = float(interval_ms)
        self.capacity = int(capacity)
        self.series: dict[str, TimelineSeries] = {}
        self.samples_taken = 0
        self._next_sample_ms: float | None = None

    # ------------------------------------------------------------------
    def tick(self, now_ms: float) -> int:
        """Advance to ``now_ms``; returns how many samples were taken."""
        now_ms = float(now_ms)
        if self._next_sample_ms is None:
            self._next_sample_ms = now_ms  # grid anchors at first tick
        taken = 0
        while now_ms >= self._next_sample_ms:
            self._sample(self._next_sample_ms)
            self._next_sample_ms += self.interval_ms
            taken += 1
        return taken

    def _sample(self, ts_ms: float) -> None:
        for kind, values in (
            ("counter", self.metrics.counter_values()),
            ("gauge", self.metrics.gauge_values()),
        ):
            for name, value in values.items():
                series = self.series.get(name)
                if series is None:
                    series = self.series[name] = TimelineSeries(
                        name, kind, self.interval_ms, self.capacity
                    )
                series.append(ts_ms, value)
        self.samples_taken += 1

    # ------------------------------------------------------------------
    def get(self, name: str) -> TimelineSeries | None:
        return self.series.get(name)

    def to_dict(self) -> dict:
        """All series, deterministically ordered by instrument name."""
        return {
            "interval_ms": round(self.interval_ms, 6),
            "capacity": self.capacity,
            "samples_taken": self.samples_taken,
            "series": {
                name: self.series[name].to_dict()
                for name in sorted(self.series)
            },
        }


# ----------------------------------------------------------------------
# Anomaly detectors
# ----------------------------------------------------------------------
def _emit(tracer, anomaly: dict) -> None:
    """Mirror one detected anomaly as a first-class trace event."""
    if tracer is None or not getattr(tracer, "enabled", False):
        return
    attrs = {
        k: v
        for k, v in anomaly.items()
        if k not in ("type", "lane", "ts_ms", "frame")
    }
    tracer.event(
        f"anomaly.{anomaly['type']}",
        lane=anomaly.get("lane", "obs"),
        ts_ms=anomaly["ts_ms"],
        frame=anomaly.get("frame"),
        **attrs,
    )


def detect_latency_spikes(
    tracer,
    spike_factor: float = 3.0,
    min_ms: float = 5.0,
    alpha: float = 0.3,
    warmup_frames: int = 0,
    emit: bool = False,
) -> list[dict]:
    """Frame latencies that spike above their per-lane EWMA baseline.

    Walks each client lane's frame spans in time order keeping an
    exponential moving average; a frame whose latency exceeds
    ``spike_factor`` times the baseline (and an absolute ``min_ms``
    floor, so sub-millisecond wobble never pages) is an anomaly.  The
    EWMA updates *after* the check and also absorbs the spike, so a
    sustained plateau alerts once at its leading edge rather than every
    frame.
    """
    from .slo import frame_latency_spans

    spans = frame_latency_spans(tracer, warmup_frames=warmup_frames)
    baselines: dict[str, float] = {}
    anomalies: list[dict] = []
    for span in sorted(spans, key=lambda s: (s.start_ms, s.lane)):
        baseline = baselines.get(span.lane)
        if baseline is not None:
            threshold = max(spike_factor * baseline, min_ms)
            if span.dur_ms > threshold:
                anomalies.append(
                    {
                        "type": "latency_spike",
                        "lane": span.lane,
                        "frame": span.frame,
                        "ts_ms": round(span.start_ms, 6),
                        "latency_ms": round(span.dur_ms, 6),
                        "baseline_ms": round(baseline, 6),
                        "severity": round(span.dur_ms / max(baseline, 1e-9), 6),
                    }
                )
            baselines[span.lane] = (1.0 - alpha) * baseline + alpha * span.dur_ms
        else:
            baselines[span.lane] = span.dur_ms
    if emit:
        for anomaly in anomalies:
            _emit(tracer, anomaly)
    return anomalies


def detect_queue_growth(
    sampler: TimelineSampler | None,
    series_name: str = "serve.queue_depth",
    min_run: int = 4,
    min_growth: float = 2.0,
    tracer=None,
    emit: bool = False,
) -> list[dict]:
    """Sustained monotonic growth of a queue-depth series.

    A run of at least ``min_run`` consecutive non-decreasing samples
    (with at least one strict increase per step counted over the run)
    whose net growth reaches ``min_growth`` is the signature of demand
    outrunning service capacity — the signal the ROADMAP's autoscaler
    consumes.  One anomaly per maximal run, anchored at the run's end.
    """
    if sampler is None:
        return []
    series = sampler.get(series_name)
    if series is None or len(series) < min_run:
        return []
    anomalies: list[dict] = []
    run_start = 0
    for index in range(1, len(series) + 1):
        ended = index == len(series) or series.values[index] < series.values[index - 1]
        if not ended:
            continue
        length = index - run_start
        growth = series.values[index - 1] - series.values[run_start]
        if length >= min_run and growth >= min_growth:
            anomalies.append(
                {
                    "type": "queue_growth",
                    "lane": "serve",
                    "ts_ms": round(series.times_ms[index - 1], 6),
                    "series": series_name,
                    "from_depth": round(series.values[run_start], 6),
                    "to_depth": round(series.values[index - 1], 6),
                    "samples": length,
                    "severity": round(growth, 6),
                }
            )
        run_start = index
    if emit:
        for anomaly in anomalies:
            _emit(tracer, anomaly)
    return anomalies
