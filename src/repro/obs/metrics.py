"""Process-local metrics registry (zero-dependency).

Three instrument kinds, all addressed by name through a
:class:`MetricsRegistry`:

* :class:`Counter` — monotonically increasing totals (anchors evaluated,
  RoIs pruned, offloads per reason);
* :class:`Gauge` — last-written values (outstanding offloads, map size);
* :class:`Histogram` — fixed-bucket distributions with quantile
  estimates (per-stage latencies, per-offload byte budgets).

Handles are cheap plain objects; hot paths fetch them once at
construction time and call ``inc``/``observe`` per event.  The
:data:`NULL_METRICS` registry hands out no-op instruments so
instrumented modules pay almost nothing when observability is disabled.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

# Geometric-ish ladder covering sub-ms client stages up to multi-second
# server queues; the open-ended overflow bucket is implicit.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A last-value instrument with a cheap running envelope.

    Besides the last-written value, a gauge tracks the running min/max
    of everything ever written and counts *changes* (writes that moved
    the value), so timeline snapshots and ops reports can show an
    envelope and a change count without replaying the trace.
    """

    name: str
    value: float = 0.0
    min_value: float = float("inf")
    max_value: float = float("-inf")
    changes: int = 0
    last_change: float = 0.0  # delta applied by the most recent change

    def set(self, value: float) -> None:
        value = float(value)
        if value != self.value or self.changes == 0:
            self.last_change = value - self.value
            self.changes += 1
        self.value = value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value


@dataclass
class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimates."""

    name: str
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS
    counts: list[int] = field(default_factory=list)  # len(buckets) + 1
    total: float = 0.0
    count: int = 0
    min_value: float = float("inf")
    max_value: float = float("-inf")

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (bucket upper bounds, linear within a
        bucket).  Exact at the recorded min/max for q = 0/1."""
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min_value
        if q >= 1.0:
            return self.max_value
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = (
                    self.buckets[index - 1]
                    if index > 0
                    else max(self.min_value, 0.0)
                )
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else self.max_value
                )
                lower = max(lower, self.min_value)
                upper = min(max(upper, lower), self.max_value)
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.max_value

    def percentile(self, p: float) -> float:
        """Estimated p-th percentile, ``p`` on the [0, 100] scale.

        Same interpolation as :meth:`quantile`; 0.0 on an empty histogram,
        clamped to the recorded min/max (so values landing in the implicit
        overflow bucket beyond the last boundary resolve to real samples,
        not to ``inf``).
        """
        return self.quantile(p / 100.0)


class MetricsRegistry:
    """Name -> instrument map; instruments are created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        return True

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, buckets or DEFAULT_LATENCY_BUCKETS_MS
            )
        return instrument

    def counter_values(self) -> dict[str, float]:
        """Current counter totals, ordered by name (cheap — no
        histogram quantile work; the timeline sampler calls this every
        tick)."""
        return {
            name: self._counters[name].value for name in sorted(self._counters)
        }

    def gauge_values(self) -> dict[str, float]:
        """Current gauge values, ordered by name."""
        return {
            name: self._gauges[name].value for name in sorted(self._gauges)
        }

    def snapshot(self) -> dict:
        """JSON-serializable state, deterministically ordered by name."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: {
                    "value": g.value,
                    "min": g.min_value if g.changes else g.value,
                    "max": g.max_value if g.changes else g.value,
                    "changes": g.changes,
                }
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "mean": h.mean,
                    "min": h.min_value if h.count else 0.0,
                    "max": h.max_value if h.count else 0.0,
                    "p50": h.quantile(0.5),
                    "p95": h.quantile(0.95),
                }
                for name, h in sorted(self._histograms.items())
            },
        }


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    min_value = 0.0
    max_value = 0.0
    changes = 0
    last_change = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetricsRegistry:
    """Registry returned by the no-op tracer: hands out null instruments."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counter_values(self) -> dict:
        return {}

    def gauge_values(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = _NullMetricsRegistry()
