"""Non-maximum suppression: classic greedy NMS and YOLACT's Fast NMS.

Fast NMS (referenced by the paper for RoIs in *unknown* image areas) does
the whole suppression with one upper-triangular IoU matrix instead of a
sequential loop — slightly more aggressive but embarrassingly parallel.
"""

from __future__ import annotations

import numpy as np

__all__ = ["box_iou_matrix", "nms", "fast_nms"]


def box_iou_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between two box sets, shape (len(a), len(b))."""
    boxes_a = np.asarray(boxes_a, dtype=float).reshape(-1, 4)
    boxes_b = np.asarray(boxes_b, dtype=float).reshape(-1, 4)
    x0 = np.maximum(boxes_a[:, None, 0], boxes_b[None, :, 0])
    y0 = np.maximum(boxes_a[:, None, 1], boxes_b[None, :, 1])
    x1 = np.minimum(boxes_a[:, None, 2], boxes_b[None, :, 2])
    y1 = np.minimum(boxes_a[:, None, 3], boxes_b[None, :, 3])
    intersection = np.clip(x1 - x0, 0, None) * np.clip(y1 - y0, 0, None)
    area_a = np.clip(boxes_a[:, 2] - boxes_a[:, 0], 0, None) * np.clip(
        boxes_a[:, 3] - boxes_a[:, 1], 0, None
    )
    area_b = np.clip(boxes_b[:, 2] - boxes_b[:, 0], 0, None) * np.clip(
        boxes_b[:, 3] - boxes_b[:, 1], 0, None
    )
    union = area_a[:, None] + area_b[None, :] - intersection
    return np.where(union > 0, intersection / np.maximum(union, 1e-12), 0.0)


def nms(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.5) -> np.ndarray:
    """Greedy NMS; returns kept indices sorted by descending score."""
    boxes = np.asarray(boxes, dtype=float).reshape(-1, 4)
    scores = np.asarray(scores, dtype=float)
    order = np.argsort(-scores)
    keep: list[int] = []
    suppressed = np.zeros(len(boxes), dtype=bool)
    iou = box_iou_matrix(boxes, boxes)
    for index in order:
        if suppressed[index]:
            continue
        keep.append(int(index))
        suppressed |= iou[index] > iou_threshold
        suppressed[index] = True
    return np.asarray(keep, dtype=int)


def fast_nms(
    boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.5
) -> np.ndarray:
    """YOLACT's Fast NMS: suppress any box overlapped by a higher-scoring
    one, computed in one shot from the upper-triangular IoU matrix."""
    boxes = np.asarray(boxes, dtype=float).reshape(-1, 4)
    scores = np.asarray(scores, dtype=float)
    if len(boxes) == 0:
        return np.zeros(0, dtype=int)
    order = np.argsort(-scores)
    sorted_boxes = boxes[order]
    iou = box_iou_matrix(sorted_boxes, sorted_boxes)
    upper = np.triu(iou, k=1)
    max_overlap = upper.max(axis=0) if len(boxes) > 1 else np.zeros(len(boxes))
    keep_sorted = max_overlap <= iou_threshold
    return order[keep_sorted]
