"""Mask quality simulation.

The simulated models do not run a neural network; they take the renderer's
ground-truth mask and *degrade* it to the quality the corresponding real
model achieves (paper Fig. 2b: Mask R-CNN ~0.92+ IoU per mask, YOLACT
~0.75).  Degradation composes a sub-pixel-ish shift with boundary
morphology until the target IoU is reached, which reproduces the two error
modes of real mask heads: localization offset and boundary sloppiness.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..image.masks import mask_iou

__all__ = ["degrade_mask_to_iou", "sample_target_iou"]

_STRUCTURE = ndimage.generate_binary_structure(2, 1)


def sample_target_iou(mean: float, std: float, rng: np.random.Generator) -> float:
    """Draw a per-instance target IoU, clipped to a sane range."""
    return float(np.clip(rng.normal(mean, std), 0.35, 0.995))


def _shift_mask(mask: np.ndarray, dy: int, dx: int) -> np.ndarray:
    out = np.zeros_like(mask)
    h, w = mask.shape
    ys = slice(max(dy, 0), min(h + dy, h))
    xs = slice(max(dx, 0), min(w + dx, w))
    ys_src = slice(max(-dy, 0), min(h - dy, h))
    xs_src = slice(max(-dx, 0), min(w - dx, w))
    out[ys, xs] = mask[ys_src, xs_src]
    return out


def degrade_mask_to_iou(
    mask: np.ndarray, target_iou: float, rng: np.random.Generator
) -> np.ndarray:
    """Return a degraded copy of ``mask`` whose IoU with it is close to
    (and not much above) ``target_iou``.

    Alternates a growing shift with erosion/dilation; stops as soon as the
    measured IoU falls to the target.  For empty masks returns the input.
    """
    mask = np.asarray(mask, dtype=bool)
    if not mask.any() or target_iou >= 0.995:
        return mask.copy()

    direction = rng.uniform(0, 2 * np.pi)
    grow = bool(rng.uniform() < 0.5)
    degraded = mask.copy()
    for step in range(1, 24):
        # Alternate: shift on odd steps, morphology on even steps.
        if step % 2 == 1:
            magnitude = (step + 1) // 2
            dy = int(round(np.sin(direction) * magnitude))
            dx = int(round(np.cos(direction) * magnitude))
            candidate = _shift_mask(mask, dy, dx)
        else:
            operator = ndimage.binary_dilation if grow else ndimage.binary_erosion
            candidate = operator(
                degraded, structure=_STRUCTURE, iterations=1, border_value=0
            )
            if not candidate.any():
                candidate = degraded  # erosion ate everything; keep
        if mask_iou(mask, candidate) <= target_iou:
            return candidate
        degraded = candidate
    return degraded
