"""Simulated segmentation models with real anchor/RoI bookkeeping, the
CIIA acceleration (Section IV) and the explicit latency cost model."""

from .anchors import FPN_LEVELS, AnchorGrid, AnchorLevel
from .nms import box_iou_matrix, fast_nms, nms
from .costs import DEVICES, MODEL_COSTS, DeviceProfile, ModelCost
from .degrade import degrade_mask_to_iou, sample_target_iou
from .rpn import Proposal, RPNOutput, simulate_rpn
from .acceleration import (
    InferenceInstruction,
    PruningResult,
    dynamic_anchor_placement,
    instructions_from_masks,
    prune_rois,
)
from .maskrcnn import (
    PROFILES,
    InferenceResult,
    ModelProfile,
    SimulatedSegmentationModel,
)

__all__ = [
    "FPN_LEVELS",
    "AnchorGrid",
    "AnchorLevel",
    "box_iou_matrix",
    "fast_nms",
    "nms",
    "DEVICES",
    "MODEL_COSTS",
    "DeviceProfile",
    "ModelCost",
    "degrade_mask_to_iou",
    "sample_target_iou",
    "Proposal",
    "RPNOutput",
    "simulate_rpn",
    "InferenceInstruction",
    "PruningResult",
    "dynamic_anchor_placement",
    "instructions_from_masks",
    "prune_rois",
    "PROFILES",
    "InferenceResult",
    "ModelProfile",
    "SimulatedSegmentationModel",
]
