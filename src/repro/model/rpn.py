"""Region Proposal Network simulation.

The RPN's *outputs* are simulated (objectness comes from anchor/GT overlap
plus noise instead of a convolution), but its *bookkeeping* is real: it
evaluates exactly the anchor locations it is told to (all of them, or the
dynamic-anchor-placement subset), and the proposals it emits are concrete
boxes whose count drives the second-stage latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .anchors import AnchorGrid
from .nms import box_iou_matrix

__all__ = ["Proposal", "RPNOutput", "simulate_rpn"]


@dataclass
class Proposal:
    """One region proposal entering the second stage."""

    box: np.ndarray  # (4,) x0, y0, x1, y1
    objectness: float
    best_gt_index: int  # -1 if background
    best_gt_iou: float


def _assemble_proposals_reference(
    boxes: np.ndarray,
    scores: np.ndarray,
    best_index: np.ndarray,
    best_iou: np.ndarray,
) -> list[Proposal]:
    """Per-box Python assembly of :class:`Proposal` objects.

    Scalar reference for the ``rpn.assemble`` micro cell: the hot path
    keeps the column arrays in :class:`RPNOutput` and only materializes
    objects for the CIIA pruning walk.  Idempotent over the background
    threshold — feeding it an already-thresholded index column leaves
    the -1 entries untouched (the threshold depends only on ``best_iou``).
    """
    return [
        Proposal(
            box=boxes[i],
            objectness=float(scores[i]),
            best_gt_index=int(best_index[i]) if best_iou[i] >= 0.3 else -1,
            best_gt_iou=float(best_iou[i]),
        )
        for i in range(len(boxes))
    ]


@dataclass
class RPNOutput:
    """Proposal columns plus anchor bookkeeping.

    Proposals live as parallel arrays (``boxes``/``objectness``/
    ``gt_index``/``gt_iou``); the :attr:`proposals` property lazily
    materializes the object list via
    :func:`_assemble_proposals_reference` for consumers that walk
    proposals one at a time (CIIA pruning, tests).
    """

    boxes: np.ndarray  # (N, 4)
    objectness: np.ndarray  # (N,)
    gt_index: np.ndarray  # (N,) int, -1 = background
    gt_iou: np.ndarray  # (N,)
    anchors_evaluated: int
    total_anchors: int
    location_fraction: float
    _proposal_list: list[Proposal] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_proposals(self) -> int:
        return int(len(self.boxes))

    @property
    def proposals(self) -> list[Proposal]:
        if self._proposal_list is None:
            self._proposal_list = _assemble_proposals_reference(
                self.boxes, self.objectness, self.gt_index, self.gt_iou
            )
        return self._proposal_list


def simulate_rpn(
    anchor_grid: AnchorGrid,
    gt_boxes: np.ndarray,
    rng: np.random.Generator,
    location_masks: dict[str, np.ndarray] | None = None,
    max_proposals: int = 1000,
    objectness_noise: float = 0.08,
    pre_nms_per_level: int = 600,
) -> RPNOutput:
    """Produce proposals from the evaluated anchor locations.

    ``location_masks`` (per level, from dynamic anchor placement) limits
    which locations are evaluated; None means the full grid.
    """
    gt_boxes = np.asarray(gt_boxes, dtype=float).reshape(-1, 4)
    all_proposal_boxes = []
    all_scores = []
    anchors_evaluated = 0
    locations_evaluated = 0

    for level in anchor_grid.levels:
        if location_masks is not None:
            location_mask = location_masks[level.name]
        else:
            location_mask = np.ones(level.num_locations, dtype=bool)
        locations_evaluated += int(location_mask.sum())
        anchor_mask = np.repeat(location_mask, level.anchors_per_location)
        boxes = level.boxes[anchor_mask]
        anchors_evaluated += len(boxes)
        if len(boxes) == 0:
            continue

        if len(gt_boxes):
            overlap = box_iou_matrix(boxes, gt_boxes)
            best_iou = overlap.max(axis=1)
        else:
            best_iou = np.zeros(len(boxes))
        scores = np.clip(
            best_iou + rng.normal(scale=objectness_noise, size=len(boxes)),
            0.0,
            1.0,
        )
        # Per-level pre-NMS top-k, as in the real RPN.
        if len(scores) > pre_nms_per_level:
            top = np.argpartition(-scores, pre_nms_per_level)[:pre_nms_per_level]
        else:
            top = np.arange(len(scores))
        # Light box regression: nudge kept anchors toward their best GT.
        kept_boxes = boxes[top].copy()
        if len(gt_boxes):
            kept_best = overlap[top].argmax(axis=1)
            kept_iou = overlap[top].max(axis=1)
            pull = np.clip(kept_iou, 0.0, 0.8)[:, None]
            kept_boxes = kept_boxes * (1 - pull) + gt_boxes[kept_best] * pull
            kept_boxes += rng.normal(scale=1.5, size=kept_boxes.shape)
        all_proposal_boxes.append(kept_boxes)
        all_scores.append(scores[top])

    if not all_proposal_boxes:
        return RPNOutput(
            boxes=np.zeros((0, 4)),
            objectness=np.zeros(0),
            gt_index=np.zeros(0, dtype=np.int64),
            gt_iou=np.zeros(0),
            anchors_evaluated=anchors_evaluated,
            total_anchors=anchor_grid.total_anchors,
            location_fraction=0.0,
        )

    boxes = np.vstack(all_proposal_boxes)
    scores = np.concatenate(all_scores)
    order = np.argsort(-scores)[:max_proposals]
    boxes = boxes[order]
    scores = scores[order]
    if len(gt_boxes):
        overlap = box_iou_matrix(boxes, gt_boxes)
        best_index = overlap.argmax(axis=1)
        best_iou = overlap.max(axis=1)
    else:
        best_index = np.full(len(boxes), -1)
        best_iou = np.zeros(len(boxes))

    # Vectorized counterpart of the per-box assembly loop
    # (_assemble_proposals_reference): the background threshold is one
    # np.where and the columns stay arrays end to end.
    gt_index = np.where(best_iou >= 0.3, best_index, -1).astype(np.int64)
    return RPNOutput(
        boxes=boxes,
        objectness=scores,
        gt_index=gt_index,
        gt_iou=best_iou,
        anchors_evaluated=anchors_evaluated,
        total_anchors=anchor_grid.total_anchors,
        location_fraction=locations_evaluated / max(anchor_grid.total_locations, 1),
    )
