"""Contour Instructed edge Inference Acceleration (CIIA, paper Section IV).

Two mechanisms, both driven by the masks the mobile device transferred:

* :func:`dynamic_anchor_placement` — restrict RPN evaluation to boxes
  around the transferred masks plus any annotated new-content areas
  (Section IV-A).
* :func:`prune_rois` — inside each instructed area of known class ``c``,
  discard every RoI dominated by another with both a higher confidence on
  ``c`` and a higher IoU with the area's initial box; RoIs in unknown
  areas go through YOLACT's Fast NMS instead (Section IV-B, Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..image.masks import InstanceMask
from ..obs.metrics import MetricsRegistry
from .anchors import AnchorGrid
from .nms import box_iou_matrix, fast_nms
from .rpn import Proposal

__all__ = [
    "InferenceInstruction",
    "instructions_from_masks",
    "dynamic_anchor_placement",
    "PruningResult",
    "prune_rois",
]


@dataclass
class InferenceInstruction:
    """One instructed area: where an object (or new content) is expected."""

    box: np.ndarray  # (4,) initial box
    class_label: str | None  # None for "new content, class unknown"
    instance_id: int | None = None

    @property
    def is_known_object(self) -> bool:
        return self.class_label is not None


def instructions_from_masks(
    transferred_masks: list[InstanceMask],
    new_area_boxes: list[np.ndarray] | None = None,
) -> list[InferenceInstruction]:
    """Build instructions from transferred masks plus new-content boxes."""
    instructions: list[InferenceInstruction] = []
    for mask in transferred_masks:
        box = mask.box
        if box is None:
            continue
        instructions.append(
            InferenceInstruction(
                box=np.asarray(box, dtype=float),
                class_label=mask.class_label,
                instance_id=mask.instance_id,
            )
        )
    for box in new_area_boxes or []:
        instructions.append(
            InferenceInstruction(box=np.asarray(box, dtype=float), class_label=None)
        )
    return instructions


def dynamic_anchor_placement(
    anchor_grid: AnchorGrid,
    instructions: list[InferenceInstruction],
    margin: float = 0.45,
) -> dict[str, np.ndarray]:
    """Per-level anchor-location masks for the instructed areas."""
    if not instructions:
        # No instructions: evaluate nothing would be wrong — the caller
        # should fall back to a full-frame pass instead.
        return {
            level.name: np.ones(level.num_locations, dtype=bool)
            for level in anchor_grid.levels
        }
    boxes = np.stack([inst.box for inst in instructions])
    return anchor_grid.locations_in_boxes(boxes, margin=margin)


@dataclass
class PruningResult:
    kept: list[Proposal]
    num_input: int
    num_kept: int
    num_pruned_dominated: int
    num_pruned_nms: int

    @property
    def keep_fraction(self) -> float:
        return self.num_kept / max(self.num_input, 1)


def prune_rois(
    proposals: list[Proposal],
    instructions: list[InferenceInstruction],
    class_confidences: np.ndarray,
    assign_iou: float = 0.15,
    nms_threshold: float = 0.35,
    metrics: MetricsRegistry | None = None,
) -> PruningResult:
    """The paper's RoI pruning (Section IV-B).

    ``class_confidences[i]`` is proposal i's confidence on the class of
    its assigned instruction (precomputed by the caller; for unknown-area
    proposals it is the objectness).

    Each proposal is assigned to the instruction whose initial box it
    overlaps most (if above ``assign_iou``).  Within a known-object
    group, proposals are sorted by class confidence; one is pruned when a
    higher-confidence proposal also has a higher IoU with the initial box
    (strict dominance, Fig. 7).  Unassigned proposals and new-area groups
    are filtered with Fast NMS.
    """
    if not proposals:
        return PruningResult([], 0, 0, 0, 0)
    boxes = np.stack([p.box for p in proposals])
    class_confidences = np.asarray(class_confidences, dtype=float)

    groups: dict[int, list[int]] = {}
    unknown: list[int] = []
    if instructions:
        instruction_boxes = np.stack([inst.box for inst in instructions])
        overlap = box_iou_matrix(boxes, instruction_boxes)
        best_instruction = overlap.argmax(axis=1)
        best_overlap = overlap.max(axis=1)
        for index in range(len(proposals)):
            if best_overlap[index] >= assign_iou and instructions[
                int(best_instruction[index])
            ].is_known_object:
                groups.setdefault(int(best_instruction[index]), []).append(index)
            else:
                unknown.append(index)
    else:
        unknown = list(range(len(proposals)))

    kept_indices: list[int] = []
    pruned_dominated = 0
    for instruction_index, members in groups.items():
        init_box = instructions[instruction_index].box[None]
        member_boxes = boxes[members]
        init_iou = box_iou_matrix(member_boxes, init_box)[:, 0]
        confidence = class_confidences[members]
        order = np.argsort(-confidence)  # descending confidence
        best_init_iou_so_far = -1.0
        for rank in order:
            if init_iou[rank] > best_init_iou_so_far:
                # Not dominated: nothing above it beats its localization.
                kept_indices.append(members[rank])
                best_init_iou_so_far = init_iou[rank]
            else:
                pruned_dominated += 1

    pruned_nms = 0
    if unknown:
        unknown_boxes = boxes[unknown]
        unknown_scores = class_confidences[unknown]
        kept_unknown = fast_nms(unknown_boxes, unknown_scores, iou_threshold=nms_threshold)
        pruned_nms = len(unknown) - len(kept_unknown)
        kept_indices.extend(int(unknown[i]) for i in kept_unknown)

    kept_indices.sort()
    kept = [proposals[i] for i in kept_indices]
    if metrics is not None:
        metrics.counter("ciia.rois_input").inc(len(proposals))
        metrics.counter("ciia.rois_kept").inc(len(kept))
        metrics.counter("ciia.rois_pruned_dominated").inc(pruned_dominated)
        metrics.counter("ciia.rois_pruned_nms").inc(pruned_nms)
    return PruningResult(
        kept=kept,
        num_input=len(proposals),
        num_kept=len(kept),
        num_pruned_dominated=pruned_dominated,
        num_pruned_nms=pruned_nms,
    )
