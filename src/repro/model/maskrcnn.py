"""The simulated segmentation models (Mask R-CNN, YOLACT, YOLOv3).

Structure is real — anchor grids, proposal selection, RoI pruning and the
latency they imply — while the perception itself is an error model on the
renderer's ground truth (see ``repro.model.degrade`` and DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..image.masks import InstanceMask
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from .acceleration import (
    InferenceInstruction,
    PruningResult,
    dynamic_anchor_placement,
    prune_rois,
)
from .anchors import AnchorGrid
from .costs import DEVICES, MODEL_COSTS, DeviceProfile, ModelCost
from .degrade import degrade_mask_to_iou, sample_target_iou
from .nms import box_iou_matrix
from .rpn import simulate_rpn

__all__ = ["ModelProfile", "PROFILES", "InferenceResult", "SimulatedSegmentationModel"]


@dataclass(frozen=True)
class ModelProfile:
    """Accuracy/latency profile of one model family."""

    name: str
    cost_key: str
    mask_iou_mean: float
    mask_iou_std: float
    classification_accuracy: float
    small_area_px: int  # below this, detection gets unreliable
    small_miss_rate: float
    boxes_only: bool = False  # YOLOv3: emits filled boxes, not masks
    two_stage: bool = True  # has an RPN that CIIA can instruct


PROFILES: dict[str, ModelProfile] = {
    "mask_rcnn_r101": ModelProfile(
        name="mask_rcnn_r101",
        cost_key="mask_rcnn_r101",
        mask_iou_mean=0.95,
        mask_iou_std=0.025,
        classification_accuracy=0.985,
        small_area_px=90,
        small_miss_rate=0.35,
        two_stage=True,
    ),
    "yolact_r50": ModelProfile(
        name="yolact_r50",
        cost_key="yolact_r50",
        mask_iou_mean=0.76,
        mask_iou_std=0.06,
        classification_accuracy=0.96,
        small_area_px=140,
        small_miss_rate=0.5,
        two_stage=False,
    ),
    "yolov3": ModelProfile(
        name="yolov3",
        cost_key="yolov3",
        mask_iou_mean=0.985,  # box IoU — it is a detector
        mask_iou_std=0.01,
        classification_accuracy=0.97,
        small_area_px=80,
        small_miss_rate=0.3,
        boxes_only=True,
        two_stage=False,
    ),
}


@dataclass
class InferenceResult:
    """Output of one (simulated) inference call."""

    masks: list[InstanceMask]
    rpn_ms: float
    inference_ms: float
    location_fraction: float
    anchors_evaluated: int
    num_proposals: int
    num_rois: int  # RoIs actually processed by the second stage
    pruning: PruningResult | None = None

    @property
    def total_ms(self) -> float:
        return self.rpn_ms + self.inference_ms


class SimulatedSegmentationModel:
    """A segmentation model with an explicit work-latency ledger."""

    def __init__(
        self,
        profile: str | ModelProfile = "mask_rcnn_r101",
        device: str | DeviceProfile = "jetson_tx2",
        rng: np.random.Generator | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.profile = PROFILES[profile] if isinstance(profile, str) else profile
        self.device = DEVICES[device] if isinstance(device, str) else device
        self.cost: ModelCost = MODEL_COSTS[self.profile.cost_key]
        self._rng = rng or np.random.default_rng(0)
        self._anchor_cache: dict[tuple[int, int], AnchorGrid] = {}
        self.attach_metrics(metrics if metrics is not None else NULL_METRICS)

    def attach_metrics(self, metrics: MetricsRegistry) -> None:
        """(Re)bind the model's work counters to a metrics registry."""
        self.metrics = metrics
        self._m_inferences = metrics.counter("model.inferences")
        self._m_anchors = metrics.counter("model.anchors_evaluated")
        self._m_proposals = metrics.counter("model.proposals")
        self._m_rois = metrics.counter("model.rois_processed")
        self._h_location_fraction = metrics.histogram(
            "model.location_fraction", buckets=tuple(x / 10 for x in range(1, 11))
        )

    # ------------------------------------------------------------------
    def infer(
        self,
        truth_masks: list[InstanceMask],
        image_shape: tuple[int, int],
        instructions: list[InferenceInstruction] | None = None,
        use_dynamic_anchors: bool = True,
        use_roi_pruning: bool = True,
    ) -> InferenceResult:
        """Segment a frame.

        ``truth_masks`` are the renderer's ground-truth instances for this
        frame (the simulated model's 'perception oracle').
        ``instructions`` are the CIIA priors; None means an uninstructed
        full-frame pass (keyframes before initialization, baselines).
        """
        if not self.profile.two_stage:
            return self._infer_single_stage(truth_masks, image_shape)
        return self._infer_two_stage(
            truth_masks,
            image_shape,
            instructions,
            use_dynamic_anchors,
            use_roi_pruning,
        )

    # ------------------------------------------------------------------
    def _anchor_grid(self, image_shape: tuple[int, int]) -> AnchorGrid:
        key = (int(image_shape[0]), int(image_shape[1]))
        grid = self._anchor_cache.get(key)
        if grid is None:
            grid = AnchorGrid(*key)
            self._anchor_cache[key] = grid
        return grid

    def _infer_two_stage(
        self,
        truth_masks,
        image_shape,
        instructions,
        use_dynamic_anchors,
        use_roi_pruning,
    ) -> InferenceResult:
        grid = self._anchor_grid(image_shape)
        gt_boxes = np.array(
            [m.box for m in truth_masks if m.box is not None], dtype=float
        ).reshape(-1, 4)
        gt_instances = [m for m in truth_masks if m.box is not None]

        instructed = bool(instructions) and use_dynamic_anchors
        if instructed:
            location_masks = dynamic_anchor_placement(grid, instructions)
            location_fraction = sum(
                int(location_masks[level.name].sum()) for level in grid.levels
            ) / max(grid.total_locations, 1)
        else:
            location_masks = None
            location_fraction = 1.0

        # Proposal budget shrinks with the evaluated area: a denser anchor
        # population in a smaller region dedups harder in selection.
        budget = int(
            self.cost.base_proposals * (0.55 + 0.45 * location_fraction)
        )
        rpn_output = simulate_rpn(
            grid,
            gt_boxes,
            self._rng,
            location_masks=location_masks,
            max_proposals=min(self.cost.base_proposals, budget),
        )

        num_proposals = rpn_output.num_proposals
        pruning: PruningResult | None = None
        if instructions and use_roi_pruning and num_proposals:
            confidences = self._class_confidences(
                rpn_output.gt_iou, rpn_output.gt_index, instructions, gt_instances
            )
            # The CIIA pruning walk inspects proposals one at a time —
            # the only consumer that still materializes the object list.
            pruning = prune_rois(
                rpn_output.proposals, instructions, confidences, metrics=self.metrics
            )
            num_rois = len(pruning.kept)
            roi_boxes = (
                np.stack([r.box for r in pruning.kept])
                if pruning.kept
                else np.zeros((0, 4))
            )
        else:
            num_rois = num_proposals
            roi_boxes = rpn_output.boxes
        self._m_inferences.inc()
        self._m_anchors.inc(rpn_output.anchors_evaluated)
        self._m_proposals.inc(num_proposals)
        self._m_rois.inc(num_rois)
        self._h_location_fraction.observe(rpn_output.location_fraction)

        detections = self._emit_detections(
            truth_masks, roi_boxes, image_shape, instructions
        )

        rpn_ms = self.device.scale(self.cost.rpn_latency(rpn_output.location_fraction))
        inference_ms = self.device.scale(
            self.cost.inference_latency(num_proposals, num_rois, len(detections))
        )
        return InferenceResult(
            masks=detections,
            rpn_ms=rpn_ms,
            inference_ms=inference_ms,
            location_fraction=rpn_output.location_fraction,
            anchors_evaluated=rpn_output.anchors_evaluated,
            num_proposals=num_proposals,
            num_rois=num_rois,
            pruning=pruning,
        )

    def _class_confidences(
        self, gt_iou, gt_index, instructions, gt_instances
    ) -> np.ndarray:
        """Confidence of each proposal on its assigned instruction's class
        (simulated classification head).

        Vectorized over the RPN's column arrays with one batched noise
        draw — stream-identical to
        :meth:`_class_confidences_reference` (a Generator consumes the
        same values for n scalar draws as for one size-n draw).
        """
        base = np.asarray(gt_iou, dtype=float).copy()
        gt_index = np.asarray(gt_index)
        if len(gt_instances):
            match = np.array(
                [
                    any(
                        inst.is_known_object
                        and inst.class_label == gt.class_label
                        for inst in instructions
                    )
                    for gt in gt_instances
                ],
                dtype=bool,
            )
            assigned = gt_index >= 0
            factor = np.where(match[np.maximum(gt_index, 0)], 1.0, 0.6)
            base[assigned] *= factor[assigned]
        noise = self._rng.normal(scale=0.05, size=len(base))
        return np.clip(base + noise, 0.0, 1.0)

    def _class_confidences_reference(
        self, proposals, instructions, gt_instances
    ) -> np.ndarray:
        """Per-proposal scalar reference for :meth:`_class_confidences`
        (equivalence-tested; ``rpn.confidence`` micro cell)."""
        confidences = np.zeros(len(proposals))
        for index, proposal in enumerate(proposals):
            base = proposal.best_gt_iou
            if proposal.best_gt_index >= 0:
                gt = gt_instances[proposal.best_gt_index]
                match = any(
                    inst.is_known_object and inst.class_label == gt.class_label
                    for inst in instructions
                )
                base = base * (1.0 if match else 0.6)
            confidences[index] = np.clip(
                base + self._rng.normal(scale=0.05), 0.0, 1.0
            )
        return confidences

    def _emit_detections(
        self, truth_masks, roi_boxes, image_shape, instructions
    ) -> list[InstanceMask]:
        """Turn covered ground-truth instances into degraded detections.

        ``roi_boxes`` is the (N, 4) array of second-stage boxes; coverage
        of every ground-truth instance is one IoU matrix instead of a
        per-instance matrix build.  The per-instance RNG draws stay in
        instance order, so the sample stream matches the scalar loop.
        """
        if not truth_masks:
            return []
        instances = [m for m in truth_masks if m.box is not None]
        if not instances:
            return []
        covered = np.zeros(len(instances), dtype=bool)
        if len(roi_boxes):
            boxes = np.array(
                [i.box for i in instances], dtype=float
            ).reshape(-1, 4)
            overlap = box_iou_matrix(boxes, roi_boxes)
            covered = (overlap >= 0.5).any(axis=1)
        detections: list[InstanceMask] = []
        for index, instance in enumerate(instances):
            if not covered[index]:
                continue
            if not self._detected(instance):
                continue
            detections.append(self._degraded_instance(instance, image_shape))
        return detections

    def _detected(self, instance: InstanceMask) -> bool:
        area = instance.area
        if area <= 0:
            return False
        if area < self.profile.small_area_px:
            return bool(self._rng.uniform() >= self.profile.small_miss_rate)
        return True

    def _degraded_instance(
        self, instance: InstanceMask, image_shape
    ) -> InstanceMask:
        target = sample_target_iou(
            self.profile.mask_iou_mean, self.profile.mask_iou_std, self._rng
        )
        if self.profile.boxes_only:
            box = instance.box
            raster = np.zeros(image_shape, dtype=bool)
            if box is not None:
                raster[box[1] : box[3], box[0] : box[2]] = True
            raster = degrade_mask_to_iou(raster, target, self._rng)
        else:
            raster = degrade_mask_to_iou(instance.mask, target, self._rng)
        class_label = instance.class_label
        if self._rng.uniform() > self.profile.classification_accuracy:
            class_label = f"not_{class_label}"
        score = float(np.clip(self._rng.normal(0.93, 0.05), 0.5, 1.0))
        return InstanceMask(
            instance_id=instance.instance_id,
            class_label=class_label,
            mask=raster,
            score=score,
        )

    # ------------------------------------------------------------------
    def _infer_single_stage(self, truth_masks, image_shape) -> InferenceResult:
        """YOLACT / YOLOv3: fixed-cost single pass, no CIIA hooks."""
        self._m_inferences.inc()
        detections = []
        for instance in truth_masks:
            if instance.box is None or not self._detected(instance):
                continue
            detections.append(self._degraded_instance(instance, image_shape))
        rpn_ms = self.device.scale(self.cost.rpn_latency(1.0))
        inference_ms = self.device.scale(
            self.cost.inference_latency(0, 0, len(detections))
        )
        return InferenceResult(
            masks=detections,
            rpn_ms=rpn_ms,
            inference_ms=inference_ms,
            location_fraction=1.0,
            anchors_evaluated=0,
            num_proposals=0,
            num_rois=0,
        )
