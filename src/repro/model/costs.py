"""Latency cost model for the simulated segmentation models.

The paper's acceleration claims (Fig. 2b, Fig. 14) are about *time*, which
we cannot measure on a Jetson TX2.  Instead every simulated model charges
for the work it actually performs — anchor locations evaluated, RoIs
scored, masks decoded — through this explicit cost model, calibrated so
that the full unaccelerated pipelines land on the paper's numbers:

* Mask R-CNN (ResNet-101-FPN) ~400 ms / frame on a TX2-class edge,
* YOLACT ~120 ms, YOLOv3 ~30 ms (Fig. 2b),
* iPhone-class mobile NPU running TFLite Mask R-CNN ~3.6 s.

Fig. 14 reports two buckets: "RPN latency" (backbone + region proposal,
which dynamic anchor placement shrinks by restricting both the feature
and anchor computation to instructed areas) and "inference latency" (the
second stage, proportional to the RoIs actually processed).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProfile", "ModelCost", "DEVICES", "MODEL_COSTS"]


@dataclass(frozen=True)
class DeviceProfile:
    """Relative compute speed of an inference device (TX2 == 1.0)."""

    name: str
    speed: float  # throughput multiplier relative to Jetson TX2

    def scale(self, milliseconds: float) -> float:
        return milliseconds / self.speed


DEVICES: dict[str, DeviceProfile] = {
    "jetson_tx2": DeviceProfile("jetson_tx2", 1.0),
    "jetson_xavier": DeviceProfile("jetson_xavier", 2.2),
    "titan_v": DeviceProfile("titan_v", 8.0),
    # TFLite on a phone SoC: ~9x slower than the TX2 for this class of
    # model, putting full Mask R-CNN at ~3.6 s/frame (the "pure mobile"
    # baseline of Section VI-B).
    "mobile_npu": DeviceProfile("mobile_npu", 0.11),
}


@dataclass(frozen=True)
class ModelCost:
    """Latency decomposition of a two-stage model on the reference device.

    ``rpn_stage`` = backbone + RPN.  Its variable part scales with the
    fraction of anchor locations (and hence feature area) evaluated.
    ``inference`` = the second stage.  Its variable part is per-RoI.
    """

    rpn_fixed_ms: float
    rpn_variable_ms: float  # at 100% of anchor locations
    inference_fixed_ms: float
    per_proposal_ms: float  # classification/box head: every RoI entering stage 2
    per_roi_ms: float  # refinement + mask path: RoIs surviving pruning
    per_mask_ms: float
    base_proposals: int  # RoIs entering stage 2 without any pruning

    def rpn_latency(self, location_fraction: float) -> float:
        return self.rpn_fixed_ms + self.rpn_variable_ms * float(location_fraction)

    def inference_latency(
        self, num_proposals: int, num_rois: int, num_masks: int
    ) -> float:
        return (
            self.inference_fixed_ms
            + self.per_proposal_ms * num_proposals
            + self.per_roi_ms * num_rois
            + self.per_mask_ms * num_masks
        )

    def full_frame_latency(self, num_masks: int = 5) -> float:
        return self.rpn_latency(1.0) + self.inference_latency(
            self.base_proposals, self.base_proposals, num_masks
        )


MODEL_COSTS: dict[str, ModelCost] = {
    # Calibrated: full frame = 60 + 170 + 20 + 0.06*1000 + 0.09*1000 + 0.4*5
    # = 402 ms (paper: ~400 ms on the TX2).
    "mask_rcnn_r101": ModelCost(
        rpn_fixed_ms=60.0,
        rpn_variable_ms=170.0,
        inference_fixed_ms=20.0,
        per_proposal_ms=0.06,
        per_roi_ms=0.09,
        per_mask_ms=0.4,
        base_proposals=1000,
    ),
    # YOLACT: single stage; modeled as all-fixed cost (~120 ms on TX2).
    "yolact_r50": ModelCost(
        rpn_fixed_ms=95.0,
        rpn_variable_ms=0.0,
        inference_fixed_ms=23.0,
        per_proposal_ms=0.0,
        per_roi_ms=0.0,
        per_mask_ms=0.4,
        base_proposals=0,
    ),
    # YOLOv3: detection only (~30 ms on TX2), used by the Fig. 2b
    # motivation comparison.
    "yolov3": ModelCost(
        rpn_fixed_ms=28.0,
        rpn_variable_ms=0.0,
        inference_fixed_ms=2.0,
        per_proposal_ms=0.0,
        per_roi_ms=0.0,
        per_mask_ms=0.0,
        base_proposals=0,
    ),
}
