"""Anchor grids over an FPN pyramid.

Mask R-CNN with a ResNet-101-FPN backbone places anchors at every location
of five feature maps (P2..P6, strides 4..64).  The contour-instructed
acceleration of the paper works by *not evaluating* most of these
locations, so the anchor bookkeeping here is real: the grids are
materialized, counted and filtered exactly as described, and the latency
model charges for every location actually evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FPN_LEVELS", "AnchorLevel", "AnchorGrid"]

# (name, stride, base anchor size) — the standard Mask R-CNN FPN setup.
FPN_LEVELS = (
    ("P2", 4, 32),
    ("P3", 8, 64),
    ("P4", 16, 128),
    ("P5", 32, 256),
    ("P6", 64, 512),
)

ASPECT_RATIOS = (0.5, 1.0, 2.0)


@dataclass
class AnchorLevel:
    """Anchors of one pyramid level."""

    name: str
    stride: int
    base_size: int
    grid_height: int
    grid_width: int
    centers: np.ndarray  # (L, 2) anchor-center pixel coordinates (u, v)
    boxes: np.ndarray  # (L * A, 4) anchor boxes (x0, y0, x1, y1)

    @property
    def num_locations(self) -> int:
        return self.grid_height * self.grid_width

    @property
    def anchors_per_location(self) -> int:
        return len(ASPECT_RATIOS)

    @property
    def num_anchors(self) -> int:
        return self.num_locations * self.anchors_per_location


class AnchorGrid:
    """All anchor levels for a given image size.

    The canonical Mask R-CNN anchor sizes (32..512) assume inputs resized
    to ~800 px on the short side; for smaller simulation frames the bases
    scale down proportionally so small objects remain coverable, exactly
    as the resize transform achieves in the real pipeline.
    """

    REFERENCE_WIDTH = 800

    def __init__(self, image_height: int, image_width: int):
        self.image_height = image_height
        self.image_width = image_width
        self.anchor_scale = float(
            np.clip(image_width / self.REFERENCE_WIDTH, 0.25, 1.0)
        )
        self.levels: list[AnchorLevel] = [
            self._build_level(name, stride, max(base * self.anchor_scale, 8.0))
            for name, stride, base in FPN_LEVELS
        ]

    def _build_level(self, name: str, stride: int, base_size: int) -> AnchorLevel:
        grid_height = int(np.ceil(self.image_height / stride))
        grid_width = int(np.ceil(self.image_width / stride))
        ys = (np.arange(grid_height) + 0.5) * stride
        xs = (np.arange(grid_width) + 0.5) * stride
        grid_x, grid_y = np.meshgrid(xs, ys)
        centers = np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)

        boxes = []
        for ratio in ASPECT_RATIOS:
            width = base_size * np.sqrt(1.0 / ratio)
            height = base_size * np.sqrt(ratio)
            half = np.array([width / 2.0, height / 2.0])
            boxes.append(
                np.concatenate([centers - half, centers + half], axis=1)
            )
        # Interleave so boxes[location * A + a] belongs to location.
        stacked = np.stack(boxes, axis=1).reshape(-1, 4)
        return AnchorLevel(
            name=name,
            stride=stride,
            base_size=base_size,
            grid_height=grid_height,
            grid_width=grid_width,
            centers=centers,
            boxes=stacked,
        )

    @property
    def total_locations(self) -> int:
        return sum(level.num_locations for level in self.levels)

    @property
    def total_anchors(self) -> int:
        return sum(level.num_anchors for level in self.levels)

    def level(self, name: str) -> AnchorLevel:
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(name)

    def locations_in_boxes(
        self, boxes: np.ndarray, margin: float = 0.15
    ) -> dict[str, np.ndarray]:
        """Per-level boolean masks of anchor locations inside any given box.

        This is the *dynamic anchor placement* primitive: boxes (expanded
        by ``margin`` of their size) select the locations the RPN will
        actually evaluate.
        """
        out: dict[str, np.ndarray] = {}
        boxes = np.asarray(boxes, dtype=float).reshape(-1, 4)
        for level in self.levels:
            mask = np.zeros(level.num_locations, dtype=bool)
            for box in boxes:
                width = box[2] - box[0]
                height = box[3] - box[1]
                x0 = box[0] - margin * width
                y0 = box[1] - margin * height
                x1 = box[2] + margin * width
                y1 = box[3] + margin * height
                mask |= (
                    (level.centers[:, 0] >= x0)
                    & (level.centers[:, 0] <= x1)
                    & (level.centers[:, 1] >= y0)
                    & (level.centers[:, 1] <= y1)
                )
            out[level.name] = mask
        return out
