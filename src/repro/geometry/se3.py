"""Rigid-body transforms on SE(3).

edgeIS tracks the pose of the mobile device and of every observed object as
an element of SE(3).  Poses follow the paper's convention: ``T_cw`` maps a
point expressed in world coordinates into the camera frame,

    P_c = R @ P_w + t.

The class stores the rotation as a 3x3 orthonormal matrix and the
translation as a 3-vector, and provides the exponential/logarithm maps used
by the Gauss-Newton bundle adjustment in :mod:`repro.geometry.bundle_adjustment`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SE3", "skew", "so3_exp", "so3_log"]

_EPS = 1e-12


def skew(v: np.ndarray) -> np.ndarray:
    """Return the skew-symmetric (hat) matrix of a 3-vector.

    ``skew(a) @ b == np.cross(a, b)`` for all 3-vectors ``b``.  The paper
    writes this operator as ``(.)^`` in Eq. (2).
    """
    v = np.asarray(v, dtype=float).reshape(3)
    return np.array(
        [
            [0.0, -v[2], v[1]],
            [v[2], 0.0, -v[0]],
            [-v[1], v[0], 0.0],
        ]
    )


def so3_exp(omega: np.ndarray) -> np.ndarray:
    """Exponential map from so(3) to SO(3) (Rodrigues' formula)."""
    omega = np.asarray(omega, dtype=float).reshape(3)
    theta = float(np.linalg.norm(omega))
    if theta < _EPS:
        # First-order expansion is exact enough below machine noise.
        return np.eye(3) + skew(omega)
    axis = omega / theta
    k = skew(axis)
    return np.eye(3) + np.sin(theta) * k + (1.0 - np.cos(theta)) * (k @ k)


def so3_log(rotation: np.ndarray) -> np.ndarray:
    """Logarithm map from SO(3) to so(3), returning a rotation vector."""
    rotation = np.asarray(rotation, dtype=float)
    cos_theta = np.clip((np.trace(rotation) - 1.0) / 2.0, -1.0, 1.0)
    theta = float(np.arccos(cos_theta))
    if theta < _EPS:
        return np.array(
            [
                rotation[2, 1] - rotation[1, 2],
                rotation[0, 2] - rotation[2, 0],
                rotation[1, 0] - rotation[0, 1],
            ]
        ) / 2.0
    if abs(np.pi - theta) < 1e-6:
        # Near pi the standard formula is ill-conditioned; use the diagonal.
        diag = np.clip((np.diag(rotation) + 1.0) / 2.0, 0.0, None)
        axis = np.sqrt(diag)
        # Fix signs using the largest component.
        largest = int(np.argmax(axis))
        if axis[largest] > _EPS:
            for i in range(3):
                if i != largest:
                    sign_source = rotation[largest, i] + rotation[i, largest]
                    axis[i] = np.copysign(axis[i], sign_source)
        return theta * axis / max(np.linalg.norm(axis), _EPS)
    return (
        theta
        / (2.0 * np.sin(theta))
        * np.array(
            [
                rotation[2, 1] - rotation[1, 2],
                rotation[0, 2] - rotation[2, 0],
                rotation[1, 0] - rotation[0, 1],
            ]
        )
    )


class SE3:
    """A rigid transform ``P_out = R @ P_in + t``.

    Instances are immutable: every operation returns a new :class:`SE3`.
    """

    __slots__ = ("rotation", "translation")

    def __init__(self, rotation: np.ndarray | None = None, translation: np.ndarray | None = None):
        rot = np.eye(3) if rotation is None else np.asarray(rotation, dtype=float).reshape(3, 3)
        trans = np.zeros(3) if translation is None else np.asarray(translation, dtype=float).reshape(3)
        object.__setattr__(self, "rotation", rot.copy())
        object.__setattr__(self, "translation", trans.copy())
        self.rotation.setflags(write=False)
        self.translation.setflags(write=False)

    def __setattr__(self, name, value):  # pragma: no cover - guard rail
        raise AttributeError("SE3 is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity() -> "SE3":
        return SE3()

    @staticmethod
    def from_matrix(matrix: np.ndarray) -> "SE3":
        """Build from a 4x4 (or 3x4) homogeneous transform matrix."""
        matrix = np.asarray(matrix, dtype=float)
        return SE3(matrix[:3, :3], matrix[:3, 3])

    @staticmethod
    def exp(xi: np.ndarray) -> "SE3":
        """Exponential map from a twist ``xi = (rho, omega)`` in R^6.

        Uses the common first-order-coupled convention where the
        translational part is ``V(omega) @ rho``.
        """
        xi = np.asarray(xi, dtype=float).reshape(6)
        rho, omega = xi[:3], xi[3:]
        theta = float(np.linalg.norm(omega))
        rotation = so3_exp(omega)
        if theta < _EPS:
            v_matrix = np.eye(3) + 0.5 * skew(omega)
        else:
            axis = omega / theta
            k = skew(axis)
            v_matrix = (
                np.eye(3)
                + (1.0 - np.cos(theta)) / theta * k
                + (theta - np.sin(theta)) / theta * (k @ k)
            )
        return SE3(rotation, v_matrix @ rho)

    @staticmethod
    def look_at(eye: np.ndarray, target: np.ndarray, up: np.ndarray | None = None) -> "SE3":
        """Camera-from-world pose of a camera at ``eye`` looking at ``target``.

        Camera convention: +z forward, +x right, +y down (standard CV frame).
        """
        eye = np.asarray(eye, dtype=float).reshape(3)
        target = np.asarray(target, dtype=float).reshape(3)
        up = np.array([0.0, -1.0, 0.0]) if up is None else np.asarray(up, dtype=float).reshape(3)
        forward = target - eye
        norm = np.linalg.norm(forward)
        if norm < _EPS:
            raise ValueError("look_at: eye and target coincide")
        forward = forward / norm
        right = np.cross(forward, -up)
        right_norm = np.linalg.norm(right)
        if right_norm < _EPS:
            # Forward parallel to up: pick an arbitrary orthogonal right axis.
            right = np.cross(forward, np.array([1.0, 0.0, 0.0]))
            right_norm = np.linalg.norm(right)
            if right_norm < _EPS:
                right = np.cross(forward, np.array([0.0, 0.0, 1.0]))
                right_norm = np.linalg.norm(right)
        right = right / right_norm
        down = np.cross(forward, right)
        rotation_wc = np.stack([right, down, forward], axis=1)
        rotation_cw = rotation_wc.T
        translation = -rotation_cw @ eye
        return SE3(rotation_cw, translation)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def log(self) -> np.ndarray:
        """Twist ``(rho, omega)`` such that ``SE3.exp(log()) == self``."""
        omega = so3_log(self.rotation)
        theta = float(np.linalg.norm(omega))
        if theta < _EPS:
            v_inv = np.eye(3) - 0.5 * skew(omega)
        else:
            axis = omega / theta
            k = skew(axis)
            half = theta / 2.0
            cot_half = 1.0 / np.tan(half)
            v_inv = (
                half * cot_half * np.eye(3)
                - half * k
                + (1.0 - half * cot_half) * np.outer(axis, axis)
            )
        return np.concatenate([v_inv @ self.translation, omega])

    def inverse(self) -> "SE3":
        rotation_inv = self.rotation.T
        return SE3(rotation_inv, -rotation_inv @ self.translation)

    def compose(self, other: "SE3") -> "SE3":
        """Return ``self @ other`` (apply ``other`` first, then ``self``)."""
        return SE3(
            self.rotation @ other.rotation,
            self.rotation @ other.translation + self.translation,
        )

    def __matmul__(self, other):
        if isinstance(other, SE3):
            return self.compose(other)
        return self.transform(other)

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Apply to one point (3,) or a batch of points (N, 3)."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            return self.rotation @ points + self.translation
        return points @ self.rotation.T + self.translation

    def matrix(self) -> np.ndarray:
        """Return the 4x4 homogeneous matrix."""
        out = np.eye(4)
        out[:3, :3] = self.rotation
        out[:3, 3] = self.translation
        return out

    # ------------------------------------------------------------------
    # Metrics & helpers
    # ------------------------------------------------------------------
    @property
    def center(self) -> np.ndarray:
        """Camera center in world coordinates (for a camera-from-world pose)."""
        return -self.rotation.T @ self.translation

    def rotation_angle_to(self, other: "SE3") -> float:
        """Geodesic rotation distance to another pose, in radians."""
        relative = self.rotation.T @ other.rotation
        return float(np.linalg.norm(so3_log(relative)))

    def translation_distance_to(self, other: "SE3") -> float:
        return float(np.linalg.norm(self.center - other.center))

    def retract(self, xi: np.ndarray) -> "SE3":
        """Left-multiplicative update used by Gauss-Newton: ``exp(xi) @ self``."""
        return SE3.exp(xi) @ self

    def __repr__(self) -> str:
        return f"SE3(t={np.round(self.translation, 4).tolist()})"

    def allclose(self, other: "SE3", atol: float = 1e-8) -> bool:
        return bool(
            np.allclose(self.rotation, other.rotation, atol=atol)
            and np.allclose(self.translation, other.translation, atol=atol)
        )
