"""Two-view epipolar geometry.

Implements the initialization math of Section III-A: the normalized 8-point
algorithm for the fundamental matrix (Eq. 1), its RANSAC wrapper, the
essential-matrix relation ``E = K^T F K`` (Eq. 2) and the decomposition of
``E`` into the relative pose ``(R_10, t_10)`` with the cheirality check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .camera import PinholeCamera
from .se3 import SE3
from .triangulation import triangulate_midpoint

__all__ = [
    "eight_point_fundamental",
    "fundamental_ransac",
    "essential_from_fundamental",
    "decompose_essential",
    "recover_relative_pose",
    "sampson_distance",
    "TwoViewGeometry",
]


def _normalize_points(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Hartley normalization: zero-mean, mean distance sqrt(2)."""
    centroid = points.mean(axis=0)
    shifted = points - centroid
    mean_dist = np.mean(np.linalg.norm(shifted, axis=1))
    scale = np.sqrt(2.0) / max(mean_dist, 1e-12)
    transform = np.array(
        [
            [scale, 0.0, -scale * centroid[0]],
            [0.0, scale, -scale * centroid[1]],
            [0.0, 0.0, 1.0],
        ]
    )
    homogeneous = np.column_stack([points, np.ones(len(points))])
    return (homogeneous @ transform.T), transform


def eight_point_fundamental(points0: np.ndarray, points1: np.ndarray) -> np.ndarray:
    """Normalized 8-point estimate of F with ``p1^T F p0 = 0`` (Eq. 1).

    Parameters
    ----------
    points0, points1:
        Matched pixel coordinates, shape (N, 2), N >= 8.
    """
    points0 = np.asarray(points0, dtype=float)
    points1 = np.asarray(points1, dtype=float)
    if len(points0) < 8 or len(points0) != len(points1):
        raise ValueError("eight_point_fundamental needs >= 8 matched pairs")
    norm0, transform0 = _normalize_points(points0)
    norm1, transform1 = _normalize_points(points1)
    # Each match contributes one row of the linear system A f = 0.
    a_matrix = np.column_stack(
        [
            norm1[:, 0] * norm0[:, 0],
            norm1[:, 0] * norm0[:, 1],
            norm1[:, 0],
            norm1[:, 1] * norm0[:, 0],
            norm1[:, 1] * norm0[:, 1],
            norm1[:, 1],
            norm0[:, 0],
            norm0[:, 1],
            np.ones(len(norm0)),
        ]
    )
    _, _, vt = np.linalg.svd(a_matrix)
    fundamental = vt[-1].reshape(3, 3)
    # Enforce the rank-2 constraint.
    u, singular, vt_f = np.linalg.svd(fundamental)
    singular = singular.copy()
    singular[2] = 0.0
    fundamental = u @ np.diag(singular) @ vt_f
    fundamental = transform1.T @ fundamental @ transform0
    norm = np.linalg.norm(fundamental)
    return fundamental / max(norm, 1e-12)


def sampson_distance(
    fundamental: np.ndarray, points0: np.ndarray, points1: np.ndarray
) -> np.ndarray:
    """First-order geometric (Sampson) distance of matches to the epipolar model."""
    h0 = np.column_stack([points0, np.ones(len(points0))])
    h1 = np.column_stack([points1, np.ones(len(points1))])
    f_p0 = h0 @ fundamental.T  # rows: F @ p0
    ft_p1 = h1 @ fundamental  # rows: F^T @ p1
    numerator = np.square(np.sum(h1 * f_p0, axis=1))
    denominator = (
        f_p0[:, 0] ** 2 + f_p0[:, 1] ** 2 + ft_p1[:, 0] ** 2 + ft_p1[:, 1] ** 2
    )
    return numerator / np.maximum(denominator, 1e-12)


def fundamental_ransac(
    points0: np.ndarray,
    points1: np.ndarray,
    threshold: float = 1.5,
    max_iterations: int = 200,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """RANSAC-robust fundamental matrix.

    Returns the matrix refit on all inliers and the boolean inlier mask.
    edgeIS feeds mostly-background matches here (Section III-A), so the
    inlier model is the static scene and moving-object matches fall out as
    outliers.
    """
    points0 = np.asarray(points0, dtype=float)
    points1 = np.asarray(points1, dtype=float)
    count = len(points0)
    if count < 8:
        raise ValueError("fundamental_ransac needs >= 8 matched pairs")
    rng = np.random.default_rng(0) if rng is None else rng
    threshold_sq = threshold * threshold
    best_mask = np.zeros(count, dtype=bool)
    best_inliers = -1
    for _ in range(max_iterations):
        sample = rng.choice(count, size=8, replace=False)
        try:
            candidate = eight_point_fundamental(points0[sample], points1[sample])
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate sample
            continue
        errors = sampson_distance(candidate, points0, points1)
        mask = errors < threshold_sq
        inliers = int(mask.sum())
        if inliers > best_inliers:
            best_inliers = inliers
            best_mask = mask
            if inliers > 0.95 * count:
                break
    if best_inliers < 8:
        raise ValueError("fundamental_ransac found no 8-inlier consensus")
    refined = eight_point_fundamental(points0[best_mask], points1[best_mask])
    errors = sampson_distance(refined, points0, points1)
    final_mask = errors < threshold_sq
    if final_mask.sum() >= 8:
        refined = eight_point_fundamental(points0[final_mask], points1[final_mask])
    else:
        final_mask = best_mask
    return refined, final_mask


def essential_from_fundamental(
    fundamental: np.ndarray, camera: PinholeCamera
) -> np.ndarray:
    """``E = K^T F K`` (Eq. 2), with singular values projected to (1, 1, 0)."""
    essential = camera.matrix.T @ fundamental @ camera.matrix
    u, _, vt = np.linalg.svd(essential)
    return u @ np.diag([1.0, 1.0, 0.0]) @ vt


def decompose_essential(essential: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
    """The four (R, t) candidates of an essential matrix, ``t`` unit-norm."""
    u, _, vt = np.linalg.svd(essential)
    if np.linalg.det(u) < 0:
        u = -u
    if np.linalg.det(vt) < 0:
        vt = -vt
    w = np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
    rotation_a = u @ w @ vt
    rotation_b = u @ w.T @ vt
    translation = u[:, 2]
    return [
        (rotation_a, translation),
        (rotation_a, -translation),
        (rotation_b, translation),
        (rotation_b, -translation),
    ]


@dataclass
class TwoViewGeometry:
    """Result of relative-pose recovery between two frames."""

    pose_10: SE3  # camera-1 from camera-0 (the paper's R_10, t_10)
    inlier_mask: np.ndarray
    points_3d: np.ndarray  # triangulated inlier points in frame-0 coordinates
    point_indices: np.ndarray  # indices into the original match arrays
    median_parallax_deg: float


def recover_relative_pose(
    camera: PinholeCamera,
    points0: np.ndarray,
    points1: np.ndarray,
    ransac_threshold: float = 1.5,
    min_depth: float = 1e-3,
    rng: np.random.Generator | None = None,
) -> TwoViewGeometry:
    """Full two-view initialization: F (RANSAC) -> E -> (R, t) -> structure.

    Picks the (R, t) candidate with the most points passing the cheirality
    check (positive depth in both cameras) and triangulates those points.
    Scale is fixed by ``|t| = 1``, the usual monocular-VO convention; edgeIS
    inherits the same scale ambiguity and all downstream geometry is
    consistent within it.
    """
    points0 = np.asarray(points0, dtype=float)
    points1 = np.asarray(points1, dtype=float)
    fundamental, inlier_mask = fundamental_ransac(
        points0, points1, threshold=ransac_threshold, rng=rng
    )
    essential = essential_from_fundamental(fundamental, camera)
    candidates = decompose_essential(essential)

    inlier_idx = np.flatnonzero(inlier_mask)
    norm0 = camera.normalize(points0[inlier_idx])
    norm1 = camera.normalize(points1[inlier_idx])

    best: tuple[int, SE3, np.ndarray, np.ndarray] | None = None
    for rotation, translation in candidates:
        pose_10 = SE3(rotation, translation)
        points_3d, valid = triangulate_midpoint(norm0, norm1, pose_10, min_depth=min_depth)
        score = int(valid.sum())
        if best is None or score > best[0]:
            best = (score, pose_10, points_3d, valid)
    assert best is not None
    _, pose_10, points_3d, valid = best

    kept = inlier_idx[valid]
    kept_points = points_3d[valid]

    # Parallax diagnostic: angle subtended at each 3-D point by the two
    # camera centers.  The initializer (Section III-A) requires "enough
    # parallax" before accepting a frame pair.
    center0 = np.zeros(3)
    center1 = pose_10.inverse().translation  # camera-1 center in frame-0 coords
    ray0 = kept_points - center0
    ray1 = kept_points - center1
    cosines = np.sum(ray0 * ray1, axis=1) / np.maximum(
        np.linalg.norm(ray0, axis=1) * np.linalg.norm(ray1, axis=1), 1e-12
    )
    parallax = (
        float(np.degrees(np.median(np.arccos(np.clip(cosines, -1.0, 1.0)))))
        if len(kept_points)
        else 0.0
    )

    return TwoViewGeometry(
        pose_10=pose_10,
        inlier_mask=inlier_mask,
        points_3d=kept_points,
        point_indices=kept,
        median_parallax_deg=parallax,
    )
