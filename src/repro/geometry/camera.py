"""Pinhole camera model.

The intrinsic matrix ``K`` of the paper (Eq. 2-5) is represented by
:class:`PinholeCamera`, which projects 3-D points expressed in the *camera*
frame into pixels and back-projects pixels with known depth into rays.

Pixel convention: ``u`` is the column (x, rightward) and ``v`` is the row
(y, downward), with the origin at the top-left corner of the image, matching
OpenCV — the library whose role :mod:`repro.image` fills.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .se3 import SE3

__all__ = ["PinholeCamera"]


@dataclass(frozen=True)
class PinholeCamera:
    """Intrinsics of a pinhole camera.

    Parameters
    ----------
    fx, fy:
        Focal lengths in pixels.
    cx, cy:
        Principal point in pixels.
    width, height:
        Image size in pixels; used by visibility checks.
    """

    fx: float
    fy: float
    cx: float
    cy: float
    width: int
    height: int

    @staticmethod
    def with_fov(width: int, height: int, horizontal_fov_deg: float = 64.0) -> "PinholeCamera":
        """Build intrinsics from image size and a horizontal field of view.

        64 degrees is typical of the phone cameras (iPhone 11, Galaxy S10)
        used in the paper's experiments.
        """
        fov = np.deg2rad(horizontal_fov_deg)
        fx = (width / 2.0) / np.tan(fov / 2.0)
        return PinholeCamera(
            fx=fx, fy=fx, cx=width / 2.0, cy=height / 2.0, width=width, height=height
        )

    @property
    def matrix(self) -> np.ndarray:
        """The 3x3 intrinsic matrix ``K``."""
        return np.array(
            [
                [self.fx, 0.0, self.cx],
                [0.0, self.fy, self.cy],
                [0.0, 0.0, 1.0],
            ]
        )

    @property
    def matrix_inverse(self) -> np.ndarray:
        return np.array(
            [
                [1.0 / self.fx, 0.0, -self.cx / self.fx],
                [0.0, 1.0 / self.fy, -self.cy / self.fy],
                [0.0, 0.0, 1.0],
            ]
        )

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def project(self, points_camera: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project camera-frame points to pixels.

        Parameters
        ----------
        points_camera:
            Array of shape (N, 3) or (3,) in the camera frame.

        Returns
        -------
        pixels:
            (N, 2) array of (u, v) pixel coordinates.
        depths:
            (N,) array of z depths; points with non-positive depth are
            behind the camera and their pixel values are meaningless.
        """
        pts = np.atleast_2d(np.asarray(points_camera, dtype=float))
        depths = pts[:, 2]
        safe = np.where(np.abs(depths) < 1e-12, 1e-12, depths)
        u = self.fx * pts[:, 0] / safe + self.cx
        v = self.fy * pts[:, 1] / safe + self.cy
        return np.stack([u, v], axis=1), depths

    def project_world(
        self, pose_cw: SE3, points_world: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project world points through a camera-from-world pose.

        This is the projection function ``pi(T_cw, P)`` of Eq. (5).
        """
        return self.project(pose_cw.transform(points_world))

    def backproject(self, pixels: np.ndarray, depths: np.ndarray) -> np.ndarray:
        """Lift pixels with known depth into camera-frame 3-D points."""
        pix = np.atleast_2d(np.asarray(pixels, dtype=float))
        depth_arr = np.atleast_1d(np.asarray(depths, dtype=float))
        x = (pix[:, 0] - self.cx) / self.fx * depth_arr
        y = (pix[:, 1] - self.cy) / self.fy * depth_arr
        return np.stack([x, y, depth_arr], axis=1)

    def normalize(self, pixels: np.ndarray) -> np.ndarray:
        """Map pixels to normalized image coordinates (z=1 plane)."""
        pix = np.atleast_2d(np.asarray(pixels, dtype=float))
        x = (pix[:, 0] - self.cx) / self.fx
        y = (pix[:, 1] - self.cy) / self.fy
        return np.stack([x, y], axis=1)

    # ------------------------------------------------------------------
    # Visibility
    # ------------------------------------------------------------------
    def in_view(
        self, pixels: np.ndarray, depths: np.ndarray, margin: float = 0.0
    ) -> np.ndarray:
        """Boolean mask of projections that land inside the image."""
        pix = np.atleast_2d(np.asarray(pixels, dtype=float))
        depth_arr = np.atleast_1d(np.asarray(depths, dtype=float))
        return (
            (depth_arr > 1e-9)
            & (pix[:, 0] >= -margin)
            & (pix[:, 0] < self.width + margin)
            & (pix[:, 1] >= -margin)
            & (pix[:, 1] < self.height + margin)
        )

    def visible_world_points(
        self, pose_cw: SE3, points_world: np.ndarray, margin: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project world points and return (pixels, depths, visibility mask)."""
        pixels, depths = self.project_world(pose_cw, points_world)
        return pixels, depths, self.in_view(pixels, depths, margin=margin)
