"""Motion-only bundle adjustment (PnP) by robust Gauss-Newton.

This is the optimizer behind Eq. (4) of the paper:

    T_cw = argmin_T  sum_k || pi(T, P_k) - p_k ||^2

edgeIS calls it twice per frame — once with background-labeled map points to
solve the device pose, and once per object with the object's points to solve
the device pose *relative to that object* (Section III-B, Eq. 6-7).

A Huber robust kernel downweights mismatches, which is what lets the
background solve shrug off features that actually sit on a moving object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .camera import PinholeCamera
from .se3 import SE3, skew

__all__ = ["PnPResult", "solve_pnp", "refine_pose", "dlt_pose"]

MIN_PNP_POINTS = 3  # the paper: "performing BA requires at least 3 pairs"


@dataclass
class PnPResult:
    """Outcome of a pose solve."""

    pose_cw: SE3
    inlier_mask: np.ndarray
    iterations: int
    final_rms: float
    converged: bool

    @property
    def num_inliers(self) -> int:
        return int(self.inlier_mask.sum())


def _residuals_and_jacobian_reference(
    camera: PinholeCamera,
    pose_cw: SE3,
    points_world: np.ndarray,
    pixels: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-point reference for :func:`_residuals_and_jacobian`.

    Assembles the rotational Jacobian block one :func:`skew` matrix at a
    time — kept for equivalence tests and the ``ba.jacobian`` micro cell.
    """
    points_camera = pose_cw.transform(points_world)
    depths = points_camera[:, 2]
    valid = depths > 1e-6
    safe_z = np.where(valid, depths, 1.0)

    u = camera.fx * points_camera[:, 0] / safe_z + camera.cx
    v = camera.fy * points_camera[:, 1] / safe_z + camera.cy
    residuals = np.stack([u - pixels[:, 0], v - pixels[:, 1]], axis=1)

    inv_z = 1.0 / safe_z
    x_over_z = points_camera[:, 0] * inv_z
    y_over_z = points_camera[:, 1] * inv_z

    count = len(points_world)
    # d(pixel)/d(P_c): 2x3 per point.
    jacobian_pixel = np.zeros((count, 2, 3))
    jacobian_pixel[:, 0, 0] = camera.fx * inv_z
    jacobian_pixel[:, 0, 2] = -camera.fx * x_over_z * inv_z
    jacobian_pixel[:, 1, 1] = camera.fy * inv_z
    jacobian_pixel[:, 1, 2] = -camera.fy * y_over_z * inv_z

    # d(P_c)/d(xi): 3x6 per point = [I | -skew(P_c)].
    jacobian_point = np.zeros((count, 3, 6))
    jacobian_point[:, 0, 0] = 1.0
    jacobian_point[:, 1, 1] = 1.0
    jacobian_point[:, 2, 2] = 1.0
    for i in range(count):
        jacobian_point[i, :, 3:] = -skew(points_camera[i])

    jacobian = np.einsum("nij,njk->nik", jacobian_pixel, jacobian_point)
    return residuals, jacobian, valid


def _residuals_and_jacobian(
    camera: PinholeCamera,
    pose_cw: SE3,
    points_world: np.ndarray,
    pixels: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stacked 2N residuals and the (2N, 6) Jacobian w.r.t. a left twist.

    The update convention is ``T <- exp(xi) @ T`` with twist ordering
    (rho, omega), so d(P_c)/d(xi) = [I | -skew(P_c)].  The rotational
    block is written column-slice-wise over the whole batch — no
    per-point :func:`skew` calls (see
    :func:`_residuals_and_jacobian_reference`).
    """
    points_camera = pose_cw.transform(points_world)
    depths = points_camera[:, 2]
    valid = depths > 1e-6
    safe_z = np.where(valid, depths, 1.0)

    u = camera.fx * points_camera[:, 0] / safe_z + camera.cx
    v = camera.fy * points_camera[:, 1] / safe_z + camera.cy
    residuals = np.stack([u - pixels[:, 0], v - pixels[:, 1]], axis=1)

    inv_z = 1.0 / safe_z
    x_over_z = points_camera[:, 0] * inv_z
    y_over_z = points_camera[:, 1] * inv_z

    count = len(points_world)
    # d(pixel)/d(P_c): 2x3 per point.
    jacobian_pixel = np.zeros((count, 2, 3))
    jacobian_pixel[:, 0, 0] = camera.fx * inv_z
    jacobian_pixel[:, 0, 2] = -camera.fx * x_over_z * inv_z
    jacobian_pixel[:, 1, 1] = camera.fy * inv_z
    jacobian_pixel[:, 1, 2] = -camera.fy * y_over_z * inv_z

    # d(P_c)/d(xi): 3x6 per point = [I | -skew(P_c)], written as six
    # batched column assignments: -skew([x,y,z]) = [[0,z,-y],[-z,0,x],[y,-x,0]].
    x = points_camera[:, 0]
    y = points_camera[:, 1]
    z = points_camera[:, 2]
    jacobian_point = np.zeros((count, 3, 6))
    jacobian_point[:, 0, 0] = 1.0
    jacobian_point[:, 1, 1] = 1.0
    jacobian_point[:, 2, 2] = 1.0
    jacobian_point[:, 0, 4] = z
    jacobian_point[:, 0, 5] = -y
    jacobian_point[:, 1, 3] = -z
    jacobian_point[:, 1, 5] = x
    jacobian_point[:, 2, 3] = y
    jacobian_point[:, 2, 4] = -x

    jacobian = np.einsum("nij,njk->nik", jacobian_pixel, jacobian_point)
    return residuals, jacobian, valid


def _huber_weights(residual_norms: np.ndarray, delta: float | None) -> np.ndarray:
    weights = np.ones_like(residual_norms)
    if delta is None:
        return weights
    large = residual_norms > delta
    weights[large] = delta / residual_norms[large]
    return weights


def refine_pose(
    camera: PinholeCamera,
    initial_pose_cw: SE3,
    points_world: np.ndarray,
    pixels: np.ndarray,
    max_iterations: int = 15,
    huber_delta: float | None = 2.5,
    inlier_threshold: float = 4.0,
    convergence_tol: float = 1e-8,
) -> PnPResult:
    """Gauss-Newton pose refinement from an initial guess.

    Returns the refined pose along with an inlier classification at
    ``inlier_threshold`` pixels, used by callers to decide whether tracking
    succeeded.
    """
    points_world = np.asarray(points_world, dtype=float).reshape(-1, 3)
    pixels = np.asarray(pixels, dtype=float).reshape(-1, 2)
    if len(points_world) < MIN_PNP_POINTS:
        raise ValueError(
            f"refine_pose needs >= {MIN_PNP_POINTS} correspondences, got {len(points_world)}"
        )

    pose = initial_pose_cw
    converged = False
    iteration = 0
    rms = float("inf")
    for iteration in range(1, max_iterations + 1):
        residuals, jacobian, valid = _residuals_and_jacobian(
            camera, pose, points_world, pixels
        )
        residual_norms = np.linalg.norm(residuals, axis=1)
        weights = _huber_weights(residual_norms, huber_delta)
        weights[~valid] = 0.0
        if weights.sum() < MIN_PNP_POINTS:
            break

        # Weighted normal equations: (J^T W J) xi = -J^T W r.
        weighted = weights[:, None, None] * jacobian
        hessian = np.einsum("nij,nik->jk", weighted, jacobian)
        gradient = np.einsum("nij,ni->j", weighted, residuals)
        # Levenberg damping keeps steps sane when geometry is weak.
        hessian += 1e-6 * np.eye(6) * max(np.trace(hessian) / 6.0, 1.0)
        try:
            step = np.linalg.solve(hessian, -gradient)
        except np.linalg.LinAlgError:  # pragma: no cover - singular geometry
            break
        pose = pose.retract(step)
        rms = float(np.sqrt(np.mean(np.square(residual_norms[valid])))) if valid.any() else rms
        if np.linalg.norm(step) < convergence_tol:
            converged = True
            break

    residuals, _, valid = _residuals_and_jacobian(camera, pose, points_world, pixels)
    residual_norms = np.linalg.norm(residuals, axis=1)
    inlier_mask = valid & (residual_norms < inlier_threshold)
    final_rms = (
        float(np.sqrt(np.mean(np.square(residual_norms[inlier_mask]))))
        if inlier_mask.any()
        else float("inf")
    )
    return PnPResult(
        pose_cw=pose,
        inlier_mask=inlier_mask,
        iterations=iteration,
        final_rms=final_rms,
        converged=converged,
    )


def solve_pnp(
    camera: PinholeCamera,
    points_world: np.ndarray,
    pixels: np.ndarray,
    initial_pose_cw: SE3 | None = None,
    ransac_iterations: int = 0,
    rng: np.random.Generator | None = None,
    **refine_kwargs,
) -> PnPResult:
    """Solve camera-from-world pose from 2D-3D correspondences.

    With an initial pose (the common tracking case: previous frame's pose)
    this is a direct Gauss-Newton refinement.  Without one, or when
    ``ransac_iterations`` > 0, minimal 6-point hypotheses are scored first
    and the best seeds the refinement — the cold-start / relocalization path.
    """
    points_world = np.asarray(points_world, dtype=float).reshape(-1, 3)
    pixels = np.asarray(pixels, dtype=float).reshape(-1, 2)
    count = len(points_world)
    if count < MIN_PNP_POINTS:
        raise ValueError(f"solve_pnp needs >= {MIN_PNP_POINTS} correspondences")

    cold_start = initial_pose_cw is None
    if cold_start:
        if count >= 6:
            initial_pose_cw = dlt_pose(camera, points_world, pixels)
        else:
            initial_pose_cw = _initial_pose_guess(points_world)
        # Descend without a robust kernel first: with huge initial
        # residuals Huber downweighting stalls Gauss-Newton.
        warmup = refine_pose(
            camera,
            initial_pose_cw,
            points_world,
            pixels,
            max_iterations=60,
            huber_delta=None,
            inlier_threshold=refine_kwargs.get("inlier_threshold", 4.0),
        )
        initial_pose_cw = warmup.pose_cw

    if ransac_iterations > 0 and count >= 6:
        from .triangulation import reprojection_errors, reprojection_errors_batch

        rng = np.random.default_rng(0) if rng is None else rng
        threshold = refine_kwargs.get("inlier_threshold", 4.0)
        best_pose = initial_pose_cw
        best_mask = (
            reprojection_errors(camera.matrix, initial_pose_cw, points_world, pixels)
            < threshold
        )
        best_inliers = int(best_mask.sum())
        # Fit every minimal-sample hypothesis first (the rng.choice order
        # is the contract), then score all of them against the full point
        # set in one batched reprojection.  argmax picks the first
        # occurrence of the max count — the same winner the incremental
        # strictly-greater scan of _score_hypotheses_reference keeps.
        candidates: list[SE3] = []
        for _ in range(ransac_iterations):
            sample = rng.choice(count, size=6, replace=False)
            try:
                candidate = refine_pose(
                    camera,
                    initial_pose_cw,
                    points_world[sample],
                    pixels[sample],
                    max_iterations=25,
                    huber_delta=None,
                )
            except ValueError:  # pragma: no cover
                continue
            candidates.append(candidate.pose_cw)
        if candidates:
            errors = reprojection_errors_batch(
                camera.matrix, candidates, points_world, pixels
            )
            masks = errors < threshold
            inlier_counts = masks.sum(axis=1)
            winner = int(np.argmax(inlier_counts))
            if int(inlier_counts[winner]) > best_inliers:
                best_inliers = int(inlier_counts[winner])
                best_pose = candidates[winner]
                best_mask = masks[winner]
        # Refine on the consensus set only: refining on all points with a
        # robust kernel can still slide into a dominant-outlier basin
        # (e.g. the mirror solution of a near-planar point cloud).
        if best_mask.sum() >= MIN_PNP_POINTS:
            refined = refine_pose(
                camera,
                best_pose,
                points_world[best_mask],
                pixels[best_mask],
                **refine_kwargs,
            )
            final_errors = reprojection_errors(
                camera.matrix, refined.pose_cw, points_world, pixels
            )
            inlier_mask = final_errors < threshold
            return PnPResult(
                pose_cw=refined.pose_cw,
                inlier_mask=inlier_mask,
                iterations=refined.iterations,
                final_rms=(
                    float(np.sqrt(np.mean(np.square(final_errors[inlier_mask]))))
                    if inlier_mask.any()
                    else float("inf")
                ),
                converged=refined.converged,
            )
        initial_pose_cw = best_pose

    return refine_pose(camera, initial_pose_cw, points_world, pixels, **refine_kwargs)


def _score_hypotheses_reference(
    camera_matrix: np.ndarray,
    poses_cw: list[SE3],
    points_world: np.ndarray,
    pixels: np.ndarray,
) -> np.ndarray:
    """Per-candidate scoring loop — the pre-vectorization RANSAC inner
    loop, kept as reference for ``reprojection_errors_batch``
    (equivalence tests; ``ba.ransac_score`` micro cell)."""
    from .triangulation import reprojection_errors

    if not poses_cw:
        return np.zeros((0, len(points_world)))
    return np.stack(
        [
            reprojection_errors(camera_matrix, pose, points_world, pixels)
            for pose in poses_cw
        ]
    )


def _initial_pose_guess(points_world: np.ndarray) -> SE3:
    """Crude cold-start guess: camera looking at the point cloud centroid."""
    centroid = points_world.mean(axis=0)
    spread = float(np.max(np.linalg.norm(points_world - centroid, axis=1)))
    eye = centroid - np.array([0.0, 0.0, max(3.0 * spread, 1.0)])
    return SE3.look_at(eye, centroid)


def _dlt_rows_reference(
    normalized: np.ndarray, homogeneous: np.ndarray
) -> np.ndarray:
    """Per-correspondence DLT row assembly — scalar reference for
    :func:`_dlt_rows` (``ba.dlt_rows`` micro cell)."""
    rows = []
    for (x, y), point_h in zip(normalized, homogeneous):
        rows.append(np.concatenate([point_h, np.zeros(4), -x * point_h]))
        rows.append(np.concatenate([np.zeros(4), point_h, -y * point_h]))
    return np.asarray(rows)


def _dlt_rows(normalized: np.ndarray, homogeneous: np.ndarray) -> np.ndarray:
    """Interleaved (2N, 12) DLT constraint matrix, assembled by four
    strided block writes instead of 2N concatenations."""
    count = len(homogeneous)
    rows = np.zeros((2 * count, 12))
    rows[0::2, 0:4] = homogeneous
    rows[0::2, 8:12] = -normalized[:, :1] * homogeneous
    rows[1::2, 4:8] = homogeneous
    rows[1::2, 8:12] = -normalized[:, 1:2] * homogeneous
    return rows


def dlt_pose(
    camera: PinholeCamera, points_world: np.ndarray, pixels: np.ndarray
) -> SE3:
    """Linear (DLT) camera pose from >= 6 2D-3D correspondences.

    Solves the 3x4 projection matrix in normalized image coordinates and
    projects its left 3x3 block onto SO(3).  Accuracy is limited (algebraic
    cost, no noise model) but it is an excellent Gauss-Newton seed.
    """
    points_world = np.asarray(points_world, dtype=float).reshape(-1, 3)
    pixels = np.asarray(pixels, dtype=float).reshape(-1, 2)
    if len(points_world) < 6:
        raise ValueError("dlt_pose needs >= 6 correspondences")
    normalized = camera.normalize(pixels)
    homogeneous = np.column_stack([points_world, np.ones(len(points_world))])
    _, _, vt = np.linalg.svd(_dlt_rows(normalized, homogeneous))
    projection = vt[-1].reshape(3, 4)
    # Fix the overall sign so points land in front of the camera.
    depths = homogeneous @ projection[2]
    if np.median(depths) < 0:
        projection = -projection
    u, singular, vt_r = np.linalg.svd(projection[:, :3])
    rotation = u @ vt_r
    if np.linalg.det(rotation) < 0:
        rotation = -rotation
        projection = -projection  # keep P consistent with the flipped R
        u, singular, vt_r = np.linalg.svd(projection[:, :3])
        rotation = u @ vt_r
        if np.linalg.det(rotation) < 0:  # pragma: no cover - degenerate
            rotation = u @ np.diag([1.0, 1.0, -1.0]) @ vt_r
    scale = float(np.mean(singular))
    translation = projection[:, 3] / max(scale, 1e-12)
    return SE3(rotation, translation)
