"""Camera geometry substrate: SE(3), pinhole projection, epipolar two-view
initialization, triangulation and motion-only bundle adjustment (PnP)."""

from .se3 import SE3, skew, so3_exp, so3_log
from .camera import PinholeCamera
from .epipolar import (
    TwoViewGeometry,
    decompose_essential,
    eight_point_fundamental,
    essential_from_fundamental,
    fundamental_ransac,
    recover_relative_pose,
    sampson_distance,
)
from .triangulation import reprojection_errors, triangulate_dlt, triangulate_midpoint
from .bundle_adjustment import MIN_PNP_POINTS, PnPResult, dlt_pose, refine_pose, solve_pnp

__all__ = [
    "SE3",
    "skew",
    "so3_exp",
    "so3_log",
    "PinholeCamera",
    "TwoViewGeometry",
    "decompose_essential",
    "eight_point_fundamental",
    "essential_from_fundamental",
    "fundamental_ransac",
    "recover_relative_pose",
    "sampson_distance",
    "reprojection_errors",
    "triangulate_dlt",
    "triangulate_midpoint",
    "MIN_PNP_POINTS",
    "PnPResult",
    "dlt_pose",
    "refine_pose",
    "solve_pnp",
]
