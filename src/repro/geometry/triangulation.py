"""Triangulation of 3-D points from two views.

Implements the depth recovery of Eq. (3): given matched normalized rays in
two frames and the relative pose between them, solve for the 3-D point.
Two solvers are provided — the linear DLT used for map creation and a fast
midpoint method used during initialization candidate scoring.
"""

from __future__ import annotations

import numpy as np

from .se3 import SE3

__all__ = [
    "triangulate_dlt",
    "triangulate_midpoint",
    "reprojection_errors",
    "reprojection_errors_batch",
]


def _rays_from_normalized(normalized: np.ndarray) -> np.ndarray:
    """Append z=1 to normalized image coordinates to get direction vectors."""
    normalized = np.atleast_2d(np.asarray(normalized, dtype=float))
    return np.column_stack([normalized, np.ones(len(normalized))])


def triangulate_midpoint(
    norm0: np.ndarray,
    norm1: np.ndarray,
    pose_10: SE3,
    min_depth: float = 1e-3,
) -> tuple[np.ndarray, np.ndarray]:
    """Midpoint triangulation of matched normalized points.

    Parameters
    ----------
    norm0, norm1:
        (N, 2) normalized coordinates in frame 0 and frame 1.
    pose_10:
        Frame-1-from-frame-0 transform.

    Returns
    -------
    points:
        (N, 3) points in frame-0 coordinates (garbage where invalid).
    valid:
        Boolean cheirality mask: positive depth in both cameras.
    """
    rays0 = _rays_from_normalized(norm0)
    rays1_in_1 = _rays_from_normalized(norm1)
    pose_01 = pose_10.inverse()
    # Express frame-1 rays in frame-0 coordinates.
    directions1 = rays1_in_1 @ pose_01.rotation.T
    origin1 = pose_01.translation

    # Solve min over (s0, s1) of |s0*d0 - (o1 + s1*d1)|^2 per match.
    d0_dot_d0 = np.sum(rays0 * rays0, axis=1)
    d1_dot_d1 = np.sum(directions1 * directions1, axis=1)
    d0_dot_d1 = np.sum(rays0 * directions1, axis=1)
    d0_dot_o = rays0 @ origin1
    d1_dot_o = directions1 @ origin1

    denominator = d0_dot_d0 * d1_dot_d1 - d0_dot_d1 * d0_dot_d1
    safe_denominator = np.where(np.abs(denominator) < 1e-12, 1e-12, denominator)
    s0 = (d1_dot_d1 * d0_dot_o - d0_dot_d1 * d1_dot_o) / safe_denominator
    s1 = (d0_dot_d1 * d0_dot_o - d0_dot_d0 * d1_dot_o) / safe_denominator

    points0_side = rays0 * s0[:, None]
    points1_side = origin1 + directions1 * s1[:, None]
    points = 0.5 * (points0_side + points1_side)

    depths0 = points[:, 2]
    depths1 = (pose_10.transform(points))[:, 2]
    valid = (
        (depths0 > min_depth)
        & (depths1 > min_depth)
        & (np.abs(denominator) > 1e-12)
    )
    return points, valid


def triangulate_dlt(
    norm0: np.ndarray,
    norm1: np.ndarray,
    pose_0w: SE3,
    pose_1w: SE3,
) -> tuple[np.ndarray, np.ndarray]:
    """Linear (DLT) triangulation into *world* coordinates.

    Each view contributes two rows to ``A X = 0`` built from its 3x4
    projection matrix in normalized coordinates; solved per-point by SVD.

    Returns world points and a cheirality validity mask.
    """
    norm0 = np.atleast_2d(np.asarray(norm0, dtype=float))
    norm1 = np.atleast_2d(np.asarray(norm1, dtype=float))
    projection0 = np.hstack([pose_0w.rotation, pose_0w.translation[:, None]])
    projection1 = np.hstack([pose_1w.rotation, pose_1w.translation[:, None]])

    count = len(norm0)
    points = np.zeros((count, 3))
    valid = np.zeros(count, dtype=bool)
    for i in range(count):
        a_matrix = np.stack(
            [
                norm0[i, 0] * projection0[2] - projection0[0],
                norm0[i, 1] * projection0[2] - projection0[1],
                norm1[i, 0] * projection1[2] - projection1[0],
                norm1[i, 1] * projection1[2] - projection1[1],
            ]
        )
        _, _, vt = np.linalg.svd(a_matrix)
        homogeneous = vt[-1]
        if abs(homogeneous[3]) < 1e-12:
            continue
        point = homogeneous[:3] / homogeneous[3]
        depth0 = (pose_0w.transform(point))[2]
        depth1 = (pose_1w.transform(point))[2]
        if depth0 > 1e-6 and depth1 > 1e-6:
            points[i] = point
            valid[i] = True
    return points, valid


def reprojection_errors(
    camera_matrix: np.ndarray,
    pose_cw: SE3,
    points_world: np.ndarray,
    pixels: np.ndarray,
) -> np.ndarray:
    """Per-point pixel reprojection error norm (the residual of Eq. 4)."""
    points_camera = pose_cw.transform(np.asarray(points_world, dtype=float))
    depths = np.maximum(points_camera[:, 2], 1e-12)
    projected = (points_camera @ camera_matrix.T)[:, :2] / depths[:, None]
    return np.linalg.norm(projected - np.asarray(pixels, dtype=float), axis=1)


def reprojection_errors_batch(
    camera_matrix: np.ndarray,
    poses_cw: list[SE3],
    points_world: np.ndarray,
    pixels: np.ndarray,
) -> np.ndarray:
    """:func:`reprojection_errors` for many candidate poses at once.

    Returns a (C, N) matrix of per-pose, per-point error norms.  One
    broadcasted matmul per stage replaces C full reprojection passes —
    the RANSAC hypothesis-scoring hot path of
    :func:`repro.geometry.bundle_adjustment.solve_pnp`.
    """
    points_world = np.asarray(points_world, dtype=float)
    pixels = np.asarray(pixels, dtype=float)
    if not poses_cw:
        return np.zeros((0, len(points_world)))
    rotations = np.stack([pose.rotation for pose in poses_cw])  # (C, 3, 3)
    translations = np.stack([pose.translation for pose in poses_cw])  # (C, 3)
    points_camera = (
        points_world @ rotations.transpose(0, 2, 1) + translations[:, None, :]
    )
    depths = np.maximum(points_camera[..., 2], 1e-12)
    projected = (points_camera @ camera_matrix.T)[..., :2] / depths[..., None]
    return np.linalg.norm(projected - pixels[None], axis=2)
