"""The labeled 3-D map.

Unlike a vanilla SLAM map, every point in edgeIS's map carries an instance
annotation (Section III-A): ``label is None`` means the point has not been
covered by any segmentation result yet ("unlabeled", the yellow points of
Fig. 8b), ``label == 0`` means confirmed background, and ``label > 0``
names the object instance the point belongs to.

Points belonging to an object are stored in that *object's* frame, anchored
to the object pose at its first observation.  Background points live in the
world frame.  This is what lets the tracker solve the device pose relative
to each object independently (Eq. 6-7) and keeps moving-object points
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.se3 import SE3
from ..image.masks import InstanceMask

__all__ = ["MapPoint", "KeyframeRecord", "LabeledMap"]

BACKGROUND = 0


@dataclass
class MapPoint:
    """One triangulated 3-D point with an instance annotation.

    ``first_observation``/``last_observation`` hold ``(pose_cw, pixel)``
    pairs used for structure refinement: as the baseline between them
    grows, the point is re-triangulated with better parallax
    (``parallax_quality_deg`` records the best parallax achieved so far).
    """

    point_id: int
    position: np.ndarray  # world frame if label in (None, 0); object frame otherwise
    descriptor: np.ndarray  # (32,) uint8
    label: int | None = None  # None = unlabeled, 0 = background, >0 = instance
    class_label: str = "unknown"
    first_frame: int = 0
    last_seen_frame: int = 0
    observation_count: int = 1
    first_observation: tuple[SE3, np.ndarray] | None = None
    last_observation: tuple[SE3, np.ndarray] | None = None
    parallax_quality_deg: float = 0.0
    outlier_count: int = 0  # times this point failed the pose-inlier test

    @property
    def is_unlabeled(self) -> bool:
        return self.label is None

    @property
    def is_background(self) -> bool:
        return self.label == BACKGROUND

    @property
    def is_object(self) -> bool:
        return self.label is not None and self.label > 0


@dataclass
class KeyframeRecord:
    """A frame whose observations the map remembers.

    ``point_ids[i]`` is the map point matched to ``pixels[i]`` (or -1 for
    features that matched nothing).  ``masks`` arrives asynchronously when
    the edge returns the frame's segmentation; ``None`` until then.
    """

    frame_index: int
    timestamp: float
    pose_cw: SE3
    pixels: np.ndarray  # (N, 2) feature pixels
    point_ids: np.ndarray  # (N,) int
    masks: list[InstanceMask] | None = None
    object_poses_co: dict[int, SE3] = field(default_factory=dict)

    @property
    def has_masks(self) -> bool:
        return self.masks is not None

    def mask_for(self, instance_id: int) -> InstanceMask | None:
        if self.masks is None:
            return None
        for mask in self.masks:
            if mask.instance_id == instance_id:
                return mask
        return None


class LabeledMap:
    """Point registry + keyframe registry with label bookkeeping."""

    def __init__(self, max_points: int = 4000, cull_after_frames: int = 90):
        self.max_points = max_points
        self.cull_after_frames = cull_after_frames
        self._points: dict[int, MapPoint] = {}
        self._keyframes: dict[int, KeyframeRecord] = {}
        self._next_point_id = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped whenever point positions or labels
        change — consumers (mask transfer) key derived-array caches on it."""
        return self._version

    def bump_version(self) -> None:
        """Invalidate caches after mutating a point's ``position`` in
        place (structure refinement, object re-anchoring)."""
        self._version += 1

    # ------------------------------------------------------------------
    # Points
    # ------------------------------------------------------------------
    def add_point(
        self,
        position: np.ndarray,
        descriptor: np.ndarray,
        label: int | None = None,
        class_label: str = "unknown",
        frame_index: int = 0,
    ) -> MapPoint:
        point = MapPoint(
            point_id=self._next_point_id,
            position=np.asarray(position, dtype=float).copy(),
            descriptor=np.asarray(descriptor, dtype=np.uint8).copy(),
            label=label,
            class_label=class_label,
            first_frame=frame_index,
            last_seen_frame=frame_index,
        )
        self._points[point.point_id] = point
        self._next_point_id += 1
        self._version += 1
        return point

    def get(self, point_id: int) -> MapPoint:
        return self._points[point_id]

    def __contains__(self, point_id: int) -> bool:
        return point_id in self._points

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> list[MapPoint]:
        return list(self._points.values())

    def points_with_label(self, label: int | None) -> list[MapPoint]:
        return [p for p in self._points.values() if p.label == label]

    def object_labels(self) -> list[int]:
        labels = {p.label for p in self._points.values() if p.is_object}
        return sorted(labels)

    def descriptor_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """(point_ids, (N, 32) descriptor stack) over all live points."""
        if not self._points:
            return np.zeros(0, dtype=int), np.zeros((0, 32), dtype=np.uint8)
        ids = np.fromiter(self._points.keys(), dtype=int, count=len(self._points))
        descriptors = np.stack([self._points[i].descriptor for i in ids])
        return ids, descriptors

    def touch(self, point_id: int, frame_index: int) -> None:
        point = self._points[point_id]
        point.last_seen_frame = max(point.last_seen_frame, frame_index)
        point.observation_count += 1

    def relabel(self, point_id: int, label: int, class_label: str) -> None:
        point = self._points[point_id]
        point.label = label
        point.class_label = class_label
        self._version += 1

    def unlabeled_fraction(self) -> float:
        if not self._points:
            return 1.0
        unlabeled = sum(1 for p in self._points.values() if p.is_unlabeled)
        return unlabeled / len(self._points)

    # ------------------------------------------------------------------
    # Keyframes
    # ------------------------------------------------------------------
    def add_keyframe(self, record: KeyframeRecord) -> None:
        self._keyframes[record.frame_index] = record

    def keyframe(self, frame_index: int) -> KeyframeRecord | None:
        return self._keyframes.get(frame_index)

    @property
    def keyframes(self) -> list[KeyframeRecord]:
        return [self._keyframes[k] for k in sorted(self._keyframes)]

    def keyframes_with_masks(self) -> list[KeyframeRecord]:
        return [k for k in self.keyframes if k.has_masks]

    # ------------------------------------------------------------------
    # Memory management (the paper's "additional clearing algorithm",
    # Section VI-F1: periodically clear data of low utilization).
    # ------------------------------------------------------------------
    def cull(self, current_frame: int) -> int:
        """Drop stale points and overflow beyond ``max_points``.

        Returns the number of points removed.  Keyframes older than the
        oldest retained point's first frame are dropped too, except
        keyframes that still hold the freshest mask of some instance.
        """
        removed = 0
        stale_cutoff = current_frame - self.cull_after_frames
        for point_id in [
            pid
            for pid, point in self._points.items()
            if point.last_seen_frame < stale_cutoff
            # Chronic outliers (ghost points from a bad pose episode or
            # duplicate triangulations) get flushed once the evidence is in.
            or (
                point.observation_count >= 6
                and point.outlier_count > 0.6 * point.observation_count
            )
        ]:
            del self._points[point_id]
            removed += 1

        if len(self._points) > self.max_points:
            # Evict least-recently-seen, least-observed first.
            ranked = sorted(
                self._points.values(),
                key=lambda p: (p.last_seen_frame, p.observation_count),
            )
            overflow = len(self._points) - self.max_points
            for point in ranked[:overflow]:
                del self._points[point.point_id]
                removed += 1

        self._cull_keyframes(current_frame)
        if removed:
            self._version += 1
        return removed

    def _cull_keyframes(self, current_frame: int) -> None:
        # Keep the newest masked keyframe per instance, plus anything recent.
        keep: set[int] = set()
        newest_mask_frame: dict[int, int] = {}
        for record in self.keyframes:
            if record.masks is None:
                continue
            for mask in record.masks:
                if record.frame_index >= newest_mask_frame.get(mask.instance_id, -1):
                    newest_mask_frame[mask.instance_id] = record.frame_index
        keep.update(newest_mask_frame.values())
        recent_cutoff = current_frame - 2 * self.cull_after_frames
        for frame_index in list(self._keyframes):
            if frame_index < recent_cutoff and frame_index not in keep:
                del self._keyframes[frame_index]

    def memory_bytes(self) -> int:
        """Rough live-memory estimate for the resource model (Fig. 15)."""
        point_bytes = len(self._points) * (3 * 8 + 32 + 64)
        keyframe_bytes = 0
        for record in self._keyframes.values():
            keyframe_bytes += record.pixels.nbytes + record.point_ids.nbytes + 256
            if record.masks:
                keyframe_bytes += sum(m.mask.size // 8 for m in record.masks)
        return point_bytes + keyframe_bytes
