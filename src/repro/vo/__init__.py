"""Visual odometry substrate: labeled 3-D map, feature frontends and the
motion-aware tracker with per-object pose estimation (paper Section III)."""

from .map import BACKGROUND, KeyframeRecord, LabeledMap, MapPoint
from .frontend import FastBriefFrontend, Observation, OracleFrontend
from .odometry import ObjectTrack, TrackingResult, VisualOdometry, VOConfig, VOState

__all__ = [
    "BACKGROUND",
    "KeyframeRecord",
    "LabeledMap",
    "MapPoint",
    "FastBriefFrontend",
    "Observation",
    "OracleFrontend",
    "ObjectTrack",
    "TrackingResult",
    "VisualOdometry",
    "VOConfig",
    "VOState",
]
