"""Visual odometry with labeled-map object tracking (Sections III-A, III-B).

The pipeline per frame:

1. match the frame's features against map points predicted to be visible;
2. solve the device pose by motion-only bundle adjustment over background
   (and not-yet-labeled) points — Eq. (4);
3. for every object with >= 3 matched points, solve the device pose
   *relative to that object* (``T_co``) and derive the object's world pose
   ``T_wo = T_cw^-1 . T_co`` — Eq. (6)-(7); flag it as moving when that
   pose drifts;
4. on keyframes, triangulate new unlabeled points from two-view matches.

Segmentation results from the edge arrive asynchronously through
:meth:`VisualOdometry.apply_segmentation`, which labels map points through
the stored keyframe observations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..features.matcher import match_descriptors
from ..geometry.bundle_adjustment import MIN_PNP_POINTS, refine_pose, solve_pnp
from ..geometry.camera import PinholeCamera
from ..geometry.epipolar import recover_relative_pose
from ..geometry.se3 import SE3
from ..geometry.triangulation import reprojection_errors, triangulate_dlt
from ..image.masks import InstanceMask
from .frontend import Observation
from .map import BACKGROUND, KeyframeRecord, LabeledMap

__all__ = ["VOState", "VOConfig", "ObjectTrack", "TrackingResult", "VisualOdometry"]


class VOState(Enum):
    INITIALIZING = "initializing"
    TRACKING = "tracking"
    LOST = "lost"


@dataclass
class VOConfig:
    """Tunables of the odometry; defaults follow the paper where stated."""

    min_init_matches: int = 40
    min_init_parallax_deg: float = 1.5
    min_init_displacement_px: float = 3.0
    min_track_matches: int = 12
    match_max_distance: int = 64
    match_gate_px: float = 40.0
    keyframe_interval: int = 8
    max_map_points: int = 4000
    cull_after_frames: int = 120
    min_object_points: int = MIN_PNP_POINTS  # the paper's ">= 3 pairs"
    dynamic_translation_fraction: float = 0.02  # of median scene depth
    dynamic_rotation_threshold_deg: float = 2.0
    object_motion_px: float = 3.0  # image-space motion evidence threshold
    recent_frame_buffer: int = 64
    max_new_points_per_keyframe: int = 160


@dataclass
class ObjectTrack:
    """Tracked state of one annotated object instance."""

    instance_id: int
    class_label: str
    pose_wo: SE3 = field(default_factory=SE3.identity)
    last_update_frame: int = -1
    is_moving: bool = False
    accumulated_motion: float = 0.0  # translation since last offload trigger
    still_streak: int = 0  # consecutive updates below the motion threshold

    def pose_co(self, pose_cw: SE3) -> SE3:
        """Camera-from-object pose implied by the current estimates."""
        return pose_cw @ self.pose_wo


@dataclass
class TrackingResult:
    """Outcome of processing one frame."""

    frame_index: int
    state: VOState
    pose_cw: SE3 | None
    object_poses_wo: dict[int, SE3]
    matched_point_ids: np.ndarray  # per-feature map point id, -1 if unmatched
    unlabeled_match_fraction: float
    num_matches: int
    moving_objects: set[int] = field(default_factory=set)

    @property
    def is_tracking(self) -> bool:
        return self.state is VOState.TRACKING


@dataclass
class _RecentFrame:
    frame_index: int
    timestamp: float
    observation: Observation
    pose_cw: SE3 | None
    matched_point_ids: np.ndarray


class VisualOdometry:
    """The motion-aware mobile tracker of edgeIS."""

    def __init__(
        self,
        camera: PinholeCamera,
        config: VOConfig | None = None,
        rng: np.random.Generator | None = None,
        tracer=None,
    ):
        from ..obs.trace import NULL_TRACER

        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.camera = camera
        self.config = config or VOConfig()
        self.map = LabeledMap(
            max_points=self.config.max_map_points,
            cull_after_frames=self.config.cull_after_frames,
        )
        self.state = VOState.INITIALIZING
        self.objects: dict[int, ObjectTrack] = {}
        self._rng = rng or np.random.default_rng(0)
        self._pose_cw: SE3 | None = None
        self._velocity = SE3.identity()  # left-delta per frame
        self._recent: deque[_RecentFrame] = deque(maxlen=self.config.recent_frame_buffer)
        self._init_reference: _RecentFrame | None = None
        self._last_keyframe_index = -(10**9)
        self._frames_since_lost = 0
        self._consecutive_tracked = 0
        self._scene_scale0: float | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def process_frame(
        self, frame_index: int, timestamp: float, observation: Observation
    ) -> TrackingResult:
        previous_state = self.state
        if self.state is VOState.INITIALIZING:
            result = self._try_initialize(frame_index, timestamp, observation)
        else:
            result = self._track(frame_index, timestamp, observation)
        self._remember(frame_index, timestamp, observation, result)
        if self.state is not previous_state:
            self._tracer.event(
                "vo.state_transition",
                lane="client",
                frame=frame_index,
                from_state=previous_state.value,
                to_state=self.state.value,
                num_matches=result.num_matches,
            )
        return result

    def promote_keyframe(self, frame_index: int) -> bool:
        """Register a recently processed frame as a keyframe.

        The transmission module calls this for every frame it offloads so
        that the returned masks can be applied through the frame's stored
        observation.  Returns False if the frame fell out of the buffer.
        """
        recent = self._find_recent(frame_index)
        if recent is None or recent.pose_cw is None:
            return False
        if self.map.keyframe(frame_index) is not None:
            return True
        record = KeyframeRecord(
            frame_index=frame_index,
            timestamp=recent.timestamp,
            pose_cw=recent.pose_cw,
            pixels=recent.observation.pixels.copy(),
            point_ids=recent.matched_point_ids.copy(),
        )
        self.map.add_keyframe(record)
        self._tracer.event(
            "vo.keyframe_promoted",
            lane="client",
            frame=frame_index,
            num_points=int(len(record.point_ids)),
        )
        return True

    def apply_segmentation(self, frame_index: int, masks: list[InstanceMask]) -> bool:
        """Label map points with a segmentation result for a keyframe.

        Features whose pixel lies inside a mask relabel their map point to
        that instance; all other matched points become background.  Object
        points are re-anchored into the object's frame.
        """
        record = self.map.keyframe(frame_index)
        if record is None:
            if not self.promote_keyframe(frame_index):
                return False
            record = self.map.keyframe(frame_index)
            assert record is not None
        record.masks = [m.copy() for m in masks]

        # Ensure every annotated instance has a track.
        for mask in masks:
            if mask.instance_id not in self.objects:
                self.objects[mask.instance_id] = ObjectTrack(
                    instance_id=mask.instance_id, class_label=mask.class_label
                )
            self.objects[mask.instance_id].class_label = mask.class_label

        height = masks[0].mask.shape[0] if masks else None
        for feature_index, point_id in enumerate(record.point_ids):
            if point_id < 0 or point_id not in self.map:
                continue
            pixel = record.pixels[feature_index]
            label = BACKGROUND
            class_label = "background"
            for mask in masks:
                row = int(round(pixel[1]))
                col = int(round(pixel[0]))
                if (
                    0 <= row < mask.mask.shape[0]
                    and 0 <= col < mask.mask.shape[1]
                    and mask.mask[row, col]
                ):
                    label = mask.instance_id
                    class_label = mask.class_label
                    break
            point = self.map.get(int(point_id))
            if point.label == label:
                continue
            if label != BACKGROUND:
                track = self.objects[label]
                # Re-anchor into the object frame at its current pose.
                if point.label is None or point.label == BACKGROUND:
                    point.position = track.pose_wo.inverse().transform(point.position)
            elif point.is_object:
                # Demoted from object to background: back to world frame.
                previous = self.objects.get(point.label)
                if previous is not None:
                    point.position = previous.pose_wo.transform(point.position)
            self.map.relabel(int(point_id), label, class_label)

        # Record the camera-from-object pose at this keyframe for transfer.
        if record.pose_cw is not None:
            for mask in masks:
                track = self.objects[mask.instance_id]
                record.object_poses_co[mask.instance_id] = track.pose_co(record.pose_cw)
        return True

    @property
    def pose_cw(self) -> SE3 | None:
        return self._pose_cw

    def scene_depth(self) -> float:
        """Median depth of background points in the current view (scale
        reference for motion thresholds).

        Clamped to a band around the scale observed at initialization —
        an inflating estimate would otherwise loosen every motion gate
        exactly when the pose starts running away.
        """
        if self._pose_cw is None:
            return 1.0
        background = [
            p.position for p in self.map.points if p.is_background or p.is_unlabeled
        ]
        if not background:
            return 1.0
        depths = self._pose_cw.transform(np.asarray(background))[:, 2]
        positive = depths[depths > 0]
        if len(positive) == 0:
            return 1.0
        depth = float(np.median(positive))
        if self._scene_scale0 is None:
            self._scene_scale0 = depth
        return float(np.clip(depth, 0.4 * self._scene_scale0, 2.5 * self._scene_scale0))

    # ------------------------------------------------------------------
    # Initialization (Section III-A)
    # ------------------------------------------------------------------
    def _try_initialize(
        self, frame_index: int, timestamp: float, observation: Observation
    ) -> TrackingResult:
        failure = TrackingResult(
            frame_index=frame_index,
            state=VOState.INITIALIZING,
            pose_cw=None,
            object_poses_wo={},
            matched_point_ids=np.full(len(observation), -1, dtype=int),
            unlabeled_match_fraction=1.0,
            num_matches=0,
        )
        if self._init_reference is None or len(self._init_reference.observation) < 8:
            self._set_init_reference(frame_index, timestamp, observation)
            return failure

        reference = self._init_reference
        matches = match_descriptors(
            reference.observation.descriptors,
            observation.descriptors,
            max_distance=self.config.match_max_distance,
        )
        if len(matches) < self.config.min_init_matches:
            # Visual overlap with the reference is dying: restart from here.
            self._set_init_reference(frame_index, timestamp, observation)
            return failure

        points0 = np.array([reference.observation.pixels[m.query_index] for m in matches])
        points1 = np.array([observation.pixels[m.train_index] for m in matches])
        # "Enough parallax" pre-check (Section III-A): without real image
        # displacement the fundamental matrix is noise-dominated.
        displacement = np.median(np.linalg.norm(points1 - points0, axis=1))
        if displacement < self.config.min_init_displacement_px:
            return failure
        try:
            geometry = recover_relative_pose(self.camera, points0, points1, rng=self._rng)
        except ValueError:
            return failure
        if (
            geometry.median_parallax_deg < self.config.min_init_parallax_deg
            or len(geometry.points_3d) < self.config.min_init_matches // 2
        ):
            return failure

        # Build the map: world frame := reference camera frame.
        matched_ids = np.full(len(observation), -1, dtype=int)
        reference_ids = np.full(len(reference.observation), -1, dtype=int)
        for match_row, point_world in zip(
            geometry.point_indices, geometry.points_3d
        ):
            match = matches[match_row]
            point = self.map.add_point(
                position=point_world,
                descriptor=observation.descriptors[match.train_index],
                label=None,
                frame_index=frame_index,
            )
            point.first_observation = (
                SE3.identity(),
                reference.observation.pixels[match.query_index].copy(),
            )
            point.last_observation = (
                geometry.pose_10,
                observation.pixels[match.train_index].copy(),
            )
            point.parallax_quality_deg = geometry.median_parallax_deg
            matched_ids[match.train_index] = point.point_id
            reference_ids[match.query_index] = point.point_id

        self._pose_cw = geometry.pose_10  # current camera from world(=ref frame)
        self.state = VOState.TRACKING
        frame_gap = max(frame_index - reference.frame_index, 1)
        self._velocity = SE3.exp(geometry.pose_10.log() / frame_gap)

        self.map.add_keyframe(
            KeyframeRecord(
                frame_index=reference.frame_index,
                timestamp=reference.timestamp,
                pose_cw=SE3.identity(),
                pixels=reference.observation.pixels.copy(),
                point_ids=reference_ids,
            )
        )
        self.map.add_keyframe(
            KeyframeRecord(
                frame_index=frame_index,
                timestamp=timestamp,
                pose_cw=self._pose_cw,
                pixels=observation.pixels.copy(),
                point_ids=matched_ids,
            )
        )
        self._last_keyframe_index = frame_index
        return TrackingResult(
            frame_index=frame_index,
            state=VOState.TRACKING,
            pose_cw=self._pose_cw,
            object_poses_wo={},
            matched_point_ids=matched_ids,
            unlabeled_match_fraction=1.0,
            num_matches=len(geometry.point_indices),
        )

    def _set_init_reference(
        self, frame_index: int, timestamp: float, observation: Observation
    ) -> None:
        self._init_reference = _RecentFrame(
            frame_index=frame_index,
            timestamp=timestamp,
            observation=observation,
            pose_cw=None,
            matched_point_ids=np.full(len(observation), -1, dtype=int),
        )

    # ------------------------------------------------------------------
    # Tracking (Section III-B)
    # ------------------------------------------------------------------
    def _track(
        self, frame_index: int, timestamp: float, observation: Observation
    ) -> TrackingResult:
        relocalizing = self.state is VOState.LOST
        # When lost, the velocity model is suspect: predict from the last
        # good pose and widen the match gate instead.
        predicted_pose = self._pose_cw if relocalizing else self._velocity @ self._pose_cw
        gate = self.config.match_gate_px * (3.0 if relocalizing else 1.0)
        point_ids, positions_world, labels = self._visible_points(predicted_pose)

        matched_ids = np.full(len(observation), -1, dtype=int)
        if len(point_ids) == 0 or len(observation) == 0:
            return self._declare_lost(frame_index, matched_ids)

        descriptors = np.stack([self.map.get(int(i)).descriptor for i in point_ids])
        matches = match_descriptors(
            observation.descriptors,
            descriptors,
            max_distance=self.config.match_max_distance,
        )
        # Geometric gating against the predicted projections.
        projected, _ = self.camera.project_world(predicted_pose, positions_world)
        accepted = []
        for match in matches:
            error = np.linalg.norm(
                observation.pixels[match.query_index] - projected[match.train_index]
            )
            if error <= gate:
                accepted.append(match)
        if len(accepted) < self.config.min_track_matches:
            return self._declare_lost(frame_index, matched_ids)

        feature_rows = np.array([m.query_index for m in accepted])
        map_rows = np.array([m.train_index for m in accepted])
        matched_ids[feature_rows] = point_ids[map_rows]

        # Device pose from all *static* structure: background points,
        # unlabeled points (robust kernel absorbs moving-object points
        # hiding among them) and points of objects currently classified as
        # non-moving — excluding only confirmed movers.  Object-dense
        # scenes would starve a background-only solve.
        def is_static(label) -> bool:
            if label is None or label == BACKGROUND:
                return True
            track = self.objects.get(label)
            return track is not None and not track.is_moving

        static_rows = np.array(
            [i for i, row in enumerate(map_rows) if is_static(labels[row])]
        )
        if len(static_rows) < self.config.min_track_matches:
            return self._declare_lost(frame_index, matched_ids)
        static_points = positions_world[map_rows[static_rows]]
        static_pixels = observation.pixels[feature_rows[static_rows]]
        static_points = np.asarray(static_points)
        scene_depth = self.scene_depth()

        def acceptable(candidate) -> bool:
            """Enough inliers, healthy ratio, and a pose step compatible
            with one frame of device motion — a solver jump to a spurious
            minimum (planar mirror solution, moving-object consensus)
            fails one of these instead of poisoning the velocity model."""
            ratio = candidate.num_inliers / max(len(static_rows), 1)
            step = predicted_pose.translation_distance_to(candidate.pose_cw)
            step_rot = np.degrees(
                predicted_pose.rotation_angle_to(candidate.pose_cw)
            )
            max_step = max(0.25 * scene_depth, 0.05) * (2.0 if relocalizing else 1.0)
            return (
                candidate.num_inliers >= self.config.min_track_matches
                and ratio >= 0.45
                and step <= max_step
                and step_rot <= (30.0 if relocalizing else 20.0)
            )

        result = refine_pose(self.camera, predicted_pose, static_points, static_pixels)
        if not acceptable(result) and len(static_rows) >= 6:
            # Direct descent failed (dominant outlier cluster — typically a
            # not-yet-labeled moving object — or a near-planar mirror
            # basin): RANSAC over minimal sets and refine on the consensus.
            candidate = solve_pnp(
                self.camera,
                static_points,
                static_pixels,
                initial_pose_cw=predicted_pose,
                ransac_iterations=25,
                rng=self._rng,
            )
            if candidate.num_inliers > result.num_inliers:
                result = candidate
        if not acceptable(result):
            return self._declare_lost(frame_index, matched_ids)
        if result.num_inliers < len(static_rows):
            # Polish on the consensus set without the robust kernel.
            polished = refine_pose(
                self.camera,
                result.pose_cw,
                static_points[result.inlier_mask],
                static_pixels[result.inlier_mask],
                huber_delta=None,
            )
            if polished.num_inliers >= result.num_inliers * 0.9 and acceptable(
                polished
            ):
                result = polished

        previous_pose = self._pose_cw
        self._pose_cw = result.pose_cw
        if relocalizing:
            self._velocity = SE3.identity()
        else:
            self._velocity = self._clamp_velocity(
                self._pose_cw @ previous_pose.inverse(), scene_depth
            )
        self._consecutive_tracked += 1
        self.state = VOState.TRACKING
        self._frames_since_lost = 0

        # Touch matched points and record the freshest observation of each
        # well-reprojecting static point (feeds structure refinement).
        for point_id in matched_ids[matched_ids >= 0]:
            self.map.touch(int(point_id), frame_index)
        final_errors = reprojection_errors(
            self.camera.matrix, self._pose_cw, static_points, static_pixels
        )
        for row, error in zip(static_rows, final_errors):
            point = self.map.get(int(point_ids[map_rows[row]]))
            if error < 3.0:
                point.last_observation = (
                    self._pose_cw,
                    observation.pixels[feature_rows[row]].copy(),
                )
                if point.first_observation is None:
                    point.first_observation = point.last_observation
            elif error > 4.0:
                point.outlier_count += 1

        object_poses, moving = self._track_objects(
            frame_index, observation, matched_ids
        )

        unlabeled_fraction = self._unlabeled_fraction(matched_ids)

        if frame_index - self._last_keyframe_index >= self.config.keyframe_interval:
            # Only extend the map from a settled pose estimate: points
            # triangulated right after a relocalization inherit its error
            # and would build a ghost layer of duplicates.
            if self._consecutive_tracked >= 5:
                self._create_points(frame_index, timestamp, observation, matched_ids)
                self._refine_structure(frame_index)
            self._last_keyframe_index = frame_index
            self.map.cull(frame_index)

        return TrackingResult(
            frame_index=frame_index,
            state=VOState.TRACKING,
            pose_cw=self._pose_cw,
            object_poses_wo=object_poses,
            matched_point_ids=matched_ids,
            unlabeled_match_fraction=unlabeled_fraction,
            num_matches=len(accepted),
            moving_objects=moving,
        )

    def _visible_points(self, pose_cw: SE3):
        """Map points predicted visible in the given pose, with world
        positions (object points mapped through their current pose)."""
        ids = []
        positions = []
        labels: list[int | None] = []
        for point in self.map.points:
            if point.is_object:
                track = self.objects.get(point.label)
                if track is None:
                    continue
                position_world = track.pose_wo.transform(point.position)
            else:
                position_world = point.position
            ids.append(point.point_id)
            positions.append(position_world)
            labels.append(point.label)
        if not ids:
            return np.zeros(0, dtype=int), np.zeros((0, 3)), []
        positions_arr = np.asarray(positions)
        pixels, depths, visible = self.camera.visible_world_points(
            pose_cw, positions_arr, margin=60.0
        )
        keep = np.flatnonzero(visible)
        return (
            np.asarray(ids, dtype=int)[keep],
            positions_arr[keep],
            [labels[i] for i in keep],
        )

    def _track_objects(self, frame_index, observation, matched_ids):
        """Per-object tracking (Eq. 6-7) with image-space motion evidence.

        A full 6-DoF pose refit of a small object is badly conditioned
        (its points span a small lever arm), so the pose of an object is
        only re-estimated when the image actually shows it moved: the
        median reprojection displacement of its matched points under the
        *old* object pose exceeds a pixel threshold.  Static objects keep
        their anchored pose exactly, which keeps their points usable for
        the device-pose solve and keeps mask transfer drift-free.
        """
        object_poses: dict[int, SE3] = {}
        moving: set[int] = set()
        by_label: dict[int, list[tuple[int, int]]] = {}
        for feature_index, point_id in enumerate(matched_ids):
            if point_id < 0:
                continue
            point = self.map.get(int(point_id))
            if point.is_object:
                by_label.setdefault(point.label, []).append((feature_index, point_id))

        for label, pairs in by_label.items():
            track = self.objects.get(label)
            if track is None or len(pairs) < self.config.min_object_points:
                continue
            positions_object = np.array(
                [self.map.get(pid).position for _, pid in pairs]
            )
            pixels = np.array([observation.pixels[fi] for fi, _ in pairs])

            # Image-space motion evidence under the old object pose.
            positions_world = track.pose_wo.transform(positions_object)
            displacement = reprojection_errors(
                self.camera.matrix, self._pose_cw, positions_world, pixels
            )
            median_displacement = float(np.median(displacement))
            track.last_update_frame = frame_index

            if median_displacement <= self.config.object_motion_px:
                # Object is where its pose says it is: keep the anchor.
                track.still_streak += 1
                if track.still_streak >= 10:
                    track.is_moving = False
                object_poses[label] = track.pose_wo
                continue

            # Apparent motion: re-estimate the camera-from-object pose.
            try:
                result = refine_pose(
                    self.camera,
                    track.pose_co(self._pose_cw),  # predicted T_co
                    positions_object,
                    pixels,
                )
            except ValueError:
                continue
            if result.num_inliers < self.config.min_object_points:
                continue
            # Depth-consistency gate: a small object's depth is weakly
            # constrained, so the refit can slide it along the viewing ray
            # (same projection, wrong distance).  Reject updates that
            # change the object's camera-frame depth by more than ~20% or
            # teleport it — real inter-frame motion is far smaller.
            old_depth = float(
                np.median(self._pose_cw.transform(positions_world)[:, 2])
            )
            new_points_camera = result.pose_cw.transform(positions_object)
            new_depth = float(np.median(new_points_camera[:, 2]))
            if old_depth > 1e-3 and new_depth > 1e-3:
                depth_ratio = new_depth / old_depth
            else:
                depth_ratio = np.inf
            new_pose_wo = self._pose_cw.inverse() @ result.pose_cw  # Eq. 7
            translation_delta = track.pose_wo.translation_distance_to(new_pose_wo)
            if not (0.8 < depth_ratio < 1.25) or translation_delta > 0.5 * old_depth:
                # Keep the old anchor; the evidence still says "moving".
                track.is_moving = True
                track.still_streak = 0
                moving.add(label)
                object_poses[label] = track.pose_wo
                continue
            track.is_moving = True
            track.still_streak = 0
            moving.add(label)
            track.accumulated_motion += translation_delta
            track.pose_wo = new_pose_wo
            object_poses[label] = new_pose_wo
        return object_poses, moving

    def _unlabeled_fraction(self, matched_ids: np.ndarray) -> float:
        """Fraction of features matched to unlabeled points or nothing —
        the CFRS 'new content' signal (Section V, threshold t = 0.25)."""
        total = len(matched_ids)
        if total == 0:
            return 1.0
        known = 0
        for point_id in matched_ids:
            if point_id < 0:
                continue
            point = self.map.get(int(point_id))
            if not point.is_unlabeled:
                known += 1
        return 1.0 - known / total

    def _create_points(self, frame_index, timestamp, observation, matched_ids):
        """Triangulate unmatched features against the newest usable recent
        frame (two-view DLT), adding them as unlabeled points."""
        partner = None
        for recent in reversed(self._recent):
            if recent.pose_cw is None:
                continue
            gap = frame_index - recent.frame_index
            if gap >= max(self.config.keyframe_interval - 2, 3):
                partner = recent
                break
        if partner is None:
            return
        unmatched_now = np.flatnonzero(matched_ids < 0)
        unmatched_then = np.flatnonzero(partner.matched_point_ids < 0)
        if len(unmatched_now) == 0 or len(unmatched_then) == 0:
            return
        matches = match_descriptors(
            observation.descriptors[unmatched_now],
            partner.observation.descriptors[unmatched_then],
            max_distance=self.config.match_max_distance,
        )
        if not matches:
            return
        matches = matches[: self.config.max_new_points_per_keyframe]
        now_rows = np.array([unmatched_now[m.query_index] for m in matches])
        then_rows = np.array([unmatched_then[m.train_index] for m in matches])
        norm_now = self.camera.normalize(observation.pixels[now_rows])
        norm_then = self.camera.normalize(partner.observation.pixels[then_rows])
        points, valid = triangulate_dlt(
            norm_then, norm_now, partner.pose_cw, self._pose_cw
        )
        # Deduplicate against the existing map: an unmatched feature may
        # still belong to a site that already has a point (its match was
        # rejected by the ratio test or gate); re-triangulating it would
        # plant a duplicate at a slightly different position.
        _, map_descriptors = self.map.descriptor_matrix()
        if len(map_descriptors):
            from ..features.brief import hamming_distance

            candidate_descriptors = observation.descriptors[now_rows]
            min_distances = hamming_distance(
                candidate_descriptors, map_descriptors
            ).min(axis=1)
            valid &= min_distances > 24
        scene_depth = self.scene_depth()
        center_now = self._pose_cw.center
        center_then = partner.pose_cw.center
        for i in np.flatnonzero(valid):
            depth = (self._pose_cw.transform(points[i]))[2]
            if depth <= 0.05 or depth > 20.0 * scene_depth:
                continue
            # Quality gates: the new point must reproject tightly in both
            # views and subtend real parallax — otherwise its depth is
            # noise and it would drag future pose solves.
            error_now = reprojection_errors(
                self.camera.matrix, self._pose_cw, points[i][None],
                observation.pixels[now_rows[i]][None],
            )[0]
            error_then = reprojection_errors(
                self.camera.matrix, partner.pose_cw, points[i][None],
                partner.observation.pixels[then_rows[i]][None],
            )[0]
            if error_now > 1.5 or error_then > 1.5:
                continue
            ray_now = points[i] - center_now
            ray_then = points[i] - center_then
            cosine = np.dot(ray_now, ray_then) / max(
                np.linalg.norm(ray_now) * np.linalg.norm(ray_then), 1e-12
            )
            if np.degrees(np.arccos(np.clip(cosine, -1.0, 1.0))) < 0.8:
                continue
            point = self.map.add_point(
                position=points[i],
                descriptor=observation.descriptors[now_rows[i]],
                label=None,
                frame_index=frame_index,
            )
            point.first_observation = (
                partner.pose_cw,
                partner.observation.pixels[then_rows[i]].copy(),
            )
            point.last_observation = (
                self._pose_cw,
                observation.pixels[now_rows[i]].copy(),
            )
            point.parallax_quality_deg = float(
                np.degrees(np.arccos(np.clip(cosine, -1.0, 1.0)))
            )
            matched_ids[now_rows[i]] = point.point_id

    def _clamp_velocity(self, velocity: SE3, scene_depth: float) -> SE3:
        """Bound and damp the per-frame velocity model.

        The damping matters: translation along the optical axis of a
        centered scene is nearly cost-flat, so an undamped constant-
        velocity prior double-integrates solver noise in that direction
        into exponential runaway.  Mild decay makes the unobservable
        component mean-reverting while barely lagging real motion.
        """
        twist = velocity.log() * 0.85
        max_translation = max(0.15 * scene_depth, 0.02)
        max_rotation = np.deg2rad(12.0)
        translation_norm = float(np.linalg.norm(twist[:3]))
        rotation_norm = float(np.linalg.norm(twist[3:]))
        scale = 1.0
        if translation_norm > max_translation:
            scale = min(scale, max_translation / translation_norm)
        if rotation_norm > max_rotation:
            scale = min(scale, max_rotation / rotation_norm)
        if scale >= 1.0:
            return SE3.exp(twist)
        return SE3.exp(twist * scale)

    def _refine_structure(self, frame_index: int) -> None:
        """Re-triangulate static points whose observation baseline grew.

        Structure-only counterpart of local bundle adjustment: a point
        created from a narrow baseline carries a large depth error; once
        its first and latest observations subtend more parallax than the
        best it was ever triangulated with, recompute its position.
        """
        refined = 0
        for point in self.map.points:
            if point.is_object:
                continue
            if point.first_observation is None or point.last_observation is None:
                continue
            if point.last_seen_frame != frame_index:
                continue
            pose_first, pixel_first = point.first_observation
            pose_last, pixel_last = point.last_observation
            ray_first = point.position - pose_first.center
            ray_last = point.position - pose_last.center
            denom = max(
                np.linalg.norm(ray_first) * np.linalg.norm(ray_last), 1e-12
            )
            cosine = float(np.dot(ray_first, ray_last)) / denom
            parallax = float(np.degrees(np.arccos(np.clip(cosine, -1.0, 1.0))))
            if parallax < max(point.parallax_quality_deg * 1.3, 1.0):
                continue
            norm_first = self.camera.normalize(pixel_first[None])
            norm_last = self.camera.normalize(pixel_last[None])
            positions, valid = triangulate_dlt(
                norm_first, norm_last, pose_first, pose_last
            )
            if not valid[0]:
                continue
            error_first = reprojection_errors(
                self.camera.matrix, pose_first, positions, pixel_first[None]
            )[0]
            error_last = reprojection_errors(
                self.camera.matrix, pose_last, positions, pixel_last[None]
            )[0]
            if error_first > 2.0 or error_last > 2.0:
                continue
            point.position = positions[0]
            point.parallax_quality_deg = parallax
            refined += 1
        if refined:
            # Positions moved in place — invalidate position-derived caches.
            self.map.bump_version()

    def _declare_lost(self, frame_index, matched_ids) -> TrackingResult:
        self._frames_since_lost += 1
        self._consecutive_tracked = 0
        self.state = VOState.LOST
        # Freeze the pose at the last good estimate; integrating a suspect
        # velocity while lost only drives relocalization further away.
        self._velocity = SE3.identity()
        return TrackingResult(
            frame_index=frame_index,
            state=VOState.LOST,
            pose_cw=self._pose_cw,
            object_poses_wo={},
            matched_point_ids=matched_ids,
            unlabeled_match_fraction=1.0,
            num_matches=0,
        )

    # ------------------------------------------------------------------
    def _remember(self, frame_index, timestamp, observation, result) -> None:
        self._recent.append(
            _RecentFrame(
                frame_index=frame_index,
                timestamp=timestamp,
                observation=observation,
                pose_cw=result.pose_cw if result.state is VOState.TRACKING else None,
                matched_point_ids=result.matched_point_ids,
            )
        )

    def _find_recent(self, frame_index: int) -> _RecentFrame | None:
        for recent in self._recent:
            if recent.frame_index == frame_index:
                return recent
        return None
