"""VO frontends: turning a frame into feature observations.

Two interchangeable implementations:

* :class:`FastBriefFrontend` — the real pipeline (FAST + rotated BRIEF on
  the rendered image).  Used in the examples and the frontend tests.
* :class:`OracleFrontend` — the *simulation* frontend used by the large
  experiment grids.  It projects the world's stable feature sites through
  the ground-truth camera, keeps those that survive a depth-buffer
  visibility test, perturbs the pixels with detection noise and emits a
  deterministic per-site descriptor with random bit flips.  Matching,
  triangulation and PnP downstream run unchanged and still have to cope
  with noise, occlusion and wrong matches — but frame processing becomes
  fast and seed-reproducible, which a 6-system x 4-dataset x 3-network
  evaluation grid needs.  (DESIGN.md section 2 records this substitution.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features.orb import OrbFeatureExtractor
from ..geometry.camera import PinholeCamera
from ..image.frame import VideoFrame
from ..synthetic.world import GroundTruth, World

__all__ = ["Observation", "FastBriefFrontend", "OracleFrontend"]


@dataclass
class Observation:
    """Features of one frame, frontend-agnostic."""

    pixels: np.ndarray  # (N, 2) float (u, v)
    descriptors: np.ndarray  # (N, 32) uint8

    def __len__(self) -> int:
        return len(self.pixels)

    def subset(self, indices: np.ndarray) -> "Observation":
        indices = np.asarray(indices)
        if indices.dtype == bool:
            indices = np.flatnonzero(indices)
        return Observation(self.pixels[indices], self.descriptors[indices])


class FastBriefFrontend:
    """Real feature extraction on the frame image."""

    def __init__(self, max_features: int = 400, threshold: float = 18.0):
        self._extractor = OrbFeatureExtractor(
            threshold=threshold, max_keypoints=max_features
        )

    def observe(self, frame: VideoFrame, truth: GroundTruth | None = None) -> Observation:
        features = self._extractor.extract(frame.gray)
        return Observation(pixels=features.pixels, descriptors=features.descriptors)


class OracleFrontend:
    """Deterministic feature sites projected through ground truth."""

    def __init__(
        self,
        world: World,
        camera: PinholeCamera,
        max_features: int = 400,
        pixel_noise: float = 0.4,
        descriptor_flip_bits: int = 6,
        dropout: float = 0.05,
        depth_tolerance: float = 0.02,
        seed: int = 0,
    ):
        self.world = world
        self.camera = camera
        self.max_features = max_features
        self.pixel_noise = pixel_noise
        self.descriptor_flip_bits = descriptor_flip_bits
        self.dropout = dropout
        self.depth_tolerance = depth_tolerance
        self._rng = np.random.default_rng(seed)
        self._descriptor_cache: dict[int, np.ndarray] = {}

    def _site_descriptor(self, site_id: int) -> np.ndarray:
        cached = self._descriptor_cache.get(site_id)
        if cached is None:
            site_rng = np.random.default_rng(0x9E3779B9 ^ (site_id * 2654435761 % 2**32))
            cached = site_rng.integers(0, 256, size=32, dtype=np.uint8)
            self._descriptor_cache[site_id] = cached
        return cached

    def _noisy_descriptor(self, site_id: int) -> np.ndarray:
        descriptor = self._site_descriptor(site_id).copy()
        flips = self._rng.integers(0, 256, size=self.descriptor_flip_bits)
        for flip in flips:
            descriptor[flip // 8] ^= np.uint8(1 << (flip % 8))
        return descriptor

    def observe(self, frame: VideoFrame, truth: GroundTruth) -> Observation:
        sites = self.world.feature_sites
        positions = self.world.site_world_positions(frame.timestamp)
        pixels, depths, visible = self.camera.visible_world_points(
            truth.pose_cw, positions, margin=-2.0
        )
        # Depth-buffer test: the site must actually be the front surface.
        candidate = np.flatnonzero(visible)
        cols = np.clip(np.round(pixels[candidate, 0]).astype(int), 0, self.camera.width - 1)
        rows = np.clip(np.round(pixels[candidate, 1]).astype(int), 0, self.camera.height - 1)
        buffer_depth = truth.depth[rows, cols]
        unoccluded = depths[candidate] <= buffer_depth * (1.0 + self.depth_tolerance) + 0.05
        candidate = candidate[unoccluded]

        # Random detection dropout, then keep at most max_features.  The
        # cap is applied in site-id order so consecutive frames observe a
        # highly overlapping subset — the way stable FAST corners behave —
        # instead of resampling a nearly disjoint set each frame.
        keep = self._rng.uniform(size=len(candidate)) >= self.dropout
        candidate = candidate[keep]
        if len(candidate) > self.max_features:
            # Deterministic hash order interleaves sites of all objects
            # (plain site-id order would starve late-generated objects).
            priority = (candidate.astype(np.uint64) * np.uint64(2654435761)) % np.uint64(2**32)
            candidate = candidate[np.argsort(priority)][: self.max_features]

        noisy_pixels = pixels[candidate] + self._rng.normal(
            scale=self.pixel_noise, size=(len(candidate), 2)
        )
        descriptors = (
            np.stack([self._noisy_descriptor(sites[i].site_id) for i in candidate])
            if len(candidate)
            else np.zeros((0, 32), dtype=np.uint8)
        )
        return Observation(pixels=noisy_pixels, descriptors=descriptors)
