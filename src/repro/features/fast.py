"""FAST corner detection (Features from Accelerated Segment Test).

ORB — the feature the paper uses "for its efficiency in computing and
robustness against the change of viewpoints" (Section III-A) — is FAST
keypoints plus rotated BRIEF descriptors.  This module implements the
FAST-9 segment test and corner score fully vectorized in numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Keypoint",
    "arc_run_at_least",
    "fast_corners",
    "corner_score_map",
    "grid_select",
]

# Bresenham circle of radius 3: 16 (row, col) offsets in order.
_CIRCLE = np.array(
    [
        (-3, 0), (-3, 1), (-2, 2), (-1, 3),
        (0, 3), (1, 3), (2, 2), (3, 1),
        (3, 0), (3, -1), (2, -2), (1, -3),
        (0, -3), (-1, -3), (-2, -2), (-3, -1),
    ]
)


@dataclass
class Keypoint:
    """A detected interest point.

    ``row``/``col`` are pixel coordinates; ``score`` is the FAST corner
    response used for non-maximal suppression and grid selection;
    ``angle`` is the intensity-centroid orientation (radians) used by
    rotated BRIEF.
    """

    row: float
    col: float
    score: float
    angle: float = 0.0
    octave: int = 0  # pyramid level the keypoint was detected at

    @property
    def pt(self) -> np.ndarray:
        """(u, v) = (col, row) pixel coordinates, matching camera order."""
        return np.array([self.col, self.row], dtype=float)


def _circle_stack(gray: np.ndarray) -> np.ndarray:
    """Stack of the 16 circle-shifted images, cropped to the valid region.

    Output shape: (16, H-6, W-6) aligned so index [k, r, c] is the k-th
    circle pixel around center (r+3, c+3).
    """
    height, width = gray.shape
    inner_h, inner_w = height - 6, width - 6
    stack = np.empty((16, inner_h, inner_w), dtype=gray.dtype)
    for k, (dr, dc) in enumerate(_CIRCLE):
        stack[k] = gray[3 + dr : 3 + dr + inner_h, 3 + dc : 3 + dc + inner_w]
    return stack


def _max_consecutive_true_reference(flags: np.ndarray) -> np.ndarray:
    """Longest circular run of True along axis 0 of a (16, ...) stack.

    Scalar reference for :func:`arc_run_at_least`: 2x16 interpreter steps
    over the full image, kept for equivalence tests and the ``micro``
    kernel bench (``fast.arc_run``).
    """
    doubled = np.concatenate([flags, flags], axis=0).astype(np.int8)
    best = np.zeros(flags.shape[1:], dtype=np.int8)
    run = np.zeros(flags.shape[1:], dtype=np.int8)
    for k in range(doubled.shape[0]):
        run = (run + 1) * doubled[k]
        best = np.maximum(best, run)
    return np.minimum(best, 16)


# Max circular run length for every 16-bit circle pattern, built lazily
# from the scalar reference so the two can never drift.  65536 uint8
# entries = 64 KiB, resident for the life of the process.
_ARC_RUN_LUT: np.ndarray | None = None


def _arc_run_lut() -> np.ndarray:
    global _ARC_RUN_LUT
    if _ARC_RUN_LUT is None:
        patterns = np.arange(1 << 16, dtype=np.uint32)
        # Bit layout: flags[k] lands in bit (15 - k) of the packed uint16,
        # matching the shift-or pack in :func:`arc_run_at_least`.
        bits = ((patterns[None, :] >> (15 - np.arange(16)[:, None])) & 1).astype(
            bool
        )
        _ARC_RUN_LUT = _max_consecutive_true_reference(bits).astype(np.uint8)
    return _ARC_RUN_LUT


# float32 is exact for these sums (< 2**24), and a float matmul packs the
# whole stack through BLAS on the rare dense inputs.
_PACK_WEIGHTS = (1 << np.arange(15, -1, -1)).astype(np.float32)


def arc_run_at_least(flags: np.ndarray, arc_length: int) -> np.ndarray:
    """True where a circular run of >= ``arc_length`` True exists (axis 0).

    The vectorized FAST segment test.  A run of ``arc_length`` set flags
    needs at least that many set in total, so a single ``sum`` pass
    prefilters the (few) candidate pixels; only those get their 16 circle
    flags packed into a uint16 and the run length becomes one gather from
    a 64 KiB table.  Bit-equivalent with
    :func:`_max_consecutive_true_reference` (the table is built from it)
    while replacing its 32-step scan over the full image with one pass
    plus work proportional to the candidate count.
    """
    if flags.shape[0] != 16:
        raise ValueError("arc_run_at_least expects a (16, ...) flag stack")
    inner_shape = flags.shape[1:]
    flat = flags.reshape(16, -1)
    out = np.zeros(flat.shape[1], dtype=bool)
    counts = flat.sum(axis=0, dtype=np.uint8)
    candidates = np.flatnonzero(counts >= arc_length)
    if candidates.size:
        lut = _arc_run_lut()
        if candidates.size * 4 >= flat.shape[1]:
            # Dense flags: one BLAS pack of every column beats per-plane
            # gathers.
            packed = (_PACK_WEIGHTS @ flat.astype(np.float32)).astype(
                np.uint16
            )
            out = lut[packed] >= arc_length
        else:
            packed = np.zeros(candidates.size, dtype=np.uint16)
            for k in range(16):
                packed |= flat[k].take(candidates).astype(
                    np.uint16
                ) << np.uint16(15 - k)
            out[candidates] = lut[packed] >= arc_length
    return out.reshape(inner_shape)


def corner_score_map(
    gray: np.ndarray, threshold: float = 20.0, arc_length: int = 9
) -> np.ndarray:
    """FAST corner response for every pixel (0 where not a corner).

    A pixel passes if ``arc_length`` contiguous circle pixels are all
    brighter than center+threshold or all darker than center-threshold.
    The score is the sum of absolute differences over the circle, the
    usual ranking for non-maximal suppression.
    """
    gray = np.asarray(gray, dtype=np.float32)
    if gray.ndim != 2:
        raise ValueError("corner_score_map expects a grayscale image")
    if gray.shape[0] < 7 or gray.shape[1] < 7:
        return np.zeros_like(gray)
    center = gray[3:-3, 3:-3]
    stack = _circle_stack(gray)

    brighter = stack > center[None] + threshold
    darker = stack < center[None] - threshold
    is_corner = arc_run_at_least(brighter, arc_length) | arc_run_at_least(
        darker, arc_length
    )

    diffs = np.abs(stack - center[None]) - threshold
    score_inner = np.where(is_corner, np.sum(np.maximum(diffs, 0.0), axis=0), 0.0)

    scores = np.zeros_like(gray)
    scores[3:-3, 3:-3] = score_inner
    return scores


def _orientation(gray: np.ndarray, row: int, col: int, patch_radius: int = 7) -> float:
    """Intensity-centroid orientation (the 'O' of ORB)."""
    r0 = max(row - patch_radius, 0)
    r1 = min(row + patch_radius + 1, gray.shape[0])
    c0 = max(col - patch_radius, 0)
    c1 = min(col + patch_radius + 1, gray.shape[1])
    patch = gray[r0:r1, c0:c1]
    rr, cc = np.mgrid[r0:r1, c0:c1]
    total = patch.sum()
    if total < 1e-6:
        return 0.0
    m10 = float(np.sum((cc - col) * patch))
    m01 = float(np.sum((rr - row) * patch))
    return float(np.arctan2(m01, m10))


def fast_corners(
    gray: np.ndarray,
    threshold: float = 20.0,
    nonmax_radius: int = 3,
    max_keypoints: int | None = None,
    compute_orientation: bool = True,
) -> list[Keypoint]:
    """Detect FAST-9 corners with non-maximal suppression.

    Returns keypoints sorted by descending score, truncated to
    ``max_keypoints`` if given.
    """
    gray = np.asarray(gray, dtype=np.float32)
    scores = corner_score_map(gray, threshold=threshold)
    if not scores.any():
        return []
    from scipy import ndimage

    footprint = np.ones((2 * nonmax_radius + 1, 2 * nonmax_radius + 1), dtype=bool)
    local_max = ndimage.maximum_filter(scores, footprint=footprint)
    peaks = (scores > 0) & (scores >= local_max)
    rows, cols = np.nonzero(peaks)
    order = np.argsort(-scores[rows, cols])
    if max_keypoints is not None:
        order = order[:max_keypoints]
    keypoints = []
    for idx in order:
        r, c = int(rows[idx]), int(cols[idx])
        angle = _orientation(gray, r, c) if compute_orientation else 0.0
        keypoints.append(Keypoint(row=r, col=c, score=float(scores[r, c]), angle=angle))
    return keypoints


def grid_select(
    keypoints: list[Keypoint],
    shape: tuple[int, int],
    cell: int = 32,
    per_cell: int = 4,
) -> list[Keypoint]:
    """Keep the strongest ``per_cell`` keypoints per grid cell.

    ORB-SLAM spreads features over the image the same way; without it the
    tracker starves in low-texture regions while wasting budget on busy
    ones.
    """
    buckets: dict[tuple[int, int], list[Keypoint]] = {}
    for keypoint in keypoints:
        key = (int(keypoint.row) // cell, int(keypoint.col) // cell)
        buckets.setdefault(key, []).append(keypoint)
    selected: list[Keypoint] = []
    for bucket in buckets.values():
        bucket.sort(key=lambda k: -k.score)
        selected.extend(bucket[:per_cell])
    selected.sort(key=lambda k: -k.score)
    return selected
