"""Brute-force descriptor matching with Lowe ratio and cross checks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .brief import hamming_distance

__all__ = ["Match", "match_descriptors"]


@dataclass(frozen=True)
class Match:
    """A putative correspondence between two descriptor sets."""

    query_index: int
    train_index: int
    distance: float


def match_descriptors(
    descriptors_query: np.ndarray,
    descriptors_train: np.ndarray,
    max_distance: int = 64,
    ratio: float = 0.8,
    cross_check: bool = True,
) -> list[Match]:
    """Match binary descriptors by Hamming distance.

    A match survives when (i) its distance is below ``max_distance``,
    (ii) it passes Lowe's ratio test against the second-best candidate and
    (iii) with ``cross_check``, the best match in the reverse direction
    agrees.  This mirrors ORB-SLAM's matching hygiene, which the paper's
    feature matching inherits.
    """
    if len(descriptors_query) == 0 or len(descriptors_train) == 0:
        return []
    distances = hamming_distance(descriptors_query, descriptors_train)

    best_train = np.argmin(distances, axis=1)
    best_distance = distances[np.arange(len(distances)), best_train]

    matches: list[Match] = []
    single_train = distances.shape[1] == 1
    if cross_check:
        best_query_for_train = np.argmin(distances, axis=0)
    for query_index in range(distances.shape[0]):
        train_index = int(best_train[query_index])
        distance = float(best_distance[query_index])
        if distance > max_distance:
            continue
        if not single_train:
            row = distances[query_index].copy()
            row[train_index] = np.iinfo(row.dtype).max
            second = float(row.min())
            if distance > ratio * second:
                continue
        if cross_check and int(best_query_for_train[train_index]) != query_index:
            continue
        matches.append(Match(query_index, train_index, distance))
    return matches
