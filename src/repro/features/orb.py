"""The full ORB-like feature pipeline plus the paper's feature selection.

Section III-A describes a selection pass on top of raw features:

* background features are dropped when "too blurred or too close to
  neighboring ones";
* features near the edge of an instance mask are always preserved
  ("pixels on the contour are more representative for the object's
  shape");
* features inside a mask still face the blurriness check.

:class:`OrbFeatureExtractor` implements detection + description, and
:func:`select_features` implements that mask-aware filtering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..image.contours import mask_boundary
from ..image.frame import gaussian_blur
from .brief import BriefDescriptorExtractor
from .fast import Keypoint, fast_corners, grid_select

__all__ = ["FeatureSet", "OrbFeatureExtractor", "select_features", "local_sharpness"]


@dataclass
class FeatureSet:
    """Keypoints + descriptors of one frame.

    ``pixels`` is the (N, 2) array of (u, v) coordinates — the layout every
    geometry routine consumes — kept in sync with ``keypoints``.
    """

    keypoints: list[Keypoint]
    descriptors: np.ndarray  # (N, 32) uint8

    @property
    def pixels(self) -> np.ndarray:
        if not self.keypoints:
            return np.zeros((0, 2))
        return np.array([[k.col, k.row] for k in self.keypoints], dtype=float)

    def __len__(self) -> int:
        return len(self.keypoints)

    def subset(self, indices: np.ndarray) -> "FeatureSet":
        indices = np.asarray(indices)
        if indices.dtype == bool:
            indices = np.flatnonzero(indices)
        return FeatureSet(
            keypoints=[self.keypoints[i] for i in indices],
            descriptors=self.descriptors[indices],
        )


class OrbFeatureExtractor:
    """FAST-9 detection + grid selection + rotated-BRIEF description.

    With ``num_levels > 1`` detection runs over an image pyramid
    (``scale_factor`` between levels, ORB's scale invariance): keypoints
    are described at their native level and reported in full-resolution
    coordinates with their ``octave`` recorded.
    """

    def __init__(
        self,
        threshold: float = 20.0,
        max_keypoints: int = 500,
        grid_cell: int = 32,
        per_cell: int = 4,
        blur_sigma: float = 2.0,
        num_levels: int = 1,
        scale_factor: float = 1.3,
    ):
        if num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        self.threshold = threshold
        self.max_keypoints = max_keypoints
        self.grid_cell = grid_cell
        self.per_cell = per_cell
        self.num_levels = num_levels
        self.scale_factor = scale_factor
        self._brief = BriefDescriptorExtractor(blur_sigma=blur_sigma)

    def _extract_level(self, gray: np.ndarray, budget: int):
        keypoints = fast_corners(gray, threshold=self.threshold, max_keypoints=budget * 3)
        keypoints = grid_select(
            keypoints, gray.shape, cell=self.grid_cell, per_cell=self.per_cell
        )[:budget]
        return self._brief.compute(gray, keypoints)

    def extract(self, gray: np.ndarray) -> FeatureSet:
        from ..image.frame import resize_bilinear

        gray = np.asarray(gray, dtype=np.float32)
        if self.num_levels == 1:
            kept, descriptors = self._extract_level(gray, self.max_keypoints)
            return FeatureSet(keypoints=kept, descriptors=descriptors)

        all_keypoints: list[Keypoint] = []
        descriptor_rows: list[np.ndarray] = []
        level_image = gray
        scale = 1.0
        # Budget split roughly geometrically across levels, as in ORB.
        weights = np.array([self.scale_factor ** -i for i in range(self.num_levels)])
        budgets = np.maximum(
            (self.max_keypoints * weights / weights.sum()).astype(int), 8
        )
        for level in range(self.num_levels):
            kept, descriptors = self._extract_level(level_image, int(budgets[level]))
            for keypoint, descriptor in zip(kept, descriptors):
                all_keypoints.append(
                    Keypoint(
                        row=keypoint.row / scale,
                        col=keypoint.col / scale,
                        score=keypoint.score,
                        angle=keypoint.angle,
                        octave=level,
                    )
                )
                descriptor_rows.append(descriptor)
            if level + 1 < self.num_levels:
                scale /= self.scale_factor
                level_image = resize_bilinear(gray, scale)
                if min(level_image.shape) < 40:
                    break

        if not all_keypoints:
            return FeatureSet(keypoints=[], descriptors=np.zeros((0, 32), np.uint8))
        order = np.argsort([-k.score for k in all_keypoints])[: self.max_keypoints]
        return FeatureSet(
            keypoints=[all_keypoints[i] for i in order],
            descriptors=np.stack([descriptor_rows[i] for i in order]),
        )


def local_sharpness(gray: np.ndarray, window: int = 7) -> np.ndarray:
    """Laplacian-energy sharpness map; low values mean blurred texture."""
    gray = np.asarray(gray, dtype=np.float32)
    laplacian = ndimage.laplace(gaussian_blur(gray, 0.8))
    return ndimage.uniform_filter(np.abs(laplacian), size=window)


def select_features(
    feature_set: FeatureSet,
    gray: np.ndarray,
    instance_masks: list[np.ndarray] | None = None,
    blur_threshold: float = 1.0,
    min_separation: float = 4.0,
    contour_band: int = 2,
) -> tuple[FeatureSet, np.ndarray]:
    """The paper's feature selection (Section III-A).

    Returns the filtered :class:`FeatureSet` and a parallel int array of
    instance labels (0 = background, i+1 = index into ``instance_masks``).
    """
    if len(feature_set) == 0:
        return feature_set, np.zeros(0, dtype=int)
    gray = np.asarray(gray, dtype=np.float32)
    sharpness = local_sharpness(gray)
    pixels = feature_set.pixels
    rows = np.clip(np.round(pixels[:, 1]).astype(int), 0, gray.shape[0] - 1)
    cols = np.clip(np.round(pixels[:, 0]).astype(int), 0, gray.shape[1] - 1)

    instance_masks = instance_masks or []
    labels = np.zeros(len(feature_set), dtype=int)
    near_contour = np.zeros(len(feature_set), dtype=bool)
    for mask_index, mask in enumerate(instance_masks):
        mask = np.asarray(mask, dtype=bool)
        inside = mask[rows, cols]
        labels[inside] = mask_index + 1
        if inside.any():
            boundary = mask_boundary(mask)
            if contour_band > 1:
                boundary = ndimage.binary_dilation(
                    boundary, iterations=contour_band - 1
                )
            near_contour |= inside & boundary[rows, cols]

    sharp_enough = sharpness[rows, cols] >= blur_threshold
    keep = sharp_enough | near_contour  # contour features always survive

    # Proximity pruning on background features only, strongest first.
    order = np.argsort([-k.score for k in feature_set.keypoints])
    occupied: list[np.ndarray] = []
    min_sep_sq = min_separation * min_separation
    for idx in order:
        if not keep[idx] or labels[idx] != 0:
            continue
        position = pixels[idx]
        crowded = any(
            float(np.sum((position - other) ** 2)) < min_sep_sq for other in occupied
        )
        if crowded:
            keep[idx] = False
        else:
            occupied.append(position)

    kept_indices = np.flatnonzero(keep)
    return feature_set.subset(kept_indices), labels[kept_indices]
